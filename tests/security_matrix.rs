//! Integration: the attack matrix — every attack class against every
//! machine configuration, asserting the paper's security claims.

use sofia::attacks::xbackend::{self, XVerdict};
use sofia::attacks::{forgery, hijack, injection, migration, relocation};
use sofia::crypto::KeySet;
use sofia::prelude::*;

#[test]
fn unprotected_machines_fall_to_every_attack() {
    assert!(injection::inject_vanilla().is_compromised());
    assert!(relocation::swap_code_vanilla().is_compromised());
    assert!(hijack::poison_vanilla().is_compromised());
    assert!(hijack::fault_inject_vanilla().is_compromised());
}

#[test]
fn sofia_stops_every_attack() {
    let keys = KeySet::from_seed(0x5EC1);
    // Image tampering: always *detected* (MAC mismatch).
    assert!(injection::inject_sofia(&keys, true, true).is_detected());
    assert!(injection::inject_sofia(&keys, true, false).is_detected());
    assert!(relocation::swap_blocks_sofia(&keys, 0, 1).is_detected());
    assert!(relocation::cross_version_splice(&keys).is_detected());
    // Control-flow attacks: never compromised (detected or neutralized).
    assert!(!hijack::poison_sofia(&keys).is_compromised());
    for block in 1..5 {
        assert!(!hijack::fault_inject_sofia(&keys, block).is_compromised());
    }
}

#[test]
fn sofia_with_vcache_stops_every_attack() {
    // The verified-block cache rows of the matrix: caching verified
    // plaintext must not reopen a single attack class. Two geometries —
    // a thrashing direct-mapped entry and a comfortable 64-entry cache —
    // bracket the residency behaviours.
    let keys = KeySet::from_seed(0x5EC1);
    for vcache in [VCacheConfig::enabled(1, 1), VCacheConfig::enabled(64, 4)] {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        assert!(injection::inject_sofia_with(&keys, &config, true).is_detected());
        assert!(injection::inject_sofia_with(&keys, &config, false).is_detected());
        assert!(relocation::swap_blocks_sofia_with(&keys, &config, 0, 1).is_detected());
        assert!(relocation::cross_version_splice_with(&keys, &config).is_detected());
        assert!(!hijack::poison_sofia_with(&keys, &config).is_compromised());
        for block in 1..5 {
            assert!(!hijack::fault_inject_sofia_with(&keys, &config, block).is_compromised());
        }
    }
}

#[test]
fn snapshots_add_no_forgery_surface() {
    // The migration rows of the matrix: a restored snapshot's resume
    // point is just another transfer the hardware verifies. A forged
    // `prevPC`, a stale edge replayed from an earlier slice boundary,
    // and an out-of-image redirect are all caught by edge verification
    // on the *first* resumed fetch — with the verified-block cache off,
    // warm-capable, or thrashing (a forged edge is a different cache
    // key, so it can never replay a verified line).
    let keys = KeySet::from_seed(0x5EC5);
    for vcache in [
        VCacheConfig::default(),
        VCacheConfig::enabled(1, 1),
        VCacheConfig::enabled(64, 4),
    ] {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        let forged = migration::forge_resume_prev_pc_with(&keys, &config);
        assert!(forged.is_detected(), "forged prevPC: {forged}");
        let stale = migration::replay_stale_resume_edge_with(&keys, &config);
        assert!(stale.is_detected(), "stale edge replay: {stale}");
        let redirect = migration::redirect_resume_out_of_image_with(&keys, &config);
        assert!(redirect.is_detected(), "out-of-image resume: {redirect}");
    }
}

#[test]
fn cfi_without_si_is_insufficient() {
    // The paper's §II-A argument, demonstrated: CTR malleability defeats
    // a decryption-only defence; the full architecture detects it.
    let keys = KeySet::from_seed(0x5EC2);
    assert!(injection::inject_sofia(&keys, false, false).is_compromised());
    assert!(injection::inject_sofia(&keys, true, false).is_detected());
}

#[test]
fn forgery_acceptance_scales_as_two_to_minus_n() {
    let keys = KeySet::from_seed(0x5EC3);
    let series = forgery::scaling_series(&keys, &[6, 10, 14], 1 << 15, 11);
    // Each +4 bits should cut acceptance by ~16x; allow a wide band.
    let r6 = series[0].measured_rate();
    let r10 = series[1].measured_rate();
    assert!(r6 > 0.0, "6-bit forgeries must land in 32k trials");
    let ratio = r6 / r10.max(1e-9);
    assert!(
        (4.0..80.0).contains(&ratio),
        "scaling ratio {ratio} (expected ~16)"
    );
    // And the full 64-bit MAC never accepts.
    let full = forgery::run_campaign(&keys, 64, 1 << 12, 5);
    assert_eq!(full.accepted, 0);
}

#[test]
fn backend_matrix_rows_discriminate_the_schemes() {
    // The cross-backend rows: the same adversary against SOFIA, the
    // sponge-CFP backend and the FIPAC backend. The schemes must NOT
    // produce identical rows — their detection models genuinely differ,
    // and the matrix is the executable record of how.
    let keys = KeySet::from_seed(0x5EC6);
    let rows = xbackend::matrix(&keys);
    assert_eq!(rows.len(), 3);

    let tamper = &rows[0];
    assert_eq!(tamper.attack, "word-tamper");
    // SOFIA refuses the block before execution.
    assert!(
        matches!(tamper.sofia, XVerdict::Detected(_)),
        "{}",
        tamper.sofia
    );
    // The sponge flags it (garbage decode) without the effect landing.
    assert!(
        tamper.sponge.is_flagged() && !tamper.sponge.is_compromised(),
        "{}",
        tamper.sponge
    );
    // FIPAC executes the tampered word — the effect lands — and flags
    // at the next signature point: deferred, not silent.
    assert!(
        matches!(tamper.fipac, XVerdict::CompromisedFlagged(_)),
        "{}",
        tamper.fipac
    );

    let hijack_row = &rows[1];
    assert_eq!(hijack_row.attack, "gadget-hijack");
    assert!(!hijack_row.sofia.is_compromised(), "{}", hijack_row.sofia);
    assert!(
        hijack_row.sponge.is_flagged() && !hijack_row.sponge.is_compromised(),
        "{}",
        hijack_row.sponge
    );
    assert!(hijack_row.fipac.is_flagged(), "{}", hijack_row.fipac);

    let elision = &rows[2];
    assert_eq!(elision.attack, "check-elision");
    // Faulting the comparator defeats SOFIA (the SI compare) and FIPAC
    // (the signature compare) — but the sponge has no comparator to
    // fault: detection is implicit in decode, and it still fires.
    assert!(
        matches!(elision.sofia, XVerdict::CompromisedSilent(_)),
        "{}",
        elision.sofia
    );
    assert!(
        elision.sponge.is_flagged() && !elision.sponge.is_compromised(),
        "{}",
        elision.sponge
    );
    assert!(
        matches!(elision.fipac, XVerdict::CompromisedSilent(_)),
        "{}",
        elision.fipac
    );

    // Non-identical rows: every row separates at least two backends.
    for row in &rows {
        assert!(
            !(row.sofia == row.sponge && row.sponge == row.fipac),
            "{}: all three backends produced the identical verdict",
            row.attack
        );
    }
}

#[test]
fn detection_is_immediate_not_eventual() {
    // A tampered block must be detected before *any* of its architectural
    // effects land: the actuator log of a detected run contains only the
    // safe writes that preceded the tampered block.
    use sofia::attacks::victims::{control_loop_victim, EVIL_VALUE};
    use sofia::prelude::*;

    let keys = KeySet::from_seed(0x5EC4);
    let module = asm::parse(&control_loop_victim(8)).unwrap();
    let image = Transformer::new(keys.clone()).transform(&module).unwrap();
    for word in 0..image.ctext.len() {
        let mut m = SofiaMachine::new(&image, &keys);
        m.mem_mut().rom_mut()[word] ^= 0x8000_0001;
        let _ = m.run(1_000_000).unwrap();
        assert!(
            !m.mem().mmio.actuator_writes.contains(&EVIL_VALUE),
            "word {word}: evil value reached the actuator"
        );
    }
}
