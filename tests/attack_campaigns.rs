//! Fleet-scale attack campaigns through the public service API: the
//! §IV-A adversary priced at the service boundary. The attacker is a
//! *tenant* — every probe goes through admission control, every verdict
//! through the quarantine fold — and what each [`QuarantinePolicy`]
//! changes is not whether the attack is detected (it always is) but how
//! much a detection *costs the attacker*.

use sofia::fleet::{QuarantinePolicy, TenantState};
use sofia_attacks::campaigns::{
    expected_work, migration_sweep, oracle_profile, policy_label, probe_campaign,
    ProbeCampaignConfig, TamperOutcome, TamperVariant, POLICIES,
};

fn small_config(policy: QuarantinePolicy) -> ProbeCampaignConfig {
    ProbeCampaignConfig {
        policy,
        honest_tenants: 3,
        probes: 3,
        threads: 2,
        seed: 0xCA11,
    }
}

#[test]
fn probing_is_always_detected_and_never_touches_bystanders() {
    for policy in POLICIES {
        let report = probe_campaign(&small_config(policy));
        let label = policy_label(policy);
        assert_eq!(report.successes, 0, "{label}: a probe slipped through");
        assert_eq!(report.probes_admitted, 3, "{label}");
        assert_eq!(report.detections, 3, "{label}: undetected probes");
        assert_eq!(
            report.probes_submitted,
            report.probes_admitted + report.probes_refused,
            "{label}: probes lost by the bookkeeping"
        );
        // Admission control charges the attacker for the lockouts: after
        // the first verdict, further submissions bounce until release
        // (or forever, under eviction).
        assert!(report.probes_refused > 0, "{label}: lockout never charged");
        // The honest tenants are untouched — full availability and
        // bit-identical records vs. a fleet with no attacker at all.
        assert_eq!(report.honest_finished, report.honest_submitted, "{label}");
        assert_eq!(report.bystander_availability, 1.0, "{label}");
        assert!(report.bystander_bit_identical, "{label}");
    }
}

#[test]
fn campaign_reports_do_not_depend_on_host_threads() {
    for policy in POLICIES {
        let serial = probe_campaign(&ProbeCampaignConfig {
            threads: 1,
            ..small_config(policy)
        });
        let threaded = probe_campaign(&ProbeCampaignConfig {
            threads: 4,
            ..small_config(policy)
        });
        assert_eq!(serial, threaded, "{}", policy_label(policy));
    }
}

#[test]
fn policy_prices_the_attack_not_the_detection() {
    let suspend = oracle_profile(QuarantinePolicy::Suspend);
    let retry = oracle_profile(QuarantinePolicy::RetryWithReboot { max_resets: 3 });
    let evict = oracle_profile(QuarantinePolicy::Evict);
    // One verification oracle query per probe under suspend/evict; the
    // retry policy re-runs the tampered job and hands the attacker the
    // extra queries for free.
    assert_eq!(suspend.queries_per_probe, 1);
    assert_eq!(evict.queries_per_probe, 1);
    assert!(retry.queries_per_probe > 1, "retry must amplify the oracle");

    let w_suspend = expected_work(&suspend, 64);
    let w_retry = expected_work(&retry, 64);
    let w_evict = expected_work(&evict, 64);
    // Same closed-form 2^{63} oracle queries everywhere — the §IV-A
    // bound is policy-independent...
    assert_eq!(w_suspend.oracle_queries, w_retry.oracle_queries);
    assert_eq!(w_suspend.oracle_queries, w_evict.oracle_queries);
    // ...but the probes the attacker must buy are not: retry needs
    // fewer probes (each probe carries more queries), evict charges a
    // fresh identity per probe and the highest wall-clock cost.
    assert!(w_retry.probes < w_suspend.probes);
    assert_eq!(w_suspend.identities, 1.0);
    assert_eq!(w_retry.identities, 1.0);
    assert_eq!(w_evict.identities, w_evict.probes);
    assert!(w_evict.wall_ticks > w_suspend.wall_ticks);
    assert!(w_retry.wall_ticks < w_suspend.wall_ticks);
}

#[test]
fn migration_tampering_is_caught_under_every_policy() {
    for policy in POLICIES {
        let sweep = migration_sweep(policy, 7);
        let label = policy_label(policy);
        assert_eq!(sweep.rows.len(), 4, "{label}");
        for row in &sweep.rows {
            match row.variant {
                TamperVariant::None => {
                    assert_eq!(row.outcome, TamperOutcome::CompletedClean, "{label}");
                    assert_eq!(row.tenant_after, TenantState::Active, "{label}");
                }
                // A transit bit-flip dies on the container checksum; a
                // *re-encoded* forgery decodes fine and is only caught
                // by edge verification on the first resumed fetch.
                TamperVariant::BitFlipInTransit => {
                    assert_eq!(row.outcome, TamperOutcome::DetectedInTransit, "{label}");
                }
                TamperVariant::ForgePrevPc | TamperVariant::RedirectOutOfImage => {
                    assert_eq!(row.outcome, TamperOutcome::DetectedOnResume, "{label}");
                    assert!(row.violations > 0, "{label}");
                }
            }
            assert_ne!(row.outcome, TamperOutcome::CompromisedSilently, "{label}");
        }
    }
}

#[test]
fn migration_policy_decides_the_victims_fate_not_the_verdict() {
    // Same tampered snapshot, three different aftermaths: suspended,
    // still-active-after-clean-retry, or evicted. Detection is invariant;
    // the fold is the policy.
    let fate = |policy| {
        let sweep = migration_sweep(policy, 7);
        sweep.rows[2].tenant_after
    };
    assert_eq!(fate(QuarantinePolicy::Suspend), TenantState::Suspended);
    assert_eq!(
        fate(QuarantinePolicy::RetryWithReboot { max_resets: 3 }),
        TenantState::Active
    );
    assert_eq!(fate(QuarantinePolicy::Evict), TenantState::Evicted);
}
