//! Property-based fault injection: random tampering and random hijacks
//! must never yield an undetected malicious effect. This is the
//! probabilistic heart of the paper's claim that SOFIA "prevents the
//! execution of all tampered instructions and instructions resulting
//! from tampered control flow".

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;

fn keys() -> KeySet {
    KeySet::from_seed(0xFA017)
}

fn image() -> SecureImage {
    let w = sofia_workloads::kernels::crc32(48);
    Transformer::new(keys()).transform(&w.module()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-bit flip anywhere in the ciphertext is detected before
    /// the block containing it executes (or the flip is never fetched).
    #[test]
    fn single_bit_flips_never_execute_tampered_code(
        word in 0usize..100,
        bit in 0u32..32,
    ) {
        let img = image();
        let word = word % img.ctext.len();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        let mut m = SofiaMachine::new(&img, &keys());
        m.mem_mut().rom_mut()[word] ^= 1 << bit;
        match m.run(50_000_000).unwrap() {
            RunOutcome::Halted => {
                // The flipped word was never fetched (e.g. a pad in an
                // unvisited path) — output must be untouched.
                prop_assert_eq!(&m.mem().mmio.out_words, &expected);
            }
            RunOutcome::ViolationStop(v) => {
                let is_mac_mismatch = matches!(v, Violation::MacMismatch { .. });
                prop_assert!(is_mac_mismatch, "violation {:?}", v);
                // Nothing after the tampered block may have emitted.
                prop_assert!(m.mem().mmio.out_words.len() <= expected.len());
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Randomly corrupting a whole block (all words) is always detected
    /// if the block is on the executed path.
    #[test]
    fn block_garbage_is_detected(block in 0usize..16, seed in any::<u64>()) {
        let img = image();
        let bw = img.format.block_words();
        let nblocks = img.ctext.len() / bw;
        let block = block % nblocks;
        let mut rng = sofia::crypto::util::SplitMix64::new(seed);
        let mut m = SofiaMachine::new(&img, &keys());
        for w in 0..bw {
            m.mem_mut().rom_mut()[block * bw + w] = rng.next_u64() as u32;
        }
        let outcome = m.run(50_000_000).unwrap();
        prop_assert!(
            matches!(outcome, RunOutcome::Halted | RunOutcome::ViolationStop(_)),
            "unexpected outcome {:?}", outcome
        );
        if block == 0 {
            // The entry block is always executed: must be detected.
            prop_assert!(matches!(outcome, RunOutcome::ViolationStop(_)));
        }
    }

    /// Hijacking the PC to any word in the image never executes foreign
    /// code undetected: either the entry offset is illegal, or the MAC
    /// fails, or the forged edge `(prevPC → target)` was genuinely
    /// sealed by the transformer — i.e. it is a *static CFG edge*, such
    /// as the not-taken successor of a conditional branch. CFI promises
    /// exactly CFG-level integrity (paper §II-A): landing on a real-but-
    /// wrong successor executes authentic code on an authentic edge and
    /// is outside the detector's contract, so for surviving runs we
    /// independently re-verify that the edge decrypts and MACs cleanly.
    #[test]
    fn random_pc_hijack_is_contained(target_word in 0usize..200, after in 1usize..4) {
        let img = image();
        let k = keys();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        let target_word = target_word % img.ctext.len();
        let target = img.text_base + 4 * target_word as u32;
        let mut m = SofiaMachine::new(&img, &k);
        for _ in 0..after {
            if m.is_halted() { break; }
            let _ = m.step_block().unwrap();
        }
        let mut forged_edge = None;
        if !m.is_halted() {
            m.hijack_next_target(target);
            forged_edge = Some((m.prev_pc(), target));
        }
        match m.run(50_000_000).unwrap() {
            RunOutcome::ViolationStop(_) => {} // detected: the common case
            RunOutcome::Halted => {
                let honest = {
                    let out = &m.mem().mmio.out_words;
                    expected.starts_with(out.as_slice()) || out == &expected
                };
                if !honest {
                    // Survival with divergent output is only legitimate
                    // if the forged edge itself verifies under the real
                    // keys — check it out-of-band through the fetch unit.
                    let (prev_pc, target) = forged_edge.expect("hijack happened");
                    let ks = k.expand();
                    let verdict = sofia_core::fetch::fetch_block(
                        &mut |addr: u32| {
                            img.ctext
                                .get(((addr - img.text_base) / 4) as usize)
                                .copied()
                        },
                        &ks,
                        img.nonce,
                        &img.format,
                        img.text_base,
                        img.ctext.len() as u32,
                        target,
                        prev_pc,
                        true,
                    );
                    prop_assert!(
                        verdict.is_ok(),
                        "undetected hijack over an unsealed edge {:#x} -> {:#x}: {:?}",
                        prev_pc, target, verdict.unwrap_err()
                    );
                }
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}

#[test]
fn exhaustive_hijack_from_first_block_is_fully_detected() {
    // From a fixed machine state, try EVERY word of the image as a hijack
    // target: the only non-violating target is the legitimate successor.
    let img = image();
    let k = keys();
    let mut undetected = 0u32;
    for w in 0..img.ctext.len() {
        let mut m = SofiaMachine::new(&img, &k);
        let _ = m.step_block().unwrap();
        let legit = m.next_target();
        let target = img.text_base + 4 * w as u32;
        if target == legit {
            continue;
        }
        m.hijack_next_target(target);
        match m.step_block().unwrap().violation {
            Some(_) => {}
            None => undetected += 1,
        }
    }
    assert_eq!(
        undetected, 0,
        "every foreign edge from this state must be detected"
    );
}
