//! Property-based fault injection: random tampering and random hijacks
//! must never yield an undetected malicious effect. This is the
//! probabilistic heart of the paper's claim that SOFIA "prevents the
//! execution of all tampered instructions and instructions resulting
//! from tampered control flow".

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;

fn keys() -> KeySet {
    KeySet::from_seed(0xFA017)
}

fn image() -> SecureImage {
    let w = sofia_workloads::kernels::crc32(48);
    Transformer::new(keys()).transform(&w.module()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-bit flip anywhere in the ciphertext is detected before
    /// the block containing it executes (or the flip is never fetched).
    #[test]
    fn single_bit_flips_never_execute_tampered_code(
        word in 0usize..100,
        bit in 0u32..32,
    ) {
        let img = image();
        let word = word % img.ctext.len();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        let mut m = SofiaMachine::new(&img, &keys());
        m.mem_mut().rom_mut()[word] ^= 1 << bit;
        match m.run(50_000_000).unwrap() {
            RunOutcome::Halted => {
                // The flipped word was never fetched (e.g. a pad in an
                // unvisited path) — output must be untouched.
                prop_assert_eq!(&m.mem().mmio.out_words, &expected);
            }
            RunOutcome::ViolationStop(v) => {
                let is_mac_mismatch = matches!(v, Violation::MacMismatch { .. });
                prop_assert!(is_mac_mismatch, "violation {:?}", v);
                // Nothing after the tampered block may have emitted.
                prop_assert!(m.mem().mmio.out_words.len() <= expected.len());
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Randomly corrupting a whole block (all words) is always detected
    /// if the block is on the executed path.
    #[test]
    fn block_garbage_is_detected(block in 0usize..16, seed in any::<u64>()) {
        let img = image();
        let bw = img.format.block_words();
        let nblocks = img.ctext.len() / bw;
        let block = block % nblocks;
        let mut rng = sofia::crypto::util::SplitMix64::new(seed);
        let mut m = SofiaMachine::new(&img, &keys());
        for w in 0..bw {
            m.mem_mut().rom_mut()[block * bw + w] = rng.next_u64() as u32;
        }
        let outcome = m.run(50_000_000).unwrap();
        prop_assert!(
            matches!(outcome, RunOutcome::Halted | RunOutcome::ViolationStop(_)),
            "unexpected outcome {:?}", outcome
        );
        if block == 0 {
            // The entry block is always executed: must be detected.
            prop_assert!(matches!(outcome, RunOutcome::ViolationStop(_)));
        }
    }

    /// Hijacking the PC to any word in the image never executes foreign
    /// code undetected: either the entry offset is illegal, or the MAC
    /// fails, or (rarely) the target block legitimately accepts the edge
    /// — which can only happen for the attacked block's real predecessor.
    #[test]
    fn random_pc_hijack_is_contained(target_word in 0usize..200, after in 1usize..4) {
        let img = image();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        let target_word = target_word % img.ctext.len();
        let target = img.text_base + 4 * target_word as u32;
        let mut m = SofiaMachine::new(&img, &keys());
        for _ in 0..after {
            if m.is_halted() { break; }
            let _ = m.step_block().unwrap();
        }
        if !m.is_halted() {
            m.hijack_next_target(target);
        }
        match m.run(50_000_000).unwrap() {
            RunOutcome::ViolationStop(_) => {} // detected: the common case
            RunOutcome::Halted => {
                // Execution survived: output must not be *corrupted* into
                // something new — it is either the honest output (the
                // hijack landed on the legitimate next block) or a prefix.
                let out = &m.mem().mmio.out_words;
                prop_assert!(
                    expected.starts_with(out.as_slice()) || out == &expected,
                    "corrupted output {:x?}", out
                );
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}

#[test]
fn exhaustive_hijack_from_first_block_is_fully_detected() {
    // From a fixed machine state, try EVERY word of the image as a hijack
    // target: the only non-violating target is the legitimate successor.
    let img = image();
    let k = keys();
    let mut undetected = 0u32;
    for w in 0..img.ctext.len() {
        let mut m = SofiaMachine::new(&img, &k);
        let _ = m.step_block().unwrap();
        let legit = m.next_target();
        let target = img.text_base + 4 * w as u32;
        if target == legit {
            continue;
        }
        m.hijack_next_target(target);
        match m.step_block().unwrap().violation {
            Some(_) => {}
            None => undetected += 1,
        }
    }
    assert_eq!(
        undetected, 0,
        "every foreign edge from this state must be detected"
    );
}
