//! Property-based fault injection: random tampering and random hijacks
//! must never yield an undetected malicious effect. This is the
//! probabilistic heart of the paper's claim that SOFIA "prevents the
//! execution of all tampered instructions and instructions resulting
//! from tampered control flow".
//!
//! Every tamper scenario runs twice — with the verified-block cache
//! disabled and enabled — and the deterministic tests at the bottom pin
//! the cache's warm-state security contract: a line tampered in ROM
//! after being cached traps at the next miss/refill, a warm line only
//! ever replays *previously verified* plaintext, and a forged edge never
//! hits a cached line because the key includes `prevPC`.

mod common;

use common::{tamper_configs, Backend};
use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;

fn keys() -> KeySet {
    KeySet::from_seed(0xFA017)
}

fn image() -> SecureImage {
    let w = sofia_workloads::kernels::crc32(48);
    Transformer::new(keys()).transform(&w.module()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-bit flip anywhere in the ciphertext is detected before
    /// the block containing it executes (or the flip is never fetched).
    #[test]
    fn single_bit_flips_never_execute_tampered_code(
        word in 0usize..100,
        bit in 0u32..32,
    ) {
        let img = image();
        let word = word % img.ctext.len();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        for (label, config) in tamper_configs() {
            let mut m = SofiaMachine::with_config(&img, &keys(), &config);
            m.mem_mut().rom_mut()[word] ^= 1 << bit;
            match m.run(50_000_000).unwrap() {
                RunOutcome::Halted => {
                    // The flipped word was never fetched (e.g. a pad in
                    // an unvisited path) — output must be untouched.
                    prop_assert_eq!(&m.mem().mmio.out_words, &expected);
                }
                RunOutcome::ViolationStop(v) => {
                    let is_mac_mismatch = matches!(v, Violation::MacMismatch { .. });
                    prop_assert!(is_mac_mismatch, "{}: violation {:?}", label, v);
                    // Nothing after the tampered block may have emitted.
                    prop_assert!(m.mem().mmio.out_words.len() <= expected.len());
                }
                other => prop_assert!(false, "{}: unexpected outcome {:?}", label, other),
            }
        }
    }

    /// Randomly corrupting a whole block (all words) is always detected
    /// if the block is on the executed path.
    #[test]
    fn block_garbage_is_detected(block in 0usize..16, seed in any::<u64>()) {
        let img = image();
        let bw = img.format.block_words();
        let nblocks = img.ctext.len() / bw;
        let block = block % nblocks;
        for (label, config) in tamper_configs() {
            let mut rng = sofia::crypto::util::SplitMix64::new(seed);
            let mut m = SofiaMachine::with_config(&img, &keys(), &config);
            for w in 0..bw {
                m.mem_mut().rom_mut()[block * bw + w] = rng.next_u64() as u32;
            }
            let outcome = m.run(50_000_000).unwrap();
            prop_assert!(
                matches!(outcome, RunOutcome::Halted | RunOutcome::ViolationStop(_)),
                "{}: unexpected outcome {:?}", label, outcome
            );
            if block == 0 {
                // The entry block is always executed: must be detected.
                prop_assert!(matches!(outcome, RunOutcome::ViolationStop(_)));
            }
        }
    }

    /// Hijacking the PC to any word in the image never executes foreign
    /// code undetected: either the entry offset is illegal, or the MAC
    /// fails, or the forged edge `(prevPC → target)` was genuinely
    /// sealed by the transformer — i.e. it is a *static CFG edge*, such
    /// as the not-taken successor of a conditional branch. CFI promises
    /// exactly CFG-level integrity (paper §II-A): landing on a real-but-
    /// wrong successor executes authentic code on an authentic edge and
    /// is outside the detector's contract, so for surviving runs we
    /// independently re-verify that the edge decrypts and MACs cleanly.
    #[test]
    fn random_pc_hijack_is_contained(target_word in 0usize..200, after in 1usize..4) {
        let img = image();
        let k = keys();
        let expected = sofia_workloads::kernels::crc32(48).expected;
        let target_word = target_word % img.ctext.len();
        let target = img.text_base + 4 * target_word as u32;
        for (label, config) in tamper_configs() {
            let mut m = SofiaMachine::with_config(&img, &k, &config);
            for _ in 0..after {
                if m.is_halted() { break; }
                let _ = m.step_block().unwrap();
            }
            let mut forged_edge = None;
            if !m.is_halted() {
                m.hijack_next_target(target);
                forged_edge = Some((m.prev_pc(), target));
            }
            match m.run(50_000_000).unwrap() {
                RunOutcome::ViolationStop(_) => {} // detected: the common case
                RunOutcome::Halted => {
                    let honest = {
                        let out = &m.mem().mmio.out_words;
                        expected.starts_with(out.as_slice()) || out == &expected
                    };
                    if !honest {
                        // Survival with divergent output is only
                        // legitimate if the forged edge itself verifies
                        // under the real keys — check it out-of-band
                        // through the fetch unit.
                        let (prev_pc, target) = forged_edge.expect("hijack happened");
                        let ks = k.expand();
                        let verdict = sofia_core::fetch::fetch_block(
                            &mut |addr: u32| {
                                img.ctext
                                    .get(((addr - img.text_base) / 4) as usize)
                                    .copied()
                            },
                            &ks,
                            img.nonce,
                            &img.format,
                            img.text_base,
                            img.ctext.len() as u32,
                            target,
                            prev_pc,
                            true,
                        );
                        prop_assert!(
                            verdict.is_ok(),
                            "{}: undetected hijack over an unsealed edge {:#x} -> {:#x}: {:?}",
                            label, prev_pc, target, verdict.unwrap_err()
                        );
                    }
                }
                other => prop_assert!(false, "{}: unexpected outcome {:?}", label, other),
            }
        }
    }

    /// The cross-backend fault contract: a random single-bit flip in the
    /// stored image never yields a *silent wrong result* on any backend.
    /// What "never" buys differs per scheme — the point of the matrix:
    ///
    /// * SOFIA: detected before execution, or the flip was never fetched
    ///   (exact output) — pinned more tightly by the sweeps above;
    /// * sponge: the flip desynchronises the chain — garbage decode, a
    ///   trap from a garbled-but-decodable prefix, or a garbage loop.
    ///   A completed run must carry the exact honest output;
    /// * FIPAC: the tampered words *execute* (deferred detection), but a
    ///   run that reaches a justifying check point is flagged there — a
    ///   silent `Halted` is only legitimate with the exact honest output.
    #[test]
    fn bit_flips_never_silently_corrupt_any_backend(
        word in 0usize..100,
        bit in 0u32..32,
        backend_idx in 0usize..3,
    ) {
        let backend = Backend::ALL[backend_idx];
        let w = sofia_workloads::kernels::crc32(16);
        let keys = KeySet::from_seed(0xFA017);
        // Modest fuel: the honest run needs a few thousand slots, and a
        // garbage loop only has to *reach* OutOfFuel, not tour it — the
        // sponge pays one permutation per fetched word, so large budgets
        // turn each diverged case into seconds of host time.
        let run = common::run_backend_with(backend, &w.source, &keys, 2_000_000, &|rom| {
            let idx = word % rom.len();
            rom[idx] ^= 1 << bit;
        });
        if run.arch.outcome == "Halted" && run.arch.violations.is_empty() {
            prop_assert!(
                run.arch.mmio == w.expected,
                "{}: silent corruption: {:?} != {:?}",
                backend.label(), run.arch.mmio, w.expected
            );
        }
        // Everything else — ViolationStop, trap, OutOfFuel (a garbage
        // loop), ResetLoop — is a contained failure, never silent.
    }
}

/// A loop whose body spans several blocks, so a tiny cache keeps
/// inserting and evicting every iteration.
fn multi_block_loop() -> (SecureImage, KeySet) {
    let k = keys();
    let src = "main: li t0, 12
                     li s0, 0
               loop: addi s0, s0, 1
                     addi s0, s0, 2
                     addi s0, s0, 3
                     addi s0, s0, 4
                     addi s0, s0, 5
                     addi s0, s0, 6
                     addi s0, s0, 7
                     subi t0, t0, 1
                     bnez t0, loop
                     li a0, 0xFFFF0000
                     sw s0, 0(a0)
                     halt";
    let img = Transformer::new(k.clone())
        .transform(&asm::parse(src).unwrap())
        .unwrap();
    (img, k)
}

fn block_base(img: &SecureImage, target: u32) -> u32 {
    let bb = img.format.block_bytes();
    img.text_base + ((target - img.text_base) / bb) * bb
}

/// Warm-cache tamper, small cache: a block that was verified and cached,
/// then evicted, then tampered in ROM, must trap at the refill — the
/// cache never extends trust past a line's residency.
#[test]
fn tampered_block_traps_on_the_next_refill_after_eviction() {
    let (img, k) = multi_block_loop();
    let config = SofiaConfig {
        // Direct-mapped single entry: every new block evicts the last,
        // so each loop iteration re-inserts (and re-verifies) its blocks.
        vcache: VCacheConfig::enabled(1, 1),
        ..Default::default()
    };
    let mut m = SofiaMachine::with_config(&img, &k, &config);
    let mut seen = std::collections::HashSet::new();
    let mut last_base = u32::MAX;
    // Step until the next fetch re-enters a block that was cached on an
    // earlier iteration and has since been evicted (the 1-entry cache
    // currently holds the *previous* block, which is a different one).
    let (tamper_base, target) = loop {
        let target = m.next_target();
        let base = block_base(&img, target);
        if seen.contains(&base) && base != last_base && m.vcache_stats().insertions >= 2 {
            break (base, target);
        }
        seen.insert(base);
        last_base = base;
        let _ = m.step_block().unwrap();
        assert!(!m.is_halted(), "loop ended before the cache cycled");
    };
    assert!(m.vcache_stats().evictions >= 1, "cache never evicted");
    // Tamper a word the refill is guaranteed to walk (word 3 is on every
    // entry path of both block kinds).
    let word = ((tamper_base - img.text_base) / 4 + 3) as usize;
    m.mem_mut().rom_mut()[word] ^= 0x10;
    let hits_before = m.stats().vcache_hits;
    let step = m.step_block().unwrap();
    assert!(
        matches!(step.violation, Some(Violation::MacMismatch { .. })),
        "refill of a tampered, previously-cached block must trap (target {target:#x}): {:?}",
        step.violation
    );
    assert_eq!(
        m.stats().vcache_hits,
        hits_before,
        "the tampered refill must not have been served from the cache"
    );
}

/// Warm-cache tamper, large cache: while a tampered block's line stays
/// resident, hits replay the *previously verified* plaintext — so the
/// run either traps at some refill or completes with the untampered
/// program's exact output. Tampered instructions never execute.
#[test]
fn warm_hits_replay_only_previously_verified_plaintext() {
    let w = sofia_workloads::kernels::crc32(48);
    let k = keys();
    let img = Transformer::new(k.clone()).transform(&w.module()).unwrap();
    for word in (0..img.ctext.len()).step_by(7) {
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(256, 8),
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&img, &k, &config);
        for _ in 0..40 {
            if m.is_halted() {
                break;
            }
            let _ = m.step_block().unwrap();
        }
        if m.is_halted() {
            continue;
        }
        m.mem_mut().rom_mut()[word] ^= 1 << (word % 32);
        match m.run(50_000_000).unwrap() {
            // A refill saw the tampered ciphertext: detected.
            RunOutcome::ViolationStop(Violation::MacMismatch { .. }) => {}
            // Every remaining fetch hit (or never touched the tampered
            // word): the output must be the *untampered* golden result.
            RunOutcome::Halted => {
                assert_eq!(
                    m.mem().mmio.out_words,
                    w.expected,
                    "word {word}: stale-but-verified plaintext diverged"
                );
            }
            other => panic!("word {word}: unexpected outcome {other:?}"),
        }
    }
}

/// A forged edge must never hit a cached line: the key includes
/// `prevPC`, so reaching a cached block over the wrong edge misses,
/// refills through the MAC and traps.
#[test]
fn forged_edge_never_hits_a_cached_line() {
    let (img, k) = multi_block_loop();
    let config = SofiaConfig {
        vcache: VCacheConfig::enabled(64, 4),
        ..Default::default()
    };
    let mut m = SofiaMachine::with_config(&img, &k, &config);
    // Warm: collect the sealed edges actually travelled and find one
    // that recurs (i.e. is cached and hitting).
    let mut edges = std::collections::HashMap::new();
    let mut hot = None;
    for _ in 0..12 {
        let e = (m.prev_pc(), m.next_target());
        *edges.entry(e).or_insert(0u32) += 1;
        if edges[&e] >= 2 {
            hot = Some(e);
            break;
        }
        let _ = m.step_block().unwrap();
        assert!(!m.is_halted());
    }
    let (hot_prev, hot_target) = hot.expect("loop produced a recurring edge");
    // Advance until the hardware would present a different prevPC, then
    // force the cached target — a forged edge onto a hot cached line.
    // (The first advance fetches the recurring edge again: a hit.)
    while m.prev_pc() == hot_prev || edges.contains_key(&(m.prev_pc(), hot_target)) {
        let _ = m.step_block().unwrap();
        assert!(!m.is_halted());
    }
    assert!(m.stats().vcache_hits > 0, "the hot edge never hit");
    let hits_before = m.stats().vcache_hits;
    m.hijack_next_target(hot_target);
    let step = m.step_block().unwrap();
    assert!(
        matches!(step.violation, Some(Violation::MacMismatch { .. })),
        "forged edge ({:#x} -> {hot_target:#x}) must miss and fail the MAC: {:?}",
        m.prev_pc(),
        step.violation
    );
    assert_eq!(
        m.stats().vcache_hits,
        hits_before,
        "forged edge was served from the cache"
    );
}

#[test]
fn exhaustive_hijack_from_first_block_is_fully_detected() {
    // From a fixed machine state, try EVERY word of the image as a hijack
    // target: the only non-violating target is the legitimate successor.
    let img = image();
    let k = keys();
    let mut undetected = 0u32;
    for w in 0..img.ctext.len() {
        let mut m = SofiaMachine::new(&img, &k);
        let _ = m.step_block().unwrap();
        let legit = m.next_target();
        let target = img.text_base + 4 * w as u32;
        if target == legit {
            continue;
        }
        m.hijack_next_target(target);
        match m.step_block().unwrap().violation {
            Some(_) => {}
            None => undetected += 1,
        }
    }
    assert_eq!(
        undetected, 0,
        "every foreign edge from this state must be detected"
    );
}

#[test]
fn exhaustive_hijack_with_warm_vcache_is_fully_contained() {
    // The same exhaustive sweep, but from a deep execution state with a
    // warm verified-block cache: a hijack target that goes undetected
    // must be a genuinely sealed CFG edge (it re-verifies out-of-band
    // under the real keys) — never a forged edge served from the cache.
    let img = image();
    let k = keys();
    let ks = k.expand();
    for w in 0..img.ctext.len() {
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&img, &k, &config);
        for _ in 0..8 {
            if m.is_halted() {
                break;
            }
            let _ = m.step_block().unwrap();
        }
        if m.is_halted() {
            continue;
        }
        let legit = m.next_target();
        let target = img.text_base + 4 * w as u32;
        if target == legit {
            continue;
        }
        let prev = m.prev_pc();
        m.hijack_next_target(target);
        if m.step_block().unwrap().violation.is_none() {
            let verdict = sofia_core::fetch::fetch_block(
                &mut |addr: u32| {
                    img.ctext
                        .get(((addr - img.text_base) / 4) as usize)
                        .copied()
                },
                &ks,
                img.nonce,
                &img.format,
                img.text_base,
                img.ctext.len() as u32,
                target,
                prev,
                true,
            );
            assert!(
                verdict.is_ok(),
                "warm cache let an unsealed edge {prev:#x} -> {target:#x} through: {:?}",
                verdict.unwrap_err()
            );
        }
    }
}
