//! Differential fuzzing: random (terminating) programs must behave
//! identically on the vanilla and the SOFIA machine. This checks the
//! *transparency* of the whole security pipeline — lowering, packing,
//! mux trees, sealing, and the block-structured fetch unit may cost
//! cycles but must never change architectural results.
//!
//! The program generator lives in `sofia_workloads::gen::random_program`
//! so the same corpus drives the verified-block-cache differential suite
//! (`vcache_differential.rs`); any divergence replays from its seed.

mod common;

use common::Backend;
use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;
use sofia_workloads::gen::random_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vanilla and SOFIA — cached and uncached — agree on every
    /// observable output of every generated program: the security
    /// pipeline is transparent, and so is the verified-block cache.
    #[test]
    fn sofia_is_architecturally_transparent(seed in any::<u64>()) {
        let src = random_program(seed);
        let module = asm::parse(&src).expect("generated program parses");
        let plain = asm::assemble(&src).expect("generated program assembles");

        let mut vm = VanillaMachine::new(&plain);
        let v = vm.run(5_000_000).expect("vanilla trap");
        prop_assert!(v.is_halted(), "vanilla did not halt");

        let keys = KeySet::from_seed(0xD1FF);
        let image = Transformer::new(keys.clone())
            .transform(&module)
            .expect("generated program transforms");
        let mut sm = SofiaMachine::new(&image, &keys);
        let s = sm.run(20_000_000).expect("sofia trap");
        prop_assert!(s.is_halted(), "sofia outcome {:?}", s);

        prop_assert_eq!(&sm.mem().mmio.out_words, &vm.mem().mmio.out_words);
        prop_assert_eq!(sm.violations().len(), 0);
        // Cost invariant: protection is never free.
        prop_assert!(sm.stats().exec.cycles > vm.stats().cycles);

        // The verified-block cache changes none of the above, and never
        // costs cycles.
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        };
        let mut cm = SofiaMachine::with_config(&image, &keys, &config);
        let c = cm.run(20_000_000).expect("cached sofia trap");
        prop_assert!(c.is_halted(), "cached sofia outcome {:?}", c);
        prop_assert_eq!(&cm.mem().mmio.out_words, &vm.mem().mmio.out_words);
        prop_assert_eq!(cm.stats().exec.instret, sm.stats().exec.instret);
        prop_assert!(cm.stats().exec.cycles <= sm.stats().exec.cycles);
        prop_assert!(cm.stats().exec.cycles > vm.stats().cycles);
    }

    /// Every backend — SOFIA, sponge-CFP, FIPAC — is architecturally
    /// transparent on the same generated corpus, and their overheads
    /// order as the hardware model predicts: the sponge's serial permute
    /// is the most expensive fetch path, FIPAC's off-critical-path check
    /// the cheapest protected one.
    #[test]
    fn all_backends_are_architecturally_transparent(seed in any::<u64>()) {
        let src = random_program(seed);
        let plain = asm::assemble(&src).expect("generated program assembles");
        let mut vm = VanillaMachine::new(&plain);
        let v = vm.run(5_000_000).expect("vanilla trap");
        prop_assert!(v.is_halted(), "vanilla did not halt");

        let keys = KeySet::from_seed(0xD1FF);
        let mut cycles = std::collections::HashMap::new();
        for backend in Backend::ALL {
            let run = common::run_backend(backend, &src, &keys, 20_000_000);
            prop_assert!(
                run.arch.outcome == "Halted",
                "{}: outcome {}", backend.label(), &run.arch.outcome
            );
            prop_assert!(
                run.arch.mmio == vm.mem().mmio.out_words,
                "{}: output diverged", backend.label()
            );
            prop_assert!(
                run.arch.violations.is_empty(),
                "{}: spurious violations {:?}", backend.label(), run.arch.violations
            );
            // Protection is never free...
            prop_assert!(run.cycles > vm.stats().cycles, "{}", backend.label());
            cycles.insert(backend.label(), run.cycles);
        }
        // ...and the sponge's serial chain costs more than FIPAC's
        // plaintext fetch on every program.
        prop_assert!(cycles["fipac"] < cycles["sponge"]);
    }

    /// The differential corpus round-trips through the disassembler: the
    /// relabeling reassembler (`disasm::reassemble`) reproduces every
    /// generated program's binary bit-for-bit, so the corpus seeding this
    /// suite also seeds the isa round-trip suite
    /// (`crates/isa/tests/roundtrip.rs`) — one loop, checked from both
    /// ends.
    #[test]
    fn differential_corpus_roundtrips_through_the_disassembler(seed in any::<u64>()) {
        use sofia::isa::disasm;
        let src = random_program(seed);
        let a = asm::assemble(&src).expect("generated program assembles");
        let rsrc = disasm::reassemble(&a).expect("assembler output reassembles");
        let b = asm::assemble(&rsrc).expect("reassembled source assembles");
        prop_assert!(a.words == b.words, "text diverged");
        prop_assert!(a.data == b.data, "data diverged");
        prop_assert!(a.entry == b.entry, "entry diverged");
    }
}
