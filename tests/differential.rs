//! Differential fuzzing: random (terminating) programs must behave
//! identically on the vanilla and the SOFIA machine. This checks the
//! *transparency* of the whole security pipeline — lowering, packing,
//! mux trees, sealing, and the block-structured fetch unit may cost
//! cycles but must never change architectural results.
//!
//! The program generator lives in `sofia_workloads::gen::random_program`
//! so the same corpus drives the verified-block-cache differential suite
//! (`vcache_differential.rs`); any divergence replays from its seed.

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;
use sofia_workloads::gen::random_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vanilla and SOFIA — cached and uncached — agree on every
    /// observable output of every generated program: the security
    /// pipeline is transparent, and so is the verified-block cache.
    #[test]
    fn sofia_is_architecturally_transparent(seed in any::<u64>()) {
        let src = random_program(seed);
        let module = asm::parse(&src).expect("generated program parses");
        let plain = asm::assemble(&src).expect("generated program assembles");

        let mut vm = VanillaMachine::new(&plain);
        let v = vm.run(5_000_000).expect("vanilla trap");
        prop_assert!(v.is_halted(), "vanilla did not halt");

        let keys = KeySet::from_seed(0xD1FF);
        let image = Transformer::new(keys.clone())
            .transform(&module)
            .expect("generated program transforms");
        let mut sm = SofiaMachine::new(&image, &keys);
        let s = sm.run(20_000_000).expect("sofia trap");
        prop_assert!(s.is_halted(), "sofia outcome {:?}", s);

        prop_assert_eq!(&sm.mem().mmio.out_words, &vm.mem().mmio.out_words);
        prop_assert_eq!(sm.violations().len(), 0);
        // Cost invariant: protection is never free.
        prop_assert!(sm.stats().exec.cycles > vm.stats().cycles);

        // The verified-block cache changes none of the above, and never
        // costs cycles.
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        };
        let mut cm = SofiaMachine::with_config(&image, &keys, &config);
        let c = cm.run(20_000_000).expect("cached sofia trap");
        prop_assert!(c.is_halted(), "cached sofia outcome {:?}", c);
        prop_assert_eq!(&cm.mem().mmio.out_words, &vm.mem().mmio.out_words);
        prop_assert_eq!(cm.stats().exec.instret, sm.stats().exec.instret);
        prop_assert!(cm.stats().exec.cycles <= sm.stats().exec.cycles);
        prop_assert!(cm.stats().exec.cycles > vm.stats().cycles);
    }
}
