//! Differential fuzzing: random (terminating) programs must behave
//! identically on the vanilla and the SOFIA machine. This checks the
//! *transparency* of the whole security pipeline — lowering, packing,
//! mux trees, sealing, and the block-structured fetch unit may cost
//! cycles but must never change architectural results.

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;

/// A tiny terminating program generator: a prologue seeds registers, a
/// bounded loop applies random ALU operations (with optional inner
/// branches and a helper call), and the epilogue emits two registers.
#[derive(Debug, Clone)]
struct RandomProgram {
    seed_a: u32,
    seed_b: u32,
    iterations: u8,
    body: Vec<Op>,
    call_helper: bool,
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Xor,
    And,
    Or,
    Mul,
    Sll(u8),
    Srl(u8),
    SkipIfEven, // conditional branch inside the loop body
    StoreLoad,  // round-trip through memory
}

impl RandomProgram {
    fn source(&self) -> String {
        let mut body = String::new();
        for (i, op) in self.body.iter().enumerate() {
            match op {
                Op::Add => body.push_str("    add s0, s0, s1\n"),
                Op::Sub => body.push_str("    sub s1, s1, s0\n"),
                Op::Xor => body.push_str("    xor s0, s0, s1\n"),
                Op::And => body.push_str("    and s1, s1, s0\n    ori s1, s1, 3\n"),
                Op::Or => body.push_str("    or s0, s0, s1\n"),
                Op::Mul => body.push_str("    mul s0, s0, s1\n    ori s0, s0, 1\n"),
                Op::Sll(n) => {
                    body.push_str(&format!("    sll s1, s1, {}\n    ori s1, s1, 5\n", n % 8))
                }
                Op::Srl(n) => body.push_str(&format!("    srl s0, s0, {}\n", n % 8)),
                Op::SkipIfEven => body.push_str(&format!(
                    "    andi t0, s0, 1\n    beqz t0, skip_{i}\n    addi s1, s1, 17\nskip_{i}:\n"
                )),
                Op::StoreLoad => body.push_str(
                    "    la t1, scratch\n    sw s0, 0(t1)\n    lw t2, 0(t1)\n    add s1, s1, t2\n",
                ),
            }
        }
        let helper_call = if self.call_helper {
            "    mv a0, s0\n    jal mixer\n    mv s0, v0\n"
        } else {
            ""
        };
        format!(
            ".equ OUT, 0xFFFF0000
.text
.global main
main:
    li   s0, {}
    li   s1, {}
    li   s2, {}
loop:
    beqz s2, done
{body}{helper_call}    subi s2, s2, 1
    b    loop
done:
    li   t3, OUT
    sw   s0, 0(t3)
    sw   s1, 0(t3)
    halt
mixer:
    xor  v0, a0, a0
    add  v0, v0, a0
    addi v0, v0, 13
    ret

.data
scratch: .space 4
",
            self.seed_a, self.seed_b, self.iterations,
        )
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Xor),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Mul),
        any::<u8>().prop_map(Op::Sll),
        any::<u8>().prop_map(Op::Srl),
        Just(Op::SkipIfEven),
        Just(Op::StoreLoad),
    ]
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        0u32..10_000,
        0u32..10_000,
        1u8..20,
        proptest::collection::vec(op_strategy(), 1..12),
        any::<bool>(),
    )
        .prop_map(
            |(seed_a, seed_b, iterations, body, call_helper)| RandomProgram {
                seed_a,
                seed_b,
                iterations,
                body,
                call_helper,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vanilla and SOFIA agree on every observable output of every
    /// generated program — the security pipeline is transparent.
    #[test]
    fn sofia_is_architecturally_transparent(prog in program_strategy()) {
        let src = prog.source();
        let module = asm::parse(&src).expect("generated program parses");
        let plain = asm::assemble(&src).expect("generated program assembles");

        let mut vm = VanillaMachine::new(&plain);
        let v = vm.run(5_000_000).expect("vanilla trap");
        prop_assert!(v.is_halted(), "vanilla did not halt");

        let keys = KeySet::from_seed(0xD1FF);
        let image = Transformer::new(keys.clone())
            .transform(&module)
            .expect("generated program transforms");
        let mut sm = SofiaMachine::new(&image, &keys);
        let s = sm.run(20_000_000).expect("sofia trap");
        prop_assert!(s.is_halted(), "sofia outcome {:?}", s);

        prop_assert_eq!(&sm.mem().mmio.out_words, &vm.mem().mmio.out_words);
        prop_assert_eq!(sm.violations().len(), 0);
        // Cost invariant: protection is never free.
        prop_assert!(sm.stats().exec.cycles > vm.stats().cycles);
    }
}
