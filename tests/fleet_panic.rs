//! The panic-isolation regression suite.
//!
//! Before the fix, a panic inside one worker's quantum poisoned the
//! pool's shared mutexes and every other worker — plus any later batch
//! on the same `Fleet` — died via `.expect("… poisoned")`. These tests
//! pin the repaired contract: a deliberately panicking job
//! ([`Sabotage::PanicInWorker`]) degrades to a typed
//! [`JobOutcome::WorkerPanic`] record, its tenant is contained like a
//! violator, bystander tenants' records stay **bit-identical** with or
//! without the saboteur aboard, and the fleet serves the next batch —
//! in both pool modes, at several worker counts, and under the async
//! driver.

use sofia::crypto::KeySet;
use sofia::fleet::{
    AsyncConfig, AsyncFleet, ClassId, Fleet, FleetConfig, JobOutcome, JobRecord, JobSpec, PoolMode,
    Sabotage, SchedMode, TenantId, TenantState,
};

const POOLS: [PoolMode; 2] = [PoolMode::SharedQueue, PoolMode::WorkStealing];

fn product_src(a: u32, b: u32) -> String {
    format!(
        "main: li t0, {a}
               li t1, {b}
               mul t2, t0, t1
               li a0, 0xFFFF0000
               sw t2, 0(a0)
               halt"
    )
}

fn bystander_tenants() -> Vec<(TenantId, KeySet)> {
    (1..=3u32)
        .map(|id| (TenantId(id), KeySet::from_seed(0x1000 + id as u64)))
        .collect()
}

fn bystander_jobs() -> Vec<JobSpec> {
    (1..=3u32)
        .flat_map(|tenant| {
            (0..3u32).map(move |round| {
                JobSpec::new(TenantId(tenant), product_src(tenant, 10 + round), 50_000)
            })
        })
        .collect()
}

/// A comparable digest of everything a record claims about its job.
fn digest(r: &JobRecord) -> (String, Vec<u32>, Vec<String>, u64, u64) {
    (
        format!("{:?}", r.outcome),
        r.out_words.clone(),
        r.violations.iter().map(|v| format!("{v:?}")).collect(),
        r.stats.exec.cycles,
        r.stats.exec.instret,
    )
}

fn run_batch(pool: PoolMode, workers: usize, with_saboteur: bool) -> (Fleet, Vec<JobRecord>) {
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        pool,
        mode: SchedMode::FuelSliced { slice: 300 },
        ..Default::default()
    });
    for (id, keys) in bystander_tenants() {
        fleet.register_tenant(id, keys.clone()).unwrap();
    }
    let mallory = TenantId(66);
    if with_saboteur {
        fleet
            .register_tenant(mallory, KeySet::from_seed(0x666))
            .unwrap();
    }
    for (i, job) in bystander_jobs().into_iter().enumerate() {
        fleet.submit(job).unwrap();
        // Interleave the saboteur's jobs between bystanders so its
        // panics land mid-batch on every pool shape.
        if with_saboteur && i % 4 == 1 {
            fleet
                .submit(
                    JobSpec::new(mallory, product_src(6, 7), 50_000)
                        .with_sabotage(Sabotage::PanicInWorker),
                )
                .unwrap();
        }
    }
    let records = fleet.run_batch();
    (fleet, records)
}

#[test]
fn panicking_job_degrades_to_a_typed_record() {
    for pool in POOLS {
        for workers in [1, 2, 4] {
            let (fleet, records) = run_batch(pool, workers, true);
            let panics: Vec<&JobRecord> = records
                .iter()
                .filter(|r| matches!(r.outcome, JobOutcome::WorkerPanic(_)))
                .collect();
            assert!(
                !panics.is_empty(),
                "saboteur produced no WorkerPanic under {pool:?}/{workers}"
            );
            for r in &panics {
                assert_eq!(r.tenant, TenantId(66));
                let JobOutcome::WorkerPanic(msg) = &r.outcome else {
                    unreachable!()
                };
                assert!(msg.contains("sabotage"), "lost the panic payload: {msg}");
                // The host fault is not a security verdict…
                assert!(r.violations.is_empty());
            }
            // …but the tenant is still contained, like a violator.
            assert_eq!(
                fleet.tenant_state(TenantId(66)),
                Some(TenantState::Suspended),
                "{pool:?}/{workers}"
            );
            assert_eq!(
                fleet.stats().tenants[&66].worker_panics,
                panics.len() as u64
            );
        }
    }
}

#[test]
fn bystanders_are_bit_identical_with_and_without_the_saboteur() {
    for pool in POOLS {
        for workers in [1, 2, 4] {
            let (_, with) = run_batch(pool, workers, true);
            let (_, without) = run_batch(pool, workers, false);
            let bystanders: Vec<_> = with
                .iter()
                .filter(|r| r.tenant != TenantId(66))
                .map(digest)
                .collect();
            let reference: Vec<_> = without.iter().map(digest).collect();
            assert_eq!(
                bystanders, reference,
                "saboteur perturbed bystanders under {pool:?}/{workers}"
            );
        }
    }
}

#[test]
fn fleet_serves_the_next_batch_after_a_panic() {
    for pool in POOLS {
        let (mut fleet, first) = run_batch(pool, 4, true);
        assert!(first
            .iter()
            .any(|r| matches!(r.outcome, JobOutcome::WorkerPanic(_))));
        // The poisoned-mutex cascade used to kill exactly this call.
        for job in bystander_jobs() {
            fleet.submit(job).unwrap();
        }
        let second = fleet.run_batch();
        assert_eq!(second.len(), bystander_jobs().len());
        assert!(
            second.iter().all(|r| r.outcome.is_halted()),
            "second batch degraded under {pool:?}"
        );
        // The contained saboteur stays out until an operator releases it.
        assert!(fleet
            .submit(JobSpec::new(TenantId(66), product_src(1, 1), 1_000))
            .is_err());
        assert!(fleet.release(TenantId(66)));
    }
}

#[test]
fn async_driver_contains_a_panicking_tenant() {
    for threads in [1, 4] {
        let mut fleet = AsyncFleet::new(AsyncConfig {
            threads,
            workers: 2,
            ..Default::default()
        });
        for (id, keys) in bystander_tenants() {
            fleet.register_tenant(id, keys.clone(), ClassId(0)).unwrap();
        }
        let mallory = TenantId(66);
        fleet
            .register_tenant(mallory, KeySet::from_seed(0x666), ClassId(0))
            .unwrap();
        for job in bystander_jobs() {
            fleet.submit(job).unwrap();
        }
        fleet
            .submit(
                JobSpec::new(mallory, product_src(6, 7), 50_000)
                    .with_sabotage(Sabotage::PanicInWorker),
            )
            .unwrap();
        // A second saboteur job, queued behind the first: admitted jobs
        // still run (each panic is contained individually), and only
        // *future* submissions are refused.
        fleet
            .submit(
                JobSpec::new(mallory, product_src(7, 8), 50_000)
                    .with_sabotage(Sabotage::PanicInWorker),
            )
            .unwrap();
        fleet.run_until_idle();
        let records = fleet.drain_finished();
        let panics = records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::WorkerPanic(_)))
            .count();
        assert_eq!(panics, 2, "threads={threads}");
        assert_eq!(fleet.tenant_state(mallory), Some(TenantState::Suspended));
        assert_eq!(
            fleet
                .submit(JobSpec::new(mallory, product_src(1, 1), 1_000))
                .unwrap_err(),
            sofia::fleet::AdmitError::Quarantined(mallory)
        );
        // Every bystander job still halted cleanly.
        let clean = records
            .iter()
            .filter(|r| r.tenant != mallory && r.outcome.is_halted())
            .count();
        assert_eq!(clean, bystander_jobs().len(), "threads={threads}");
        // The driver keeps serving after the panic.
        fleet
            .submit(JobSpec::new(TenantId(1), product_src(9, 9), 50_000))
            .unwrap();
        fleet.run_until_idle();
        let more = fleet.drain_finished();
        assert_eq!(more.len(), 1);
        assert!(more[0].outcome.is_halted());
    }
}
