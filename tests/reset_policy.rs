//! Reset-policy coverage through the public facade: the paper's reboot
//! behaviour ("the processor should be able to reboot reliably fast")
//! must be bounded — a persistently tampered image terminates in a
//! reported reset loop instead of spinning forever.

use sofia::core::machine::{RunOutcome, SofiaMachine};
use sofia::core::{ResetPolicy, SofiaConfig, Violation};
use sofia::prelude::*;

fn build(max_resets: u32) -> (SofiaMachine, KeySet) {
    let keys = KeySet::from_seed(0x5E5E7);
    let image = Transformer::new(keys.clone())
        .transform(&asm::parse("main: li t0, 1\n li a0, 0xFFFF0000\n sw t0, 0(a0)\n halt").unwrap())
        .unwrap();
    let config = SofiaConfig {
        reset_policy: ResetPolicy::Reboot { max_resets },
        ..Default::default()
    };
    (SofiaMachine::with_config(&image, &keys, &config), keys)
}

#[test]
fn persistent_tamper_terminates_in_a_reset_loop() {
    let (mut m, _) = build(5);
    // Corrupt the entry block in ROM: every reboot re-fetches the same
    // tampered ciphertext, so every boot attempt fails.
    m.mem_mut().rom_mut()[0] ^= 0xDEAD;
    let outcome = m.run(u64::MAX).unwrap();
    // Terminates with exactly the configured reset budget spent — it
    // does not spin, even with unbounded fuel.
    assert_eq!(outcome, RunOutcome::ResetLoop { resets: 5 });
    assert_eq!(m.stats().resets, 5);
    // One violation per boot attempt: the initial one plus one per reboot.
    assert_eq!(m.stats().violations, 6);
    assert!(m
        .violations()
        .iter()
        .all(|v| matches!(v, Violation::MacMismatch { .. })));
    // The tampered program never reached its store.
    assert!(m.mem().mmio.out_words.is_empty());
}

#[test]
fn reboot_policy_is_transparent_for_honest_images() {
    let (mut m, _) = build(5);
    let outcome = m.run(100_000).unwrap();
    assert!(outcome.is_halted());
    assert_eq!(m.stats().resets, 0);
    assert_eq!(m.mem().mmio.out_words, vec![1]);
}

#[test]
fn zero_reset_budget_abandons_on_first_violation() {
    let (mut m, _) = build(0);
    m.mem_mut().rom_mut()[0] ^= 1;
    let outcome = m.run(u64::MAX).unwrap();
    assert_eq!(outcome, RunOutcome::ResetLoop { resets: 0 });
    assert_eq!(m.stats().violations, 1);
}
