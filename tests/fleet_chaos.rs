//! The chaos-layer suite.
//!
//! Pins the three load-bearing claims of `sofia_fleet::chaos` +
//! `sofia_fleet::resilience`:
//!
//! 1. **`ChaosPlan::none` is bit-for-bit invisible.** A fleet with the
//!    chaos seams compiled in, the resilience machinery armed (the
//!    [`ResilienceConfig::standard`] preset) and zero faults drawn must
//!    produce the *identical* full record surface — outcomes, MMIO,
//!    cycles, ticks, sojourns — as a fleet that never heard of either
//!    module, at every host thread count.
//! 2. **Every fault is exactly one typed event.** Injected strikes
//!    never panic and never vanish: the `FaultInjected` event count,
//!    the per-seam counters and their total all agree, for driver-drawn
//!    and harness-drawn seams alike.
//! 3. **Degradation is graceful.** A 100 % seal-fault storm fails only
//!    *cold* transforms; tenants whose images the seal cache already
//!    holds keep being served at full fidelity, and deadline sheds
//!    produce a typed `DeadlineMissed` record instead of a hang.

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::fleet::{
    AsyncConfig, AsyncFleet, ChaosPlan, ClassId, FaultRate, JobOutcome, JobRecord, JobSpec,
    ResilienceConfig, ResilienceEvent, SchedMode, Seam, TenantId,
};

fn loop_job(n: u32) -> String {
    format!(
        "main: li t0, {n}
               li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt"
    )
}

fn tenants(n: u32) -> Vec<(TenantId, KeySet)> {
    (1..=n)
        .map(|id| (TenantId(id), KeySet::from_seed(0xC4A0_0000 + id as u64)))
        .collect()
}

/// The full deterministic surface of a record, scheduling included —
/// same recipe the async determinism suite pins.
fn full_digest(r: &JobRecord) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{:?}",
        r.job,
        r.tenant,
        r.outcome,
        r.out_words,
        r.stats.exec.cycles,
        r.stats.exec.instret,
        r.arrival_tick,
        r.start_tick,
        r.end_tick,
        r.sojourn_cycles,
        r.slice_cycles,
    )
}

/// Builds a fleet, runs `jobs` to idle, returns (fleet, records sorted
/// by job id).
fn drive(
    threads: usize,
    chaos: ChaosPlan,
    resilience: ResilienceConfig,
    tenant_set: &[(TenantId, KeySet)],
    jobs: &[JobSpec],
) -> (AsyncFleet, Vec<JobRecord>) {
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads,
        workers: 3,
        mode: SchedMode::FuelSliced { slice: 120 },
        park_after: Some(2),
        chaos,
        resilience,
        ..Default::default()
    });
    for (id, keys) in tenant_set {
        fleet
            .register_tenant(*id, keys.clone(), ClassId(0))
            .unwrap();
    }
    for job in jobs {
        fleet.submit(job.clone()).unwrap();
    }
    fleet.run_until_idle();
    let mut records = fleet.drain_finished();
    records.sort_by_key(|r| r.job);
    (fleet, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Claim 1: across generated workloads and 1/2/4/8 host threads, a
    /// fleet with `ChaosPlan::none` installed and the full resilience
    /// preset armed is indistinguishable — full record surface and
    /// stats — from the machinery-free default fleet. Idle survival
    /// gear must cost zero bits.
    #[test]
    fn chaos_none_is_bit_for_bit_invisible(
        lengths in proptest::collection::vec(3u32..60, 3..7),
    ) {
        let tenant_set = tenants(3);
        let jobs: Vec<JobSpec> = lengths
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                JobSpec::new(TenantId(1 + (i as u32 % 3)), loop_job(n), 100_000)
            })
            .collect();
        let (base_fleet, baseline) = drive(
            1,
            ChaosPlan::none(),
            ResilienceConfig::default(),
            &tenant_set,
            &jobs,
        );
        let reference: Vec<String> = baseline.iter().map(full_digest).collect();
        for threads in [1usize, 2, 4, 8] {
            let (fleet, records) = drive(
                threads,
                ChaosPlan::none(),
                ResilienceConfig::standard(),
                &tenant_set,
                &jobs,
            );
            let got: Vec<String> = records.iter().map(full_digest).collect();
            prop_assert_eq!(&got, &reference);
            prop_assert_eq!(fleet.stats(), base_fleet.stats());
            // No fault was drawn, so the whole resilience surface is zero.
            prop_assert_eq!(fleet.resilience_stats(), Default::default());
        }
    }
}

/// Claim 2: under a hot uniform plan every strike lands as exactly one
/// typed `FaultInjected` event — the event count, the per-seam
/// counters and the total all agree — and every submitted job still
/// settles into exactly one record. No panics, no silent losses.
#[test]
fn every_fault_is_exactly_one_typed_event() {
    let tenant_set = tenants(6);
    let jobs: Vec<JobSpec> = (0..18)
        .map(|i| {
            JobSpec::new(
                TenantId(1 + (i as u32 % 6)),
                loop_job(20 + 7 * (i as u32 % 5)),
                100_000,
            )
        })
        .collect();
    let (mut fleet, records) = drive(
        2,
        ChaosPlan::uniform(0xC0FF_EE00, FaultRate::ppm(60_000)),
        ResilienceConfig::standard(),
        &tenant_set,
        &jobs,
    );
    let res = fleet.resilience_stats();
    assert!(res.faults_injected > 0, "hot plan drew no faults");
    let events = fleet.drain_resilience_events();
    let injected = events
        .iter()
        .filter(|e| matches!(e, ResilienceEvent::FaultInjected { .. }))
        .count() as u64;
    assert_eq!(injected, res.faults_injected, "fault without a typed event");
    assert_eq!(
        res.seal_faults
            + res.snapshot_corruptions
            + res.worker_stalls
            + res.worker_panics_injected
            + res.checkpoint_truncations
            + res.storm_bursts,
        res.faults_injected,
        "per-seam counters disagree with the total"
    );
    // Conservation: every submitted job settled into exactly one
    // record (retries re-queue the job, they never fork or drop it).
    assert_eq!(records.len(), jobs.len());
}

/// Harness-drawn seams (checkpoint truncation, quarantine storms) are
/// injected outside the driver but share the same typed ledger.
#[test]
fn harness_faults_share_the_ledger() {
    let tenant_set = tenants(1);
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 1,
        workers: 1,
        ..Default::default()
    });
    for (id, keys) in &tenant_set {
        fleet
            .register_tenant(*id, keys.clone(), ClassId(0))
            .unwrap();
    }
    fleet.note_harness_fault(Seam::Checkpoint, None, None);
    fleet.note_harness_fault(Seam::Storm, None, Some(TenantId(1)));
    let res = fleet.resilience_stats();
    assert_eq!(res.checkpoint_truncations, 1);
    assert_eq!(res.storm_bursts, 1);
    assert_eq!(res.faults_injected, 2);
    let events = fleet.drain_resilience_events();
    assert_eq!(events.len(), 2);
    assert!(matches!(
        events[0],
        ResilienceEvent::FaultInjected {
            seam: Seam::Checkpoint,
            ..
        }
    ));
    assert!(matches!(
        events[1],
        ResilienceEvent::FaultInjected {
            seam: Seam::Storm,
            tenant: Some(TenantId(1)),
            ..
        }
    ));
}

/// Claim 3a: a 100 % seal-fault storm only starves *cold* transforms.
/// Tenants whose images the seal cache already holds are served
/// bit-identically to the calm phase; the one cold tenant fails with a
/// typed `SealFailed`, not a panic.
#[test]
fn total_seal_storm_still_serves_warm_tenants() {
    let tenant_set = tenants(4);
    let warm_src = loop_job(12);
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 2,
        workers: 2,
        mode: SchedMode::FuelSliced { slice: 120 },
        ..Default::default()
    });
    for (id, keys) in &tenant_set {
        fleet
            .register_tenant(*id, keys.clone(), ClassId(0))
            .unwrap();
    }
    // Calm phase: warm tenants 1–3 (their sealed images enter the cache).
    for id in 1..=3u32 {
        fleet
            .submit(JobSpec::new(TenantId(id), warm_src.clone(), 100_000))
            .unwrap();
    }
    fleet.run_until_idle();
    let calm: Vec<String> = {
        let mut r = fleet.drain_finished();
        r.sort_by_key(|rec| rec.tenant);
        r.iter()
            .map(|rec| format!("{:?}|{:?}|{:?}", rec.tenant, rec.outcome, rec.out_words))
            .collect()
    };
    assert!(
        calm.iter().all(|d| d.contains("Halted")),
        "calm phase failed"
    );

    // Storm phase: every fresh transform now fails its seal.
    fleet.set_chaos_plan(ChaosPlan {
        seal_fault: FaultRate::ALWAYS,
        ..ChaosPlan::none()
    });
    for id in 1..=3u32 {
        fleet
            .submit(JobSpec::new(TenantId(id), warm_src.clone(), 100_000))
            .unwrap();
    }
    // Tenant 4 never sealed anything: its transform is cold and dies.
    fleet
        .submit(JobSpec::new(TenantId(4), loop_job(9), 100_000))
        .unwrap();
    fleet.run_until_idle();
    let mut storm = fleet.drain_finished();
    storm.sort_by_key(|rec| rec.tenant);
    let (cold, warm): (Vec<_>, Vec<_>) = storm.iter().partition(|rec| rec.tenant == TenantId(4));
    let warm_got: Vec<String> = warm
        .iter()
        .map(|rec| format!("{:?}|{:?}|{:?}", rec.tenant, rec.outcome, rec.out_words))
        .collect();
    assert_eq!(warm_got, calm, "storm perturbed warm tenants");
    assert_eq!(cold.len(), 1);
    assert!(
        matches!(cold[0].outcome, JobOutcome::SealFailed(_)),
        "cold job under total seal storm must fail typed: {:?}",
        cold[0].outcome
    );
    let res = fleet.resilience_stats();
    assert_eq!(res.seal_faults, 1, "storm must strike the cold job only");
    assert_eq!(res.faults_injected, 1);
}

/// Claim 3b: a queued job that blows its class deadline is shed with a
/// typed `DeadlineMissed` record — it never ran, its tenant is not
/// quarantined, and the shed is mirrored by a `DeadlineShed` event.
#[test]
fn deadline_sheds_are_typed_records_not_hangs() {
    let tenant_set = tenants(1);
    let mut resilience = ResilienceConfig::standard();
    resilience.deadlines.insert(ClassId(0), 1);
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 1,
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 60 },
        resilience,
        ..Default::default()
    });
    for (id, keys) in &tenant_set {
        fleet
            .register_tenant(*id, keys.clone(), ClassId(0))
            .unwrap();
    }
    // One worker, four long jobs: whoever queues behind the head blows
    // the 1-cycle deadline on the first priced tick.
    for _ in 0..4 {
        fleet
            .submit(JobSpec::new(TenantId(1), loop_job(300), 100_000))
            .unwrap();
    }
    fleet.run_until_idle();
    let records = fleet.drain_finished();
    assert_eq!(records.len(), 4, "sheds must still produce records");
    let shed: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::DeadlineMissed { .. }))
        .collect();
    assert!(!shed.is_empty(), "no deadline shed under a 1-cycle SLO");
    let res = fleet.resilience_stats();
    assert_eq!(res.deadline_shed as usize, shed.len());
    let events = fleet.drain_resilience_events();
    let shed_events = events
        .iter()
        .filter(|e| matches!(e, ResilienceEvent::DeadlineShed { .. }))
        .count();
    assert_eq!(shed_events, shed.len(), "shed without a typed event");
    // An SLO miss is an availability decision, not a security verdict.
    assert_eq!(
        fleet.tenant_state(TenantId(1)),
        Some(sofia::fleet::TenantState::Active)
    );
}
