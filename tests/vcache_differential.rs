//! The verified-block cache is architecturally invisible: every
//! workload and every generated program produces identical traps, MMIO
//! output, retired-instruction counts and violation reports whether the
//! cache is off, on (any geometry), or the SI check is ablated — and
//! cold-start tampering is detected identically with and without it.
//!
//! This is the differential engine the tentpole invariant rides on; the
//! warm-cache tamper scenarios live in `fault_injection.rs`.

mod common;

use common::{assert_invisible, assert_invisible_across, config_family, geometries, run_config};
use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::prelude::*;
use sofia_workloads::{gen, suite, Scale};

fn keys() -> KeySet {
    KeySet::from_seed(0x5C_AC4E)
}

/// Every workload in the suite (ADPCM included) runs identically under
/// the whole configuration family.
#[test]
fn workload_suite_is_cache_invariant() {
    let keys = keys();
    let family = config_family();
    for w in suite(Scale::Test) {
        let image = w.secure_image(&keys);
        assert_invisible_across(w.name, &image, &keys, &family);
    }
}

/// The acceptance sweep: 64 generated programs, zero architectural
/// divergence across the configuration family.
#[test]
fn sixty_four_generated_programs_diverge_nowhere() {
    let keys = keys();
    for seed in 0..64u64 {
        let src = gen::random_program(seed);
        assert_invisible(&format!("gen[{seed}]"), &src, &keys);
    }
}

/// Enabling the cache never makes a workload slower, and on loopy
/// workloads it actually hits.
#[test]
fn cache_never_slows_a_workload_down() {
    let keys = keys();
    for w in suite(Scale::Test) {
        let image = w.secure_image(&keys);
        let mut off = SofiaMachine::new(&image, &keys);
        assert!(off.run(common::FUEL).unwrap().is_halted());
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(256, 8),
            ..Default::default()
        };
        let mut on = SofiaMachine::with_config(&image, &keys, &config);
        assert!(on.run(common::FUEL).unwrap().is_halted());
        assert!(
            on.stats().exec.cycles <= off.stats().exec.cycles,
            "{}: cached {} > uncached {}",
            w.name,
            on.stats().exec.cycles,
            off.stats().exec.cycles
        );
        assert_eq!(
            on.stats().vcache_hits + on.stats().vcache_misses,
            off.stats().blocks,
            "{}: every fetch is either a hit or a miss",
            w.name
        );
    }
}

/// Cold-start tampering: with a cold cache, a tampered image produces
/// *bit-identical* architectural results with the cache on and off — a
/// block that never verifies is never cached, so no tamper detection is
/// ever missed through a cold line.
#[test]
fn cold_tamper_detection_is_cache_invariant() {
    let keys = keys();
    let w = sofia_workloads::kernels::crc32(48);
    let image = w.secure_image(&keys);
    let family = config_family();
    for word in (0..image.ctext.len()).step_by(3) {
        let mut tampered = image.clone();
        tampered.ctext[word] ^= 1 << (word % 32);
        // Reload the tampered ciphertext into each machine's ROM via the
        // image itself: with_config loads `ctext` directly.
        // All five SI-on geometries; the SI-off tail is excluded because
        // detection parity needs the MAC check enforced.
        let si_on = &family[..geometries().len()];
        assert_invisible_across(&format!("crc32+flip[{word}]"), &tampered, &keys, si_on);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property (satellite): random programs produce identical
    /// `ExecStats`-visible architectural results — MMIO words, final
    /// outcome, instret — with the cache on vs. off, across at least
    /// three cache geometries.
    #[test]
    fn generated_programs_see_no_cache(seed in any::<u64>()) {
        let keys = keys();
        let src = gen::random_program(seed);
        let module = asm::parse(&src).expect("generated program parses");
        let image = Transformer::new(keys.clone())
            .transform(&module)
            .expect("generated program transforms");
        let reference = run_config(&image, &keys, &SofiaConfig::default());
        prop_assert!(reference.outcome.contains("Halted"), "{}", reference.outcome);
        for (label, vcache) in geometries().into_iter().skip(1) {
            let config = SofiaConfig { vcache, ..Default::default() };
            let got = run_config(&image, &keys, &config);
            prop_assert!(
                got == reference,
                "seed {} geometry {}: {:?} != {:?}",
                seed, label, got, reference
            );
        }
    }
}
