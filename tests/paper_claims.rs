//! Integration: each headline claim of the paper, as an executable
//! assertion. EXPERIMENTS.md records the measured values.

use sofia::core::security;
use sofia::crypto::KeySet;
use sofia::hwmodel;
use sofia::prelude::*;
use sofia_workloads::adpcm;

/// Table I: area +28.2 %, clock 84.6 % slower.
#[test]
fn claim_table1() {
    let (v, s) = hwmodel::table1();
    assert!((s.area_overhead_vs(&v) - 28.2).abs() < 0.5);
    assert!((s.clock_slowdown_vs(&v) - 84.6).abs() < 1.0);
}

/// §IV-A: 46,795 / 93,590 years of online brute force.
#[test]
fn claim_security_years() {
    assert!((security::paper_si_attack_years() - 46_795.0).abs() < 50.0);
    assert!((security::paper_cfi_attack_years() - 93_590.0).abs() < 100.0);
}

/// §IV-B shape: code expansion in the 2-4x regime (paper 2.41x), cycle
/// overhead well below the expansion factor (slots are cheaper than
/// bytes), wall-clock overhead dominated by the clock degradation.
#[test]
fn claim_adpcm_shape() {
    let keys = KeySet::from_seed(0xC1A1);
    let w = adpcm::workload(600);
    let vanilla = w.verify_on_vanilla().unwrap();
    let (sofia, report) = w.verify_on_sofia(&keys).unwrap();

    let expansion = report.expansion();
    assert!((2.0..4.0).contains(&expansion), "expansion {expansion}");

    let cycle_factor = sofia.exec.cycles as f64 / vanilla.cycles as f64;
    assert!(
        cycle_factor < expansion,
        "cycle factor {cycle_factor} must undercut static expansion {expansion}"
    );

    let (vhw, shw) = hwmodel::table1();
    let time_factor = cycle_factor * shw.period_ns / vhw.period_ns;
    // Paper: 2.1x total. Ours is higher (faster baseline memory), but the
    // structure holds: time overhead ≈ cycle overhead × 1.84.
    assert!(
        (time_factor / cycle_factor - shw.period_ns / vhw.period_ns).abs() < 1e-9,
        "clock degradation must multiply in"
    );
    assert!(time_factor > 2.0, "protection at least doubles wall-clock");
}

/// §III: one shared cipher alternating CTR/CBC keeps up with fetch — no
/// cipher back-pressure under the paper schedule.
#[test]
fn claim_single_cipher_suffices() {
    let keys = KeySet::from_seed(0xC1A2);
    let (stats, _) = adpcm::workload(200).verify_on_sofia(&keys).unwrap();
    assert_eq!(stats.cipher_stall_cycles, 0);
    // Alternation really happened: both op kinds were issued.
    assert!(stats.ctr_ops > 0 && stats.cbc_ops > 0);
}

/// §II-B.2: with the default format, the store gate never stalls a
/// legal store (the restriction absorbs the latency).
#[test]
fn claim_store_gate_free_with_restriction() {
    let keys = KeySet::from_seed(0xC1A3);
    // bubble_sort is the most store-dense workload in the suite.
    let (stats, _) = sofia_workloads::kernels::bubble_sort(48)
        .verify_on_sofia(&keys)
        .unwrap();
    assert_eq!(stats.store_gate_stall_cycles, 0);
    assert!(stats.exec.stores > 400, "workload must be store-dense");
}

/// Verified-block cache claim: caching verified plaintext by sealed
/// edge recovers a large share of the fetch-path overhead — cached
/// SOFIA runs strictly between vanilla and uncached SOFIA, and at least
/// 25 % below uncached on both the branch-dominated microkernel and the
/// paper's ADPCM benchmark — without giving up a single detection (the
/// differential + fault-injection suites pin that half of the claim).
///
/// Measurement caveat, on the record: the uncached baseline here uses
/// `SofiaTiming::default()` *including* the `redirect_setup` cycle this
/// same PR introduced (redirects pay one cycle to form the
/// `{ω ‖ prevPC ‖ PC}` counter before the cipher refill). Under the
/// previous model (`redirect_setup: 0`) the fib(20) reduction is
/// ≈ 23.9 %, i.e. the 25 % bar on the micro-kernel is partly carried by
/// the refined redirect model; ADPCM clears 25 % under either model.
#[test]
fn claim_vcache_recovers_fetch_overhead() {
    let keys = KeySet::from_seed(0xC1A5);
    for w in [sofia_workloads::kernels::fib(20), adpcm::workload(600)] {
        let vanilla = w.verify_on_vanilla().unwrap().cycles;
        let image = w.secure_image(&keys);

        let mut uncached = SofiaMachine::new(&image, &keys);
        assert!(uncached.run(500_000_000).unwrap().is_halted());
        let u = uncached.stats().exec.cycles;

        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(256, 8),
            ..Default::default()
        };
        let mut cached = SofiaMachine::with_config(&image, &keys, &config);
        assert!(cached.run(500_000_000).unwrap().is_halted());
        assert_eq!(cached.mem().mmio.out_words, w.expected);
        let c = cached.stats().exec.cycles;

        assert!(
            c > vanilla,
            "{}: protection is never free ({c} vs {vanilla})",
            w.name
        );
        assert!(
            c < u,
            "{}: the cache must pay for itself ({c} vs {u})",
            w.name
        );

        // Companion pin, decoupled from this PR's redirect-model
        // refinement: under the pre-PR timing (`redirect_setup: 0`) the
        // cache still recovers >= 25 % on ADPCM and >= 20 % on fib(20),
        // so the claim does not live or die by the baseline change.
        let old_timing = sofia::core::SofiaTiming {
            redirect_setup: 0,
            ..Default::default()
        };
        let old_uncached_cfg = SofiaConfig {
            timing: old_timing,
            ..Default::default()
        };
        let mut ou = SofiaMachine::with_config(&image, &keys, &old_uncached_cfg);
        assert!(ou.run(500_000_000).unwrap().is_halted());
        let old_cached_cfg = SofiaConfig {
            timing: old_timing,
            vcache: VCacheConfig::enabled(256, 8),
            ..Default::default()
        };
        let mut oc = SofiaMachine::with_config(&image, &keys, &old_cached_cfg);
        assert!(oc.run(500_000_000).unwrap().is_halted());
        let old_reduction = 1.0 - oc.stats().exec.cycles as f64 / ou.stats().exec.cycles as f64;
        let old_bar = if w.name == "adpcm" { 0.25 } else { 0.20 };
        assert!(
            old_reduction >= old_bar,
            "{}: under redirect_setup 0, reduction {:.3} fell below {old_bar}",
            w.name,
            old_reduction
        );
        let reduction = 1.0 - c as f64 / u as f64;
        assert!(
            reduction >= 0.25,
            "{}: cached must undercut uncached by >= 25% (got {:.1}%: {c} vs {u})",
            w.name,
            reduction * 100.0
        );
    }
}

/// Fig. 9: k callers need exactly k-2 tree trampolines.
#[test]
fn claim_mux_tree_scaling() {
    let keys = KeySet::from_seed(0xC1A4);
    for k in 3..10usize {
        let mut src = String::from("main:\n");
        for _ in 0..k {
            src.push_str("    jal f\n");
        }
        src.push_str("    halt\nf:  ret\n");
        let module = sofia::isa::asm::parse(&src).unwrap();
        let image = sofia::transform::Transformer::new(keys.clone())
            .transform(&module)
            .unwrap();
        assert_eq!(image.report.tree_blocks, k - 2, "k = {k}");
    }
}
