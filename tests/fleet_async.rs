//! The async-driver determinism suite.
//!
//! Pins the tentpole invariant of [`AsyncFleet`]: the driver multiplexes
//! jobs over any number of host threads, parks cold machines to `SOFS1`
//! bytes and revives them, WFQ-schedules across classes — and none of it
//! may perturb a single bit of what any job computes. Records (outcomes,
//! MMIO words, violations, cycles, instret, ticks, sojourns) must be
//! identical at every thread count, identical with parking on or off,
//! and equal to serial single-machine execution.

use sofia::crypto::KeySet;
use sofia::fleet::{
    AdmissionConfig, AdmitError, AsyncConfig, AsyncFleet, ClassConfig, ClassId, JobRecord, JobSpec,
    Sabotage, SchedMode, TenantId,
};
use sofia::prelude::*;

fn loop_job(n: u32) -> String {
    format!(
        "main: li t0, {n}
               li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt"
    )
}

fn tenants() -> Vec<(TenantId, KeySet)> {
    (1..=6u32)
        .map(|id| (TenantId(id), KeySet::from_seed(0xA500 + id as u64)))
        .collect()
}

/// A mixed job set: loops of different lengths, a fuel-exhausted job, a
/// trapping job, and a tampered tenant — every verdict kind the batch
/// suite exercises.
fn jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, (tenant, _)) in tenants().into_iter().enumerate() {
        jobs.push(JobSpec::new(tenant, loop_job(20 + 13 * i as u32), 100_000));
        jobs.push(JobSpec::new(tenant, loop_job(5 + i as u32), 100_000));
    }
    // Out-of-fuel: a long loop on a starvation budget.
    jobs.push(JobSpec::new(TenantId(2), loop_job(5_000), 900));
    // Trap: misaligned load escapes a verified block.
    jobs.push(JobSpec::new(
        TenantId(3),
        "main: li a0, 3
               lw t0, 0(a0)
               halt",
        10_000,
    ));
    // Tamper: the SI unit's detection case, quarantining tenant 5.
    jobs.push(
        JobSpec::new(TenantId(5), loop_job(40), 100_000)
            .with_sabotage(Sabotage::FlipRomWord { word: 2, mask: 1 }),
    );
    jobs
}

/// outcome, out_words, violations, cycles, instret — the comparison
/// surface shared by [`serial_reference`] and [`digest`].
type ResultDigest = (String, Vec<u32>, Vec<String>, u64, u64);

/// What serial single-machine execution says about each job, in
/// submission order (same construction as the batch fleet suite).
fn serial_reference() -> Vec<ResultDigest> {
    let tenants = tenants();
    jobs()
        .iter()
        .map(|job| {
            let keys = &tenants
                .iter()
                .find(|(id, _)| *id == job.tenant)
                .expect("job for known tenant")
                .1;
            let module = asm::parse(&job.source).expect("reference programs parse");
            let image = Transformer::new(keys.clone())
                .transform(&module)
                .expect("reference programs transform");
            let mut m = SofiaMachine::new(&image, keys);
            if let Some(Sabotage::FlipRomWord { word, mask }) = job.sabotage {
                if let Some(w) = m.mem_mut().rom_mut().get_mut(word) {
                    *w ^= mask;
                }
            }
            let outcome = match m.run(job.fuel) {
                Ok(o) => format!("Completed({o:?})"),
                Err(t) => format!("Trapped({t:?})"),
            };
            (
                outcome,
                m.mem().mmio.out_words.clone(),
                m.violations().iter().map(|v| format!("{v:?}")).collect(),
                m.stats().exec.cycles,
                m.stats().exec.instret,
            )
        })
        .collect()
}

fn digest(r: &JobRecord) -> ResultDigest {
    (
        format!("{:?}", r.outcome),
        r.out_words.clone(),
        r.violations.iter().map(|v| format!("{v:?}")).collect(),
        r.stats.exec.cycles,
        r.stats.exec.instret,
    )
}

/// The full deterministic surface of a record, scheduling included.
fn full_digest(r: &JobRecord) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{:?}",
        r.job,
        r.outcome,
        r.out_words,
        r.stats.exec.cycles,
        r.stats.exec.instret,
        r.arrival_tick,
        r.start_tick,
        r.end_tick,
        r.sojourn_cycles,
        r.slice_cycles,
    )
}

fn drive(threads: usize, park_after: Option<u64>) -> (AsyncFleet, Vec<JobRecord>) {
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads,
        workers: 3,
        mode: SchedMode::FuelSliced { slice: 120 },
        park_after,
        ..Default::default()
    });
    for (id, keys) in tenants() {
        fleet.register_tenant(id, keys.clone(), ClassId(0)).unwrap();
    }
    for job in jobs() {
        fleet.submit(job).unwrap();
    }
    fleet.run_until_idle();
    let mut records = fleet.drain_finished();
    records.sort_by_key(|r| r.job);
    (fleet, records)
}

#[test]
fn async_matches_serial_at_every_thread_count() {
    let reference = serial_reference();
    for threads in [1usize, 2, 4, 8] {
        let (_, records) = drive(threads, Some(4));
        let got: Vec<_> = records.iter().map(digest).collect();
        assert_eq!(got, reference, "divergence at {threads} threads");
    }
}

#[test]
fn thread_count_is_invisible_to_the_full_record_surface() {
    let (fleet1, r1) = drive(1, Some(4));
    for threads in [2usize, 4, 8] {
        let (fleetn, rn) = drive(threads, Some(4));
        let a: Vec<_> = r1.iter().map(full_digest).collect();
        let b: Vec<_> = rn.iter().map(full_digest).collect();
        assert_eq!(a, b, "schedule surface diverged at {threads} threads");
        assert_eq!(fleet1.stats(), {
            // Host-only counters aside, the stats are one deterministic
            // surface; parks/revives/makespan must all agree.
            fleetn.stats()
        });
    }
}

#[test]
fn parking_is_invisible_to_results() {
    let (_, never) = drive(4, None);
    let (aggressive_fleet, aggressive) = drive(4, Some(1));
    // Parking really happened…
    assert!(aggressive_fleet.stats().parks > 0, "no park exercised");
    assert!(aggressive_fleet.stats().revives > 0, "no revive exercised");
    // …and no record moved a bit, cycles and schedule included.
    let a: Vec<_> = never.iter().map(full_digest).collect();
    let b: Vec<_> = aggressive.iter().map(full_digest).collect();
    assert_eq!(a, b, "parking perturbed the record surface");
    // Aggressive parking bounds resident machines below the backlog.
    assert!(
        aggressive_fleet.stats().peak_resident_machines <= 3,
        "parking failed to bound residency: {}",
        aggressive_fleet.stats().peak_resident_machines
    );
}

#[test]
fn admission_rejects_are_typed_and_immediate() {
    let mut admission = AdmissionConfig {
        global_queue_cap: 4,
        ..Default::default()
    };
    admission.classes.insert(
        1,
        ClassConfig {
            queue_cap: 2,
            tenant_fuel_quota: 10_000,
            ..Default::default()
        },
    );
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 1,
        workers: 1,
        admission,
        ..Default::default()
    });
    let (a, b) = (TenantId(1), TenantId(2));
    fleet
        .register_tenant(a, KeySet::from_seed(1), ClassId(0))
        .unwrap();
    fleet
        .register_tenant(b, KeySet::from_seed(2), ClassId(1))
        .unwrap();

    // Unknown tenant.
    let err = fleet
        .submit(JobSpec::new(TenantId(99), loop_job(1), 100))
        .unwrap_err();
    assert_eq!(err, AdmitError::UnknownTenant(TenantId(99)));

    // Per-tenant fuel quota (class 1 allows 10k outstanding).
    fleet.submit(JobSpec::new(b, loop_job(1), 9_000)).unwrap();
    let err = fleet
        .submit(JobSpec::new(b, loop_job(1), 2_000))
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::OverFuelQuota {
            tenant: b,
            outstanding: 9_000,
            requested: 2_000,
            quota: 10_000,
        }
    );

    // Per-class queue cap: a second small job fits, a third bounces.
    fleet.submit(JobSpec::new(b, loop_job(1), 500)).unwrap();
    let err = fleet.submit(JobSpec::new(b, loop_job(1), 10)).unwrap_err();
    assert_eq!(
        err,
        AdmitError::ClassQueueFull {
            class: ClassId(1),
            queued: 2,
            cap: 2,
        }
    );

    // Global cap: class 0 can absorb two more, then the fleet is full.
    for _ in 0..2 {
        fleet.submit(JobSpec::new(a, loop_job(1), 100)).unwrap();
    }
    let err = fleet.submit(JobSpec::new(a, loop_job(1), 100)).unwrap_err();
    assert_eq!(err, AdmitError::QueueFull { queued: 4, cap: 4 });

    // Draining the queue re-opens admission — backpressure, not a ban.
    fleet.run_until_idle();
    assert!(fleet.submit(JobSpec::new(a, loop_job(1), 100)).is_ok());
    assert_eq!(fleet.stats().rejected, 0, "immediate rejects never queue");
}

#[test]
fn scheduled_arrivals_reject_deferred_and_typed() {
    let admission = AdmissionConfig {
        global_queue_cap: 2,
        ..Default::default()
    };
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 1,
        workers: 1,
        admission,
        ..Default::default()
    });
    let a = TenantId(1);
    fleet
        .register_tenant(a, KeySet::from_seed(1), ClassId(0))
        .unwrap();
    // Three arrivals land on tick 5; the queue holds two.
    let ids: Vec<_> = (0..3)
        .map(|_| fleet.submit_at(JobSpec::new(a, loop_job(50), 100_000), 5))
        .collect();
    for _ in 0..6 {
        fleet.tick();
    }
    let rejected = fleet.drain_rejected();
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].job, ids[2]);
    assert_eq!(rejected[0].tick, 5);
    assert!(matches!(rejected[0].error, AdmitError::QueueFull { .. }));
    fleet.run_until_idle();
    let finished = fleet.drain_finished();
    assert_eq!(finished.len(), 2);
    // Arrival ticks are recorded, and sojourn runs from them.
    for r in &finished {
        assert_eq!(r.arrival_tick, 5);
        assert!(r.start_tick >= r.arrival_tick);
    }
}

#[test]
fn weighted_fair_queueing_favours_the_heavy_class() {
    let mut admission = AdmissionConfig::default();
    admission.classes.insert(
        0,
        ClassConfig {
            weight: 4,
            ..Default::default()
        },
    );
    admission.classes.insert(
        1,
        ClassConfig {
            weight: 1,
            ..Default::default()
        },
    );
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 2,
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 200 },
        admission,
        ..Default::default()
    });
    let (hi, lo) = (TenantId(1), TenantId(2));
    fleet
        .register_tenant(hi, KeySet::from_seed(1), ClassId(0))
        .unwrap();
    fleet
        .register_tenant(lo, KeySet::from_seed(2), ClassId(1))
        .unwrap();
    for _ in 0..20 {
        fleet
            .submit(JobSpec::new(hi, loop_job(30), 100_000))
            .unwrap();
        fleet
            .submit(JobSpec::new(lo, loop_job(30), 100_000))
            .unwrap();
    }
    fleet.run_until_idle();
    let records = fleet.drain_finished();
    assert_eq!(records.len(), 40);
    // While both classes are backlogged, the weight-4 class finishes ~4×
    // as often: among the first 10 completions it must clearly dominate.
    let hi_early = records.iter().take(10).filter(|r| r.tenant == hi).count();
    assert!(hi_early >= 7, "weight-4 class got only {hi_early}/10");
    // Both classes still complete everything (fair, not starving).
    let lo_total = records.iter().filter(|r| r.tenant == lo).count();
    assert_eq!(lo_total, 20);
    // And the heavy class's mean sojourn is strictly better.
    let mean = |t: TenantId| {
        let s: u64 = records
            .iter()
            .filter(|r| r.tenant == t)
            .map(|r| r.sojourn_cycles)
            .sum();
        s / 20
    };
    assert!(mean(hi) < mean(lo), "{} !< {}", mean(hi), mean(lo));
}
