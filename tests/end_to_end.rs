//! Integration: the whole stack — assembler → CFG → transformer → SOFIA
//! machine — against the golden models, for every workload.

use sofia::crypto::KeySet;
use sofia::prelude::*;
use sofia_workloads::{suite, Scale};

#[test]
fn every_workload_is_bit_exact_on_both_machines() {
    let keys = KeySet::from_seed(0xE2E);
    for w in suite(Scale::Test) {
        let vanilla = w
            .verify_on_vanilla()
            .unwrap_or_else(|e| panic!("vanilla: {e}"));
        let (sofia, report) = w
            .verify_on_sofia(&keys)
            .unwrap_or_else(|e| panic!("sofia: {e}"));
        // Protection always costs cycles and code size, never correctness.
        assert!(
            sofia.exec.cycles > vanilla.cycles,
            "{}: sofia {} <= vanilla {}",
            w.name,
            sofia.exec.cycles,
            vanilla.cycles
        );
        assert!(report.expansion() >= 8.0 / 6.0, "{}", w.name);
        assert_eq!(sofia.violations, 0, "{}", w.name);
    }
}

#[test]
fn overheads_stay_within_the_reproduction_bands() {
    // The relative claims of §IV-B: code ~2-7x, cycles within ~4x, and
    // wall-clock overhead strictly larger than cycle overhead (clock
    // degradation multiplies in).
    let keys = KeySet::from_seed(0xE2F);
    let (vhw, shw) = sofia::hwmodel::table1();
    for w in suite(Scale::Test) {
        let vanilla = w.verify_on_vanilla().unwrap();
        let (sofia, report) = w.verify_on_sofia(&keys).unwrap();
        let cyc = sofia.exec.cycles as f64 / vanilla.cycles as f64;
        let time = cyc * shw.period_ns / vhw.period_ns;
        assert!(
            (1.0..8.0).contains(&report.expansion()),
            "{}: {}",
            w.name,
            report.expansion()
        );
        assert!((1.0..5.0).contains(&cyc), "{}: cycle factor {cyc}", w.name);
        assert!(time > cyc, "{}: clock loss must compound", w.name);
    }
}

#[test]
fn secure_images_are_deterministic_and_serialisable() {
    let keys = KeySet::from_seed(1234);
    let w = sofia_workloads::kernels::crc32(64);
    let a = w.secure_image(&keys);
    let b = w.secure_image(&keys);
    assert_eq!(a.ctext, b.ctext, "same keys + nonce => same image");

    // Round-trip the binary container and run the loaded image.
    let bytes = a.to_bytes();
    let loaded = SecureImage::from_bytes(&bytes).expect("valid container");
    let mut m = SofiaMachine::new(&loaded, &keys);
    assert!(m.run(10_000_000).unwrap().is_halted());
    assert_eq!(m.mem().mmio.out_words, w.expected);
}

#[test]
fn wrong_device_keys_cannot_run_an_image() {
    let keys = KeySet::from_seed(1);
    let other = KeySet::from_seed(2);
    let w = sofia_workloads::kernels::fib(10);
    let image = w.secure_image(&keys);
    let mut m = SofiaMachine::new(&image, &other);
    let outcome = m.run(10_000).unwrap();
    assert!(
        matches!(
            outcome,
            RunOutcome::ViolationStop(Violation::MacMismatch { .. })
        ),
        "{outcome:?}"
    );
}

#[test]
fn exec4_format_runs_the_suite_too() {
    let keys = KeySet::from_seed(0xE30);
    let t = Transformer::new(keys.clone()).with_format(BlockFormat::exec4());
    for w in suite(Scale::Test).into_iter().take(4) {
        let image = t.transform(&w.module()).unwrap();
        let mut m = SofiaMachine::new(&image, &keys);
        let outcome = m.run(200_000_000).unwrap();
        assert!(outcome.is_halted(), "{}: {outcome:?}", w.name);
        assert_eq!(m.mem().mmio.out_words, w.expected, "{}", w.name);
    }
}

#[test]
fn sofia_stats_are_internally_consistent() {
    let keys = KeySet::from_seed(0xE31);
    let w = sofia_workloads::kernels::dispatch(32);
    let image = w.secure_image(&keys);
    let mut m = SofiaMachine::new(&image, &keys);
    m.run(10_000_000).unwrap();
    let s = m.stats();
    assert_eq!(s.blocks, s.exec_blocks + s.mux_blocks);
    // Each exec block carries 2 MAC nops, each mux path 2 (of 3 words).
    assert_eq!(s.mac_nop_slots, 2 * s.blocks);
    assert!(
        s.ctr_ops >= s.blocks * 4,
        "ctr ops cover every fetched word"
    );
    assert!(s.cbc_ops == s.blocks * 3, "3 CBC ops per default block");
    assert!(
        s.exec.cycles > s.exec.instret,
        "slots + stalls exceed 1/cycle"
    );
}
