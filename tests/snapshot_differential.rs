//! The snapshot/restore differential harness — the executable form of
//! the migration invariant:
//!
//! > suspend → serialise → drop everything → restore → resume is
//! > **bit-for-bit identical** to the uninterrupted run — results,
//! > traps, violation reports, simulated cycles, statistics.
//!
//! In the style `vcache_differential.rs` set: every workload in the
//! suite, a family of verified-block-cache geometries, and a snapshot
//! taken at **every** slice boundary of the sliced run. At each
//! boundary the suspended machine is serialised to bytes, decoded back,
//! rebuilt over nothing but the sealed image + device keys, and run to
//! completion; the final machine state must equal the uninterrupted
//! reference in every observable — including cycles, per-counter stats,
//! I-cache and verified-block-cache counters, registers and the parked
//! [`ResumeEdge`]. Trap, violation, out-of-fuel and reboot-loop
//! endings are pinned alongside clean halts.

mod common;

use sofia::core::snapshot::MachineSnapshot;
use sofia::core::{SofiaStats, VCacheStats};
use sofia::cpu::icache::ICacheStats;
use sofia::crypto::KeySet;
use sofia::prelude::*;
use sofia_core::machine::ResetPolicy;
use sofia_core::SliceOutcome;
use sofia_workloads::{suite, Scale};

fn keys() -> KeySet {
    KeySet::from_seed(0x54AF_5407)
}

/// The vcache geometries the harness sweeps (disabled reference plus
/// three enabled shapes bracketing residency behaviours).
fn geometries() -> Vec<(&'static str, VCacheConfig)> {
    vec![
        ("vcache-off", VCacheConfig::default()),
        ("vcache-1x1", VCacheConfig::enabled(1, 1)),
        ("vcache-16x4", VCacheConfig::enabled(16, 4)),
        ("vcache-256x8", VCacheConfig::enabled(256, 8)),
    ]
}

/// Every machine observable the invariant quantifies over. Unlike the
/// vcache harness's `ArchResult`, cycles and every counter are **in**:
/// a restored machine may not drift by a single simulated cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FullState {
    outcome: String,
    out_words: Vec<u32>,
    out_bytes: Vec<u8>,
    actuators: Vec<u32>,
    regs: [u32; 32],
    stats: SofiaStats,
    icache: ICacheStats,
    vcache: VCacheStats,
    violations: Vec<Violation>,
    edge: ResumeEdge,
}

fn capture(outcome: String, m: &SofiaMachine) -> FullState {
    FullState {
        outcome,
        out_words: m.mem().mmio.out_words.clone(),
        out_bytes: m.mem().mmio.out_bytes.clone(),
        actuators: m.mem().mmio.actuator_writes.clone(),
        regs: m.regs().words(),
        stats: m.stats(),
        icache: m.icache_stats(),
        vcache: m.vcache_stats(),
        violations: m.violations().to_vec(),
        edge: m.edge(),
    }
}

fn run_to_end(m: &mut SofiaMachine, fuel: u64) -> FullState {
    let outcome = match m.run(fuel) {
        Ok(o) => format!("{o:?}"),
        Err(t) => format!("trap: {t:?}"),
    };
    capture(outcome, m)
}

/// Drives one `(image, config, budget)` through the whole protocol:
/// reference run, then a sliced run snapshotting at **every** boundary,
/// each snapshot round-tripped through bytes and resumed on a machine
/// rebuilt from scratch. Returns how many boundaries were exercised.
fn assert_snapshot_transparent(
    what: &str,
    image: &SecureImage,
    keys: &KeySet,
    config: &SofiaConfig,
    budget: u64,
) -> u32 {
    let mut whole = SofiaMachine::with_config(image, keys, config);
    let reference = run_to_end(&mut whole, budget);

    // Slice so every run yields a healthy number of boundaries without
    // quadratic blow-up on the bigger workloads.
    let slice = (reference.stats.exec.instret / 12).max(24);
    let mut driver = SofiaMachine::with_config(image, keys, config);
    let mut remaining = budget;
    let mut boundaries = 0u32;
    loop {
        let step = match driver.run_slice(slice.min(remaining.max(1))) {
            Ok(s) => s,
            Err(t) => {
                // The driver trapped: its terminal state must equal the
                // reference's.
                let got = capture(format!("trap: {t:?}"), &driver);
                assert_eq!(got, reference, "{what}: sliced trap diverged");
                return boundaries;
            }
        };
        remaining = remaining.saturating_sub(step.consumed);
        match step.outcome {
            SliceOutcome::Done(o) => {
                let got = capture(format!("{o:?}"), &driver);
                assert_eq!(got, reference, "{what}: sliced completion diverged");
                return boundaries;
            }
            SliceOutcome::Preempted => {
                boundaries += 1;
                // Suspend → serialise → decode — the bytes are the only
                // thing that survives besides image + keys.
                let snap = driver.snapshot(remaining);
                let bytes = snap.to_bytes();
                let decoded = MachineSnapshot::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{what}: boundary {boundaries}: decode: {e}"));
                assert_eq!(decoded, snap, "{what}: boundary {boundaries} roundtrip");
                // Restore on a fresh machine and run it to the end.
                let mut resumed = SofiaMachine::restore(image, keys, &decoded)
                    .unwrap_or_else(|e| panic!("{what}: boundary {boundaries}: restore: {e}"));
                let got = run_to_end(&mut resumed, decoded.fuel_remaining);
                assert_eq!(
                    got, reference,
                    "{what}: resume from boundary {boundaries} diverged"
                );
                if remaining == 0 {
                    // The sliced driver is itself out of fuel; its state
                    // must equal the reference's out-of-fuel ending.
                    let got = capture("OutOfFuel".into(), &driver);
                    assert_eq!(got, reference, "{what}: out-of-fuel state diverged");
                    return boundaries;
                }
            }
        }
    }
}

/// The acceptance sweep: every workload in the suite × every geometry,
/// snapshots at every slice boundary — zero divergence anywhere.
#[test]
fn workload_suite_resumes_bit_for_bit_from_every_boundary() {
    let keys = keys();
    for w in suite(Scale::Test) {
        let image = w.secure_image(&keys);
        for (label, vcache) in geometries() {
            let config = SofiaConfig {
                vcache,
                ..Default::default()
            };
            let boundaries = assert_snapshot_transparent(
                &format!("{}@{}", w.name, label),
                &image,
                &keys,
                &config,
                common::FUEL,
            );
            assert!(
                boundaries >= 8,
                "{}@{}: only {} boundaries exercised",
                w.name,
                label,
                boundaries
            );
        }
    }
}

/// A run that ends in a **violation** restores identically from every
/// boundary before the tampered block is reached: same violation report,
/// same detection point, same cycle count.
#[test]
fn violation_endings_survive_migration() {
    let keys = keys();
    let src = "main: li t0, 120
               li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt";
    let image = sofia::transform::Transformer::new(keys.clone())
        .transform(&asm::parse(src).unwrap())
        .unwrap();
    // Tamper the *last* block (store + halt epilogue): the loop runs
    // many slices before detection fires.
    let mut tampered = image.clone();
    let last = tampered.ctext.len() - 2;
    tampered.ctext[last] ^= 0x10;
    for (label, vcache) in geometries() {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        let boundaries = assert_snapshot_transparent(
            &format!("tampered-epilogue@{label}"),
            &tampered,
            &keys,
            &config,
            common::FUEL,
        );
        assert!(boundaries >= 3, "{label}: {boundaries} boundaries");
    }
}

/// A run that ends in an architectural **trap** restores identically:
/// the resumed machine faults at the same pc with the same trap.
#[test]
fn trap_endings_survive_migration() {
    let keys = keys();
    let src = "main: li t0, 90
         loop: subi t0, t0, 1
               bnez t0, loop
               li a1, 3
               lw t2, 0(a1)
               halt";
    let image = sofia::transform::Transformer::new(keys.clone())
        .transform(&asm::parse(src).unwrap())
        .unwrap();
    for (label, vcache) in geometries() {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        let boundaries = assert_snapshot_transparent(
            &format!("misaligned-load@{label}"),
            &image,
            &keys,
            &config,
            common::FUEL,
        );
        assert!(boundaries >= 3, "{label}: {boundaries} boundaries");
    }
}

/// A job that runs **out of fuel** reaches the identical starved state
/// through any suspend/restore point, down to the parked edge.
#[test]
fn out_of_fuel_endings_survive_migration() {
    let keys = keys();
    let src = "main: li t0, 100000
         loop: subi t0, t0, 1
               bnez t0, loop
               halt";
    let image = sofia::transform::Transformer::new(keys.clone())
        .transform(&asm::parse(src).unwrap())
        .unwrap();
    for (label, vcache) in geometries() {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        // A budget that lands mid-loop, prime so it never aligns with
        // block shapes.
        assert_snapshot_transparent(&format!("starved@{label}"), &image, &keys, &config, 997);
    }
}

/// A machine mid **reboot loop** (persistent tamper under
/// [`ResetPolicy::Reboot`]) migrates too: resets performed, reboot
/// cycles charged and the final abandonment verdict all match — and the
/// restored verified-block cache replays the reset flushes identically.
#[test]
fn reboot_loop_endings_survive_migration() {
    let keys = keys();
    // A loop long enough that every reboot replays it across several
    // slices before hitting the tampered epilogue again: snapshots land
    // *inside* the reset loop, with resets already performed, reboot
    // cycles already charged, and (when enabled) a vcache already
    // flushed by the reset line.
    let src = "main: li t0, 60
         loop: subi t0, t0, 1
               bnez t0, loop
               li t1, 7
               halt";
    let image = sofia::transform::Transformer::new(keys.clone())
        .transform(&asm::parse(src).unwrap())
        .unwrap();
    let mut tampered = image.clone();
    let last = tampered.ctext.len() - 2;
    tampered.ctext[last] ^= 0x4000;
    for (label, vcache) in geometries() {
        let config = SofiaConfig {
            vcache,
            reset_policy: ResetPolicy::Reboot { max_resets: 3 },
            ..Default::default()
        };
        let boundaries = assert_snapshot_transparent(
            &format!("reset-loop@{label}"),
            &tampered,
            &keys,
            &config,
            common::FUEL,
        );
        assert!(boundaries >= 3, "{label}: {boundaries} boundaries");
    }
}

/// The CFI-only ablation (`enforce_si = false`) snapshots and restores
/// like the full machine — the seam must not depend on the SI unit.
#[test]
fn cfi_only_ablation_survives_migration() {
    let keys = keys();
    let w = sofia_workloads::kernels::crc32(48);
    let image = w.secure_image(&keys);
    let config = SofiaConfig {
        enforce_si: false,
        vcache: VCacheConfig::enabled(16, 4),
        ..Default::default()
    };
    let boundaries =
        assert_snapshot_transparent("crc32@si-off", &image, &keys, &config, common::FUEL);
    assert!(boundaries >= 8, "{boundaries} boundaries");
}
