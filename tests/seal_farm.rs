//! The seal-farm regression suite: pre-sealing a cold-start wave through
//! [`sofia::fleet::SealFarm`] is a host-side optimisation only. For a
//! wave of K distinct tenants (plus duplicate submissions within and
//! across tenants), farm-sealed batches must be **bit-identical** to the
//! inline serial-seal path — records, per-tenant statistics, virtual-time
//! ticks, per-job cache attribution and the image cache's own counters —
//! at every worker count and in both scheduling modes.

use sofia::crypto::KeySet;
use sofia::fleet::{Fleet, FleetConfig, JobRecord, JobSpec, SchedMode, SealMode, TenantId};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// K distinct tenants, each submitting one program cold, plus repeat
/// submissions — a provider-side cold-start wave.
fn wave_jobs(tenants: usize) -> (Vec<(TenantId, KeySet)>, Vec<JobSpec>) {
    let keys: Vec<(TenantId, KeySet)> = (0..tenants)
        .map(|t| (TenantId(t as u32 + 1), KeySet::from_seed(0xFA12 + t as u64)))
        .collect();
    let mut jobs = Vec::new();
    for (i, (id, _)) in keys.iter().enumerate() {
        let n = 6 + i as u32;
        let src = format!(
            "main: li t0, {n}
                   li t1, 1
             loop: mul t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt"
        );
        jobs.push(JobSpec::new(*id, src.clone(), 1_000_000));
        // Duplicate submission of the same image in the same wave: the
        // farm's single-flight must collapse it, attribution must not.
        if i % 2 == 0 {
            jobs.push(JobSpec::new(*id, src, 1_000_000));
        }
    }
    // One program two tenants share by *source* — never by image.
    for (id, _) in keys.iter().take(2) {
        jobs.push(JobSpec::new(*id, "main: li t2, 3\n halt", 1_000));
    }
    (keys, jobs)
}

fn run_wave(
    seal: SealMode,
    workers: usize,
    mode: SchedMode,
) -> (
    Vec<JobRecord>,
    sofia::fleet::FleetStats,
    sofia::transform::cache::ImageCacheStats,
) {
    let (tenants, jobs) = wave_jobs(6);
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        mode,
        seal,
        ..Default::default()
    });
    for (id, keys) in &tenants {
        fleet.register_tenant(*id, keys.clone()).unwrap();
    }
    for job in jobs {
        fleet.submit(job).unwrap();
    }
    let records = fleet.run_batch();
    (records, fleet.stats(), fleet.seal_cache_stats())
}

type WaveResult = (
    Vec<JobRecord>,
    sofia::fleet::FleetStats,
    sofia::transform::cache::ImageCacheStats,
);

/// `strict_attribution`: whether per-job `seal_cache_hit` must match.
/// The farm assigns it deterministically (first job of an image in
/// submission order is the miss), so farm runs are held to it at every
/// worker count. Inline runs at >1 workers race duplicate jobs on the
/// cache's single-flight marker — *which* duplicate observes the miss is
/// host scheduling — so only the per-tenant counts (deterministic: one
/// miss per distinct image) are pinned for them.
fn assert_identical(a: &WaveResult, b: &WaveResult, strict_attribution: bool, label: &str) {
    assert_eq!(a.0.len(), b.0.len(), "{label}: record count");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.job, y.job, "{label}");
        assert_eq!(x.tenant, y.tenant, "{label}");
        assert_eq!(x.outcome, y.outcome, "{label}: {:?}", x.job);
        assert_eq!(x.out_words, y.out_words, "{label}: {:?}", x.job);
        assert_eq!(x.violations, y.violations, "{label}: {:?}", x.job);
        assert_eq!(x.stats, y.stats, "{label}: {:?}", x.job);
        if strict_attribution {
            assert_eq!(
                x.seal_cache_hit, y.seal_cache_hit,
                "{label}: cache attribution of {:?}",
                x.job
            );
        }
        assert_eq!(x.slices, y.slices, "{label}: {:?}", x.job);
        assert_eq!(x.slice_cycles, y.slice_cycles, "{label}: {:?}", x.job);
    }
    if strict_attribution {
        // Queue latency is summed start ticks — priced per worker count,
        // so it is pinned separately at matching counts below.
        let detick = |m: &std::collections::BTreeMap<u32, sofia::fleet::TenantStats>| {
            let mut m = m.clone();
            for s in m.values_mut() {
                s.queue_latency_ticks = 0;
            }
            m
        };
        assert_eq!(
            detick(&a.1.tenants),
            detick(&b.1.tenants),
            "{label}: per-tenant stats"
        );
    } else {
        for (tenant, stats) in &a.1.tenants {
            let other = &b.1.tenants[tenant];
            assert_eq!(
                stats.seal_cache_hits, other.seal_cache_hits,
                "{label}: tenant#{tenant} seal-cache hit count"
            );
            assert_eq!(
                stats.seal_cache_misses, other.seal_cache_misses,
                "{label}: tenant#{tenant} seal-cache miss count"
            );
        }
    }
    assert_eq!(
        (a.2.hits, a.2.misses, a.2.entries),
        (b.2.hits, b.2.misses, b.2.entries),
        "{label}: image cache counters"
    );
}

/// The tentpole invariant: the farm path is bit-identical to the inline
/// serial-seal path at every worker count, in both scheduling modes —
/// same records, same per-tenant stats, same cache counters. The farm is
/// additionally held to *stronger* determinism than inline: per-job
/// cache attribution matches the serial reference at every worker count
/// (inline mode races it across workers).
#[test]
fn farm_wave_is_bit_identical_to_inline_at_any_worker_count() {
    for mode in [
        SchedMode::RunToCompletion,
        SchedMode::FuelSliced { slice: 300 },
    ] {
        // The one-worker inline run is the serial-seal reference.
        let reference = run_wave(SealMode::Inline, 1, mode);
        for workers in WORKER_COUNTS {
            let inline = run_wave(SealMode::Inline, workers, mode);
            let farm = run_wave(SealMode::Farm, workers, mode);
            let strict = workers == 1;
            assert_identical(
                &inline,
                &reference,
                strict,
                &format!("inline w{workers} {mode:?}"),
            );
            assert_identical(
                &farm,
                &reference,
                true,
                &format!("farm w{workers} {mode:?}"),
            );
            // Virtual-time ticks are priced per worker count, so they
            // are pinned farm-vs-inline at the *same* count: sealing
            // earlier on the host must not move simulated admission.
            for (x, y) in farm.0.iter().zip(&inline.0) {
                assert_eq!(
                    (x.start_tick, x.end_tick),
                    (y.start_tick, y.end_tick),
                    "w{workers} {mode:?}: ticks of {:?}",
                    x.job
                );
            }
            for (tenant, stats) in &farm.1.tenants {
                assert_eq!(
                    stats.queue_latency_ticks, inline.1.tenants[tenant].queue_latency_ticks,
                    "w{workers} {mode:?}: queue latency of tenant#{tenant}"
                );
            }
        }
    }
}

/// Cold-wave accounting: K distinct tenants (each with 2 distinct-by-key
/// images for the shared trailer program) seal exactly once per image,
/// and only the first job of each image is a miss.
#[test]
fn cold_wave_seals_each_distinct_image_exactly_once() {
    for workers in WORKER_COUNTS {
        let (records, _, cache) = run_wave(SealMode::Farm, workers, SchedMode::RunToCompletion);
        // 6 tenants × 1 program + 2 tenants × shared-source trailer
        // (distinct keys ⇒ distinct images) = 8 distinct images.
        assert_eq!(cache.misses, 8, "w{workers}");
        assert_eq!(cache.entries, 8, "w{workers}");
        let misses = records.iter().filter(|r| !r.seal_cache_hit).count();
        assert_eq!(misses, 8, "w{workers}: one attributed miss per image");
        assert!(records.iter().all(|r| r.outcome.is_halted()), "w{workers}");
    }
}

/// Seal failures flow through the farm unchanged: the bad program fails
/// identically in both modes, is not cached, and healthy jobs in the
/// same wave are untouched.
#[test]
fn farm_preserves_seal_failures_bit_for_bit() {
    for seal in [SealMode::Inline, SealMode::Farm] {
        let mut fleet = Fleet::new(FleetConfig {
            workers: 4,
            seal,
            ..Default::default()
        });
        let good = TenantId(1);
        let bad = TenantId(2);
        fleet.register_tenant(good, KeySet::from_seed(1)).unwrap();
        fleet.register_tenant(bad, KeySet::from_seed(2)).unwrap();
        fleet
            .submit(JobSpec::new(good, "main: li t0, 4\n halt", 1_000))
            .unwrap();
        fleet
            .submit(JobSpec::new(bad, "main: bogus t9", 1_000))
            .unwrap();
        let records = fleet.run_batch();
        assert!(records[0].outcome.is_halted(), "{seal:?}");
        let sofia::fleet::JobOutcome::SealFailed(msg) = &records[1].outcome else {
            panic!(
                "{seal:?}: expected SealFailed, got {:?}",
                records[1].outcome
            );
        };
        assert!(msg.contains("parse"), "{seal:?}: {msg}");
        assert_eq!(fleet.seal_cache_stats().entries, 1, "{seal:?}");
    }
}
