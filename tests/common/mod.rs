//! The differential test engine: runs one program under a family of
//! SOFIA configurations (verified-block cache on/off across geometries,
//! SI on/off) and asserts the architecturally visible results are
//! identical — the executable form of the claim that the verified-block
//! cache (and the rest of the fetch-path machinery) is invisible.
//!
//! Shared by `vcache_differential.rs` (the full geometry family) and
//! `fault_injection.rs` (the two-config [`tamper_configs`] pair); each
//! test crate compiles its own copy, so helpers unused by a given crate
//! are expected.
#![allow(dead_code)]

use sofia::crypto::KeySet;
use sofia::prelude::*;

/// Fuel for differential runs (generated programs are small; workloads
/// match `sofia_workloads`' own verification fuel).
pub const FUEL: u64 = 200_000_000;

/// Everything the architecture lets software (or an attached observer)
/// see about a run: how it ended, what it wrote, how many instructions
/// retired, and which violations were reported. Cycle counts are
/// deliberately absent — timing is the one thing the cache may change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchResult {
    /// `Debug` form of the run outcome, or `trap: …` for architectural
    /// traps.
    pub outcome: String,
    /// Words emitted on the MMIO word port.
    pub mmio: Vec<u32>,
    /// Words written to the actuator port.
    pub actuators: Vec<u32>,
    /// Retired instruction slots.
    pub instret: u64,
    /// `Debug` form of every violation reported.
    pub violations: Vec<String>,
}

/// Runs `image` under `config` and reduces the run to its [`ArchResult`].
pub fn run_config(image: &SecureImage, keys: &KeySet, config: &SofiaConfig) -> ArchResult {
    let mut m = SofiaMachine::with_config(image, keys, config);
    let outcome = match m.run(FUEL) {
        Ok(o) => format!("{o:?}"),
        Err(t) => format!("trap: {t:?}"),
    };
    ArchResult {
        outcome,
        mmio: m.mem().mmio.out_words.clone(),
        actuators: m.mem().mmio.actuator_writes.clone(),
        instret: m.stats().exec.instret,
        violations: m.violations().iter().map(|v| format!("{v:?}")).collect(),
    }
}

/// The cache geometries the differential suite sweeps: disabled (the
/// reference), a direct-mapped toy, a small set-associative cache, and a
/// large one — plus a tiny thrashing cache that exercises eviction.
pub fn geometries() -> Vec<(&'static str, VCacheConfig)> {
    vec![
        ("vcache-off", VCacheConfig::default()),
        ("vcache-1x1", VCacheConfig::enabled(1, 1)),
        ("vcache-8x2", VCacheConfig::enabled(8, 2)),
        ("vcache-64x4", VCacheConfig::enabled(64, 4)),
        ("vcache-256x8", VCacheConfig::enabled(256, 8)),
    ]
}

/// The full configuration family for one image: every cache geometry
/// with SI enforced, plus the CFI-only ablation with and without the
/// cache (the cache must be invisible there too).
pub fn config_family() -> Vec<(String, SofiaConfig)> {
    let mut family: Vec<(String, SofiaConfig)> = geometries()
        .into_iter()
        .map(|(label, vcache)| {
            (
                label.to_string(),
                SofiaConfig {
                    vcache,
                    ..Default::default()
                },
            )
        })
        .collect();
    for (label, vcache) in [
        ("si-off", VCacheConfig::default()),
        ("si-off+vcache-64x4", VCacheConfig::enabled(64, 4)),
    ] {
        family.push((
            label.to_string(),
            SofiaConfig {
                enforce_si: false,
                vcache,
                ..Default::default()
            },
        ));
    }
    family
}

/// Runs `image` under every configuration in `family` and asserts all
/// [`ArchResult`]s equal the first (the reference). `what` labels the
/// program in failure messages.
pub fn assert_invisible_across(
    what: &str,
    image: &SecureImage,
    keys: &KeySet,
    family: &[(String, SofiaConfig)],
) {
    let (ref_label, ref_config) = &family[0];
    let reference = run_config(image, keys, ref_config);
    for (label, config) in &family[1..] {
        let got = run_config(image, keys, config);
        assert_eq!(
            got, reference,
            "{what}: architectural divergence between {ref_label} and {label}"
        );
    }
}

/// The two fetch-path configurations every *tamper* scenario must
/// survive — a deliberately small pair (the 64-case fault-injection
/// properties re-run every scenario per config, so the full
/// [`geometries`] sweep would multiply their runtime for no extra
/// security signal; the cold-tamper parity test covers the geometries).
pub fn tamper_configs() -> [(&'static str, SofiaConfig); 2] {
    [
        ("vcache-off", SofiaConfig::default()),
        (
            "vcache-on",
            SofiaConfig {
                vcache: VCacheConfig::enabled(16, 4),
                ..Default::default()
            },
        ),
    ]
}

/// [`assert_invisible_across`] over the default [`config_family`],
/// transforming `src` first.
pub fn assert_invisible(what: &str, src: &str, keys: &KeySet) {
    let module = asm::parse(src).unwrap_or_else(|e| panic!("{what}: parse: {e:?}"));
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .unwrap_or_else(|e| panic!("{what}: transform: {e:?}"));
    assert_invisible_across(what, &image, keys, &config_family());
}

// ---------------------------------------------------------------------
// Cross-backend harness: the same programs, tampers and attack rows run
// against SOFIA and the two alternative backends (`sofia-backends`),
// reduced to the same string-typed [`ArchResult`] so one assertion
// vocabulary covers all three.
// ---------------------------------------------------------------------

use sofia::backends::{BackendMachine, BackendOutcome, FipacMachine, SpongeMachine};
use sofia::cpu::FetchUnit;
use sofia::crypto::Nonce;

/// The three integrity schemes under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The paper's machine: MAC-then-Encrypt blocks, immediate detection.
    Sofia,
    /// Sponge-based CFP: implicit integrity via decrypt-absorb.
    Sponge,
    /// FIPAC-style keyed CFI state: deferred detection at check points.
    Fipac,
}

impl Backend {
    /// Every backend, in comparison order.
    pub const ALL: [Backend; 3] = [Backend::Sofia, Backend::Sponge, Backend::Fipac];

    /// Stable label for failure messages and reports.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sofia => "sofia",
            Backend::Sponge => "sponge",
            Backend::Fipac => "fipac",
        }
    }
}

/// Cycle counts alongside the architectural result, for the overhead
/// invariants (which, unlike [`ArchResult`], ARE backend-specific).
pub struct BackendRun {
    /// Architecturally visible results.
    pub arch: ArchResult,
    /// Simulated cycles.
    pub cycles: u64,
}

fn reduce_backend<F>(mut m: BackendMachine<F>, fuel: u64) -> BackendRun
where
    F: FetchUnit,
    F::Violation: std::fmt::Debug,
{
    let outcome = match m.run(fuel) {
        Ok(o) => match o {
            // Render through RunOutcome's vocabulary so results compare
            // 1:1 with SOFIA runs reduced by `run_config`.
            BackendOutcome::Halted => "Halted".to_string(),
            BackendOutcome::OutOfFuel => "OutOfFuel".to_string(),
            BackendOutcome::ViolationStop(v) => format!("ViolationStop({v:?})"),
            BackendOutcome::ResetLoop { resets } => format!("ResetLoop {{ resets: {resets} }}"),
        },
        Err(t) => format!("trap: {t:?}"),
    };
    BackendRun {
        arch: ArchResult {
            outcome,
            mmio: m.mem().mmio.out_words.clone(),
            actuators: m.mem().mmio.actuator_writes.clone(),
            instret: m.stats().instret,
            violations: m.violations().iter().map(|v| format!("{v:?}")).collect(),
        },
        cycles: m.stats().cycles,
    }
}

/// Installs `src` for `backend`, applies `prepare` to the ROM words
/// (identity for clean runs; 1:1 word indexing holds for the sponge and
/// FIPAC images, while SOFIA's block layout gets the tamper at the same
/// *stored-word* index), runs, and reduces the run.
pub fn run_backend_with(
    backend: Backend,
    src: &str,
    keys: &KeySet,
    fuel: u64,
    prepare: &dyn Fn(&mut Vec<u32>),
) -> BackendRun {
    let module = asm::parse(src).unwrap_or_else(|e| panic!("{}: parse: {e:?}", backend.label()));
    match backend {
        Backend::Sofia => {
            let image = Transformer::new(keys.clone())
                .transform(&module)
                .unwrap_or_else(|e| panic!("sofia: transform: {e:?}"));
            let mut m = SofiaMachine::new(&image, keys);
            prepare(m.mem_mut().rom_mut());
            let outcome = match m.run(fuel) {
                Ok(o) => format!("{o:?}"),
                Err(t) => format!("trap: {t:?}"),
            };
            BackendRun {
                arch: ArchResult {
                    outcome,
                    mmio: m.mem().mmio.out_words.clone(),
                    actuators: m.mem().mmio.actuator_writes.clone(),
                    instret: m.stats().exec.instret,
                    violations: m.violations().iter().map(|v| format!("{v:?}")).collect(),
                },
                cycles: m.stats().exec.cycles,
            }
        }
        Backend::Sponge => {
            let image = seal_sponge(&module, keys, Nonce::new(1))
                .unwrap_or_else(|e| panic!("sponge: seal: {e:?}"));
            let mut m = SpongeMachine::new(&image, keys);
            prepare(m.mem_mut().rom_mut());
            reduce_backend(m, fuel)
        }
        Backend::Fipac => {
            let image = install_fipac(&module, keys, Nonce::new(1))
                .unwrap_or_else(|e| panic!("fipac: install: {e:?}"));
            let mut m = FipacMachine::new(&image, keys);
            prepare(m.mem_mut().rom_mut());
            reduce_backend(m, fuel)
        }
    }
}

/// Clean run of `src` on `backend`.
pub fn run_backend(backend: Backend, src: &str, keys: &KeySet, fuel: u64) -> BackendRun {
    run_backend_with(backend, src, keys, fuel, &|_| {})
}
