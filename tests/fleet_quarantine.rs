//! Quarantine isolation: one tenant under attack never perturbs another
//! tenant's results, statistics, or service — the fleet-scale analogue
//! of the paper's per-device reset guarantee — and each
//! [`QuarantinePolicy`] contains exactly the violating tenant.

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::fleet::{
    AsyncConfig, AsyncFleet, ClassId, Fleet, FleetConfig, FleetError, JobOutcome, JobRecord,
    JobSpec, QuarantinePolicy, Sabotage, SchedMode, TenantId,
};
use sofia::prelude::RunOutcome;
use sofia_attacks::victims;
use sofia_workloads::gen::random_program;

const VICTIM: TenantId = TenantId(7);
const BYSTANDER: TenantId = TenantId(8);

fn victim_keys() -> KeySet {
    KeySet::from_seed(0xBAD)
}

fn bystander_keys() -> KeySet {
    KeySet::from_seed(0x600D)
}

fn bystander_jobs() -> Vec<JobSpec> {
    let mut jobs = vec![JobSpec::new(
        BYSTANDER,
        sofia_workloads::kernels::fib(80).source,
        5_000_000,
    )];
    for seed in [11u64, 22, 33] {
        jobs.push(JobSpec::new(BYSTANDER, random_program(seed), 20_000_000));
    }
    jobs
}

/// The victim tenant's job: a `sofia-attacks` control-loop victim whose
/// sealed image the adversary tampers with before it runs.
fn victim_job() -> JobSpec {
    JobSpec::new(VICTIM, victims::control_loop_victim(8), 5_000_000).with_sabotage(
        Sabotage::FlipRomWord {
            word: 20,
            mask: 0x40,
        },
    )
}

fn fleet_with(policy: QuarantinePolicy, workers: usize) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        mode: SchedMode::FuelSliced { slice: 1_000 },
        quarantine: policy,
        ..Default::default()
    });
    fleet.register_tenant(VICTIM, victim_keys()).unwrap();
    fleet.register_tenant(BYSTANDER, bystander_keys()).unwrap();
    fleet
}

fn result_surface(r: &JobRecord) -> (String, Vec<u32>, u64, u64) {
    (
        format!("{:?}", r.outcome),
        r.out_words.clone(),
        r.stats.exec.cycles,
        r.stats.exec.instret,
    )
}

#[test]
fn tampered_tenant_never_perturbs_a_bystander() {
    for workers in [1usize, 4] {
        // Control fleet: the bystander alone.
        let mut alone = fleet_with(QuarantinePolicy::Suspend, workers);
        for job in bystander_jobs() {
            alone.submit(job).unwrap();
        }
        let alone_records = alone.run_batch();

        // Shared fleet: same bystander jobs interleaved with the victim.
        let mut shared = fleet_with(QuarantinePolicy::Suspend, workers);
        let mut jobs = bystander_jobs();
        jobs.insert(1, victim_job());
        for job in jobs {
            shared.submit(job).unwrap();
        }
        let shared_records = shared.run_batch();

        // The victim was detected...
        let victim_rec = shared_records
            .iter()
            .find(|r| r.tenant == VICTIM)
            .expect("victim record");
        assert!(
            victim_rec.outcome.is_violation(),
            "tamper went undetected: {:?}",
            victim_rec.outcome
        );
        // ...and the bystander's records are bit-identical to running
        // alone: results, outputs, cycles, instret.
        let alone_surface: Vec<_> = alone_records.iter().map(result_surface).collect();
        let shared_surface: Vec<_> = shared_records
            .iter()
            .filter(|r| r.tenant == BYSTANDER)
            .map(result_surface)
            .collect();
        assert_eq!(alone_surface, shared_surface, "{workers} workers");

        // Stats isolation: the bystander's per-tenant roll-up matches its
        // solo run; the victim's violations land only on the victim.
        // (Queue latency is the one legitimately schedule-visible
        // counter — the victim does occupy service slots — so it is
        // excluded from the equality.)
        let alone_stats = alone.stats();
        let shared_stats = shared.stats();
        let work_only = |mut s: sofia::fleet::TenantStats| {
            s.queue_latency_ticks = 0;
            s
        };
        assert_eq!(
            work_only(alone_stats.tenants[&BYSTANDER.0]),
            work_only(shared_stats.tenants[&BYSTANDER.0])
        );
        assert_eq!(shared_stats.tenants[&BYSTANDER.0].violating_jobs, 0);
        assert_eq!(shared_stats.tenants[&VICTIM.0].violating_jobs, 1);

        // Service isolation: the victim is quarantined, the bystander —
        // and the rest of the fleet — keeps serving.
        assert_eq!(
            shared.submit(victim_job()).unwrap_err(),
            FleetError::Quarantined(VICTIM)
        );
        shared.submit(bystander_jobs().remove(0)).unwrap();
        let after = shared.run_batch();
        assert!(after[0].outcome.is_halted());
    }
}

#[test]
fn retry_with_reboot_gives_the_device_its_reset_budget() {
    let mut fleet = fleet_with(QuarantinePolicy::RetryWithReboot { max_resets: 3 }, 2);
    fleet.submit(victim_job()).unwrap();
    fleet
        .submit(JobSpec::new(
            BYSTANDER,
            sofia_workloads::kernels::fib(40).source,
            1_000_000,
        ))
        .unwrap();
    let records = fleet.run_batch();
    let victim_rec = &records[0];
    // Persistent tamper: the retry rebooted `max_resets` times and then
    // abandoned, logging one violation from the first run plus
    // `max_resets + 1` from the retry.
    assert!(victim_rec.retried);
    assert_eq!(
        victim_rec.outcome,
        JobOutcome::Completed(RunOutcome::ResetLoop { resets: 3 })
    );
    assert_eq!(victim_rec.violations.len(), 5);
    assert_eq!(victim_rec.stats.resets, 3);
    // The record's stats cover the first run *and* the retry, and agree
    // with what the schedule priced — work conservation under attack.
    assert_eq!(
        victim_rec.stats.exec.cycles,
        victim_rec.slice_cycles.iter().sum::<u64>()
    );
    // The retry went through the normal quantum loop: at least one
    // quantum of its own (here the tamper fires within the first slice,
    // so first run and retry are one quantum each), each priced.
    assert!(victim_rec.slices >= 2, "slices: {}", victim_rec.slices);
    assert_eq!(victim_rec.slices as usize, victim_rec.slice_cycles.len());
    // Still violating after the reboot budget: quarantined.
    assert_eq!(
        fleet.submit(victim_job()).unwrap_err(),
        FleetError::Quarantined(VICTIM)
    );
    // The bystander saw nothing.
    assert!(records[1].outcome.is_halted());
    assert_eq!(fleet.stats().tenants[&VICTIM.0].retries, 1);
    assert_eq!(fleet.stats().tenants[&BYSTANDER.0].retries, 0);
}

#[test]
fn fuel_starved_retry_still_quarantines() {
    // The reboot-retry's fuel loophole: with a tamper in the very first
    // block and a tiny budget, the retry exhausts its fuel before its
    // reset budget and ends OutOfFuel rather than ResetLoop. Violations
    // were detected all the same — the tenant must not stay in service.
    let mut fleet = fleet_with(QuarantinePolicy::RetryWithReboot { max_resets: 10 }, 2);
    fleet
        .submit(
            JobSpec::new(VICTIM, victims::control_loop_victim(8), 3)
                .with_sabotage(Sabotage::FlipRomWord { word: 2, mask: 1 }),
        )
        .unwrap();
    let records = fleet.run_batch();
    let r = &records[0];
    assert!(r.retried);
    assert_eq!(r.outcome, JobOutcome::Completed(RunOutcome::OutOfFuel));
    assert!(!r.violations.is_empty());
    assert_eq!(
        fleet.submit(victim_job()).unwrap_err(),
        FleetError::Quarantined(VICTIM)
    );
}

#[test]
fn evict_purges_the_tenant_and_its_sealed_images() {
    let mut fleet = fleet_with(QuarantinePolicy::Evict, 2);
    // Warm the seal cache for both tenants.
    fleet
        .submit(JobSpec::new(
            VICTIM,
            victims::control_loop_victim(8),
            5_000_000,
        ))
        .unwrap();
    fleet
        .submit(JobSpec::new(
            BYSTANDER,
            sofia_workloads::kernels::fib(40).source,
            1_000_000,
        ))
        .unwrap();
    fleet.run_batch();
    assert_eq!(fleet.seal_cache_stats().entries, 2);

    // Now the attack: the victim's (cached) image is tampered on-device.
    fleet.submit(victim_job()).unwrap();
    let records = fleet.run_batch();
    assert!(records[0].outcome.is_violation());
    assert!(records[0].seal_cache_hit, "sealed once, reused");

    // Evicted: submissions refused permanently, sealed images dropped,
    // the id burnt — but the bystander's cache entry survives.
    assert_eq!(
        fleet.submit(victim_job()).unwrap_err(),
        FleetError::Evicted(VICTIM)
    );
    assert!(!fleet.release(VICTIM));
    assert_eq!(
        fleet.register_tenant(VICTIM, victim_keys()).unwrap_err(),
        FleetError::TenantExists(VICTIM)
    );
    assert_eq!(fleet.seal_cache_stats().entries, 1);
    assert_eq!(fleet.stats().evicted_tenants, 1);
    // Post-mortem stats are retained.
    assert_eq!(fleet.stats().tenants[&VICTIM.0].violating_jobs, 1);
}

#[test]
fn release_lifts_a_suspension() {
    let mut fleet = fleet_with(QuarantinePolicy::Suspend, 1);
    fleet.submit(victim_job()).unwrap();
    fleet.run_batch();
    assert!(fleet.submit(victim_job()).is_err());
    assert_eq!(fleet.stats().suspended_tenants, 1);

    assert!(fleet.release(VICTIM));
    assert_eq!(fleet.stats().suspended_tenants, 0);
    // An untampered resubmission of the same program now halts cleanly —
    // the cached sealed image itself was never corrupted, only the
    // quarantined device's ROM copy.
    fleet
        .submit(JobSpec::new(
            VICTIM,
            victims::control_loop_victim(8),
            5_000_000,
        ))
        .unwrap();
    let records = fleet.run_batch();
    assert!(records[0].outcome.is_halted());
    assert_eq!(records[0].out_words, victims::control_loop_expected(8));
    assert!(records[0].seal_cache_hit);
}

/// The shared sabotaged workload for the batch-vs-async parity checks:
/// one sabotaged victim job, two bystander programs, and a second victim
/// job that is already queued when the first one's verdict folds.
fn parity_jobs(sabotage: Sabotage, seed: u64) -> Vec<JobSpec> {
    let mut jobs = vec![
        JobSpec::new(VICTIM, victims::control_loop_victim(8), 5_000_000).with_sabotage(sabotage),
    ];
    for j in 0..2 {
        jobs.push(JobSpec::new(
            BYSTANDER,
            random_program(seed * 2 + j),
            20_000_000,
        ));
    }
    jobs.push(
        JobSpec::new(VICTIM, victims::control_loop_victim(4), 5_000_000).with_sabotage(sabotage),
    );
    jobs
}

/// Everything a tenant can observe about a finished job, typed — no
/// stringification, so a variant change can never hide a divergence.
#[allow(clippy::type_complexity)]
fn typed_surface(
    r: &JobRecord,
) -> (
    u64,
    JobOutcome,
    Vec<u32>,
    Vec<sofia::prelude::Violation>,
    u64,
    u64,
    bool,
) {
    (
        r.job.0,
        r.outcome.clone(),
        r.out_words.clone(),
        r.violations.clone(),
        r.stats.exec.cycles,
        r.stats.exec.instret,
        r.retried,
    )
}

/// Runs the parity workload on both drivers under `policy` and returns
/// `(records, victim state, bystander state, seal-cache entries)` per
/// driver, records sorted by job id.
#[allow(clippy::type_complexity)]
fn run_both_drivers(
    policy: QuarantinePolicy,
    slice: u64,
    sabotage: Sabotage,
    seed: u64,
) -> [(
    Vec<(
        u64,
        JobOutcome,
        Vec<u32>,
        Vec<sofia::prelude::Violation>,
        u64,
        u64,
        bool,
    )>,
    sofia::fleet::TenantState,
    sofia::fleet::TenantState,
    usize,
); 2] {
    let mut batch = Fleet::new(FleetConfig {
        workers: 2,
        mode: SchedMode::FuelSliced { slice },
        quarantine: policy,
        ..Default::default()
    });
    batch.register_tenant(VICTIM, victim_keys()).unwrap();
    batch.register_tenant(BYSTANDER, bystander_keys()).unwrap();
    for job in parity_jobs(sabotage, seed) {
        batch.submit(job).unwrap();
    }
    let mut brec = batch.run_batch();
    brec.sort_by_key(|r| r.job.0);

    let mut afleet = AsyncFleet::new(AsyncConfig {
        threads: 4,
        workers: 2,
        mode: SchedMode::FuelSliced { slice },
        quarantine: policy,
        park_after: Some(1),
        ..Default::default()
    });
    afleet
        .register_tenant(VICTIM, victim_keys(), ClassId(0))
        .unwrap();
    afleet
        .register_tenant(BYSTANDER, bystander_keys(), ClassId(0))
        .unwrap();
    for job in parity_jobs(sabotage, seed) {
        afleet.submit(job).unwrap();
    }
    afleet.run_until_idle();
    let mut arec = afleet.drain_finished();
    arec.sort_by_key(|r| r.job.0);

    [
        (
            brec.iter().map(typed_surface).collect(),
            batch.tenant_state(VICTIM).unwrap(),
            batch.tenant_state(BYSTANDER).unwrap(),
            batch.seal_cache_stats().entries,
        ),
        (
            arec.iter().map(typed_surface).collect(),
            afleet.tenant_state(VICTIM).unwrap(),
            afleet.tenant_state(BYSTANDER).unwrap(),
            afleet.seal_cache_stats().entries,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The quarantine fold is driver-independent: the same sabotaged
    /// workload, run under every policy on the batch `Fleet` and the
    /// tick-driven `AsyncFleet`, yields identical typed outcomes,
    /// identical bystander records, identical tenant states, and the
    /// same sealed-image cache population (the purge side of the fold).
    #[test]
    fn batch_and_async_fleets_agree_under_every_policy(
        word in 2usize..40,
        bit in 0u32..32,
        slice in 100u64..400,
        seed in 0u64..1_000,
    ) {
        let sabotage = Sabotage::FlipRomWord { word, mask: 1 << bit };
        for policy in [
            QuarantinePolicy::Suspend,
            QuarantinePolicy::RetryWithReboot { max_resets: 2 },
            QuarantinePolicy::Evict,
        ] {
            let [batch, asynch] = run_both_drivers(policy, slice, sabotage, seed);
            prop_assert!(batch == asynch, "divergence under {:?}", policy);
        }
    }
}

#[test]
fn late_finishing_jobs_of_an_evicted_tenant_cannot_reseed_the_cache() {
    // Regression: the async fold used to purge an evicted tenant's
    // sealed images only at the eviction *transition*. A second job of
    // the same tenant, admitted before the verdict and still in service,
    // finished later and re-sealed its image into the shared cache —
    // a stale entry the batch fleet does not have. The fold now requests
    // the purge on every record of an evicted tenant.
    let sabotage = Sabotage::FlipRomWord {
        word: 20,
        mask: 0x40,
    };
    let [(_, bv, _, bcache), (_, av, _, acache)] =
        run_both_drivers(QuarantinePolicy::Evict, 150, sabotage, 20);
    assert_eq!(bv, sofia::fleet::TenantState::Evicted);
    assert_eq!(av, sofia::fleet::TenantState::Evicted);
    // Only the two bystander images survive, on both drivers.
    assert_eq!(bcache, 2, "batch kept a stale victim image");
    assert_eq!(acache, 2, "async kept a stale victim image");
}

#[test]
fn seal_cache_serves_repeat_jobs_across_batches() {
    let mut fleet = fleet_with(QuarantinePolicy::Suspend, 4);
    let program = sofia_workloads::kernels::crc32(32).source;
    for _ in 0..3 {
        for _ in 0..4 {
            fleet
                .submit(JobSpec::new(BYSTANDER, program.clone(), 5_000_000))
                .unwrap();
        }
        let records = fleet.run_batch();
        assert!(records.iter().all(|r| r.outcome.is_halted()));
    }
    let cache = fleet.seal_cache_stats();
    assert_eq!(cache.misses, 1, "sealed exactly once");
    assert_eq!(cache.hits, 11);
    assert_eq!(fleet.stats().tenants[&BYSTANDER.0].seal_cache_hits, 11);
}
