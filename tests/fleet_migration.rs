//! Integration: job migration across fleets. A mixed 3-tenant job mix
//! is run partway in one fleet, checkpointed mid-flight, carried as
//! bytes, and adopted by a **freshly constructed** second fleet at a
//! different worker count and pool mode — and every job finishes with
//! bit-identical outcome, output, violations, statistics (simulated
//! cycles included) and per-slice virtual-time costs to a run that
//! never migrated. A tampered tenant's job that migrates *before* its
//! violation fires still traps in the adopting fleet and quarantines
//! only its tenant there.

use sofia::attacks::victims::control_loop_victim;
use sofia::crypto::KeySet;
use sofia::fleet::{JobCheckpoint, JobRecord, Sabotage};
use sofia::prelude::*;
use sofia::transform::Transformer;

const SLICE: u64 = 150;

fn tenant_seed(id: u32) -> u64 {
    0xF1EE7 + id as u64
}

fn fleet_with_tenants(workers: usize, pool: PoolMode) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        mode: SchedMode::FuelSliced { slice: SLICE },
        pool,
        ..Default::default()
    });
    for id in 1..=3u32 {
        fleet
            .register_tenant(TenantId(id), KeySet::from_seed(tenant_seed(id)))
            .unwrap();
    }
    fleet
}

fn loop_job(n: u32) -> String {
    format!(
        "main: li t0, {n}
               li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt"
    )
}

/// ROM word index inside the block holding the `done` epilogue of
/// [`control_loop_victim`] — the late tamper point a migrating job only
/// reaches in the adopting fleet.
fn epilogue_word(n: u32) -> usize {
    let keys = KeySet::from_seed(tenant_seed(3));
    let image = Transformer::new(keys)
        .transform(&asm::parse(&control_loop_victim(n)).unwrap())
        .unwrap();
    ((image.symbols["done"] - image.text_base) / 4) as usize
}

/// The job mix: per tenant one short job (finishes inside the first
/// quantum) and one long job (suspends and migrates); tenant 3's long
/// job additionally carries a late-block sabotage.
fn submit_mix(fleet: &mut Fleet) -> usize {
    let tampered_word = epilogue_word(40);
    for tenant in 1..=3u32 {
        fleet
            .submit(JobSpec::new(
                TenantId(tenant),
                loop_job(8 + tenant),
                100_000,
            ))
            .unwrap();
        let long = if tenant == 3 {
            JobSpec::new(TenantId(3), control_loop_victim(40), 100_000).with_sabotage(
                Sabotage::FlipRomWord {
                    word: tampered_word,
                    mask: 0x8000_0001,
                },
            )
        } else {
            JobSpec::new(TenantId(tenant), loop_job(180 + tenant), 100_000)
        };
        fleet.submit(long).unwrap();
    }
    6
}

/// The migration-invariant record surface: everything except the
/// adopting fleet's seal-cache attribution and its batch-local ticks.
type RecordEssence = (
    TenantId,
    String,
    Vec<u32>,
    Vec<Violation>,
    String,
    bool,
    u32,
    Vec<u64>,
);

fn essence(r: &JobRecord) -> RecordEssence {
    (
        r.tenant,
        format!("{:?}", r.outcome),
        r.out_words.clone(),
        r.violations.clone(),
        format!("{:?}", r.stats),
        r.retried,
        r.slices,
        r.slice_cycles.clone(),
    )
}

#[test]
fn migrated_mix_finishes_bit_identical_across_fleets() {
    // Reference: the same mix, never migrated.
    let mut reference = fleet_with_tenants(4, PoolMode::SharedQueue);
    let n = submit_mix(&mut reference);
    let ref_records = reference.run_batch();
    assert_eq!(ref_records.len(), n);

    for (workers2, pool2) in [
        (1usize, PoolMode::SharedQueue),
        (2, PoolMode::WorkStealing),
        (7, PoolMode::WorkStealing),
    ] {
        // Fleet 1 serves exactly one quantum per job, then suspends the
        // survivors.
        let mut fleet1 = fleet_with_tenants(4, PoolMode::SharedQueue);
        submit_mix(&mut fleet1);
        let finished1 = fleet1.run_batch_capped(1);
        let suspended = fleet1.queued_jobs();
        assert!(
            !finished1.is_empty() && suspended.len() >= 3,
            "mix must split: {} finished, {} suspended",
            finished1.len(),
            suspended.len()
        );
        // The tampered long job must be among the migrants — its
        // violation fires only in the adopting fleet.
        assert!(
            finished1.iter().all(|r| r.violations.is_empty()),
            "tampered job violated before migrating"
        );
        assert_eq!(
            fleet1.tenant_state(TenantId(3)),
            Some(sofia::fleet::TenantState::Active)
        );

        // Checkpoint each survivor, carry it as bytes, adopt it in a
        // freshly constructed fleet with different workers/pool.
        let mut fleet2 = fleet_with_tenants(workers2, pool2);
        for &id in &suspended {
            let ckpt = fleet1.checkpoint_job(id).unwrap();
            let bytes = ckpt.to_bytes();
            let decoded = JobCheckpoint::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, ckpt, "checkpoint byte roundtrip");
            fleet2.adopt_job(decoded).unwrap();
        }
        assert_eq!(fleet1.pending_jobs(), 0);
        let finished2 = fleet2.run_batch();
        assert_eq!(finished1.len() + finished2.len(), n);

        // Reassemble in original submission order: fleet-1 ids are the
        // submission indices; fleet-2 records are in adoption order,
        // which is the suspended jobs' submission order.
        let mut merged: Vec<Option<&JobRecord>> = vec![None; n];
        for r in &finished1 {
            merged[r.job.0 as usize] = Some(r);
        }
        for (slot, r) in suspended.iter().zip(&finished2) {
            merged[slot.0 as usize] = Some(r);
        }
        for (i, (got, want)) in merged.iter().zip(&ref_records).enumerate() {
            let got = got.expect("every job accounted for");
            assert_eq!(
                essence(got),
                essence(want),
                "job {i} diverged after migrating to {workers2}w/{pool2:?}"
            );
        }

        // Work conservation across the split: the virtual-time cost of
        // the whole mix is preserved, so fleet accounting stays honest.
        let cost = |rs: &[JobRecord]| rs.iter().flat_map(|r| r.slice_cycles.iter()).sum::<u64>();
        assert_eq!(
            cost(&finished1) + cost(&finished2),
            cost(&ref_records),
            "virtual-time cycles lost or invented by the migration"
        );

        // Containment lands in the adopting fleet, on the right tenant,
        // and nowhere else.
        use sofia::fleet::TenantState;
        assert_eq!(
            fleet2.tenant_state(TenantId(3)),
            Some(TenantState::Suspended)
        );
        assert_eq!(fleet2.tenant_state(TenantId(1)), Some(TenantState::Active));
        assert_eq!(fleet2.tenant_state(TenantId(2)), Some(TenantState::Active));
        let tampered = finished2
            .iter()
            .find(|r| r.tenant == TenantId(3) && !r.violations.is_empty())
            .expect("tampered job finished in fleet 2");
        assert!(
            matches!(
                tampered.outcome,
                JobOutcome::Completed(sofia::core::machine::RunOutcome::ViolationStop(
                    Violation::MacMismatch { .. }
                ))
            ),
            "{:?}",
            tampered.outcome
        );
    }
}

/// A job checkpointed before its first quantum carries no machine
/// snapshot and adopts as a fresh submission — same verdict, same
/// output.
#[test]
fn never_served_jobs_checkpoint_without_a_machine() {
    let mut fleet1 = fleet_with_tenants(2, PoolMode::WorkStealing);
    let id = fleet1
        .submit(JobSpec::new(TenantId(1), loop_job(12), 50_000))
        .unwrap();
    let ckpt = fleet1.checkpoint_job(id).unwrap();
    assert!(ckpt.machine.is_none());
    assert_eq!(ckpt.remaining, 50_000);
    let decoded = JobCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
    let mut fleet2 = fleet_with_tenants(1, PoolMode::SharedQueue);
    fleet2.adopt_job(decoded).unwrap();
    let records = fleet2.run_batch();
    assert!(records[0].outcome.is_halted());
    assert_eq!(records[0].out_words, vec![(1..=12).sum::<u32>()]);
    // Checkpointing removed the job from fleet 1 entirely.
    assert_eq!(fleet1.pending_jobs(), 0);
    assert!(matches!(
        fleet1.checkpoint_job(id),
        Err(sofia::fleet::FleetError::UnknownJob(_))
    ));
}

/// Adoption is gated by the adopting fleet's tenant registry: unknown
/// and quarantined tenants are refused, and a checkpoint restored
/// against a *different* key registration simply re-seals and runs
/// under those keys (key domains stay structural).
#[test]
fn adoption_respects_the_tenant_registry() {
    let mut fleet1 = fleet_with_tenants(1, PoolMode::SharedQueue);
    fleet1
        .submit(JobSpec::new(TenantId(1), loop_job(200), 100_000))
        .unwrap();
    fleet1.run_batch_capped(1);
    let id = fleet1.queued_jobs()[0];
    let ckpt = fleet1.checkpoint_job(id).unwrap();

    // Unknown tenant.
    let mut empty = Fleet::new(FleetConfig::default());
    assert!(matches!(
        empty.adopt_job(ckpt.clone()),
        Err(sofia::fleet::AdoptError::Fleet(
            sofia::fleet::FleetError::UnknownTenant(_)
        ))
    ));

    // Same tenant id, same keys, different fleet: adoption works and
    // the job finishes with the right output.
    let mut fleet2 = fleet_with_tenants(3, PoolMode::WorkStealing);
    fleet2.adopt_job(ckpt).unwrap();
    let records = fleet2.run_batch();
    assert!(records[0].outcome.is_halted());
    assert_eq!(records[0].out_words, vec![(1..=200).sum::<u32>()]);
}
