//! The fleet determinism suite — the load-bearing invariant of
//! `sofia-fleet`, pinned: for any job set, fleet execution at any worker
//! count and in either scheduling mode produces **bit-identical** per-job
//! results, traps and violation reports to serial single-machine
//! execution. Scheduling decides *when* blocks run, never *what* they
//! compute.

use proptest::prelude::*;
use sofia::crypto::KeySet;
use sofia::fleet::{
    Fleet, FleetConfig, JobOutcome, JobRecord, JobSpec, Sabotage, SchedMode, TenantId,
};
use sofia::prelude::*;
use sofia_workloads::gen::random_program;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The serial single-machine reference: exactly what one SOFIA core does
/// with each job, one after another, no fleet machinery at all.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SerialResult {
    outcome: String,
    out_words: Vec<u32>,
    violations: Vec<String>,
    cycles: u64,
    instret: u64,
}

fn serial_reference(tenants: &[(TenantId, KeySet)], jobs: &[JobSpec]) -> Vec<SerialResult> {
    jobs.iter()
        .map(|job| {
            let keys = &tenants
                .iter()
                .find(|(id, _)| *id == job.tenant)
                .expect("job for known tenant")
                .1;
            let module = match asm::parse(&job.source) {
                Ok(m) => m,
                Err(e) => {
                    // Same rendering as the fleet's seal path.
                    let err = sofia::transform::cache::SealError::Parse(e.to_string());
                    return SerialResult {
                        outcome: format!("seal failed: {err}"),
                        out_words: vec![],
                        violations: vec![],
                        cycles: 0,
                        instret: 0,
                    };
                }
            };
            let image = Transformer::new(keys.clone())
                .transform(&module)
                .expect("reference programs transform");
            let mut m = SofiaMachine::new(&image, keys);
            if let Some(Sabotage::FlipRomWord { word, mask }) = job.sabotage {
                if let Some(w) = m.mem_mut().rom_mut().get_mut(word) {
                    *w ^= mask;
                }
            }
            let outcome = match m.run(job.fuel) {
                Ok(o) => format!("{o:?}"),
                Err(t) => format!("trap: {t:?}"),
            };
            SerialResult {
                outcome,
                out_words: m.mem().mmio.out_words.clone(),
                violations: m.violations().iter().map(|v| format!("{v:?}")).collect(),
                cycles: m.stats().exec.cycles,
                instret: m.stats().exec.instret,
            }
        })
        .collect()
}

fn record_result(r: &JobRecord) -> SerialResult {
    SerialResult {
        outcome: match &r.outcome {
            JobOutcome::Completed(o) => format!("{o:?}"),
            JobOutcome::Trapped(t) => format!("trap: {t:?}"),
            JobOutcome::SealFailed(e) => format!("seal failed: {e}"),
            JobOutcome::WorkerPanic(e) => format!("worker panic: {e}"),
            JobOutcome::RevivalFailed(e) => format!("revival failed: {e}"),
            JobOutcome::DeadlineMissed { deadline_cycles } => {
                format!("deadline missed: {deadline_cycles}")
            }
        },
        out_words: r.out_words.clone(),
        violations: r.violations.iter().map(|v| format!("{v:?}")).collect(),
        cycles: r.stats.exec.cycles,
        instret: r.stats.exec.instret,
    }
}

fn run_fleet(
    tenants: &[(TenantId, KeySet)],
    jobs: &[JobSpec],
    workers: usize,
    mode: SchedMode,
) -> Vec<JobRecord> {
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        mode,
        ..Default::default()
    });
    for (id, keys) in tenants {
        fleet.register_tenant(*id, keys.clone()).unwrap();
    }
    for job in jobs {
        fleet.submit(job.clone()).unwrap();
    }
    let records = fleet.run_batch();
    assert_eq!(records.len(), jobs.len());
    records
}

fn tenant_keys() -> Vec<(TenantId, KeySet)> {
    vec![
        (TenantId(1), KeySet::from_seed(0xA11CE)),
        (TenantId(2), KeySet::from_seed(0xB0B)),
        (TenantId(3), KeySet::from_seed(0xCAB1)),
    ]
}

/// A job set covering every outcome class: halts (workloads and random
/// programs, spread across tenants), out-of-fuel, a violation (tampered
/// ROM), and a seal failure.
fn mixed_jobs() -> Vec<JobSpec> {
    let mut jobs = vec![
        JobSpec::new(
            TenantId(1),
            sofia_workloads::kernels::fib(60).source,
            5_000_000,
        ),
        JobSpec::new(
            TenantId(2),
            sofia_workloads::kernels::crc32(32).source,
            5_000_000,
        ),
        JobSpec::new(
            TenantId(3),
            sofia_workloads::adpcm::workload(40).source,
            5_000_000,
        ),
        JobSpec::new(
            TenantId(1),
            sofia_workloads::kernels::dispatch(12).source,
            5_000_000,
        ),
        // Runs out of fuel mid-way.
        JobSpec::new(
            TenantId(2),
            sofia_workloads::kernels::fib(5_000).source,
            3_000,
        ),
        // Tampered ciphertext: MAC mismatch, detected.
        JobSpec::new(
            TenantId(3),
            sofia_workloads::kernels::fib(60).source,
            5_000_000,
        )
        .with_sabotage(Sabotage::FlipRomWord { word: 9, mask: 1 }),
        // Does not parse: rejected at seal time.
        JobSpec::new(TenantId(1), "main: frobnicate t0", 1_000),
    ];
    for (i, seed) in [3u64, 17, 99, 2024].into_iter().enumerate() {
        jobs.push(JobSpec::new(
            TenantId(1 + (i as u32 % 3)),
            random_program(seed),
            20_000_000,
        ));
    }
    jobs
}

#[test]
fn fleet_matches_serial_at_every_worker_count_in_both_modes() {
    let tenants = tenant_keys();
    let jobs = mixed_jobs();
    let reference = serial_reference(&tenants, &jobs);
    // The reference exercises every outcome class.
    assert!(reference.iter().any(|r| r.outcome == "Halted"));
    assert!(reference.iter().any(|r| r.outcome == "OutOfFuel"));
    assert!(reference
        .iter()
        .any(|r| r.outcome.contains("ViolationStop")));
    assert!(reference.iter().any(|r| r.outcome.contains("seal failed")));

    for workers in WORKER_COUNTS {
        for mode in [
            SchedMode::RunToCompletion,
            SchedMode::FuelSliced { slice: 500 },
            SchedMode::FuelSliced { slice: 7 }, // pathological slice
        ] {
            let records = run_fleet(&tenants, &jobs, workers, mode);
            let got: Vec<SerialResult> = records.iter().map(record_result).collect();
            assert_eq!(got, reference, "divergence at {workers} workers, {mode:?}");
        }
    }
}

#[test]
fn fuel_sliced_scheduling_prevents_starvation() {
    let tenants = tenant_keys();
    // One long ADPCM job submitted first, then four short fib jobs.
    let mut jobs = vec![JobSpec::new(
        TenantId(3),
        sofia_workloads::adpcm::workload(200).source,
        50_000_000,
    )];
    for _ in 0..4 {
        jobs.push(JobSpec::new(
            TenantId(1),
            sofia_workloads::kernels::fib(50).source,
            50_000_000,
        ));
    }
    // Run-to-completion on one worker: the long job monopolises the
    // machine and every short job finishes after it.
    let rtc = run_fleet(&tenants, &jobs, 1, SchedMode::RunToCompletion);
    assert!(rtc[1..].iter().all(|r| r.end_tick > rtc[0].end_tick));
    // Fuel-sliced round-robin: every short job finishes before the long
    // one, which merely keeps cycling through its quanta.
    let sliced = run_fleet(&tenants, &jobs, 1, SchedMode::FuelSliced { slice: 2_000 });
    assert!(
        sliced[1..].iter().all(|r| r.end_tick < sliced[0].end_tick),
        "short jobs starved: {:?} vs long {:?}",
        sliced[1..].iter().map(|r| r.end_tick).collect::<Vec<_>>(),
        sliced[0].end_tick
    );
    // Same results either way, of course.
    for (a, b) in rtc.iter().zip(&sliced) {
        assert_eq!(record_result(a), record_result(b));
    }
    assert!(sliced[0].slices > 1, "long job was never preempted");
}

#[test]
fn virtual_time_scaling_is_monotone_and_work_conserving() {
    let tenants = tenant_keys();
    // Twelve moderately sized jobs: no single job dominates a quarter of
    // the batch, so each worker doubling must strictly help.
    let mut jobs = Vec::new();
    for round in 0..4u32 {
        jobs.push(JobSpec::new(
            TenantId(1),
            sofia_workloads::kernels::fib(100 + 40 * round).source,
            5_000_000,
        ));
        jobs.push(JobSpec::new(
            TenantId(2),
            sofia_workloads::kernels::crc32(24 + 8 * round as usize).source,
            5_000_000,
        ));
        jobs.push(JobSpec::new(
            TenantId(3),
            sofia_workloads::adpcm::workload(30 + 10 * round as usize).source,
            5_000_000,
        ));
    }
    for mode in [
        SchedMode::RunToCompletion,
        SchedMode::FuelSliced { slice: 1_000 },
    ] {
        let mut last_makespan = u64::MAX;
        let mut total = None;
        for workers in [1usize, 2, 4] {
            let mut fleet = Fleet::new(FleetConfig {
                workers,
                mode,
                ..Default::default()
            });
            for (id, keys) in &tenants {
                fleet.register_tenant(*id, keys.clone()).unwrap();
            }
            for job in &jobs {
                fleet.submit(job.clone()).unwrap();
            }
            let records = fleet.run_batch();
            assert!(records.iter().all(|r| r.outcome.is_halted()));
            let stats = fleet.stats();
            assert!(
                stats.last_makespan_cycles < last_makespan,
                "{mode:?}: makespan {} did not improve on {last_makespan} at {workers} workers",
                stats.last_makespan_cycles
            );
            last_makespan = stats.last_makespan_cycles;
            // Work conservation: the same total simulated work at every
            // worker count (the determinism invariant in one number).
            let t = stats.total().cycles;
            assert_eq!(*total.get_or_insert(t), t, "{mode:?} at {workers} workers");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated tenant mixes: random programs spread over three key
    /// domains, random fuel (sometimes starving the job mid-run), random
    /// slice — fleet ≡ serial regardless.
    #[test]
    fn generated_mixes_match_serial(
        seeds in proptest::collection::vec(any::<u64>(), 3..7),
        fuel in 1_000u64..50_000_000,
        slice in 50u64..5_000,
    ) {
        let tenants = tenant_keys();
        let jobs: Vec<JobSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                JobSpec::new(
                    TenantId(1 + (i as u32 % 3)),
                    random_program(seed),
                    fuel,
                )
            })
            .collect();
        let reference = serial_reference(&tenants, &jobs);
        for workers in [1usize, 3] {
            for mode in [SchedMode::RunToCompletion, SchedMode::FuelSliced { slice }] {
                let records = run_fleet(&tenants, &jobs, workers, mode);
                let got: Vec<SerialResult> = records.iter().map(record_result).collect();
                prop_assert_eq!(&got, &reference);
            }
        }
    }
}
