//! # SOFIA — Software and Control Flow Integrity Architecture
//!
//! A full-system reproduction of *"SOFIA: Software and Control Flow
//! Integrity Architecture"* (de Clercq et al., DATE 2016) in pure Rust.
//!
//! SOFIA protects bare-metal software against code-injection and
//! code-reuse attacks with two cooperating hardware mechanisms:
//!
//! * **CFI** — every instruction word is encrypted under a counter derived
//!   from the control-flow edge that reaches it (`{ω ‖ prevPC ‖ PC}`), so
//!   any transfer not in the static CFG decrypts the destination to noise;
//! * **SI** — instructions are grouped into fixed-size blocks carrying a
//!   CBC-MAC which the hardware re-verifies before any store of the block
//!   can reach the memory-access pipeline stage; a mismatch resets the CPU.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`isa`] | the SL32 instruction set, assembler and disassembler |
//! | [`crypto`] | RECTANGLE-80 (scalar + bitsliced engines), CTR keystream and CBC-MAC |
//! | [`cfg`](mod@cfg) | instruction-level control-flow-graph analysis |
//! | [`cpu`] | the vanilla 7-stage pipeline simulator (LEON3-like baseline) |
//! | [`transform`] | the secure installer (blocks, mux trees, MAC-then-Encrypt) |
//! | [`core`] | the SOFIA machine: CFI decrypt + SI verify + reset logic |
//! | [`backends`] | alternative integrity backends (sponge CFP, FIPAC) behind the same fetch seam |
//! | [`workloads`] | ADPCM and other embedded kernels with golden models |
//! | [`attacks`] | the adversary harness (injection, relocation, hijack, forgery) |
//! | [`hwmodel`] | the calibrated FPGA area / critical-path cost model |
//! | [`fleet`] | multi-tenant sealed-program serving with fuel-sliced scheduling |
//!
//! # Quickstart
//!
//! ```
//! use sofia::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Write a program and assemble it.
//! let src = r#"
//!     .text
//! main:
//!     li   t0, 6
//!     li   t1, 7
//!     mul  a0, t0, t1
//!     li   t2, 0xFFFF0000   # MMIO word-output port
//!     sw   a0, 0(t2)
//!     halt
//! "#;
//! let module = sofia::isa::asm::parse(src)?;
//!
//! // 2. Securely install it (MAC-then-Encrypt under fresh keys).
//! let keys = KeySet::from_seed(42);
//! let image = Transformer::new(keys.clone()).transform(&module)?;
//!
//! // 3. Run it on a SOFIA machine: it executes normally.
//! let mut machine = SofiaMachine::new(&image, &keys);
//! let outcome = machine.run(1_000_000)?;
//! assert!(outcome.is_halted());
//! # Ok(())
//! # }
//! ```

pub use sofia_attacks as attacks;
pub use sofia_backends as backends;
pub use sofia_cfg as cfg;
pub use sofia_core as core;
pub use sofia_cpu as cpu;
pub use sofia_crypto as crypto;
pub use sofia_fleet as fleet;
pub use sofia_hwmodel as hwmodel;
pub use sofia_isa as isa;
pub use sofia_transform as transform;
pub use sofia_workloads as workloads;

/// The most commonly used types, re-exported for `use sofia::prelude::*`.
pub mod prelude {
    pub use sofia_backends::{FipacMachine, SpongeMachine};
    pub use sofia_core::{
        machine::{RunOutcome, SofiaMachine},
        security, ResumeEdge, SliceOutcome, SofiaConfig, VCacheConfig, Violation,
    };
    pub use sofia_cpu::{machine::VanillaMachine, Trap};
    pub use sofia_crypto::{KeySet, Nonce};
    pub use sofia_fleet::{
        Fleet, FleetConfig, FleetStats, JobOutcome, JobSpec, PoolMode, QuarantinePolicy, SchedMode,
        TenantId,
    };
    pub use sofia_isa::{
        asm::{self, Module},
        Instruction, Reg,
    };
    pub use sofia_transform::{
        install_fipac, seal_sponge, BlockFormat, FipacImage, SecureImage, SpongeImage,
        TransformReport, Transformer,
    };
}
