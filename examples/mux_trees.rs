//! Multiplexor trees (paper §II-D, Fig. 9): how SOFIA supports functions
//! with many callers, and what each extra caller costs.
//!
//! Also exports the instruction-level CFG of the demo program in
//! Graphviz DOT (pass `--dot`).
//!
//! ```text
//! cargo run --example mux_trees [--dot]
//! ```

use sofia::cfg::Cfg;
use sofia::prelude::*;

fn program_with_callers(k: usize) -> String {
    let mut src = String::from(".text\n.global main\nmain:\n    li s0, 0\n");
    for i in 0..k {
        src.push_str(&format!("    li a0, {i}\n    jal accumulate\n"));
    }
    src.push_str(
        "    li t0, 0xFFFF0000
    sw s0, 0(t0)
    halt
accumulate:
    add s0, s0, a0
    addi s0, s0, 1
    ret
",
    );
    src
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dot = std::env::args().any(|a| a == "--dot");
    let keys = KeySet::from_seed(99);

    println!("callers  tree-nodes  mux-blocks  total-blocks  sealed-bytes  cycles");
    for k in [1usize, 2, 3, 4, 5, 8, 12, 16, 24, 32] {
        let module = asm::parse(&program_with_callers(k))?;
        let image = Transformer::new(keys.clone()).transform(&module)?;
        let mut m = SofiaMachine::new(&image, &keys);
        let outcome = m.run(1_000_000)?;
        assert!(outcome.is_halted(), "k={k}: {outcome:?}");
        let expected: u32 = (0..k as u32).sum::<u32>() + k as u32;
        assert_eq!(m.mem().mmio.out_words, vec![expected]);
        println!(
            "{:>7}  {:>10}  {:>10}  {:>12}  {:>12}  {:>6}",
            k,
            image.report.tree_blocks,
            image.report.mux_blocks,
            image.report.blocks,
            image.text_bytes(),
            m.stats().exec.cycles
        );
    }
    println!("\nk callers cost exactly k-2 tree trampolines (k >= 3), as in Fig. 9.");

    if dot {
        let module = asm::parse(&program_with_callers(4))?;
        let cfg = Cfg::build(&module)?;
        println!("\n{}", cfg.to_dot(&module));
    }
    Ok(())
}
