//! Fleet serving: a software provider runs many tenants' sealed programs
//! on shared infrastructure — each tenant its own device keys, each
//! program sealed once, a violation quarantining only its tenant.
//!
//! ```text
//! cargo run --example fleet_serving --release
//! ```

use sofia::fleet::{Fleet, FleetConfig, JobSpec, QuarantinePolicy, Sabotage, SchedMode, TenantId};
use sofia::prelude::*;

fn main() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 4,
        mode: SchedMode::FuelSliced { slice: 2_000 },
        pool: sofia::prelude::PoolMode::WorkStealing,
        seal: sofia::fleet::SealMode::Farm,
        quarantine: QuarantinePolicy::Suspend,
        sofia: SofiaConfig {
            // Every device ships the verified-block cache.
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        },
    });

    // Three tenants: device-key domains that share nothing.
    let (fib_co, crc_co, dsp_co) = (TenantId(1), TenantId(2), TenantId(3));
    fleet
        .register_tenant(fib_co, KeySet::from_seed(0xF1B))
        .unwrap();
    fleet
        .register_tenant(crc_co, KeySet::from_seed(0xC3C))
        .unwrap();
    fleet
        .register_tenant(dsp_co, KeySet::from_seed(0xD59))
        .unwrap();

    // A mixed batch; the DSP tenant's second device is under attack
    // (one flipped ciphertext bit in its ROM).
    for _ in 0..2 {
        fleet
            .submit(JobSpec::new(
                fib_co,
                sofia_workloads::kernels::fib(400).source,
                10_000_000,
            ))
            .unwrap();
        fleet
            .submit(JobSpec::new(
                crc_co,
                sofia_workloads::kernels::crc32(64).source,
                10_000_000,
            ))
            .unwrap();
    }
    fleet
        .submit(JobSpec::new(
            dsp_co,
            sofia_workloads::adpcm::workload(120).source,
            10_000_000,
        ))
        .unwrap();
    fleet
        .submit(
            JobSpec::new(
                dsp_co,
                sofia_workloads::adpcm::workload(120).source,
                10_000_000,
            )
            .with_sabotage(Sabotage::FlipRomWord { word: 33, mask: 4 }),
        )
        .unwrap();

    let records = fleet.run_batch();
    println!("batch of {} jobs:", records.len());
    for r in &records {
        println!(
            "  {} {}: {:?}  ({} cycles, {} slices, waited {} ticks{})",
            r.job,
            r.tenant,
            r.outcome,
            r.cycles(),
            r.slices,
            r.queue_latency_ticks(),
            if r.seal_cache_hit {
                ", sealed image reused"
            } else {
                ""
            },
        );
    }

    let stats = fleet.stats();
    println!("\nper-tenant roll-up:");
    for (id, t) in &stats.tenants {
        println!(
            "  tenant#{id}: {} jobs, {} halted, {} violating, {} cycles, \
             vcache hit rate {:.1}%, seal cache {}h/{}m",
            t.jobs,
            t.halted,
            t.violating_jobs,
            t.cycles,
            t.vcache_hit_rate() * 100.0,
            t.seal_cache_hits,
            t.seal_cache_misses,
        );
    }
    println!(
        "\nbatch makespan: {} simulated cycles over {} scheduler ticks",
        stats.last_makespan_cycles, stats.last_ticks
    );

    // The DSP tenant is quarantined; everyone else keeps serving.
    let refused = fleet.submit(JobSpec::new(
        dsp_co,
        sofia_workloads::adpcm::workload(120).source,
        10_000_000,
    ));
    println!("\nDSP tenant after the violation: {}", refused.unwrap_err());
    assert!(fleet
        .submit(JobSpec::new(
            fib_co,
            sofia_workloads::kernels::fib(400).source,
            10_000_000,
        ))
        .is_ok());
    println!("fib tenant: still serving");
}
