//! Hardware design-space exploration with the calibrated Table I model:
//! how the cipher unrolling factor trades area against clock, and what
//! that means end-to-end for a real workload.
//!
//! ```text
//! cargo run --release --example hw_design_space
//! ```

use sofia::core::timing::SofiaTiming;
use sofia::core::SofiaConfig;
use sofia::crypto::KeySet;
use sofia::hwmodel;
use sofia::prelude::*;

use sofia_workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (v, paper) = hwmodel::table1();
    println!("Table I (calibrated model):");
    println!(
        "  vanilla: {:>6.0} slices @ {:.1} MHz",
        v.slices,
        v.clock_mhz()
    );
    println!(
        "  SOFIA  : {:>6.0} slices @ {:.1} MHz  (+{:.1}% area, {:.1}% slower clock)\n",
        paper.slices,
        paper.clock_mhz(),
        paper.area_overhead_vs(&v),
        paper.clock_slowdown_vs(&v)
    );

    // End-to-end: cycles depend on the cipher's issue rate; wall-clock on
    // the achievable frequency. Sweep the unrolling factor.
    let keys = KeySet::from_seed(0x44E5);
    let w = kernels::crc32(1024);
    let module = asm::parse(&w.source)?;
    let image = Transformer::new(keys.clone()).transform(&module)?;

    let plain = asm::assemble(&w.source)?;
    let mut vm = VanillaMachine::new(&plain);
    vm.run(100_000_000)?;
    let vanilla_time_us = vm.stats().cycles as f64 * v.period_ns / 1000.0;
    println!(
        "workload: crc32(1 KiB), vanilla {:.1} us @ {:.1} MHz\n",
        vanilla_time_us,
        v.clock_mhz()
    );

    println!("unroll  slices  clock(MHz)  cyc/op  cycles   time(us)  vs-vanilla");
    for hw in hwmodel::unroll_sweep() {
        let config = SofiaConfig {
            timing: SofiaTiming {
                cipher_issue_interval: if hw.pipelined { 1 } else { hw.cycles_per_op },
                cipher_latency: hw.cycles_per_op.max(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sm = SofiaMachine::with_config(&image, &keys, &config);
        let outcome = sm.run(100_000_000)?;
        assert!(outcome.is_halted());
        let cycles = sm.stats().exec.cycles;
        let time_us = cycles as f64 * hw.period_ns / 1000.0;
        println!(
            "{:>6}  {:>6.0}  {:>10.1}  {:>6}  {:>7}  {:>8.1}  {:>+9.1}%",
            hw.unroll,
            hw.slices,
            hw.clock_mhz(),
            hw.cycles_per_op,
            cycles,
            time_us,
            (time_us / vanilla_time_us - 1.0) * 100.0
        );
    }
    println!("\nThe paper's 13x unrolling is the end-to-end sweet spot: iterated");
    println!("designs keep the clock but starve the fetch unit; the single-cycle");
    println!("cipher wastes clock on every non-cipher path.");
    Ok(())
}
