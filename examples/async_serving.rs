//! Async serving: the `AsyncFleet` driver multiplexes many tenants over
//! a few host threads — weighted fair queueing across service classes,
//! typed admission-control backpressure, cold tenants parked to `SOFS1`
//! snapshot bytes — while every record stays bit-identical to serial
//! execution at any thread count.
//!
//! ```text
//! cargo run --example async_serving --release
//! ```

use sofia::crypto::KeySet;
use sofia::fleet::{
    AdmissionConfig, AsyncConfig, AsyncFleet, ClassConfig, ClassId, JobSpec, SchedMode, TenantId,
};

fn loop_job(tenant: TenantId, n: u32) -> JobSpec {
    let src = format!(
        "main: li t0, {n}
         loop: subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t0, 0(a0)
               halt"
    );
    JobSpec::new(tenant, src, 100_000)
}

fn main() {
    // Two service classes: interactive outweighs batch 4:1, and batch
    // accepts at most two queued jobs at a time.
    let mut admission = AdmissionConfig::default();
    admission.classes.insert(
        0,
        ClassConfig {
            weight: 4,
            ..Default::default()
        },
    );
    admission.classes.insert(
        1,
        ClassConfig {
            weight: 1,
            queue_cap: 2,
            ..Default::default()
        },
    );
    let (interactive, batch) = (ClassId(0), ClassId(1));

    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 4, // host threads — invisible to every result
        workers: 2, // virtual lanes per tick — part of the schedule model
        mode: SchedMode::FuelSliced { slice: 100 },
        admission,
        park_after: Some(1), // idle tenants collapse to snapshot bytes
        ..Default::default()
    });

    for id in 1..=4u32 {
        let class = if id <= 2 { interactive } else { batch };
        fleet
            .register_tenant(TenantId(id), KeySet::from_seed(0xA0 + id as u64), class)
            .unwrap();
    }

    // An open-loop arrival plan: interactive work trickles in over 30
    // virtual ticks; the batch tenants dump everything at tick 0.
    for round in 0..4u32 {
        fleet.submit_at(loop_job(TenantId(1), 20 + round), (round * 8) as u64);
        fleet.submit_at(loop_job(TenantId(2), 25 + round), (round * 8 + 3) as u64);
    }
    for round in 0..3u32 {
        fleet.submit_at(loop_job(TenantId(3), 150 + round), 0);
        fleet.submit_at(loop_job(TenantId(4), 160 + round), 0);
    }

    fleet.run_until_idle();

    println!("finished jobs (completion order):");
    for r in fleet.drain_finished() {
        println!(
            "  {} {}: {:?}  arrived t{}, done t{}, sojourn {} cycles",
            r.job, r.tenant, r.outcome, r.arrival_tick, r.end_tick, r.sojourn_cycles
        );
    }
    println!("\nrejected at admission (typed, deferred to the arrival tick):");
    for rej in fleet.drain_rejected() {
        println!(
            "  {} {} at t{}: {}",
            rej.job, rej.tenant, rej.tick, rej.error
        );
    }

    let s = fleet.stats();
    println!(
        "\n{} ticks, makespan {} cycles, {} admitted / {} rejected, \
         {} parks / {} revives, peak {} resident machines",
        s.ticks,
        s.makespan_cycles,
        s.admitted,
        s.rejected,
        s.parks,
        s.revives,
        s.peak_resident_machines
    );

    // Live backpressure: the batch queue cap refuses a sixth job *now*.
    for _ in 0..3 {
        let _ = fleet.submit(loop_job(TenantId(3), 99));
    }
    let refused = fleet.submit(loop_job(TenantId(3), 99));
    println!("batch tenant over cap: {}", refused.unwrap_err());
}
