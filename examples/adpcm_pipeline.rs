//! The paper's §IV-B experiment end to end: MediaBench IMA ADPCM encoded
//! and decoded on the vanilla and SOFIA machines, with the overhead table
//! the paper reports.
//!
//! ```text
//! cargo run --release --example adpcm_pipeline [samples]
//! ```

use sofia::prelude::*;
use sofia_workloads::adpcm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("IMA ADPCM over {samples} synthetic PCM samples\n");

    let workload = adpcm::workload(samples);

    // Vanilla baseline.
    let vanilla = workload
        .verify_on_vanilla()
        .map_err(|e| format!("vanilla: {e}"))?;

    // SOFIA.
    let keys = KeySet::from_seed(0xADCC);
    let (sofia, report) = workload
        .verify_on_sofia(&keys)
        .map_err(|e| format!("sofia: {e}"))?;

    // Table, paper-style.
    let (vhw, shw) = sofia::hwmodel::table1();
    let cyc_overhead = (sofia.exec.cycles as f64 / vanilla.cycles as f64 - 1.0) * 100.0;
    let time_overhead =
        (sofia.exec.cycles as f64 * shw.period_ns) / (vanilla.cycles as f64 * vhw.period_ns) - 1.0;

    println!("                     this repro        paper");
    println!(
        "text size          {:>7} -> {:<7}  6,976 -> 16,816 B",
        report.text_bytes_in, report.text_bytes_out
    );
    println!("expansion          {:>14.2}x  2.41x", report.expansion());
    println!(
        "cycles             {:>8} -> {:<10}  114,188,673 -> 130,840,013",
        vanilla.cycles, sofia.exec.cycles
    );
    println!("cycle overhead     {cyc_overhead:>14.1}%  13.7%");
    println!("time overhead      {:>14.1}%  110%", time_overhead * 100.0);
    println!();
    println!("SOFIA breakdown:");
    println!("  blocks fetched        {}", sofia.blocks);
    println!("  mac words as nops     {}", sofia.mac_nop_slots);
    println!(
        "  cipher ops (ctr/cbc)  {}/{}",
        sofia.ctr_ops, sofia.cbc_ops
    );
    println!("  redirect fill cycles  {}", sofia.redirect_fill_cycles);
    println!("  icache stall cycles   {}", sofia.exec.icache_stall_cycles);
    println!(
        "  vanilla CPI {:.2} -> sofia CPI {:.2} (per executed slot)",
        vanilla.cpi(),
        sofia.exec.cpi()
    );
    Ok(())
}
