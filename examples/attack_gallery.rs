//! The full attack matrix of the paper's threat model, run against both
//! machines: code injection (plaintext and CTR-malleability), block
//! relocation, cross-version splicing, and control-flow hijack by data
//! poisoning and by PC fault injection.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use sofia::attacks::{forgery, hijack, injection, relocation, Verdict};
use sofia::crypto::KeySet;

fn show(name: &str, machine: &str, v: &Verdict) {
    println!("  {name:<34} {machine:<8} {v}");
}

fn main() {
    let keys = KeySet::from_seed(0xA77AC);
    println!("attack                             target   verdict");
    println!("{}", "-".repeat(78));

    show(
        "code injection (imm rewrite)",
        "vanilla",
        &injection::inject_vanilla(),
    );
    show(
        "code injection (plaintext write)",
        "sofia",
        &injection::inject_sofia(&keys, true, true),
    );
    show(
        "code injection (CTR malleability)",
        "sofia",
        &injection::inject_sofia(&keys, true, false),
    );
    show(
        "code injection (CTR malleability)",
        "cfi-only",
        &injection::inject_sofia(&keys, false, false),
    );

    show(
        "instruction reorder",
        "vanilla",
        &relocation::swap_code_vanilla(),
    );
    show(
        "block relocation (swap 0,1)",
        "sofia",
        &relocation::swap_blocks_sofia(&keys, 0, 1),
    );
    show(
        "cross-version splice (nonce)",
        "sofia",
        &relocation::cross_version_splice(&keys),
    );

    show(
        "ROP-style data poisoning",
        "vanilla",
        &hijack::poison_vanilla(),
    );
    show(
        "ROP-style data poisoning",
        "sofia",
        &hijack::poison_sofia(&keys),
    );
    show(
        "PC fault injection",
        "vanilla",
        &hijack::fault_inject_vanilla(),
    );
    show(
        "PC fault injection (block 2)",
        "sofia",
        &hijack::fault_inject_sofia(&keys, 2),
    );
    show(
        "PC fault injection (block 4)",
        "sofia",
        &hijack::fault_inject_sofia(&keys, 4),
    );

    println!("\nonline MAC forgery (Monte-Carlo on truncated MACs, 2^15 trials):");
    println!("  bits  accepted  expected  measured-rate");
    for c in forgery::scaling_series(&keys, &[4, 8, 12], 1 << 15, 7) {
        println!(
            "  {:>4}  {:>8}  {:>8.1}  {:.6}",
            c.mac_bits,
            c.accepted,
            c.expected,
            c.measured_rate()
        );
    }
    println!(
        "  extrapolated to 64 bits: {:.0} expected years online (paper: 46,795)",
        sofia::core::security::paper_si_attack_years()
    );
}
