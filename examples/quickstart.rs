//! Quickstart: write a program, install it securely, run it on SOFIA,
//! and watch the architecture stop a tampered copy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sofia::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small bare-metal program: sum 1..=10, report via MMIO.
    let source = r#"
        .text
        .global main
    main:
        li   t0, 10
        li   t1, 0
    loop:
        add  t1, t1, t0
        subi t0, t0, 1
        bnez t0, loop
        li   a0, 0xFFFF0000      # MMIO word-output port
        sw   t1, 0(a0)
        halt
    "#;
    let module = asm::parse(source)?;

    // 2. The baseline: an unprotected LEON3-like core.
    let plain = asm::assemble(source)?;
    let mut vanilla = VanillaMachine::new(&plain);
    vanilla.run(100_000)?;
    println!(
        "vanilla : out={:?}  cycles={}",
        vanilla.mem().mmio.out_words,
        vanilla.stats().cycles
    );

    // 3. Secure installation: MAC-then-Encrypt under device keys.
    let keys = KeySet::from_seed(2026);
    let image = Transformer::new(keys.clone()).transform(&module)?;
    println!(
        "sealed  : {} B -> {} B ({:.2}x), {} blocks ({} mux)",
        image.report.text_bytes_in,
        image.report.text_bytes_out,
        image.report.expansion(),
        image.report.blocks,
        image.report.mux_blocks,
    );

    // 4. The SOFIA machine runs it with identical results.
    let mut sofia = SofiaMachine::new(&image, &keys);
    let outcome = sofia.run(100_000)?;
    assert!(outcome.is_halted());
    println!(
        "sofia   : out={:?}  cycles={}  (+{:.1}% cycles)",
        sofia.mem().mmio.out_words,
        sofia.stats().exec.cycles,
        (sofia.stats().exec.cycles as f64 / vanilla.stats().cycles as f64 - 1.0) * 100.0
    );
    assert_eq!(sofia.mem().mmio.out_words, vanilla.mem().mmio.out_words);

    // 5. Tamper with one ciphertext bit: the SI unit resets the core
    //    before a single instruction of the tampered block executes.
    let mut tampered = SofiaMachine::new(&image, &keys);
    tampered.mem_mut().rom_mut()[4] ^= 1;
    let outcome = tampered.run(100_000)?;
    println!("tampered: {outcome:?}");
    assert!(matches!(
        outcome,
        RunOutcome::ViolationStop(Violation::MacMismatch { .. })
    ));

    // 6. The same tampering on the unprotected core goes unnoticed (it
    //    either silently corrupts the result or crashes much later).
    let mut tampered_vanilla = VanillaMachine::new(&plain);
    tampered_vanilla.mem_mut().rom_mut()[2] ^= 1 << 3;
    match tampered_vanilla.run(100_000) {
        Ok(r) => println!(
            "vanilla tampered: {r:?} out={:?} (silently wrong)",
            tampered_vanilla.mem().mmio.out_words
        ),
        Err(trap) => println!("vanilla tampered: crashed late: {trap}"),
    }
    Ok(())
}
