//! Job migration: a fuel-sliced job is suspended in one fleet,
//! checkpointed to bytes (no ciphertext, no keys, no decrypted
//! plaintext — just architectural state and a sealed resume edge),
//! carried to a freshly constructed fleet on a different worker
//! configuration, and finished there with the exact result, statistics
//! and simulated cycle count an unmigrated run produces.
//!
//! ```text
//! cargo run --example migrate_job --release
//! ```

use sofia::fleet::{Fleet, FleetConfig, JobCheckpoint, JobSpec, PoolMode, SchedMode, TenantId};
use sofia::prelude::*;

fn fleet(workers: usize, pool: PoolMode) -> Fleet {
    let mut f = Fleet::new(FleetConfig {
        workers,
        mode: SchedMode::FuelSliced { slice: 2_000 },
        pool,
        sofia: SofiaConfig {
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        },
        ..Default::default()
    });
    f.register_tenant(TenantId(1), KeySet::from_seed(0x0DE1))
        .unwrap();
    f
}

fn main() {
    let program = sofia_workloads::adpcm::workload(400).source;
    let fuel = 50_000_000;

    // The unmigrated reference: one fleet runs the job to completion.
    let mut home = fleet(4, PoolMode::WorkStealing);
    home.submit(JobSpec::new(TenantId(1), program.clone(), fuel))
        .unwrap();
    let reference = home.run_batch().remove(0);
    println!(
        "reference   : {:?}, {} slices, {} simulated cycles",
        reference.outcome, reference.slices, reference.stats.exec.cycles
    );

    // The migrating run: fleet A serves three quanta, then suspends.
    let mut fleet_a = fleet(4, PoolMode::WorkStealing);
    fleet_a
        .submit(JobSpec::new(TenantId(1), program, fuel))
        .unwrap();
    let finished_early = fleet_a.run_batch_capped(3);
    assert!(finished_early.is_empty(), "job should still be in flight");
    let id = fleet_a.queued_jobs()[0];

    // Checkpoint → bytes. This is everything that leaves the host.
    let ckpt = fleet_a.checkpoint_job(id).unwrap();
    let bytes = ckpt.to_bytes();
    let snap = ckpt.machine.as_ref().unwrap();
    println!(
        "checkpoint  : {} bytes ({} RAM pages, {} warm vcache edges, resume edge {:#010x}->{:#010x})",
        bytes.len(),
        snap.ram_pages.len(),
        snap.vcache_lines.len(),
        snap.prev_pc,
        snap.next_target,
    );

    // Fleet B is a different pool shape on (conceptually) another host:
    // it re-seals the tenant's program under its own registration of
    // the device keys, re-verifies every warm cache line against the
    // sealed image, and resumes mid-program.
    let mut fleet_b = fleet(2, PoolMode::SharedQueue);
    let decoded = JobCheckpoint::from_bytes(&bytes).expect("checkpoint survived transit");
    fleet_b.adopt_job(decoded).unwrap();
    let migrated = fleet_b.run_batch().remove(0);
    println!(
        "migrated    : {:?}, {} slices, {} simulated cycles",
        migrated.outcome, migrated.slices, migrated.stats.exec.cycles
    );

    assert_eq!(migrated.outcome, reference.outcome);
    assert_eq!(migrated.out_words, reference.out_words);
    assert_eq!(migrated.stats, reference.stats);
    assert_eq!(migrated.slice_cycles, reference.slice_cycles);
    println!("bit-identical to the unmigrated run — results, stats, cycles.");

    // And the security half: a forged resume edge in the same bytes is
    // caught on the first resumed fetch in the adopting fleet.
    let mut forged = JobCheckpoint::from_bytes(&bytes).unwrap();
    if let Some(snap) = forged.machine.as_mut() {
        snap.prev_pc ^= 4;
    }
    let mut fleet_c = fleet(2, PoolMode::SharedQueue);
    fleet_c.adopt_job(forged).unwrap();
    let verdict = fleet_c.run_batch().remove(0);
    assert!(
        verdict.outcome.is_violation(),
        "forged edge must be detected, got {:?}",
        verdict.outcome
    );
    println!(
        "forged edge : {:?} — detected on the first resumed fetch.",
        verdict.violations[0]
    );
}
