//! The pluggable integrity backends side by side: the same workload on
//! SOFIA (MAC-then-Encrypt blocks), the sponge-CFP fetch unit (implicit
//! integrity via decrypt-absorb) and the FIPAC-style fetch unit (keyed
//! CFI state, checked at signature points) — then the same tamper, to
//! show *when* each scheme detects, and the cross-backend attack matrix.
//!
//! ```text
//! cargo run --example backend_gallery --release
//! ```

use sofia::attacks::xbackend;
use sofia::backends::BackendOutcome;
use sofia::crypto::{KeySet, Nonce};
use sofia::prelude::*;
use sofia_workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let keys = KeySet::from_seed(0x5EC6);
    let workload = kernels::crc32(64);
    let module = workload.module();

    // Baseline.
    let mut vm = VanillaMachine::new(&workload.assembly());
    vm.run(100_000_000)?;
    let vanilla_cycles = vm.stats().cycles;
    println!(
        "workload {} — vanilla: {vanilla_cycles} cycles\n",
        workload.name
    );

    // The three protected machines, clean.
    let image = Transformer::new(keys.clone()).transform(&module)?;
    let mut sofia_m = SofiaMachine::new(&image, &keys);
    sofia_m.run(100_000_000)?;

    let sponge_img = seal_sponge(&module, &keys, Nonce::new(1))?;
    let mut sponge_m = SpongeMachine::new(&sponge_img, &keys);
    sponge_m.run(100_000_000)?;

    let fipac_img = install_fipac(&module, &keys, Nonce::new(1))?;
    let mut fipac_m = FipacMachine::new(&fipac_img, &keys);
    fipac_m.run(100_000_000)?;

    let pct = |c: u64| (c as f64 / vanilla_cycles as f64 - 1.0) * 100.0;
    println!("  backend   cycles      overhead   slices   clock");
    for (label, cycles, hw) in [
        (
            "sofia",
            sofia_m.stats().exec.cycles,
            sofia::hwmodel::sofia(sofia::hwmodel::PAPER_UNROLL),
        ),
        (
            "sponge",
            sponge_m.stats().cycles,
            sofia::hwmodel::sponge_cfp(),
        ),
        ("fipac", fipac_m.stats().cycles, sofia::hwmodel::fipac()),
    ] {
        println!(
            "  {label:<8} {cycles:>9}   {:>+8.1}%   {:>6.0}   {:>5.1} MHz",
            pct(cycles),
            hw.slices,
            hw.clock_mhz()
        );
    }

    // The same tamper against each backend: flip a bit mid-program and
    // watch *when* the schemes notice.
    println!("\nbit-flip in the stored image, word 4:");

    let mut m = SofiaMachine::new(&image, &keys);
    m.mem_mut().rom_mut()[4] ^= 1;
    let outcome = m.run(100_000_000)?;
    println!(
        "  sofia:  {outcome:?} after {} instructions (block refused pre-execution)",
        m.stats().exec.instret
    );

    let mut m = SpongeMachine::new(&sponge_img, &keys);
    m.mem_mut().rom_mut()[4] ^= 1;
    let outcome = m.run(100_000_000);
    println!(
        "  sponge: {} after {} instructions (chain desynchronises; only garbage follows)",
        describe(outcome),
        m.stats().instret
    );

    let mut m = FipacMachine::new(&fipac_img, &keys);
    m.mem_mut().rom_mut()[4] ^= 1;
    let outcome = m.run(100_000_000);
    println!(
        "  fipac:  {} after {} instructions (runs until the next signature point)",
        describe(outcome),
        m.stats().instret
    );

    // The discriminating rows.
    println!("\nattack matrix:");
    println!(
        "  {:<16} {:<22} {:<22} {:<22}",
        "attack", "sofia", "sponge", "fipac"
    );
    for row in xbackend::matrix(&keys) {
        println!(
            "  {:<16} {:<22} {:<22} {:<22}",
            row.attack,
            row.sofia.label(),
            row.sponge.label(),
            row.fipac.label()
        );
    }
    Ok(())
}

fn describe<V: std::fmt::Debug, E: std::fmt::Debug>(
    outcome: Result<BackendOutcome<V>, E>,
) -> String {
    match outcome {
        Ok(BackendOutcome::ViolationStop(v)) => format!("ViolationStop({v:?})"),
        Ok(other) => format!("{other:?}"),
        // A trap is a contained outcome too: the garbled word executed
        // briefly and crashed before achieving anything.
        Err(t) => format!("trap {t:?}"),
    }
}
