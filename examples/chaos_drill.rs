//! Chaos drill: a seeded fault storm against a self-healing fleet.
//!
//! Act 1 warms four tenants on an `AsyncFleet`, swaps in a hot
//! [`ChaosPlan`] (seal failures, worker stalls, injected worker deaths,
//! rotting snapshots), and lets the resilience layer — retry budgets
//! with jittered backoff, a class-level circuit breaker, the graceful
//! degradation ladder — ride it out. Every strike and every recovery
//! decision lands in one typed event ledger; nothing panics. The same
//! seed always replays the same storm.
//!
//! Act 2 drills the storage seam the driver can't see: a job checkpoint
//! serialized for migration is truncated in transit. The corruption is
//! caught as a typed decode error (never a crash), recorded in the same
//! ledger via [`AsyncFleet::note_harness_fault`], and recovered by
//! re-reading the pristine bytes and adopting them normally.
//!
//! ```text
//! cargo run --example chaos_drill --release
//! ```

use sofia::crypto::KeySet;
use sofia::fleet::{
    AsyncConfig, AsyncFleet, ChaosPlan, ClassId, FaultRate, Fleet, FleetConfig, JobCheckpoint,
    JobSpec, ResilienceConfig, ResilienceEvent, SchedMode, Seam, TenantId,
};

fn loop_job(tenant: TenantId, n: u32) -> JobSpec {
    let src = format!(
        "main: li t0, {n}
               li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt"
    );
    JobSpec::new(tenant, src, 100_000)
}

fn submit_round(fleet: &mut AsyncFleet, round: u32) {
    for id in 1..=4u32 {
        fleet
            .submit(loop_job(TenantId(id), 10 + 5 * id + round))
            .unwrap();
    }
}

fn served(fleet: &mut AsyncFleet) -> (usize, usize) {
    let records = fleet.drain_finished();
    let ok = records.iter().filter(|r| r.outcome.is_halted()).count();
    (ok, records.len())
}

fn main() {
    // ---- Act 1: warm, storm, recover ------------------------------
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 4,
        workers: 2,
        mode: SchedMode::FuelSliced { slice: 100 },
        park_after: Some(2),
        resilience: ResilienceConfig::standard(),
        ..Default::default() // chaos: ChaosPlan::none() — calm for now
    });
    for id in 1..=4u32 {
        fleet
            .register_tenant(
                TenantId(id),
                KeySet::from_seed(0xD1A7 + id as u64),
                ClassId(0),
            )
            .unwrap();
    }

    submit_round(&mut fleet, 0);
    fleet.run_until_idle();
    let (ok, total) = served(&mut fleet);
    println!("calm   : {ok}/{total} jobs halted, 0 faults (plan is ChaosPlan::none)");

    // The storm: every seam armed at 8 % per lane-tick, one seed.
    fleet.set_chaos_plan(ChaosPlan::uniform(0xBAD5_EED5, FaultRate::ppm(80_000)));
    for round in 1..=3u32 {
        submit_round(&mut fleet, round);
    }
    fleet.run_until_idle();
    let (ok, total) = served(&mut fleet);
    let res = fleet.resilience_stats();
    println!(
        "storm  : {ok}/{total} jobs halted through {} injected faults \
         (seal {}, stall {}, panic {}, snapshot {})",
        res.faults_injected,
        res.seal_faults,
        res.worker_stalls,
        res.worker_panics_injected,
        res.snapshot_corruptions,
    );
    println!(
        "         survival: {} retries, {} breaker opens (open {} ticks), {} degradations",
        res.retries_scheduled,
        res.breaker_opens,
        res.breaker_open_ticks,
        res.vcache_off_tenants + res.scalar_fallbacks + res.inline_seal_fallbacks,
    );
    println!("         typed event ledger (first strikes and recoveries):");
    for event in fleet.drain_resilience_events().iter().take(8) {
        match event {
            ResilienceEvent::FaultInjected {
                tick, seam, job, ..
            } => {
                println!("           t{tick:<4} fault    {seam:?} {job:?}")
            }
            ResilienceEvent::RetryScheduled {
                tick,
                job,
                attempt,
                resume_tick,
                ..
            } => println!(
                "           t{tick:<4} retry    {job} attempt {attempt} → resumes t{resume_tick}"
            ),
            other => println!("           {other:?}"),
        }
    }

    // Calm again: installing ChaosPlan::none() stops injection at once.
    fleet.set_chaos_plan(ChaosPlan::none());
    submit_round(&mut fleet, 9);
    fleet.run_until_idle();
    let (ok, total) = served(&mut fleet);
    let after = fleet.resilience_stats().faults_injected;
    assert_eq!(after, res.faults_injected, "faults after the storm ended");
    println!("healed : {ok}/{total} jobs halted, fault counter frozen at {after}");

    // ---- Act 2: checkpoint truncation in transit ------------------
    let mut home = Fleet::new(FleetConfig {
        workers: 2,
        mode: SchedMode::FuelSliced { slice: 400 },
        ..Default::default()
    });
    home.register_tenant(TenantId(1), KeySet::from_seed(0x0DE1))
        .unwrap();
    home.submit(loop_job(TenantId(1), 2_000)).unwrap();
    assert!(home.run_batch_capped(2).is_empty(), "job still in flight");
    let id = home.queued_jobs()[0];
    let pristine = home.checkpoint_job(id).unwrap().to_bytes();

    // The chaos plan truncates the bytes "on the wire" — a storage /
    // transport fault the driver itself never sees.
    let plan = ChaosPlan {
        checkpoint_truncation: FaultRate::ALWAYS,
        ..ChaosPlan::none()
    };
    let mut wire = pristine.clone();
    assert!(plan.truncate_checkpoint(&mut wire, 0, id.0));
    let err = JobCheckpoint::from_bytes(&wire).unwrap_err();
    fleet.note_harness_fault(Seam::Checkpoint, None, Some(TenantId(1)));
    println!(
        "\ntransit: checkpoint truncated {} → {} bytes, caught typed: {err:?}",
        pristine.len(),
        wire.len()
    );

    // Recovery: re-read from the source of truth and adopt normally.
    let mut away = Fleet::new(FleetConfig {
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 400 },
        ..Default::default()
    });
    away.register_tenant(TenantId(1), KeySet::from_seed(0x0DE1))
        .unwrap();
    away.adopt_job(JobCheckpoint::from_bytes(&pristine).unwrap())
        .unwrap();
    let record = away.run_batch().remove(0);
    assert!(record.outcome.is_halted(), "recovered run must finish");
    println!(
        "recover: pristine re-read adopted and finished — {:?}, out {:?}",
        record.outcome, record.out_words
    );
    println!(
        "ledger : {} harness-seam faults recorded alongside the driver's own",
        fleet.resilience_stats().checkpoint_truncations
    );
}
