//! The asm → encode → disasm → asm round trip: any program this
//! assembler lays out can be disassembled back into source
//! ([`disasm::reassemble`]) that re-assembles to the identical binary —
//! words, data bytes and entry point, bit for bit.
//!
//! Programs are generated from a seed (labels, ragged data, every
//! instruction form) with the same seed-expansion idiom as
//! `sofia_workloads::gen::random_program`, whose corpus drives the
//! differential suite; `tests/differential.rs` replays this round trip
//! over that corpus, so the two suites check the same loop from both
//! ends.

use proptest::prelude::*;
use sofia_isa::asm::{self, LayoutOptions};
use sofia_isa::{disasm, Reg};

/// SplitMix64: expands one proptest-drawn seed into a program, so any
/// failure replays from the printed seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> &'static str {
        const COUNT: u64 = 32;
        let idx = self.below(COUNT) as u8;
        Reg::all().nth(idx as usize).unwrap().name()
    }
}

/// One non-control instruction line, drawn from every form the ISA has.
fn body_line(rng: &mut Rng) -> String {
    const ALU3: [&str; 13] = [
        "add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "mul", "div", "divu", "rem", "remu",
    ];
    const VSHIFT: [&str; 3] = ["sllv", "srlv", "srav"];
    const ISHIFT: [&str; 3] = ["sll", "srl", "sra"];
    const IARITH: [&str; 3] = ["addi", "slti", "sltiu"];
    const ILOGIC: [&str; 3] = ["andi", "ori", "xori"];
    const MEM: [&str; 8] = ["lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw"];
    match rng.below(10) {
        0 => {
            let m = ALU3[rng.below(13) as usize];
            format!("{m} {}, {}, {}", rng.reg(), rng.reg(), rng.reg())
        }
        1 => {
            let m = VSHIFT[rng.below(3) as usize];
            format!("{m} {}, {}, {}", rng.reg(), rng.reg(), rng.reg())
        }
        2 => {
            let m = ISHIFT[rng.below(3) as usize];
            format!("{m} {}, {}, {}", rng.reg(), rng.reg(), rng.below(32))
        }
        3 => {
            let m = IARITH[rng.below(3) as usize];
            let imm = rng.below(65536) as i64 - 32768;
            format!("{m} {}, {}, {imm}", rng.reg(), rng.reg())
        }
        4 => {
            let m = ILOGIC[rng.below(3) as usize];
            format!(
                "{m} {}, {}, {:#x}",
                rng.reg(),
                rng.reg(),
                rng.below(0x10000)
            )
        }
        5 => format!("lui {}, {:#x}", rng.reg(), rng.below(0x10000)),
        6 => {
            let m = MEM[rng.below(8) as usize];
            let offset = rng.below(256) as i64 - 128;
            format!("{m} {}, {offset}({})", rng.reg(), rng.reg())
        }
        7 => format!("jr {}", rng.reg()),
        8 => format!("jalr {}, {}", rng.reg(), rng.reg()),
        _ => "nop".to_string(),
    }
}

/// A random module: labelled blocks wired by branches and jumps, a
/// `.global` entry, and (usually) a ragged data section.
fn random_module_source(seed: u64) -> String {
    let mut rng = Rng(seed);
    let blocks = 2 + rng.below(5);
    let mut src = String::from(".text\n");
    src.push_str(&format!(".global b{}\n", rng.below(blocks)));
    const BRANCH: [&str; 6] = ["beq", "bne", "blt", "bge", "bltu", "bgeu"];
    for b in 0..blocks {
        src.push_str(&format!("b{b}:\n"));
        for _ in 0..1 + rng.below(6) {
            src.push_str("    ");
            src.push_str(&body_line(&mut rng));
            src.push('\n');
        }
        let target = rng.below(blocks);
        let terminator = match rng.below(4) {
            0 => format!(
                "{} {}, {}, b{target}",
                BRANCH[rng.below(6) as usize],
                rng.reg(),
                rng.reg()
            ),
            1 => format!("j b{target}"),
            2 => format!("jal b{target}"),
            _ => "halt".to_string(),
        };
        src.push_str(&format!("    {terminator}\n"));
    }
    src.push_str("    halt\n");
    if rng.below(4) > 0 {
        src.push_str(".data\n");
        for d in 0..1 + rng.below(8) {
            if rng.below(2) == 0 {
                src.push_str(&format!("d{d}:\n"));
            }
            let item = match rng.below(6) {
                0 => format!(
                    ".byte {}, {}, {}",
                    rng.below(256),
                    rng.below(256),
                    rng.below(256)
                ),
                1 => format!(".half {:#x}", rng.below(0x10000)),
                2 => format!(".word {:#x}", rng.next() as u32),
                3 => format!(".word b{}", rng.below(blocks)),
                4 => format!(".space {}", 1 + rng.below(9)),
                _ => format!(".align {}", 1 << (1 + rng.below(3))),
            };
            src.push_str(&format!("    {item}\n"));
        }
        src.push_str("    .strz \"ragged\"\n");
    }
    src
}

/// Asserts the full loop on `src`: assemble, reassemble, re-assemble,
/// compare binaries — and check the reassembled form is a fixed point.
fn assert_roundtrip(what: &str, src: &str) {
    let a = asm::assemble(src).unwrap_or_else(|e| panic!("{what}: assemble: {e}"));
    let rsrc = disasm::reassemble(&a).unwrap_or_else(|| panic!("{what}: reassemble refused"));
    let b = asm::assemble(&rsrc).unwrap_or_else(|e| panic!("{what}: re-assemble: {e}\n{rsrc}"));
    assert_eq!(a.words, b.words, "{what}: text diverged\n{rsrc}");
    assert_eq!(a.data, b.data, "{what}: data diverged\n{rsrc}");
    assert_eq!(a.entry, b.entry, "{what}: entry diverged\n{rsrc}");
    // Idempotence: reassembling the reassembled binary changes nothing.
    assert_eq!(
        disasm::reassemble(&b).expect("reassembled output reassembles"),
        rsrc,
        "{what}: reassembly is not a fixed point"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_programs_roundtrip(seed in any::<u64>()) {
        let src = random_module_source(seed);
        assert_roundtrip(&format!("seed {seed:#x}"), &src);
    }
}

#[test]
fn every_instruction_form_roundtrips() {
    // One of each instruction form, including both jalr spellings, the
    // canonical nop, negative/hex immediates, and forward and backward
    // branch targets — deterministic coverage the random draw only
    // approaches probabilistically.
    let src = "\
.text
.global main
main:
    add t0, t1, t2
    sub s0, s1, s2
    and a0, a1, a2
    or v0, v1, t3
    xor t4, t5, t6
    nor t7, t8, t9
    slt k0, k1, gp
    sltu r1, fp, ra
    mul t0, t1, t2
    div t0, t1, t2
    divu t0, t1, t2
    rem t0, t1, t2
    remu t0, t1, t2
    sllv t0, t1, t2
    srlv t0, t1, t2
    srav t0, t1, t2
    sll t0, t1, 5
    srl t0, t1, 31
    sra t0, t1, 0
    nop
    jr t0
    jalr t1
    jalr s0, s1
    addi t0, zero, -5
    slti t0, t1, 100
    sltiu t0, t1, 7
    andi t0, t1, 0xff
    ori t0, t1, 0xabc
    xori t0, t1, 0xffff
    lui t0, 0x1234
    lb t0, -4(sp)
    lbu t0, 0(sp)
    lh t0, 2(sp)
    lhu t0, 4(sp)
    lw t0, 8(sp)
    sb t0, -1(sp)
    sh t0, 6(sp)
    sw t0, 12(sp)
    beq t0, t1, main
    bne t0, t1, main
    blt t0, t1, fwd
    bge t0, t1, fwd
    bltu t0, t1, fwd
    bgeu t0, t1, fwd
fwd:
    j main
    jal fwd2
fwd2:
    halt
.data
    .byte 1, 2, 255
    .half 0xBEEF
    .word 0xDEADBEEF
    .word main
    .space 3
    .align 8
    .strz \"round-trip\"
";
    assert_roundtrip("every-form", src);
}

#[test]
fn custom_bases_roundtrip() {
    // The loop holds at non-default bases too, provided re-layout uses
    // the same ones.
    let m = asm::parse("main: la a0, tbl\n jal f\n halt\nf: ret\n.data\ntbl: .word f, 9").unwrap();
    let opts = LayoutOptions {
        text_base: 0x4000,
        data_base: 0x2000_0000,
    };
    let a = m.layout(&opts).unwrap();
    let rsrc = disasm::reassemble(&a).expect("reassembles");
    let b = asm::parse(&rsrc).unwrap().layout(&opts).unwrap();
    assert_eq!(a.words, b.words);
    assert_eq!(a.data, b.data);
    assert_eq!(a.entry, b.entry);
}

#[test]
fn reassemble_refuses_garbage() {
    let mut a = asm::assemble("main: nop\n halt").unwrap();
    // An undecodable word (ciphertext, tampering) has no source form.
    a.words[0] = 0xFFFF_FFFF;
    assert!(disasm::reassemble(&a).is_none());
    // A branch out of the text section has no label to target.
    let mut b = asm::assemble("main: beq zero, zero, main\n halt").unwrap();
    b.words[0] = sofia_isa::Instruction::Beq {
        rs: Reg::ZERO,
        rt: Reg::ZERO,
        offset: 1000,
    }
    .encode();
    assert!(disasm::reassemble(&b).is_none());
}
