//! The SL32 two-pass assembler.
//!
//! [`parse`] turns source text into a symbolic [`Module`] — instructions
//! whose branch/jump/address operands may still reference labels via
//! [`Reloc`] entries. [`Module::layout`] (or the [`assemble`] convenience
//! wrapper) assigns addresses and patches every relocation, producing a
//! flat [`Assembly`].
//!
//! Keeping the symbolic form public is deliberate: SOFIA's secure
//! installer (`sofia-transform`) re-packs instructions into execution and
//! multiplexor blocks, which moves every address; it therefore consumes the
//! [`Module`] and performs its own layout before resolving relocations.
//!
//! # Syntax overview
//!
//! ```text
//! # comment       (also `//`)
//!     .text
//!     .global main            # entry point
//! main:
//!     li   t0, 1000           # pseudo: expands to addi / lui+ori
//!     la   a0, table          # pseudo: lui+ori with hi/lo relocations
//! loop:
//!     lw   t1, 0(a0)
//!     addi a0, a0, 4
//!     subi t0, t0, 1
//!     bnez t0, loop
//!     jal  helper
//!     halt
//!
//!     .data
//! table:
//!     .word 1, 2, 3, 0x10
//!     .half 7
//!     .byte 'x'
//!     .space 64
//!     .align 4
//!     .strz "hello"
//! ```
//!
//! Supported directives: `.text .data .global .equ .word .half .byte
//! .space .align .str .strz .indirect`. `.indirect t1, t2` declares the
//! possible targets of the *next* `jalr`/`jr`, giving the transformer the
//! function-pointer edges of the CFG (paper §II-D).

mod layout;
mod parser;

use std::collections::BTreeMap;

use crate::error::AsmError;
use crate::Instruction;

pub use layout::{apply_reloc, layout_data, Assembly, LayoutOptions};

/// Default base address of the text section.
///
/// The sub-page below `0x100` is reserved so that the `prevPC` reset
/// sentinel used by SOFIA can never alias a real instruction address.
pub const DEFAULT_TEXT_BASE: u32 = 0x100;

/// Default base address of the data section.
pub const DEFAULT_DATA_BASE: u32 = 0x1000_0000;

/// How a symbolic operand of an instruction must be patched at layout time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reloc {
    /// Signed 16-bit word offset to a label, relative to `pc + 4`
    /// (conditional branches).
    Branch(String),
    /// 26-bit word index of a label within the same 256 MiB region
    /// (`j`/`jal`).
    Jump(String),
    /// Upper 16 bits of a label's address (`lui` half of `la`).
    Hi(String),
    /// Lower 16 bits of a label's address (`ori` half of `la`).
    Lo(String),
}

impl Reloc {
    /// The label this relocation refers to.
    pub fn label(&self) -> &str {
        match self {
            Reloc::Branch(l) | Reloc::Jump(l) | Reloc::Hi(l) | Reloc::Lo(l) => l,
        }
    }
}

/// One instruction slot in the text section of a [`Module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextItem {
    /// Labels defined at this instruction's address.
    pub labels: Vec<String>,
    /// The instruction, with a zero placeholder in any relocated field.
    pub inst: Instruction,
    /// How to patch the instruction once addresses are known.
    pub reloc: Option<Reloc>,
    /// Possible targets declared with `.indirect` (only on `jalr`/`jr`).
    pub indirect_targets: Vec<String>,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

/// A raw value in the data section: a constant or a label's address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymValue {
    /// A literal value.
    Const(u32),
    /// The address of a label (text or data), patched at layout time.
    /// This is how function-pointer tables are built.
    Label(String),
}

/// One datum in the data section of a [`Module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// A 32-bit word (auto-aligned to 4 bytes).
    Word(SymValue),
    /// A 16-bit half-word (auto-aligned to 2 bytes).
    Half(u16),
    /// A single byte.
    Byte(u8),
    /// `n` zero bytes.
    Space(u32),
    /// Pad with zero bytes to an `n`-byte boundary (`n` a power of two).
    Align(u32),
    /// Raw bytes from a string literal.
    Bytes(Vec<u8>),
}

/// A labelled datum in the data section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataItem {
    /// Labels defined at this datum's address.
    pub labels: Vec<String>,
    /// The datum itself.
    pub kind: DataKind,
    /// 1-based source line.
    pub line: usize,
}

/// A parsed, symbolic SL32 program: the unit consumed both by the plain
/// assembler ([`Module::layout`]) and by SOFIA's secure installer.
///
/// # Examples
///
/// ```
/// use sofia_isa::asm;
///
/// let module = asm::parse(".text\nmain: halt\n")?;
/// assert_eq!(module.text.len(), 1);
/// let assembly = module.layout(&asm::LayoutOptions::default())?;
/// assert_eq!(assembly.words.len(), 1);
/// # Ok::<(), sofia_isa::error::AsmError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// Instructions in program order.
    pub text: Vec<TextItem>,
    /// Data items in layout order.
    pub data: Vec<DataItem>,
    /// The entry label from `.global`, if any (defaults to `main`, then to
    /// the first instruction).
    pub entry: Option<String>,
    /// Compile-time constants from `.equ` (kept for tooling/debugging).
    pub constants: BTreeMap<String, i64>,
}

impl Module {
    /// All labels defined in the module, in definition order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.text
            .iter()
            .flat_map(|t| t.labels.iter())
            .chain(self.data.iter().flat_map(|d| d.labels.iter()))
            .map(String::as_str)
    }

    /// Number of instructions in the text section.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }
}

/// Parses SL32 assembly source into a symbolic [`Module`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending source line for unknown
/// mnemonics, malformed operands, out-of-range immediates, duplicate
/// labels, misplaced items, and malformed directives.
///
/// # Examples
///
/// ```
/// use sofia_isa::asm;
/// let module = asm::parse("main: addi v0, zero, 7\n halt")?;
/// assert_eq!(module.text_len(), 2);
/// # Ok::<(), sofia_isa::error::AsmError>(())
/// ```
pub fn parse(src: &str) -> Result<Module, AsmError> {
    parser::parse(src)
}

/// Parses and lays out a program in one step with default bases.
///
/// # Errors
///
/// Propagates parse errors and layout errors (undefined labels,
/// out-of-range branches).
///
/// # Examples
///
/// ```
/// use sofia_isa::asm;
/// let asmb = asm::assemble("main: halt")?;
/// assert_eq!(asmb.entry, asm::DEFAULT_TEXT_BASE);
/// # Ok::<(), sofia_isa::error::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Assembly, AsmError> {
    parse(src)?.layout(&LayoutOptions::default())
}
