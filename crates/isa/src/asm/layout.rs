//! Address assignment and relocation patching.

use std::collections::BTreeMap;

use crate::error::{AsmError, AsmErrorKind};
use crate::Instruction;

use super::{DataKind, Module, Reloc, SymValue};

/// Base addresses used when laying out a [`Module`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Base address of the text section (word-aligned).
    pub text_base: u32,
    /// Base address of the data section (word-aligned).
    pub data_base: u32,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            text_base: super::DEFAULT_TEXT_BASE,
            data_base: super::DEFAULT_DATA_BASE,
        }
    }
}

/// A fully laid-out program: flat text words, flat data bytes, resolved
/// symbols, and the entry address.
///
/// # Examples
///
/// ```
/// use sofia_isa::asm;
///
/// let a = asm::assemble("main: addi v0, zero, 3\n halt")?;
/// assert_eq!(a.words.len(), 2);
/// assert_eq!(a.symbols["main"], a.text_base);
/// # Ok::<(), sofia_isa::error::AsmError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assembly {
    /// Address of `words[0]`.
    pub text_base: u32,
    /// Encoded text section.
    pub words: Vec<u32>,
    /// Address of `data[0]`.
    pub data_base: u32,
    /// Raw little-endian data section.
    pub data: Vec<u8>,
    /// Every label's resolved address.
    pub symbols: BTreeMap<String, u32>,
    /// The entry point address.
    pub entry: u32,
}

impl Assembly {
    /// Size of the text section in bytes (the paper's "text section" metric
    /// for the code-size-overhead evaluation).
    pub fn text_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Decodes the text section back into instructions.
    ///
    /// # Panics
    ///
    /// Panics if a word does not decode; an [`Assembly`] produced by this
    /// assembler always decodes.
    pub fn decode_text(&self) -> Vec<Instruction> {
        self.words
            .iter()
            .map(|&w| Instruction::decode(w).expect("assembled word must decode"))
            .collect()
    }
}

/// Patches a relocated operand once the target address is known.
///
/// `pc` is the address of the instruction being patched. This is exposed
/// so the SOFIA transformer can resolve relocations after its own layout.
///
/// # Errors
///
/// Returns an error if the branch distance exceeds ±32 Ki-words or the
/// jump target leaves the 256 MiB region of `pc`.
pub fn apply_reloc(
    inst: Instruction,
    reloc: &Reloc,
    pc: u32,
    target: u32,
) -> Result<Instruction, AsmError> {
    use Instruction::*;
    let patched = match reloc {
        Reloc::Branch(label) => {
            let diff = (target as i64) - (pc as i64 + 4);
            debug_assert_eq!(diff % 4, 0, "unaligned branch target");
            let words = diff / 4;
            if !(-32768..=32767).contains(&words) {
                return Err(AsmError {
                    line: 0,
                    kind: AsmErrorKind::BranchOutOfRange {
                        label: label.clone(),
                        distance: words,
                    },
                });
            }
            let offset = words as i16;
            match inst {
                Beq { rs, rt, .. } => Beq { rs, rt, offset },
                Bne { rs, rt, .. } => Bne { rs, rt, offset },
                Blt { rs, rt, .. } => Blt { rs, rt, offset },
                Bge { rs, rt, .. } => Bge { rs, rt, offset },
                Bltu { rs, rt, .. } => Bltu { rs, rt, offset },
                Bgeu { rs, rt, .. } => Bgeu { rs, rt, offset },
                other => unreachable!("branch reloc on {other}"),
            }
        }
        Reloc::Jump(label) => {
            if target & 0xF000_0000 != pc & 0xF000_0000 {
                return Err(AsmError {
                    line: 0,
                    kind: AsmErrorKind::JumpOutOfRegion {
                        label: label.clone(),
                    },
                });
            }
            let index = (target >> 2) & 0x03FF_FFFF;
            match inst {
                J { .. } => J { index },
                Jal { .. } => Jal { index },
                other => unreachable!("jump reloc on {other}"),
            }
        }
        Reloc::Hi(_) => match inst {
            Lui { rt, .. } => Lui {
                rt,
                imm: (target >> 16) as u16,
            },
            other => unreachable!("hi reloc on {other}"),
        },
        Reloc::Lo(_) => match inst {
            Ori { rt, rs, .. } => Ori {
                rt,
                rs,
                imm: (target & 0xFFFF) as u16,
            },
            other => unreachable!("lo reloc on {other}"),
        },
    };
    Ok(patched)
}

/// Lays out a data section at `data_base`, resolving `.word label`
/// references through the data symbols themselves and then through
/// `text_symbol` (which supplies text-label addresses).
///
/// Exposed so SOFIA's transformer — which assigns its own, block-aligned
/// text addresses — can share the exact data-layout rules of the plain
/// assembler.
///
/// # Errors
///
/// Returns [`AsmErrorKind::UndefinedLabel`] for unresolvable `.word`
/// references.
pub fn layout_data(
    items: &[super::DataItem],
    data_base: u32,
    text_symbol: impl Fn(&str) -> Option<u32>,
) -> Result<(Vec<u8>, BTreeMap<String, u32>), AsmError> {
    let mut symbols = BTreeMap::new();
    // Pass 1: offsets (sizes don't depend on symbol values).
    let mut offset: u32 = 0;
    let mut placements = Vec::with_capacity(items.len());
    for item in items {
        offset = align_up(offset, natural_align(&item.kind));
        for label in &item.labels {
            symbols.insert(label.clone(), data_base + offset);
        }
        placements.push(offset);
        offset += data_size(&item.kind, offset);
    }
    // Pass 2: values, now that data symbols are complete.
    let mut data = vec![0u8; offset as usize];
    for (item, &at) in items.iter().zip(&placements) {
        let at = at as usize;
        match &item.kind {
            DataKind::Word(v) => {
                let value = match v {
                    SymValue::Const(c) => *c,
                    SymValue::Label(l) => symbols
                        .get(l)
                        .copied()
                        .or_else(|| text_symbol(l))
                        .ok_or_else(|| AsmError {
                            line: item.line,
                            kind: AsmErrorKind::UndefinedLabel(l.clone()),
                        })?,
                };
                data[at..at + 4].copy_from_slice(&value.to_le_bytes());
            }
            DataKind::Half(h) => data[at..at + 2].copy_from_slice(&h.to_le_bytes()),
            DataKind::Byte(b) => data[at] = *b,
            DataKind::Bytes(bs) => data[at..at + bs.len()].copy_from_slice(bs),
            DataKind::Space(_) | DataKind::Align(_) => {}
        }
    }
    Ok((data, symbols))
}

impl Module {
    /// Assigns addresses and resolves every relocation.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined labels, branch targets out of range,
    /// and jumps that leave their 256 MiB region.
    pub fn layout(&self, opts: &LayoutOptions) -> Result<Assembly, AsmError> {
        let mut symbols = BTreeMap::new();

        // Text addresses.
        for (i, item) in self.text.iter().enumerate() {
            let addr = opts.text_base + (i as u32) * 4;
            for label in &item.labels {
                symbols.insert(label.clone(), addr);
            }
        }

        let text_syms = symbols.clone();
        let (data, data_symbols) =
            layout_data(&self.data, opts.data_base, |l| text_syms.get(l).copied())?;
        symbols.extend(data_symbols);

        // Patch text relocations.
        let mut words = Vec::with_capacity(self.text.len());
        for (i, item) in self.text.iter().enumerate() {
            let pc = opts.text_base + (i as u32) * 4;
            let inst = match &item.reloc {
                None => item.inst,
                Some(reloc) => {
                    let target = *symbols.get(reloc.label()).ok_or_else(|| AsmError {
                        line: item.line,
                        kind: AsmErrorKind::UndefinedLabel(reloc.label().to_string()),
                    })?;
                    apply_reloc(item.inst, reloc, pc, target).map_err(|mut e| {
                        e.line = item.line;
                        e
                    })?
                }
            };
            words.push(inst.encode());
        }

        // Entry point.
        let entry = match &self.entry {
            Some(label) => *symbols.get(label).ok_or_else(|| AsmError {
                line: 0,
                kind: AsmErrorKind::UndefinedLabel(label.clone()),
            })?,
            None => symbols.get("main").copied().unwrap_or(opts.text_base),
        };

        Ok(Assembly {
            text_base: opts.text_base,
            words,
            data_base: opts.data_base,
            data,
            symbols,
            entry,
        })
    }
}

fn natural_align(kind: &DataKind) -> u32 {
    match kind {
        DataKind::Word(_) => 4,
        DataKind::Half(_) => 2,
        DataKind::Align(n) => *n,
        _ => 1,
    }
}

fn data_size(kind: &DataKind, _offset: u32) -> u32 {
    match kind {
        DataKind::Word(_) => 4,
        DataKind::Half(_) => 2,
        DataKind::Byte(_) => 1,
        DataKind::Space(n) => *n,
        DataKind::Align(_) => 0,
        DataKind::Bytes(b) => b.len() as u32,
    }
}

fn align_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::super::{assemble, parse, LayoutOptions};
    use crate::{disasm, Instruction, Reg};

    #[test]
    fn branch_offsets_resolve_backwards_and_forwards() {
        let a =
            assemble("main: beq zero, zero, fwd\nnop\nfwd: bne zero, zero, main\nhalt").unwrap();
        let insts = a.decode_text();
        assert_eq!(
            insts[0],
            Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: 1
            }
        );
        assert_eq!(
            insts[2],
            Instruction::Bne {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: -3
            }
        );
    }

    #[test]
    fn jal_resolves_to_word_index() {
        let a = assemble("main: jal f\nhalt\nf: ret").unwrap();
        let insts = a.decode_text();
        let f_addr = a.symbols["f"];
        assert_eq!(insts[0], Instruction::Jal { index: f_addr >> 2 });
    }

    #[test]
    fn la_resolves_data_address() {
        let a = assemble(".text\nmain: la a0, buf\nhalt\n.data\nbuf: .word 42").unwrap();
        let insts = a.decode_text();
        let buf = a.symbols["buf"];
        assert_eq!(
            insts[0],
            Instruction::Lui {
                rt: Reg::A0,
                imm: (buf >> 16) as u16
            }
        );
        assert_eq!(
            insts[1],
            Instruction::Ori {
                rt: Reg::A0,
                rs: Reg::A0,
                imm: (buf & 0xFFFF) as u16
            }
        );
        assert_eq!(&a.data[0..4], &42u32.to_le_bytes());
    }

    #[test]
    fn data_alignment_and_sizes() {
        let a = assemble(
            ".data\nb: .byte 1\nw: .word 2\nh: .half 3\ns: .space 5\n.align 8\ne: .byte 4\n.text\nmain: halt",
        )
        .unwrap();
        assert_eq!(a.symbols["b"], a.data_base);
        assert_eq!(a.symbols["w"], a.data_base + 4); // aligned up from 1
        assert_eq!(a.symbols["h"], a.data_base + 8);
        assert_eq!(a.symbols["s"], a.data_base + 10);
        assert_eq!(a.symbols["e"], a.data_base + 16); // aligned to 8
        assert_eq!(&a.data[4..8], &2u32.to_le_bytes());
    }

    #[test]
    fn word_label_builds_function_pointer_table() {
        let a = assemble(".text\nmain: halt\nf: ret\ng: ret\n.data\ntbl: .word f, g").unwrap();
        let f = a.symbols["f"];
        let g = a.symbols["g"];
        assert_eq!(&a.data[0..4], &f.to_le_bytes());
        assert_eq!(&a.data[4..8], &g.to_le_bytes());
    }

    #[test]
    fn undefined_label_reported() {
        let err = assemble("main: j nowhere").unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn entry_defaults() {
        let a = assemble("start: nop\nmain: halt").unwrap();
        assert_eq!(a.entry, a.symbols["main"]);
        let a2 = assemble("start: halt").unwrap();
        assert_eq!(a2.entry, a2.text_base);
        let a3 = assemble(".global start\nstart: halt\nmain: halt").unwrap();
        assert_eq!(a3.entry, a3.symbols["start"]);
    }

    #[test]
    fn custom_bases() {
        let m = parse("main: halt").unwrap();
        let a = m
            .layout(&LayoutOptions {
                text_base: 0x4000,
                data_base: 0x2000_0000,
            })
            .unwrap();
        assert_eq!(a.text_base, 0x4000);
        assert_eq!(a.entry, 0x4000);
    }

    #[test]
    fn disassembly_of_assembled_text_is_legal() {
        let a = assemble("main: addi t0, zero, 1\nbeq t0, zero, main\nhalt").unwrap();
        assert_eq!(disasm::legal_fraction(&a.words), 1.0);
    }

    #[test]
    fn branch_out_of_range_detected() {
        // Construct a module whose branch target is ~40 000 words away.
        let mut src = String::from("main: beq zero, zero, far\n");
        for _ in 0..40_000 {
            src.push_str("nop\n");
        }
        src.push_str("far: halt\n");
        let err = assemble(&src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
