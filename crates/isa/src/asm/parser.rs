//! Line-oriented parser for SL32 assembly source.

use std::collections::BTreeMap;
use std::collections::HashSet;

use crate::error::{AsmError, AsmErrorKind};
use crate::{Instruction, Reg};

use super::{DataItem, DataKind, Module, Reloc, SymValue, TextItem};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

struct Parser {
    module: Module,
    section: Section,
    pending_labels: Vec<String>,
    pending_indirect: Vec<String>,
    defined: HashSet<String>,
    constants: BTreeMap<String, i64>,
    line: usize,
}

pub(super) fn parse(src: &str) -> Result<Module, AsmError> {
    let mut p = Parser {
        module: Module::default(),
        section: Section::Text,
        pending_labels: Vec::new(),
        pending_indirect: Vec::new(),
        defined: HashSet::new(),
        constants: BTreeMap::new(),
        line: 0,
    };
    for (idx, raw) in src.lines().enumerate() {
        p.line = idx + 1;
        p.parse_line(raw)?;
    }
    if !p.pending_labels.is_empty() {
        // A trailing label must land on something; attach it to a nop so
        // `end:`-style labels keep working.
        if p.section == Section::Text {
            p.emit_inst(Instruction::nop(), None)?;
        } else {
            let labels = std::mem::take(&mut p.pending_labels);
            p.module.data.push(DataItem {
                labels,
                kind: DataKind::Space(0),
                line: p.line,
            });
        }
    }
    if !p.pending_indirect.is_empty() {
        return Err(p.err(AsmErrorKind::DanglingIndirect));
    }
    p.module.constants = p.constants;
    Ok(p.module)
}

impl Parser {
    fn err(&self, kind: AsmErrorKind) -> AsmError {
        AsmError {
            line: self.line,
            kind,
        }
    }

    fn parse_line(&mut self, raw: &str) -> Result<(), AsmError> {
        let mut line = strip_comment(raw).trim();
        // Consume any number of leading `label:` definitions.
        while let Some((label, rest)) = split_label(line) {
            let label = label.to_string();
            if !is_valid_ident(&label) {
                return Err(self.err(AsmErrorKind::BadDirective(format!(
                    "invalid label name `{label}`"
                ))));
            }
            if !self.defined.insert(label.clone()) {
                return Err(self.err(AsmErrorKind::DuplicateLabel(label)));
            }
            self.pending_labels.push(label);
            line = rest.trim();
        }
        if line.is_empty() {
            return Ok(());
        }
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        if let Some(directive) = mnemonic.strip_prefix('.') {
            self.parse_directive(directive, rest)
        } else {
            self.parse_instruction(&mnemonic.to_ascii_lowercase(), rest)
        }
    }

    // ---------------------------------------------------------- directives

    fn parse_directive(&mut self, directive: &str, rest: &str) -> Result<(), AsmError> {
        match directive {
            "text" => {
                self.section = Section::Text;
                Ok(())
            }
            "data" => {
                self.section = Section::Data;
                Ok(())
            }
            "global" | "globl" => {
                if self.module.entry.is_none() {
                    self.module.entry = Some(rest.trim().to_string());
                }
                Ok(())
            }
            "equ" => {
                let (name, value) = rest.split_once(',').ok_or_else(|| {
                    self.err(AsmErrorKind::BadDirective(
                        ".equ needs `name, value`".into(),
                    ))
                })?;
                let name = name.trim().to_string();
                let value = self.parse_int(value.trim())?;
                self.constants.insert(name, value);
                Ok(())
            }
            "indirect" => {
                if self.section != Section::Text {
                    return Err(self.err(AsmErrorKind::MisplacedItem(
                        ".indirect outside .text".into(),
                    )));
                }
                for t in rest.split(',') {
                    self.pending_indirect.push(t.trim().to_string());
                }
                Ok(())
            }
            "word" => self.emit_data_list(rest, |p, v| {
                if let Ok(n) = p.parse_int(v) {
                    if (-(1i64 << 31)..1i64 << 32).contains(&n) {
                        Ok(DataKind::Word(SymValue::Const(n as u32)))
                    } else {
                        Err(p.err(AsmErrorKind::BadImmediate(v.to_string())))
                    }
                } else if is_valid_ident(v) {
                    Ok(DataKind::Word(SymValue::Label(v.to_string())))
                } else {
                    Err(p.err(AsmErrorKind::BadImmediate(v.to_string())))
                }
            }),
            "half" => self.emit_data_list(rest, |p, v| {
                let n = p.parse_int(v)?;
                if (-(1 << 15)..1 << 16).contains(&n) {
                    Ok(DataKind::Half(n as u16))
                } else {
                    Err(p.err(AsmErrorKind::BadImmediate(v.to_string())))
                }
            }),
            "byte" => self.emit_data_list(rest, |p, v| {
                let n = p.parse_int(v)?;
                if (-128..256).contains(&n) {
                    Ok(DataKind::Byte(n as u8))
                } else {
                    Err(p.err(AsmErrorKind::BadImmediate(v.to_string())))
                }
            }),
            "space" => {
                let n = self.parse_int(rest)?;
                let n = self.check_u32(n)?;
                self.emit_data(DataKind::Space(n))
            }
            "align" => {
                let n = self.parse_int(rest)?;
                let n = self.check_u32(n)?;
                if !n.is_power_of_two() {
                    return Err(self.err(AsmErrorKind::BadDirective(format!(
                        ".align {n}: not a power of two"
                    ))));
                }
                self.emit_data(DataKind::Align(n))
            }
            "str" | "strz" => {
                let mut bytes = parse_string_literal(rest)
                    .ok_or_else(|| self.err(AsmErrorKind::BadDirective("bad string".into())))?;
                if directive == "strz" {
                    bytes.push(0);
                }
                self.emit_data(DataKind::Bytes(bytes))
            }
            other => Err(self.err(AsmErrorKind::UnknownMnemonic(format!(".{other}")))),
        }
    }

    fn emit_data_list(
        &mut self,
        rest: &str,
        mut f: impl FnMut(&mut Self, &str) -> Result<DataKind, AsmError>,
    ) -> Result<(), AsmError> {
        if rest.trim().is_empty() {
            return Err(self.err(AsmErrorKind::BadDirective("missing values".into())));
        }
        for v in rest.split(',') {
            let kind = f(self, v.trim())?;
            self.emit_data(kind)?;
        }
        Ok(())
    }

    fn emit_data(&mut self, kind: DataKind) -> Result<(), AsmError> {
        if self.section != Section::Data {
            return Err(self.err(AsmErrorKind::MisplacedItem(
                "data directive in .text (SOFIA text must be pure instructions)".into(),
            )));
        }
        let labels = std::mem::take(&mut self.pending_labels);
        self.module.data.push(DataItem {
            labels,
            kind,
            line: self.line,
        });
        Ok(())
    }

    // -------------------------------------------------------- instructions

    fn emit_inst(&mut self, inst: Instruction, reloc: Option<Reloc>) -> Result<(), AsmError> {
        if self.section != Section::Text {
            return Err(self.err(AsmErrorKind::MisplacedItem("instruction in .data".into())));
        }
        let indirect_targets = if inst.is_indirect_jump() {
            std::mem::take(&mut self.pending_indirect)
        } else if !self.pending_indirect.is_empty() {
            return Err(self.err(AsmErrorKind::DanglingIndirect));
        } else {
            Vec::new()
        };
        let labels = std::mem::take(&mut self.pending_labels);
        self.module.text.push(TextItem {
            labels,
            inst,
            reloc,
            indirect_targets,
            line: self.line,
        });
        Ok(())
    }

    fn parse_instruction(&mut self, m: &str, rest: &str) -> Result<(), AsmError> {
        use Instruction::*;
        let ops = split_operands(rest);
        let n = ops.len();
        let bad = |p: &Self| {
            p.err(AsmErrorKind::BadOperands(format!(
                "`{m}` with {n} operand(s)"
            )))
        };

        macro_rules! need {
            ($count:expr) => {
                if n != $count {
                    return Err(bad(self));
                }
            };
        }

        match m {
            // --- three-register ALU ---
            "add" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" | "mul" | "div"
            | "divu" | "rem" | "remu" => {
                need!(3);
                let rd = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                let rt = self.reg(&ops[2])?;
                let inst = match m {
                    "add" => Add { rd, rs, rt },
                    "sub" => Sub { rd, rs, rt },
                    "and" => And { rd, rs, rt },
                    "or" => Or { rd, rs, rt },
                    "xor" => Xor { rd, rs, rt },
                    "nor" => Nor { rd, rs, rt },
                    "slt" => Slt { rd, rs, rt },
                    "sltu" => Sltu { rd, rs, rt },
                    "mul" => Mul { rd, rs, rt },
                    "div" => Div { rd, rs, rt },
                    "divu" => Divu { rd, rs, rt },
                    "rem" => Rem { rd, rs, rt },
                    _ => Remu { rd, rs, rt },
                };
                self.emit_inst(inst, None)
            }
            // --- variable shifts: sllv rd, rt, rs ---
            "sllv" | "srlv" | "srav" => {
                need!(3);
                let rd = self.reg(&ops[0])?;
                let rt = self.reg(&ops[1])?;
                let rs = self.reg(&ops[2])?;
                let inst = match m {
                    "sllv" => Sllv { rd, rt, rs },
                    "srlv" => Srlv { rd, rt, rs },
                    _ => Srav { rd, rt, rs },
                };
                self.emit_inst(inst, None)
            }
            // --- immediate shifts: sll rd, rt, shamt ---
            "sll" | "srl" | "sra" => {
                need!(3);
                let rd = self.reg(&ops[0])?;
                let rt = self.reg(&ops[1])?;
                let sh = self.parse_int(&ops[2])?;
                if !(0..32).contains(&sh) {
                    return Err(self.err(AsmErrorKind::BadImmediate(ops[2].clone())));
                }
                let shamt = sh as u8;
                let inst = match m {
                    "sll" => Sll { rd, rt, shamt },
                    "srl" => Srl { rd, rt, shamt },
                    _ => Sra { rd, rt, shamt },
                };
                self.emit_inst(inst, None)
            }
            // --- I-type ALU ---
            "addi" | "slti" | "sltiu" => {
                need!(3);
                let rt = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                let imm = self.imm16_signed(&ops[2])?;
                let inst = match m {
                    "addi" => Addi { rt, rs, imm },
                    "slti" => Slti { rt, rs, imm },
                    _ => Sltiu { rt, rs, imm },
                };
                self.emit_inst(inst, None)
            }
            "subi" => {
                need!(3);
                let rt = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                let v = self.parse_int(&ops[2])?;
                let neg = -v;
                if !(-32768..=32767).contains(&neg) {
                    return Err(self.err(AsmErrorKind::BadImmediate(ops[2].clone())));
                }
                self.emit_inst(
                    Addi {
                        rt,
                        rs,
                        imm: neg as i16,
                    },
                    None,
                )
            }
            "andi" | "ori" | "xori" => {
                need!(3);
                let rt = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                let imm = self.imm16_unsigned(&ops[2])?;
                let inst = match m {
                    "andi" => Andi { rt, rs, imm },
                    "ori" => Ori { rt, rs, imm },
                    _ => Xori { rt, rs, imm },
                };
                self.emit_inst(inst, None)
            }
            "lui" => {
                need!(2);
                let rt = self.reg(&ops[0])?;
                let imm = self.imm16_unsigned(&ops[1])?;
                self.emit_inst(Lui { rt, imm }, None)
            }
            // --- memory ---
            "lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw" => {
                need!(2);
                let rt = self.reg(&ops[0])?;
                let (offset, base) = self.mem_operand(&ops[1])?;
                let inst = match m {
                    "lb" => Lb { rt, base, offset },
                    "lbu" => Lbu { rt, base, offset },
                    "lh" => Lh { rt, base, offset },
                    "lhu" => Lhu { rt, base, offset },
                    "lw" => Lw { rt, base, offset },
                    "sb" => Sb { rt, base, offset },
                    "sh" => Sh { rt, base, offset },
                    _ => Sw { rt, base, offset },
                };
                self.emit_inst(inst, None)
            }
            // --- branches (label targets only) ---
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need!(3);
                let rs = self.reg(&ops[0])?;
                let rt = self.reg(&ops[1])?;
                let label = ops[2].clone();
                let inst = match m {
                    "beq" => Beq { rs, rt, offset: 0 },
                    "bne" => Bne { rs, rt, offset: 0 },
                    "blt" => Blt { rs, rt, offset: 0 },
                    "bge" => Bge { rs, rt, offset: 0 },
                    "bltu" => Bltu { rs, rt, offset: 0 },
                    _ => Bgeu { rs, rt, offset: 0 },
                };
                self.emit_inst(inst, Some(Reloc::Branch(label)))
            }
            "bgt" | "ble" | "bgtu" | "bleu" => {
                need!(3);
                // swap operands: bgt a,b == blt b,a
                let rt = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                let label = ops[2].clone();
                let inst = match m {
                    "bgt" => Blt { rs, rt, offset: 0 },
                    "ble" => Bge { rs, rt, offset: 0 },
                    "bgtu" => Bltu { rs, rt, offset: 0 },
                    _ => Bgeu { rs, rt, offset: 0 },
                };
                self.emit_inst(inst, Some(Reloc::Branch(label)))
            }
            "beqz" | "bnez" | "bltz" | "bgez" => {
                need!(2);
                let rs = self.reg(&ops[0])?;
                let label = ops[1].clone();
                let z = Reg::ZERO;
                let inst = match m {
                    "beqz" => Beq {
                        rs,
                        rt: z,
                        offset: 0,
                    },
                    "bnez" => Bne {
                        rs,
                        rt: z,
                        offset: 0,
                    },
                    "bltz" => Blt {
                        rs,
                        rt: z,
                        offset: 0,
                    },
                    _ => Bge {
                        rs,
                        rt: z,
                        offset: 0,
                    },
                };
                self.emit_inst(inst, Some(Reloc::Branch(label)))
            }
            "b" => {
                need!(1);
                let z = Reg::ZERO;
                self.emit_inst(
                    Beq {
                        rs: z,
                        rt: z,
                        offset: 0,
                    },
                    Some(Reloc::Branch(ops[0].clone())),
                )
            }
            // --- jumps ---
            "j" => {
                need!(1);
                self.emit_inst(J { index: 0 }, Some(Reloc::Jump(ops[0].clone())))
            }
            "jal" | "call" => {
                need!(1);
                self.emit_inst(Jal { index: 0 }, Some(Reloc::Jump(ops[0].clone())))
            }
            "jr" => {
                need!(1);
                let rs = self.reg(&ops[0])?;
                self.emit_inst(Jr { rs }, None)
            }
            "ret" => {
                need!(0);
                self.emit_inst(Jr { rs: Reg::RA }, None)
            }
            "jalr" => match n {
                1 => {
                    let rs = self.reg(&ops[0])?;
                    self.emit_inst(Jalr { rd: Reg::RA, rs }, None)
                }
                2 => {
                    let rd = self.reg(&ops[0])?;
                    let rs = self.reg(&ops[1])?;
                    self.emit_inst(Jalr { rd, rs }, None)
                }
                _ => Err(bad(self)),
            },
            // --- misc / pseudo ---
            "halt" => {
                need!(0);
                self.emit_inst(Halt, None)
            }
            "nop" => {
                need!(0);
                self.emit_inst(Instruction::nop(), None)
            }
            "mv" | "move" => {
                need!(2);
                let rt = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                self.emit_inst(Addi { rt, rs, imm: 0 }, None)
            }
            "not" => {
                need!(2);
                let rd = self.reg(&ops[0])?;
                let rs = self.reg(&ops[1])?;
                self.emit_inst(
                    Nor {
                        rd,
                        rs,
                        rt: Reg::ZERO,
                    },
                    None,
                )
            }
            "neg" => {
                need!(2);
                let rd = self.reg(&ops[0])?;
                let rt = self.reg(&ops[1])?;
                self.emit_inst(
                    Sub {
                        rd,
                        rs: Reg::ZERO,
                        rt,
                    },
                    None,
                )
            }
            "li" => {
                need!(2);
                let rt = self.reg(&ops[0])?;
                let v = self.parse_int(&ops[1])?;
                if !(-(1i64 << 31)..1i64 << 32).contains(&v) {
                    return Err(self.err(AsmErrorKind::BadImmediate(ops[1].clone())));
                }
                let v = v as u32;
                self.expand_li(rt, v)
            }
            "la" => {
                need!(2);
                let rt = self.reg(&ops[0])?;
                let label = ops[1].clone();
                self.emit_inst(Lui { rt, imm: 0 }, Some(Reloc::Hi(label.clone())))?;
                self.emit_inst(Ori { rt, rs: rt, imm: 0 }, Some(Reloc::Lo(label)))
            }
            other => Err(self.err(AsmErrorKind::UnknownMnemonic(other.to_string()))),
        }
    }

    /// `li` expansion: 1 instruction when the value fits, else `lui(+ori)`.
    fn expand_li(&mut self, rt: Reg, v: u32) -> Result<(), AsmError> {
        use Instruction::*;
        let signed = v as i32;
        if (-32768..=32767).contains(&signed) {
            self.emit_inst(
                Addi {
                    rt,
                    rs: Reg::ZERO,
                    imm: signed as i16,
                },
                None,
            )
        } else if v & 0xFFFF == 0 {
            self.emit_inst(
                Lui {
                    rt,
                    imm: (v >> 16) as u16,
                },
                None,
            )
        } else {
            self.emit_inst(
                Lui {
                    rt,
                    imm: (v >> 16) as u16,
                },
                None,
            )?;
            self.emit_inst(
                Ori {
                    rt,
                    rs: rt,
                    imm: (v & 0xFFFF) as u16,
                },
                None,
            )
        }
    }

    // ------------------------------------------------------------ operands

    fn reg(&self, s: &str) -> Result<Reg, AsmError> {
        s.parse()
            .map_err(|_| self.err(AsmErrorKind::BadRegister(s.to_string())))
    }

    fn imm16_signed(&self, s: &str) -> Result<i16, AsmError> {
        let v = self.parse_int(s)?;
        if (-32768..=32767).contains(&v) {
            Ok(v as i16)
        } else {
            Err(self.err(AsmErrorKind::BadImmediate(s.to_string())))
        }
    }

    fn imm16_unsigned(&self, s: &str) -> Result<u16, AsmError> {
        let v = self.parse_int(s)?;
        if (0..=0xFFFF).contains(&v) {
            Ok(v as u16)
        } else {
            Err(self.err(AsmErrorKind::BadImmediate(s.to_string())))
        }
    }

    /// Parses `offset(base)`, `(base)`, or `offset` (base = zero).
    fn mem_operand(&self, s: &str) -> Result<(i16, Reg), AsmError> {
        if let Some(open) = s.find('(') {
            let close = s
                .rfind(')')
                .ok_or_else(|| self.err(AsmErrorKind::BadOperands(s.to_string())))?;
            let off = s[..open].trim();
            let base = self.reg(s[open + 1..close].trim())?;
            let offset = if off.is_empty() {
                0
            } else {
                self.imm16_signed(off)?
            };
            Ok((offset, base))
        } else {
            Ok((self.imm16_signed(s)?, Reg::ZERO))
        }
    }

    /// Parses an integer literal: decimal, `0x…`, `0b…`, `'c'`, a `.equ`
    /// constant, optionally negated.
    fn parse_int(&self, s: &str) -> Result<i64, AsmError> {
        let s = s.trim();
        let bad = || self.err(AsmErrorKind::BadImmediate(s.to_string()));
        if s.is_empty() {
            return Err(bad());
        }
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest.trim()),
            None => (false, s),
        };
        let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            i64::from_str_radix(&hex.replace('_', ""), 16).map_err(|_| bad())?
        } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
            i64::from_str_radix(&bin.replace('_', ""), 2).map_err(|_| bad())?
        } else if body.starts_with('\'') {
            let chars: Vec<char> = body.chars().collect();
            if chars.len() == 3 && chars[2] == '\'' {
                chars[1] as i64
            } else if chars.len() == 4 && chars[1] == '\\' && chars[3] == '\'' {
                match chars[2] {
                    'n' => 10,
                    't' => 9,
                    'r' => 13,
                    '0' => 0,
                    '\\' => 92,
                    '\'' => 39,
                    _ => return Err(bad()),
                }
            } else {
                return Err(bad());
            }
        } else if body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            body.replace('_', "").parse::<i64>().map_err(|_| bad())?
        } else if let Some(&v) = self.constants.get(body) {
            v
        } else {
            return Err(bad());
        };
        Ok(if neg { -value } else { value })
    }

    fn check_u32(&self, v: i64) -> Result<u32, AsmError> {
        if (0..=u32::MAX as i64).contains(&v) {
            Ok(v as u32)
        } else {
            Err(self.err(AsmErrorKind::BadImmediate(v.to_string())))
        }
    }
}

// ------------------------------------------------------------------ lexing

fn strip_comment(line: &str) -> &str {
    // Comments start with `#` or `//`; string literals may contain both, so
    // scan outside quotes.
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else if c == b'"' {
            in_str = true;
        } else if c == b'#' || (c == b'/' && bytes.get(i + 1) == Some(&b'/')) {
            return &line[..i];
        }
        i += 1;
    }
    line
}

/// Splits a leading `label:` off a line, if present (not inside a string).
fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    if head.contains('"') || head.contains(char::is_whitespace) {
        return None;
    }
    if head.is_empty() {
        return None;
    }
    Some((head, &line[colon + 1..]))
}

fn is_valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Splits operands on top-level commas (commas inside quotes are kept).
fn split_operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth_str = false;
    let mut current = String::new();
    for c in rest.chars() {
        match c {
            '"' => {
                depth_str = !depth_str;
                current.push(c);
            }
            ',' if !depth_str => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    out.push(current.trim().to_string());
    out
}

/// Parses a double-quoted string literal with `\n \t \r \0 \\ \"` escapes.
fn parse_string_literal(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push(b'\n'),
                't' => out.push(b'\t'),
                'r' => out.push(b'\r'),
                '0' => out.push(0),
                '\\' => out.push(b'\\'),
                '"' => out.push(b'"'),
                _ => return None,
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use crate::error::AsmErrorKind;
    use crate::{Instruction, Reg};

    #[test]
    fn basic_program_parses() {
        let m = parse(
            r#"
            .text
            .global main
        main:
            addi t0, zero, 5
        loop:
            subi t0, t0, 1
            bnez t0, loop
            halt
        "#,
        )
        .unwrap();
        assert_eq!(m.entry.as_deref(), Some("main"));
        assert_eq!(m.text_len(), 4);
        assert_eq!(m.text[0].labels, vec!["main".to_string()]);
        assert_eq!(m.text[1].labels, vec!["loop".to_string()]);
    }

    #[test]
    fn li_expansion_sizes() {
        let m = parse("main: li t0, 5\nli t1, 0x12340000\nli t2, 0x12345678\nhalt").unwrap();
        // 1 + 1 + 2 + 1 instructions
        assert_eq!(m.text_len(), 5);
        assert_eq!(
            m.text[0].inst,
            Instruction::Addi {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 5
            }
        );
        assert_eq!(
            m.text[1].inst,
            Instruction::Lui {
                rt: Reg::T1,
                imm: 0x1234
            }
        );
        assert_eq!(
            m.text[2].inst,
            Instruction::Lui {
                rt: Reg::T2,
                imm: 0x1234
            }
        );
        assert_eq!(
            m.text[3].inst,
            Instruction::Ori {
                rt: Reg::T2,
                rs: Reg::T2,
                imm: 0x5678
            }
        );
    }

    #[test]
    fn la_emits_hi_lo_relocs() {
        let m = parse(".text\nmain: la a0, buf\nhalt\n.data\nbuf: .word 1").unwrap();
        assert!(matches!(m.text[0].reloc, Some(super::super::Reloc::Hi(_))));
        assert!(matches!(m.text[1].reloc, Some(super::super::Reloc::Lo(_))));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let m = parse("main: addi t0, zero, -32768\nandi t1, t0, 0xFFFF\nhalt").unwrap();
        assert_eq!(
            m.text[0].inst,
            Instruction::Addi {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: -32768
            }
        );
        assert_eq!(
            m.text[1].inst,
            Instruction::Andi {
                rt: Reg::T1,
                rs: Reg::T0,
                imm: 0xFFFF
            }
        );
    }

    #[test]
    fn equ_constants_resolve() {
        let m = parse(".equ MMIO, 0x1000\n.text\nmain: li t0, MMIO\nhalt").unwrap();
        assert_eq!(
            m.text[0].inst,
            Instruction::Addi {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 0x1000
            }
        );
    }

    #[test]
    fn mem_operands() {
        let m = parse("main: lw t0, 8(sp)\nsw t0, (a0)\nlb t1, -4(fp)\nhalt").unwrap();
        assert_eq!(
            m.text[0].inst,
            Instruction::Lw {
                rt: Reg::T0,
                base: Reg::SP,
                offset: 8
            }
        );
        assert_eq!(
            m.text[1].inst,
            Instruction::Sw {
                rt: Reg::T0,
                base: Reg::A0,
                offset: 0
            }
        );
        assert_eq!(
            m.text[2].inst,
            Instruction::Lb {
                rt: Reg::T1,
                base: Reg::FP,
                offset: -4
            }
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse("a: nop\na: halt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = parse("main: frobnicate t0").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn instruction_in_data_rejected() {
        let e = parse(".data\nadd t0, t1, t2").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::MisplacedItem(_)));
    }

    #[test]
    fn data_directive_in_text_rejected() {
        let e = parse(".text\nmain: .word 5").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::MisplacedItem(_)));
    }

    #[test]
    fn out_of_range_immediate_rejected() {
        assert!(parse("main: addi t0, zero, 40000").is_err());
        assert!(parse("main: sll t0, t0, 32").is_err());
    }

    #[test]
    fn indirect_attaches_to_jalr() {
        let m =
            parse(".text\nmain: la t0, f\n.indirect f, g\njalr t0\nhalt\nf: ret\ng: ret").unwrap();
        let jalr = m
            .text
            .iter()
            .find(|t| t.inst.is_indirect_jump() && t.inst.is_call())
            .unwrap();
        assert_eq!(
            jalr.indirect_targets,
            vec!["f".to_string(), "g".to_string()]
        );
    }

    #[test]
    fn dangling_indirect_rejected() {
        let e = parse(".text\nmain: .indirect f\nadd t0, t1, t2\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DanglingIndirect));
    }

    #[test]
    fn comments_and_strings() {
        let m = parse(".data\nmsg: .strz \"hi # not a comment\" # real comment\n.text\nmain: halt")
            .unwrap();
        match &m.data[0].kind {
            super::super::DataKind::Bytes(b) => {
                assert_eq!(b, b"hi # not a comment\0")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_label_gets_nop() {
        let m = parse("main: halt\nend:").unwrap();
        assert_eq!(m.text_len(), 2);
        assert_eq!(m.text[1].labels, vec!["end".to_string()]);
        assert!(m.text[1].inst.is_nop());
    }

    #[test]
    fn char_literals() {
        let m = parse(".data\nc: .byte 'a', '\\n'\n.text\nmain: halt").unwrap();
        assert_eq!(m.data.len(), 2);
    }
}
