//! Disassembly of machine words back into readable assembly.

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::asm::Assembly;
use crate::Instruction;

/// Disassembles a single word at address `pc`, annotating branch and jump
/// targets with their absolute addresses.
///
/// Words that do not decode are rendered as `.word 0x…  ; illegal` so a
/// dump of a *ciphertext* region stays readable (this is how the
/// confidentiality experiment shows an encrypted image is opaque).
///
/// # Examples
///
/// ```
/// use sofia_isa::{disasm, Instruction, Reg};
///
/// let w = Instruction::Beq { rs: Reg::T0, rt: Reg::ZERO, offset: 2 }.encode();
/// assert_eq!(disasm::word(w, 0x100), "beq t0, zero, 0x10c");
/// assert!(disasm::word(0xFFFF_FFFF, 0).starts_with(".word"));
/// ```
pub fn word(w: u32, pc: u32) -> String {
    match Instruction::decode(w) {
        Ok(inst) => inst_at(&inst, pc),
        Err(_) => format!(".word {w:#010x}  ; illegal"),
    }
}

/// Formats a decoded instruction at address `pc` with resolved targets.
pub fn inst_at(inst: &Instruction, pc: u32) -> String {
    use Instruction::*;
    match *inst {
        Beq { rs, rt, .. }
        | Bne { rs, rt, .. }
        | Blt { rs, rt, .. }
        | Bge { rs, rt, .. }
        | Bltu { rs, rt, .. }
        | Bgeu { rs, rt, .. } => {
            let target = inst.static_target(pc).expect("branches have targets");
            format!("{} {rs}, {rt}, {target:#x}", inst.mnemonic())
        }
        J { .. } | Jal { .. } => {
            let target = inst.static_target(pc).expect("jumps have targets");
            format!("{} {target:#x}", inst.mnemonic())
        }
        _ => inst.to_string(),
    }
}

/// Disassembles a contiguous region of words starting at `base`, one line
/// per word: `address:  word  mnemonic…`.
///
/// # Examples
///
/// ```
/// use sofia_isa::disasm;
/// let listing = disasm::region(&[0, 0x0000_000D], 0x100);
/// assert!(listing.contains("nop"));
/// assert!(listing.contains("halt"));
/// ```
pub fn region(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let pc = base + (i as u32) * 4;
        out.push_str(&format!("{pc:#010x}:  {w:08x}  {}\n", word(w, pc)));
    }
    out
}

/// Reassembles a laid-out [`Assembly`] into source the parser accepts,
/// closing the asm → encode → disasm → asm loop.
///
/// [`inst_at`] renders branch and jump targets as absolute hex addresses,
/// which the parser (label targets only) rejects; this function instead
/// labels every transfer target `L_<addr>` and emits label operands, plus
/// a `.global` for the entry point and the data section as verbatim
/// `.byte` runs. Reassembling the result with the same bases reproduces
/// `words`, `data` and `entry` bit-for-bit.
///
/// Returns `None` if a word does not decode or a transfer targets an
/// address outside the text section — neither occurs for assembler
/// output, but both do for tampered or ciphertext images.
///
/// # Examples
///
/// ```
/// use sofia_isa::{asm, disasm};
///
/// let a = asm::assemble("main: addi t0, zero, 1\nbeq t0, zero, main\nhalt")?;
/// let src = disasm::reassemble(&a).expect("assembler output reassembles");
/// assert_eq!(asm::assemble(&src)?.words, a.words);
/// # Ok::<(), sofia_isa::error::AsmError>(())
/// ```
pub fn reassemble(assembly: &Assembly) -> Option<String> {
    use Instruction::*;

    let base = assembly.text_base;
    let end = base + (assembly.words.len() as u32) * 4;
    let insts: Vec<Instruction> = assembly
        .words
        .iter()
        .map(|&w| Instruction::decode(w).ok())
        .collect::<Option<_>>()?;

    let in_text = |addr: u32| addr >= base && addr < end && addr % 4 == 0;
    if !in_text(assembly.entry) {
        return None;
    }

    // Every address that needs a label: the entry plus each static target.
    let mut targets = BTreeSet::new();
    targets.insert(assembly.entry);
    for (i, inst) in insts.iter().enumerate() {
        if inst.is_branch() || inst.is_direct_jump() {
            let target = inst.static_target(base + (i as u32) * 4)?;
            if !in_text(target) {
                return None;
            }
            targets.insert(target);
        }
    }

    let label = |addr: u32| format!("L_{addr:08x}");
    let mut out = String::new();
    out.push_str(".text\n");
    let _ = writeln!(out, ".global {}", label(assembly.entry));
    for (i, inst) in insts.iter().enumerate() {
        let pc = base + (i as u32) * 4;
        if targets.contains(&pc) {
            let _ = writeln!(out, "{}:", label(pc));
        }
        let line = match *inst {
            Beq { rs, rt, .. }
            | Bne { rs, rt, .. }
            | Blt { rs, rt, .. }
            | Bge { rs, rt, .. }
            | Bltu { rs, rt, .. }
            | Bgeu { rs, rt, .. } => {
                let target = inst.static_target(pc).expect("branches have targets");
                format!("{} {rs}, {rt}, {}", inst.mnemonic(), label(target))
            }
            J { .. } | Jal { .. } => {
                let target = inst.static_target(pc).expect("jumps have targets");
                format!("{} {}", inst.mnemonic(), label(target))
            }
            _ => inst.to_string(),
        };
        let _ = writeln!(out, "    {line}");
    }

    // Data re-emitted as verbatim bytes: `.word label` references and
    // alignment padding are already resolved into the byte image, so a
    // flat `.byte` run reproduces it exactly at the same base.
    if !assembly.data.is_empty() {
        out.push_str(".data\n");
        for chunk in assembly.data.chunks(16) {
            let bytes: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "    .byte {}", bytes.join(", "));
        }
    }
    Some(out)
}

/// The fraction of `words` that decode to legal instructions.
///
/// Near 1.0 for real code, and near the density of the opcode space
/// (well below 1.0) for ciphertext or random words — used by the
/// confidentiality experiment.
pub fn legal_fraction(words: &[u32]) -> f64 {
    if words.is_empty() {
        return 0.0;
    }
    let legal = words
        .iter()
        .filter(|&&w| Instruction::decode(w).is_ok())
        .count();
    legal as f64 / words.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn jump_targets_are_absolute() {
        let jal = Instruction::Jal { index: 0x80 >> 2 }.encode();
        assert_eq!(word(jal, 0x100), "jal 0x80");
    }

    #[test]
    fn region_lists_every_word() {
        let words = [Instruction::Halt.encode(), 0xFFFF_FFFF];
        let listing = region(&words, 0);
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.lines().nth(1).unwrap().contains("illegal"));
    }

    #[test]
    fn legal_fraction_extremes() {
        let legal = [Instruction::nop().encode(); 8];
        assert_eq!(legal_fraction(&legal), 1.0);
        assert_eq!(legal_fraction(&[]), 0.0);
        let mixed = [Instruction::nop().encode(), 0xFC00_0000];
        assert!((legal_fraction(&mixed) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn branch_annotation_is_pc_relative() {
        let b = Instruction::Bne {
            rs: Reg::T0,
            rt: Reg::T1,
            offset: -4,
        }
        .encode();
        assert_eq!(word(b, 0x20), "bne t0, t1, 0x14");
    }
}
