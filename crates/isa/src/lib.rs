//! # sofia-isa — the SL32 instruction set
//!
//! The instruction-set substrate of the SOFIA reproduction (DESIGN.md,
//! substitution S1): a 32-bit fixed-width load/store ISA in the spirit of
//! the SPARCv8 LEON3 the paper modified, simplified to the features SOFIA
//! actually interacts with — 32-bit instruction words, word-addressed
//! control flow, explicit stores, and compare-and-branch control transfers.
//! There are **no branch delay slots** and no register windows.
//!
//! The crate provides:
//!
//! * [`Instruction`] — the decoded instruction model with classification
//!   helpers (`is_store`, `is_control_transfer`, …) used throughout the
//!   transformer and the pipeline;
//! * [`Instruction::encode`] / [`Instruction::decode`] — the binary format;
//! * [`asm`] — a two-pass assembler whose symbolic output ([`asm::Module`])
//!   is shared by the plain assembler and SOFIA's secure installer;
//! * [`disasm`] — a disassembler used for debugging and for the
//!   code-confidentiality experiment.
//!
//! # Examples
//!
//! ```
//! use sofia_isa::{asm, disasm};
//!
//! let assembly = asm::assemble(
//!     "main: addi t0, zero, 3\n
//!      loop: subi t0, t0, 1\n
//!      bnez t0, loop\n
//!      halt",
//! )?;
//! assert_eq!(assembly.words.len(), 4);
//! println!("{}", disasm::region(&assembly.words, assembly.text_base));
//! # Ok::<(), sofia_isa::error::AsmError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod disasm;
mod encode;
pub mod error;
mod inst;
mod reg;

pub use error::{AsmError, DecodeError};
pub use inst::Instruction;
pub use reg::Reg;

/// The size of one instruction word in bytes.
pub const WORD_BYTES: u32 = 4;
