//! The SL32 instruction model.

use std::fmt;

use crate::Reg;

/// A decoded SL32 instruction.
///
/// SL32 is a fixed-width 32-bit load/store ISA with three encoding formats
/// (R, I, J) in the style of classic MIPS-32, simplified for the SOFIA
/// reproduction: **no branch delay slots** and no register windows (see
/// `DESIGN.md`, substitution S1). The all-zero word is the canonical
/// [`Instruction::nop`].
///
/// Branch offsets are signed word counts relative to the *next* instruction
/// (`target = pc + 4 + offset * 4`); jump indices address words within the
/// 256 MiB region of the jump itself (`target = (pc & 0xF000_0000) |
/// (index << 2)`).
///
/// # Examples
///
/// ```
/// use sofia_isa::{Instruction, Reg};
///
/// let add = Instruction::Add { rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 };
/// let word = add.encode();
/// assert_eq!(Instruction::decode(word)?, add);
/// assert!(!add.is_store());
/// # Ok::<(), sofia_isa::error::DecodeError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // operand fields follow one fixed naming scheme
pub enum Instruction {
    // ---- R-type ALU, three registers: rd <- rs OP rt ----
    Add {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Set `rd` to 1 if `rs < rt` (signed), else 0.
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Set `rd` to 1 if `rs < rt` (unsigned), else 0.
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd <- low 32 bits of rs * rt`.
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Signed division; division by zero traps.
    Div {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Divu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Signed remainder; division by zero traps.
    Rem {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Remu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd <- rt << (rs & 31)`.
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },

    // ---- R-type shifts by immediate: rd <- rt SHIFT shamt ----
    Sll {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },

    // ---- R-type control ----
    /// Indirect jump to the address in `rs`.
    Jr {
        rs: Reg,
    },
    /// Indirect call: `rd <- pc + 4`, jump to `rs`.
    Jalr {
        rd: Reg,
        rs: Reg,
    },
    /// Stop the simulation; the program's exit point.
    Halt,

    // ---- I-type ALU ----
    /// `rt <- rs + sign_extend(imm)`.
    Addi {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    /// `rt <- rs & zero_extend(imm)`.
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    /// `rt <- imm << 16`.
    Lui {
        rt: Reg,
        imm: u16,
    },

    // ---- I-type memory: address = base + sign_extend(offset) ----
    Lb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },

    // ---- I-type compare-and-branch; offset in words from pc + 4 ----
    Beq {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    /// Branch if `rs < rt` (signed).
    Blt {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    /// Branch if `rs >= rt` (signed).
    Bge {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Bltu {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Bgeu {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },

    // ---- J-type; index is a 26-bit word index ----
    J {
        index: u32,
    },
    /// Call: `ra <- pc + 4`, jump to index.
    Jal {
        index: u32,
    },
}

impl Instruction {
    /// The canonical no-operation instruction, `sll zero, zero, 0`,
    /// which encodes to the all-zero word.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::Instruction;
    /// assert_eq!(Instruction::nop().encode(), 0);
    /// ```
    pub const fn nop() -> Instruction {
        Instruction::Sll {
            rd: Reg::ZERO,
            rt: Reg::ZERO,
            shamt: 0,
        }
    }

    /// Whether this instruction is a no-op in effect (writes nothing).
    pub fn is_nop(&self) -> bool {
        *self == Instruction::nop()
    }

    /// Whether this instruction writes to data memory.
    pub const fn is_store(&self) -> bool {
        matches!(
            self,
            Instruction::Sb { .. } | Instruction::Sh { .. } | Instruction::Sw { .. }
        )
    }

    /// Whether this instruction reads from data memory.
    pub const fn is_load(&self) -> bool {
        matches!(
            self,
            Instruction::Lb { .. }
                | Instruction::Lbu { .. }
                | Instruction::Lh { .. }
                | Instruction::Lhu { .. }
                | Instruction::Lw { .. }
        )
    }

    /// Whether this is a conditional branch.
    pub const fn is_branch(&self) -> bool {
        matches!(
            self,
            Instruction::Beq { .. }
                | Instruction::Bne { .. }
                | Instruction::Blt { .. }
                | Instruction::Bge { .. }
                | Instruction::Bltu { .. }
                | Instruction::Bgeu { .. }
        )
    }

    /// Whether this is a direct jump (`j`/`jal`).
    pub const fn is_direct_jump(&self) -> bool {
        matches!(self, Instruction::J { .. } | Instruction::Jal { .. })
    }

    /// Whether this is an indirect jump (`jr`/`jalr`).
    pub const fn is_indirect_jump(&self) -> bool {
        matches!(self, Instruction::Jr { .. } | Instruction::Jalr { .. })
    }

    /// Whether this is a call (`jal`/`jalr`), i.e. it links a return address.
    pub const fn is_call(&self) -> bool {
        matches!(self, Instruction::Jal { .. } | Instruction::Jalr { .. })
    }

    /// Whether this instruction can change the program counter: any
    /// branch or jump, or `halt` (which terminates the stream).
    ///
    /// SOFIA's transformer only places such instructions in the **last**
    /// slot of an execution block ("control can only exit at `inst_n`").
    pub const fn is_control_transfer(&self) -> bool {
        self.is_branch()
            || self.is_direct_jump()
            || self.is_indirect_jump()
            || matches!(self, Instruction::Halt)
    }

    /// The register written by this instruction, if any.
    ///
    /// Writes to `zero` are reported as `None` since they have no effect.
    pub fn def_reg(&self) -> Option<Reg> {
        use Instruction::*;
        let rd = match *self {
            Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Divu { rd, .. }
            | Rem { rd, .. }
            | Remu { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Srav { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Jalr { rd, .. } => rd,
            Addi { rt, .. }
            | Slti { rt, .. }
            | Sltiu { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Lui { rt, .. }
            | Lb { rt, .. }
            | Lbu { rt, .. }
            | Lh { rt, .. }
            | Lhu { rt, .. }
            | Lw { rt, .. } => rt,
            Jal { .. } => Reg::RA,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The registers read by this instruction (at most two).
    pub fn use_regs(&self) -> Vec<Reg> {
        use Instruction::*;
        match *self {
            Add { rs, rt, .. }
            | Sub { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Divu { rs, rt, .. }
            | Rem { rs, rt, .. }
            | Remu { rs, rt, .. }
            | Sllv { rs, rt, .. }
            | Srlv { rs, rt, .. }
            | Srav { rs, rt, .. }
            | Beq { rs, rt, .. }
            | Bne { rs, rt, .. }
            | Blt { rs, rt, .. }
            | Bge { rs, rt, .. }
            | Bltu { rs, rt, .. }
            | Bgeu { rs, rt, .. } => vec![rs, rt],
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
            Addi { rs, .. }
            | Slti { rs, .. }
            | Sltiu { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. } => vec![rs],
            Lb { base, .. }
            | Lbu { base, .. }
            | Lh { base, .. }
            | Lhu { base, .. }
            | Lw { base, .. } => vec![base],
            Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => vec![rt, base],
            Jr { rs } | Jalr { rs, .. } => vec![rs],
            Lui { .. } | J { .. } | Jal { .. } | Halt => vec![],
        }
    }

    /// The conditional-branch or direct-jump target for an instruction at
    /// address `pc`, if this instruction has a static target.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::{Instruction, Reg};
    ///
    /// let b = Instruction::Beq { rs: Reg::ZERO, rt: Reg::ZERO, offset: -2 };
    /// assert_eq!(b.static_target(0x100), Some(0x100 + 4 - 8));
    /// ```
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        use Instruction::*;
        match *self {
            Beq { offset, .. }
            | Bne { offset, .. }
            | Blt { offset, .. }
            | Bge { offset, .. }
            | Bltu { offset, .. }
            | Bgeu { offset, .. } => {
                Some(pc.wrapping_add(4).wrapping_add((offset as i32 as u32) << 2))
            }
            J { index } | Jal { index } => Some((pc & 0xF000_0000) | (index << 2)),
            _ => None,
        }
    }

    /// Whether execution can fall through to the following instruction.
    ///
    /// False for unconditional jumps (`j`, `jr`, `jalr` — the return
    /// arrives via the link register, not fall-through) and `halt`; `jal`
    /// is treated as *not* falling through directly (the successor is
    /// reached as a return point).
    pub const fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instruction::J { .. }
                | Instruction::Jr { .. }
                | Instruction::Jal { .. }
                | Instruction::Jalr { .. }
                | Instruction::Halt
        )
    }

    /// The instruction's mnemonic, e.g. `"addi"`.
    pub const fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            Add { .. } => "add",
            Sub { .. } => "sub",
            And { .. } => "and",
            Or { .. } => "or",
            Xor { .. } => "xor",
            Nor { .. } => "nor",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Mul { .. } => "mul",
            Div { .. } => "div",
            Divu { .. } => "divu",
            Rem { .. } => "rem",
            Remu { .. } => "remu",
            Sllv { .. } => "sllv",
            Srlv { .. } => "srlv",
            Srav { .. } => "srav",
            Sll { .. } => "sll",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Jr { .. } => "jr",
            Jalr { .. } => "jalr",
            Halt => "halt",
            Addi { .. } => "addi",
            Slti { .. } => "slti",
            Sltiu { .. } => "sltiu",
            Andi { .. } => "andi",
            Ori { .. } => "ori",
            Xori { .. } => "xori",
            Lui { .. } => "lui",
            Lb { .. } => "lb",
            Lbu { .. } => "lbu",
            Lh { .. } => "lh",
            Lhu { .. } => "lhu",
            Lw { .. } => "lw",
            Sb { .. } => "sb",
            Sh { .. } => "sh",
            Sw { .. } => "sw",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blt { .. } => "blt",
            Bge { .. } => "bge",
            Bltu { .. } => "bltu",
            Bgeu { .. } => "bgeu",
            J { .. } => "j",
            Jal { .. } => "jal",
        }
    }
}

impl Default for Instruction {
    /// The default instruction is [`Instruction::nop`].
    fn default() -> Self {
        Instruction::nop()
    }
}

impl fmt::Display for Instruction {
    /// Formats the instruction in assembler syntax (branch/jump targets are
    /// shown numerically; use the disassembler for address annotation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        if self.is_nop() {
            return f.write_str("nop");
        }
        let m = self.mnemonic();
        match *self {
            Add { rd, rs, rt }
            | Sub { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt }
            | Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Divu { rd, rs, rt }
            | Rem { rd, rs, rt }
            | Remu { rd, rs, rt } => {
                write!(f, "{m} {rd}, {rs}, {rt}")
            }
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                write!(f, "{m} {rd}, {rt}, {rs}")
            }
            Sll { rd, rt, shamt } | Srl { rd, rt, shamt } | Sra { rd, rt, shamt } => {
                write!(f, "{m} {rd}, {rt}, {shamt}")
            }
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Halt => f.write_str("halt"),
            Addi { rt, rs, imm } | Slti { rt, rs, imm } | Sltiu { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm}")
            }
            Andi { rt, rs, imm } | Ori { rt, rs, imm } | Xori { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm:#x}")
            }
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lb { rt, base, offset }
            | Lbu { rt, base, offset }
            | Lh { rt, base, offset }
            | Lhu { rt, base, offset }
            | Lw { rt, base, offset }
            | Sb { rt, base, offset }
            | Sh { rt, base, offset }
            | Sw { rt, base, offset } => {
                write!(f, "{m} {rt}, {offset}({base})")
            }
            Beq { rs, rt, offset }
            | Bne { rs, rt, offset }
            | Blt { rs, rt, offset }
            | Bge { rs, rt, offset }
            | Bltu { rs, rt, offset }
            | Bgeu { rs, rt, offset } => {
                write!(f, "{m} {rs}, {rt}, {offset}")
            }
            J { index } => write!(f, "j {:#x}", index << 2),
            Jal { index } => write!(f, "jal {:#x}", index << 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_all_zero_and_harmless() {
        let n = Instruction::nop();
        assert!(n.is_nop());
        assert_eq!(n.encode(), 0);
        assert_eq!(n.def_reg(), None);
        assert!(!n.is_control_transfer());
    }

    #[test]
    fn classification_is_consistent() {
        let sw = Instruction::Sw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: -4,
        };
        assert!(sw.is_store() && !sw.is_load() && !sw.is_control_transfer());

        let jal = Instruction::Jal { index: 0x40 };
        assert!(jal.is_call() && jal.is_direct_jump() && jal.is_control_transfer());
        assert!(!jal.falls_through());
        assert_eq!(jal.def_reg(), Some(Reg::RA));

        let beq = Instruction::Beq {
            rs: Reg::A0,
            rt: Reg::A1,
            offset: 3,
        };
        assert!(beq.is_branch() && beq.falls_through());
    }

    #[test]
    fn static_targets() {
        let b = Instruction::Bne {
            rs: Reg::T0,
            rt: Reg::ZERO,
            offset: -1,
        };
        assert_eq!(b.static_target(0x200), Some(0x200));
        let j = Instruction::J { index: 0x123 };
        assert_eq!(
            j.static_target(0x1000_0000),
            Some(0x1000_0000 & 0xF000_0000 | 0x48C)
        );
        let add = Instruction::Add {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(add.static_target(0), None);
    }

    #[test]
    fn def_to_zero_is_hidden() {
        let i = Instruction::Addi {
            rt: Reg::ZERO,
            rs: Reg::T0,
            imm: 5,
        };
        assert_eq!(i.def_reg(), None);
    }

    #[test]
    fn display_smoke() {
        let i = Instruction::Lw {
            rt: Reg::T1,
            base: Reg::A0,
            offset: 8,
        };
        assert_eq!(i.to_string(), "lw t1, 8(a0)");
        assert_eq!(Instruction::Halt.to_string(), "halt");
    }
}
