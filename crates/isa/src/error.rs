//! Error types for the SL32 ISA crate.

use std::error::Error;
use std::fmt;

/// A machine word that does not decode to any SL32 instruction.
///
/// # Examples
///
/// ```
/// use sofia_isa::Instruction;
/// let err = Instruction::decode(0xFC00_0000).unwrap_err();
/// assert_eq!(err.word(), 0xFC00_0000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    pub(crate) word: u32,
}

impl DecodeError {
    /// The offending machine word.
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

/// A string that does not name an SL32 register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegError {
    pub(crate) name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl Error for ParseRegError {}

/// An error raised while parsing or assembling SL32 source text.
///
/// Carries the 1-based source line on which the problem was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 when the error is not tied to a line, e.g.
    /// an undefined label discovered at layout time).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The specific assembly failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// An unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// Operand count or shape did not match the mnemonic.
    BadOperands(String),
    /// A register name failed to parse.
    BadRegister(String),
    /// A literal was malformed or out of range for its field.
    BadImmediate(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A branch target is further than ±32 Ki-words away.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// Distance in words.
        distance: i64,
    },
    /// A jump target lies outside the 256 MiB region of the jump.
    JumpOutOfRegion {
        /// The target label.
        label: String,
    },
    /// A directive appeared in the wrong section (e.g. `.word` in `.text`
    /// between instructions is allowed, but instructions in `.data` are not).
    MisplacedItem(String),
    /// `.indirect` was not followed by an indirect jump.
    DanglingIndirect,
    /// Malformed directive arguments.
    BadDirective(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AsmErrorKind::*;
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            UnknownMnemonic(m) => write!(f, "unknown mnemonic or directive `{m}`"),
            BadOperands(m) => write!(f, "bad operands: {m}"),
            BadRegister(r) => write!(f, "bad register `{r}`"),
            BadImmediate(v) => write!(f, "bad immediate `{v}`"),
            DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BranchOutOfRange { label, distance } => {
                write!(f, "branch to `{label}` out of range ({distance} words)")
            }
            JumpOutOfRegion { label } => write!(f, "jump target `{label}` outside 256 MiB region"),
            MisplacedItem(m) => write!(f, "misplaced item: {m}"),
            DanglingIndirect => write!(f, ".indirect must precede jalr/jr"),
            BadDirective(m) => write!(f, "bad directive: {m}"),
        }
    }
}

impl Error for AsmError {}
