//! Binary encoding and decoding of SL32 instructions.
//!
//! The three formats follow the classic MIPS-32 field layout:
//!
//! ```text
//! R:  | op(6) | rs(5) | rt(5) | rd(5) | shamt(5) | funct(6) |
//! I:  | op(6) | rs(5) | rt(5) |          imm(16)            |
//! J:  | op(6) |                index(26)                    |
//! ```

use crate::error::DecodeError;
use crate::{Instruction, Reg};

// Primary opcodes.
const OP_RTYPE: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLT: u32 = 0x06;
const OP_BGE: u32 = 0x07;
const OP_ADDI: u32 = 0x08;
const OP_SLTI: u32 = 0x0A;
const OP_SLTIU: u32 = 0x0B;
const OP_ANDI: u32 = 0x0C;
const OP_ORI: u32 = 0x0D;
const OP_XORI: u32 = 0x0E;
const OP_LUI: u32 = 0x0F;
const OP_BLTU: u32 = 0x16;
const OP_BGEU: u32 = 0x17;
const OP_LB: u32 = 0x20;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LBU: u32 = 0x24;
const OP_LHU: u32 = 0x25;
const OP_SB: u32 = 0x28;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2B;

// R-type function codes.
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_SRA: u32 = 0x03;
const F_SLLV: u32 = 0x04;
const F_SRLV: u32 = 0x06;
const F_SRAV: u32 = 0x07;
const F_JR: u32 = 0x08;
const F_JALR: u32 = 0x09;
const F_HALT: u32 = 0x0D;
const F_MUL: u32 = 0x18;
const F_DIV: u32 = 0x1A;
const F_DIVU: u32 = 0x1B;
const F_REM: u32 = 0x1E;
const F_REMU: u32 = 0x1F;
const F_ADD: u32 = 0x20;
const F_SUB: u32 = 0x22;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_XOR: u32 = 0x26;
const F_NOR: u32 = 0x27;
const F_SLT: u32 = 0x2A;
const F_SLTU: u32 = 0x2B;

fn r(rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    ((rs.index() as u32) << 21)
        | ((rt.index() as u32) << 16)
        | ((rd.index() as u32) << 11)
        | (((shamt & 0x1F) as u32) << 6)
        | funct
}

fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs.index() as u32) << 21) | ((rt.index() as u32) << 16) | imm as u32
}

fn j(op: u32, index: u32) -> u32 {
    (op << 26) | (index & 0x03FF_FFFF)
}

impl Instruction {
    /// Encodes this instruction to its 32-bit machine word.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::Instruction;
    /// assert_eq!(Instruction::nop().encode(), 0);
    /// assert_eq!(Instruction::Halt.encode(), 0x0000_000D);
    /// ```
    pub fn encode(&self) -> u32 {
        use Instruction::*;
        let z = Reg::ZERO;
        match *self {
            Add { rd, rs, rt } => r(rs, rt, rd, 0, F_ADD),
            Sub { rd, rs, rt } => r(rs, rt, rd, 0, F_SUB),
            And { rd, rs, rt } => r(rs, rt, rd, 0, F_AND),
            Or { rd, rs, rt } => r(rs, rt, rd, 0, F_OR),
            Xor { rd, rs, rt } => r(rs, rt, rd, 0, F_XOR),
            Nor { rd, rs, rt } => r(rs, rt, rd, 0, F_NOR),
            Slt { rd, rs, rt } => r(rs, rt, rd, 0, F_SLT),
            Sltu { rd, rs, rt } => r(rs, rt, rd, 0, F_SLTU),
            Mul { rd, rs, rt } => r(rs, rt, rd, 0, F_MUL),
            Div { rd, rs, rt } => r(rs, rt, rd, 0, F_DIV),
            Divu { rd, rs, rt } => r(rs, rt, rd, 0, F_DIVU),
            Rem { rd, rs, rt } => r(rs, rt, rd, 0, F_REM),
            Remu { rd, rs, rt } => r(rs, rt, rd, 0, F_REMU),
            Sllv { rd, rt, rs } => r(rs, rt, rd, 0, F_SLLV),
            Srlv { rd, rt, rs } => r(rs, rt, rd, 0, F_SRLV),
            Srav { rd, rt, rs } => r(rs, rt, rd, 0, F_SRAV),
            Sll { rd, rt, shamt } => r(z, rt, rd, shamt, F_SLL),
            Srl { rd, rt, shamt } => r(z, rt, rd, shamt, F_SRL),
            Sra { rd, rt, shamt } => r(z, rt, rd, shamt, F_SRA),
            Jr { rs } => r(rs, z, z, 0, F_JR),
            Jalr { rd, rs } => r(rs, z, rd, 0, F_JALR),
            Halt => F_HALT,
            Addi { rt, rs, imm } => i(OP_ADDI, rs, rt, imm as u16),
            Slti { rt, rs, imm } => i(OP_SLTI, rs, rt, imm as u16),
            Sltiu { rt, rs, imm } => i(OP_SLTIU, rs, rt, imm as u16),
            Andi { rt, rs, imm } => i(OP_ANDI, rs, rt, imm),
            Ori { rt, rs, imm } => i(OP_ORI, rs, rt, imm),
            Xori { rt, rs, imm } => i(OP_XORI, rs, rt, imm),
            Lui { rt, imm } => i(OP_LUI, z, rt, imm),
            Lb { rt, base, offset } => i(OP_LB, base, rt, offset as u16),
            Lbu { rt, base, offset } => i(OP_LBU, base, rt, offset as u16),
            Lh { rt, base, offset } => i(OP_LH, base, rt, offset as u16),
            Lhu { rt, base, offset } => i(OP_LHU, base, rt, offset as u16),
            Lw { rt, base, offset } => i(OP_LW, base, rt, offset as u16),
            Sb { rt, base, offset } => i(OP_SB, base, rt, offset as u16),
            Sh { rt, base, offset } => i(OP_SH, base, rt, offset as u16),
            Sw { rt, base, offset } => i(OP_SW, base, rt, offset as u16),
            Beq { rs, rt, offset } => i(OP_BEQ, rs, rt, offset as u16),
            Bne { rs, rt, offset } => i(OP_BNE, rs, rt, offset as u16),
            Blt { rs, rt, offset } => i(OP_BLT, rs, rt, offset as u16),
            Bge { rs, rt, offset } => i(OP_BGE, rs, rt, offset as u16),
            Bltu { rs, rt, offset } => i(OP_BLTU, rs, rt, offset as u16),
            Bgeu { rs, rt, offset } => i(OP_BGEU, rs, rt, offset as u16),
            J { index } => j(OP_J, index),
            Jal { index } => j(OP_JAL, index),
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word does not correspond to any
    /// SL32 instruction (undefined opcode or function code, or non-zero
    /// bits in fields that must be zero). On hardware this raises an
    /// illegal-instruction trap; under SOFIA a wrongly decrypted word most
    /// often lands here, but the architecture does **not** rely on that —
    /// the MAC check catches even tampered words that decode cleanly.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::Instruction;
    /// assert!(Instruction::decode(0xFFFF_FFFF).is_err());
    /// assert_eq!(Instruction::decode(0x0000_000D)?, Instruction::Halt);
    /// # Ok::<(), sofia_isa::error::DecodeError>(())
    /// ```
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        use Instruction::*;
        let op = word >> 26;
        let rs = Reg::from_field(word >> 21);
        let rt = Reg::from_field(word >> 16);
        let rd = Reg::from_field(word >> 11);
        let shamt = ((word >> 6) & 0x1F) as u8;
        let funct = word & 0x3F;
        let imm = (word & 0xFFFF) as u16;
        let simm = imm as i16;
        let index = word & 0x03FF_FFFF;
        let err = || DecodeError { word };

        let inst = match op {
            OP_RTYPE => match funct {
                F_SLL => Sll { rd, rt, shamt },
                F_SRL => Srl { rd, rt, shamt },
                F_SRA => Sra { rd, rt, shamt },
                F_SLLV => Sllv { rd, rt, rs },
                F_SRLV => Srlv { rd, rt, rs },
                F_SRAV => Srav { rd, rt, rs },
                F_JR => Jr { rs },
                F_JALR => Jalr { rd, rs },
                // `halt` must have all-zero register fields.
                F_HALT if word == F_HALT => Halt,
                F_HALT => return Err(err()),
                F_MUL => Mul { rd, rs, rt },
                F_DIV => Div { rd, rs, rt },
                F_DIVU => Divu { rd, rs, rt },
                F_REM => Rem { rd, rs, rt },
                F_REMU => Remu { rd, rs, rt },
                F_ADD => Add { rd, rs, rt },
                F_SUB => Sub { rd, rs, rt },
                F_AND => And { rd, rs, rt },
                F_OR => Or { rd, rs, rt },
                F_XOR => Xor { rd, rs, rt },
                F_NOR => Nor { rd, rs, rt },
                F_SLT => Slt { rd, rs, rt },
                F_SLTU => Sltu { rd, rs, rt },
                _ => return Err(err()),
            },
            OP_J => J { index },
            OP_JAL => Jal { index },
            OP_BEQ => Beq {
                rs,
                rt,
                offset: simm,
            },
            OP_BNE => Bne {
                rs,
                rt,
                offset: simm,
            },
            OP_BLT => Blt {
                rs,
                rt,
                offset: simm,
            },
            OP_BGE => Bge {
                rs,
                rt,
                offset: simm,
            },
            OP_BLTU => Bltu {
                rs,
                rt,
                offset: simm,
            },
            OP_BGEU => Bgeu {
                rs,
                rt,
                offset: simm,
            },
            OP_ADDI => Addi { rt, rs, imm: simm },
            OP_SLTI => Slti { rt, rs, imm: simm },
            OP_SLTIU => Sltiu { rt, rs, imm: simm },
            OP_ANDI => Andi { rt, rs, imm },
            OP_ORI => Ori { rt, rs, imm },
            OP_XORI => Xori { rt, rs, imm },
            OP_LUI => Lui { rt, imm },
            OP_LB => Lb {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LBU => Lbu {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LH => Lh {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LHU => Lhu {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LW => Lw {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SB => Sb {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SH => Sh {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SW => Sw {
                rt,
                base: rs,
                offset: simm,
            },
            _ => return Err(err()),
        };
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|n| Reg::new(n).unwrap())
    }

    /// A strategy over every instruction variant with random operands.
    pub(crate) fn inst_strategy() -> BoxedStrategy<Instruction> {
        use Instruction::*;
        let rg = reg_strategy;
        let arms: Vec<BoxedStrategy<Instruction>> = vec![
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Add { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Sub { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| And { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Or { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Xor { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Nor { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Slt { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Mul { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Div { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Divu { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Rem { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rs, rt)| Remu { rd, rs, rt })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rt, rs)| Sllv { rd, rt, rs })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rt, rs)| Srlv { rd, rt, rs })
                .boxed(),
            (rg(), rg(), rg())
                .prop_map(|(rd, rt, rs)| Srav { rd, rt, rs })
                .boxed(),
            (rg(), rg(), 0u8..32)
                .prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt })
                .boxed(),
            (rg(), rg(), 0u8..32)
                .prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt })
                .boxed(),
            (rg(), rg(), 0u8..32)
                .prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt })
                .boxed(),
            rg().prop_map(|rs| Jr { rs }).boxed(),
            (rg(), rg()).prop_map(|(rd, rs)| Jalr { rd, rs }).boxed(),
            Just(Halt).boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, rs, imm)| Addi { rt, rs, imm })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, rs, imm)| Slti { rt, rs, imm })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, rs, imm)| Sltiu { rt, rs, imm })
                .boxed(),
            (rg(), rg(), any::<u16>())
                .prop_map(|(rt, rs, imm)| Andi { rt, rs, imm })
                .boxed(),
            (rg(), rg(), any::<u16>())
                .prop_map(|(rt, rs, imm)| Ori { rt, rs, imm })
                .boxed(),
            (rg(), rg(), any::<u16>())
                .prop_map(|(rt, rs, imm)| Xori { rt, rs, imm })
                .boxed(),
            (rg(), any::<u16>())
                .prop_map(|(rt, imm)| Lui { rt, imm })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Lb { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Lbu { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Lh { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Lhu { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Lw { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Sb { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Sh { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rt, base, offset)| Sw { rt, base, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Beq { rs, rt, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Bne { rs, rt, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Blt { rs, rt, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Bge { rs, rt, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Bltu { rs, rt, offset })
                .boxed(),
            (rg(), rg(), any::<i16>())
                .prop_map(|(rs, rt, offset)| Bgeu { rs, rt, offset })
                .boxed(),
            (0u32..1 << 26).prop_map(|index| J { index }).boxed(),
            (0u32..1 << 26).prop_map(|index| Jal { index }).boxed(),
        ];
        proptest::strategy::Union::new(arms).boxed()
    }

    proptest! {
        /// encode ∘ decode is the identity on every instruction.
        #[test]
        fn encode_decode_roundtrip(inst in inst_strategy()) {
            let word = inst.encode();
            let back = Instruction::decode(word).expect("encoded word must decode");
            // `jr`/`jalr` zero unused fields, so semantic equality is exact
            // except for instructions whose unused fields we canonicalise;
            // the strategy only produces canonical operands, so require
            // exact equality.
            prop_assert_eq!(back, inst);
        }

        /// decode never panics and, when it succeeds, re-encoding either
        /// reproduces the word or the word had junk in ignored fields.
        #[test]
        fn decode_total(word in any::<u32>()) {
            if let Ok(inst) = Instruction::decode(word) {
                let canonical = inst.encode();
                let again = Instruction::decode(canonical).unwrap();
                prop_assert_eq!(again, inst);
            }
        }
    }

    #[test]
    fn distinct_instructions_have_distinct_encodings() {
        use std::collections::HashSet;
        let mut words = HashSet::new();
        let samples = [
            Instruction::nop(),
            Instruction::Halt,
            Instruction::Add {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Instruction::Addi {
                rt: Reg::T0,
                rs: Reg::T1,
                imm: -1,
            },
            Instruction::Lw {
                rt: Reg::T0,
                base: Reg::SP,
                offset: 4,
            },
            Instruction::Sw {
                rt: Reg::T0,
                base: Reg::SP,
                offset: 4,
            },
            Instruction::Beq {
                rs: Reg::T0,
                rt: Reg::T1,
                offset: 2,
            },
            Instruction::J { index: 4 },
            Instruction::Jal { index: 4 },
            Instruction::Jr { rs: Reg::RA },
        ];
        for s in samples {
            assert!(words.insert(s.encode()), "duplicate encoding for {s}");
        }
    }

    #[test]
    fn undefined_opcodes_are_rejected() {
        // opcode 0x3F is unassigned
        assert!(Instruction::decode(0xFC00_0000).is_err());
        // R-type with unassigned funct 0x3F
        assert!(Instruction::decode(0x0000_003F).is_err());
        // halt with junk in register fields is illegal
        assert!(Instruction::decode(0x0001_000D).is_err());
    }
}
