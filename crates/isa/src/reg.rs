//! Architectural registers of the SL32 ISA.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseRegError;

/// One of the 32 general-purpose registers.
///
/// Register 0 ([`Reg::ZERO`]) is hard-wired to zero: writes to it are
/// discarded by the CPU. The remaining registers are general purpose; the
/// assembler understands the MIPS-flavoured ABI aliases listed below.
///
/// | alias | registers | conventional role |
/// |-------|-----------|-------------------|
/// | `zero` | r0 | constant 0 |
/// | `v0`-`v1` | r2-r3 | return values |
/// | `a0`-`a3` | r4-r7 | arguments |
/// | `t0`-`t7` | r8-r15 | caller-saved temporaries |
/// | `s0`-`s7` | r16-r23 | callee-saved |
/// | `t8`-`t9` | r24-r25 | more temporaries |
/// | `k0`-`k1` | r26-r27 | reserved |
/// | `gp` | r28 | global pointer |
/// | `sp` | r29 | stack pointer |
/// | `fp` | r30 | frame pointer |
/// | `ra` | r31 | return address (written by `jal`/`jalr`) |
///
/// # Examples
///
/// ```
/// use sofia_isa::Reg;
///
/// let sp: Reg = "sp".parse()?;
/// assert_eq!(sp, Reg::SP);
/// assert_eq!(sp.index(), 29);
/// assert_eq!(sp.to_string(), "sp");
/// # Ok::<(), sofia_isa::error::ParseRegError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register, `r0`.
    pub const ZERO: Reg = Reg(0);
    /// First return-value register, `r2`.
    pub const V0: Reg = Reg(2);
    /// Second return-value register, `r3`.
    pub const V1: Reg = Reg(3);
    /// First argument register, `r4`.
    pub const A0: Reg = Reg(4);
    /// Second argument register, `r5`.
    pub const A1: Reg = Reg(5);
    /// Third argument register, `r6`.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register, `r7`.
    pub const A3: Reg = Reg(7);
    /// Temporary register `t0` (`r8`).
    pub const T0: Reg = Reg(8);
    /// Temporary register `t1` (`r9`).
    pub const T1: Reg = Reg(9);
    /// Temporary register `t2` (`r10`).
    pub const T2: Reg = Reg(10);
    /// Temporary register `t3` (`r11`).
    pub const T3: Reg = Reg(11);
    /// Temporary register `t4` (`r12`).
    pub const T4: Reg = Reg(12);
    /// Temporary register `t5` (`r13`).
    pub const T5: Reg = Reg(13);
    /// Temporary register `t6` (`r14`).
    pub const T6: Reg = Reg(14);
    /// Temporary register `t7` (`r15`).
    pub const T7: Reg = Reg(15);
    /// Saved register `s0` (`r16`).
    pub const S0: Reg = Reg(16);
    /// Saved register `s1` (`r17`).
    pub const S1: Reg = Reg(17);
    /// Saved register `s2` (`r18`).
    pub const S2: Reg = Reg(18);
    /// Saved register `s3` (`r19`).
    pub const S3: Reg = Reg(19);
    /// Saved register `s4` (`r20`).
    pub const S4: Reg = Reg(20);
    /// Saved register `s5` (`r21`).
    pub const S5: Reg = Reg(21);
    /// Saved register `s6` (`r22`).
    pub const S6: Reg = Reg(22);
    /// Saved register `s7` (`r23`).
    pub const S7: Reg = Reg(23);
    /// Temporary register `t8` (`r24`).
    pub const T8: Reg = Reg(24);
    /// Temporary register `t9` (`r25`).
    pub const T9: Reg = Reg(25);
    /// Reserved register `k0` (`r26`) — scratch for the SOFIA transformer's
    /// indirect-dispatch ladders; not preserved across indirect transfers.
    pub const K0: Reg = Reg(26);
    /// Reserved register `k1` (`r27`).
    pub const K1: Reg = Reg(27);
    /// Global pointer, `r28`.
    pub const GP: Reg = Reg(28);
    /// Stack pointer, `r29`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer, `r30`.
    pub const FP: Reg = Reg(30);
    /// Return-address register written by `jal`/`jalr`, `r31`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::Reg;
    /// assert_eq!(Reg::new(31), Some(Reg::RA));
    /// assert_eq!(Reg::new(32), None);
    /// ```
    pub const fn new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register from the low five bits of an encoded field.
    pub(crate) const fn from_field(field: u32) -> Reg {
        Reg((field & 0x1F) as u8)
    }

    /// The register's index, in `0..32`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The canonical ABI alias for this register (e.g. `"sp"` for r29).
    pub const fn name(self) -> &'static str {
        REG_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_isa::Reg;
    /// assert_eq!(Reg::all().count(), 32);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

const REG_NAMES: [&str; 32] = [
    "zero", "r1", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}={})", self.0, self.name())
    }
}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses either an ABI alias (`sp`, `t3`, …) or a numeric name
    /// (`r0`..`r31`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(pos) = REG_NAMES.iter().position(|n| *n == s) {
            return Ok(Reg(pos as u8));
        }
        if let Some(num) = s.strip_prefix('r') {
            if let Ok(idx) = num.parse::<u8>() {
                if idx < 32 {
                    return Ok(Reg(idx));
                }
            }
        }
        Err(ParseRegError {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_round_trip_through_parse() {
        for r in Reg::all() {
            let parsed: Reg = r.name().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let parsed: Reg = format!("r{i}").parse().unwrap();
            assert_eq!(parsed.index(), i);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("x5".parse::<Reg>().is_err());
        assert!(Reg::new(32).is_none());
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }
}
