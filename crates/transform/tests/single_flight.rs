//! Single-flight pinning: many threads hammering [`ImageCache`] for the
//! *same* `(keys, source)` must trigger exactly one seal, and every
//! caller must come back holding the same `Arc<SecureImage>` — the
//! property the fleet's seal farm builds its cold-start story on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use sofia_crypto::KeySet;
use sofia_transform::cache::{image_key, ImageCache};

const PROGRAM: &str = "main: li t0, 11
                             li t1, 0
                       loop: add t1, t1, t0
                             subi t0, t0, 1
                             bnez t0, loop
                             li a0, 0xFFFF0000
                             sw t1, 0(a0)
                             halt";

/// 16 threads × 8 calls for one image: exactly one seal (one traced
/// `false`, one cache miss), 127 shares, and every `Arc` pointer-equal.
#[test]
fn hammered_cache_seals_once_and_shares_one_arc() {
    let threads = 16;
    let calls_per_thread = 8;
    let cache = ImageCache::new();
    let keys = KeySet::from_seed(0x51F1);
    let barrier = Barrier::new(threads);
    let sealed_fresh = AtomicUsize::new(0);

    let images: Vec<Arc<sofia_transform::SecureImage>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (cache, keys, barrier, sealed_fresh) = (&cache, &keys, &barrier, &sealed_fresh);
                scope.spawn(move || {
                    // Line every thread up so the cold call truly races.
                    barrier.wait();
                    let mut got = Vec::new();
                    for _ in 0..calls_per_thread {
                        let (image, from_cache) =
                            cache.get_or_seal_traced(keys, PROGRAM).expect("seals");
                        if !from_cache {
                            sealed_fresh.fetch_add(1, Ordering::SeqCst);
                        }
                        got.push(image);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    assert_eq!(images.len(), threads * calls_per_thread);
    assert_eq!(
        sealed_fresh.load(Ordering::SeqCst),
        1,
        "exactly one caller observed a fresh seal"
    );
    let first = &images[0];
    assert!(
        images.iter().all(|i| Arc::ptr_eq(i, first)),
        "every caller shares the one sealed image"
    );

    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "the transformer ran once: {stats:?}");
    assert_eq!(stats.hits, (threads * calls_per_thread - 1) as u64);
    assert_eq!(stats.entries, 1);
}

/// The race dedups per *image*, not globally: distinct tenants sealing
/// concurrently each seal exactly once, with no cross-tenant sharing.
#[test]
fn concurrent_distinct_tenants_seal_once_each() {
    let tenants = 8;
    let cache = ImageCache::new();
    let keysets: Vec<KeySet> = (0..tenants)
        .map(|s| KeySet::from_seed(s as u64 + 1))
        .collect();
    let barrier = Barrier::new(tenants * 2);

    std::thread::scope(|scope| {
        // Two threads per tenant, all released at once.
        for keys in keysets.iter().chain(keysets.iter()) {
            let (cache, barrier) = (&cache, &barrier);
            scope.spawn(move || {
                barrier.wait();
                cache.get_or_seal(keys, PROGRAM).expect("seals");
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.misses, tenants as u64,
        "one seal per tenant: {stats:?}"
    );
    assert_eq!(stats.hits, tenants as u64);
    assert_eq!(stats.entries, tenants);
    // Distinct tenants really did get distinct keys (no accidental
    // fingerprint collapse in this suite's key material).
    let keys: std::collections::HashSet<_> =
        keysets.iter().map(|k| image_key(k, PROGRAM)).collect();
    assert_eq!(keys.len(), tenants);
}
