//! The sealed program image and the installation report.

use std::collections::BTreeMap;

use sofia_crypto::Nonce;

use crate::decode::{DecodeError, Reader};
use crate::format::BlockFormat;

/// A securely installed program: ciphertext text section, plaintext data,
/// and the public header a SOFIA core needs to execute it (nonce, block
/// format, entry point).
///
/// The image deliberately contains **no key material**; confidentiality
/// and integrity rest entirely on the device keys (paper §II: "these keys
/// are known only by the software provider").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecureImage {
    /// The per-program nonce ω (stored in the clear, as in the paper).
    pub nonce: Nonce,
    /// Block geometry used by the installer.
    pub format: BlockFormat,
    /// Base address of the ciphertext text section (block-aligned).
    pub text_base: u32,
    /// Encrypted text: one word per 32-bit block word.
    pub ctext: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u32,
    /// Plaintext data section (SOFIA protects code, not data).
    pub data: Vec<u8>,
    /// The entry target the core jumps to out of reset (with
    /// `prevPC = RESET_PREV_PC`).
    pub entry: u32,
    /// Resolved label addresses, for debugging and the attack harness.
    pub symbols: BTreeMap<String, u32>,
    /// Installation statistics.
    pub report: TransformReport,
}

impl SecureImage {
    /// Size of the encrypted text section in bytes (the paper's §IV-B
    /// code-size metric: 6,976 B plain → 16,816 B transformed for ADPCM).
    pub fn text_bytes(&self) -> usize {
        self.ctext.len() * 4
    }

    /// Number of blocks in the image.
    pub fn blocks(&self) -> usize {
        self.ctext.len() / self.format.block_words()
    }

    /// Serialises the image to a self-describing little-endian byte
    /// stream (magic `SOFI1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SOFI1\0");
        push_u32(&mut out, self.nonce.value() as u32);
        push_u32(&mut out, self.format.exec_insts as u32);
        push_u32(&mut out, self.format.store_safe_word_offset as u32);
        push_u32(&mut out, self.text_base);
        push_u32(&mut out, self.entry);
        push_u32(&mut out, self.data_base);
        push_u32(&mut out, self.ctext.len() as u32);
        for w in &self.ctext {
            push_u32(&mut out, *w);
        }
        push_u32(&mut out, self.data.len() as u32);
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserialises an image written by [`SecureImage::to_bytes`].
    ///
    /// Symbols and the report are debug-only and are not serialised; the
    /// loaded image carries empty ones.
    ///
    /// # Errors
    ///
    /// Returns the typed [`DecodeError`] describing the corruption if the
    /// stream is malformed (shared with every other binary container in
    /// the workspace — see [`crate::decode`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<SecureImage, DecodeError> {
        let mut r = Reader::new(bytes);
        r.magic(b"SOFI1\0", "SOFI1")?;
        let nonce = Nonce::new(r.u32()? as u16);
        let format = BlockFormat {
            exec_insts: r.u32()? as usize,
            store_safe_word_offset: r.u32()? as usize,
        };
        format.validate().map_err(|e| DecodeError::BadField {
            field: "format",
            reason: e,
        })?;
        let text_base = r.u32()?;
        let entry = r.u32()?;
        let data_base = r.u32()?;
        let n = r.count("ctext", 4)?;
        let mut ctext = Vec::with_capacity(n);
        for _ in 0..n {
            ctext.push(r.u32()?);
        }
        let dn = r.count("data", 1)?;
        let data = r.take(dn)?.to_vec();
        r.finish()?;
        Ok(SecureImage {
            nonce,
            format,
            text_base,
            ctext,
            data_base,
            data,
            entry,
            symbols: BTreeMap::new(),
            report: TransformReport::default(),
        })
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// What the secure installation did to the program — the data behind the
/// paper's code-size-overhead numbers and the Fig. 9 scaling experiment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Instructions in the source module, before lowering.
    pub source_instructions: usize,
    /// Instructions after indirect-dispatch lowering and single-exit
    /// normalisation.
    pub lowered_instructions: usize,
    /// Total blocks emitted.
    pub blocks: usize,
    /// Execution blocks.
    pub exec_blocks: usize,
    /// Multiplexor blocks (including tree nodes).
    pub mux_blocks: usize,
    /// Multiplexor-tree trampolines among the mux blocks (Fig. 9).
    pub tree_blocks: usize,
    /// Fall-through-conversion trampoline blocks.
    pub ft_trampolines: usize,
    /// Return landing pads.
    pub landing_pads: usize,
    /// `nop` padding instructions inserted.
    pub pad_nops: usize,
    /// Source text size in bytes.
    pub text_bytes_in: usize,
    /// Sealed text size in bytes.
    pub text_bytes_out: usize,
}

impl TransformReport {
    /// Code-size expansion factor (paper: 16,816 / 6,976 ≈ 2.41× for
    /// ADPCM).
    pub fn expansion(&self) -> f64 {
        if self.text_bytes_in == 0 {
            0.0
        } else {
            self.text_bytes_out as f64 / self.text_bytes_in as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_expansion() {
        let r = TransformReport {
            text_bytes_in: 6976,
            text_bytes_out: 16816,
            ..Default::default()
        };
        assert!((r.expansion() - 2.4106).abs() < 1e-3);
        assert_eq!(TransformReport::default().expansion(), 0.0);
    }

    #[test]
    fn image_serialisation_roundtrip() {
        let img = SecureImage {
            nonce: Nonce::new(77),
            format: BlockFormat::default(),
            text_base: 0x100,
            ctext: vec![1, 2, 3, 0xDEAD_BEEF],
            data_base: 0x1000_0000,
            data: vec![9, 8, 7],
            entry: 0x104,
            symbols: BTreeMap::new(),
            report: TransformReport::default(),
        };
        let bytes = img.to_bytes();
        let back = SecureImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.nonce, img.nonce);
        assert_eq!(back.ctext, img.ctext);
        assert_eq!(back.data, img.data);
        assert_eq!(back.entry, img.entry);
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert_eq!(
            SecureImage::from_bytes(b"BOGUS!").unwrap_err(),
            DecodeError::BadMagic { expected: "SOFI1" }
        );
        let img = SecureImage {
            nonce: Nonce::new(1),
            format: BlockFormat::default(),
            text_base: 0x100,
            ctext: vec![1],
            data_base: 0x1000_0000,
            data: vec![],
            entry: 0x100,
            symbols: BTreeMap::new(),
            report: TransformReport::default(),
        };
        let mut bytes = img.to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(
            SecureImage::from_bytes(&bytes).unwrap_err(),
            DecodeError::Truncated { .. } | DecodeError::BadLength { .. }
        ));
        let mut extra = img.to_bytes();
        extra.push(0);
        assert_eq!(
            SecureImage::from_bytes(&extra).unwrap_err(),
            DecodeError::TrailingBytes { extra: 1 }
        );
    }
}
