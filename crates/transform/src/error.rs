//! Errors raised by the secure installer.

use std::error::Error;
use std::fmt;

use sofia_cfg::CfgError;
use sofia_isa::AsmError;

/// Why a module could not be transformed into a secure image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// The control flow of the program could not be modelled precisely
    /// (paper §II-D: such programs "cannot be addressed by our methods").
    Cfg(CfgError),
    /// A relocation could not be resolved after layout (branch out of
    /// range, jump out of region, undefined label).
    Layout(AsmError),
    /// An indirect call links a register other than `ra`; the lowering to
    /// direct-dispatch ladders cannot preserve that.
    IndirectLinksNonRa {
        /// Source line of the `jalr`.
        line: usize,
    },
    /// An indirect transfer dispatches on the transformer's reserved
    /// scratch register `k0`.
    ScratchRegisterClash {
        /// Source line.
        line: usize,
    },
    /// An invalid [`crate::BlockFormat`].
    BadFormat(String),
    /// The program is empty.
    EmptyProgram,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Cfg(e) => write!(f, "control flow not analysable: {e}"),
            TransformError::Layout(e) => write!(f, "layout failed: {e}"),
            TransformError::IndirectLinksNonRa { line } => {
                write!(
                    f,
                    "line {line}: jalr must link through ra to be transformable"
                )
            }
            TransformError::ScratchRegisterClash { line } => {
                write!(
                    f,
                    "line {line}: indirect transfer uses reserved scratch register k0"
                )
            }
            TransformError::BadFormat(msg) => write!(f, "invalid block format: {msg}"),
            TransformError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Cfg(e) => Some(e),
            TransformError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CfgError> for TransformError {
    fn from(e: CfgError) -> Self {
        TransformError::Cfg(e)
    }
}

impl From<AsmError> for TransformError {
    fn from(e: AsmError) -> Self {
        TransformError::Layout(e)
    }
}
