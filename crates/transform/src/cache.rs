//! The keyed secure-image cache: seal each (device keys, program) pair
//! **once**, share the result.
//!
//! The paper's deployment story is one software provider sealing programs
//! for a fleet of devices that share nothing but their device keys (§II:
//! "these keys are known only by the software provider"). A serving
//! system therefore re-seals the same program for the same tenant over
//! and over unless installation is memoised — which is what this cache
//! does, keyed by a fingerprint of the key material plus a hash of the
//! program source, so two tenants submitting the *same* program still get
//! *different* sealed images (key isolation is structural, not policed).
//!
//! The cache is internally synchronised, and sealing happens **outside**
//! the map lock behind a per-key in-progress marker: concurrent workers
//! racing on the same program seal it exactly once (the losers wait for
//! the winner's image), while workers sealing *different* programs — or
//! merely looking up already-cached ones — proceed in parallel.
//!
//! # Examples
//!
//! ```
//! use sofia_crypto::KeySet;
//! use sofia_transform::cache::ImageCache;
//!
//! let cache = ImageCache::new();
//! let keys = KeySet::from_seed(1);
//! let a = cache.get_or_seal(&keys, "main: halt")?;
//! let b = cache.get_or_seal(&keys, "main: halt")?;
//! assert!(std::sync::Arc::ptr_eq(&a, &b)); // sealed once, shared
//! assert_eq!(cache.stats().hits, 1);
//!
//! // A different tenant's keys seal a different image from the same
//! // source: no ciphertext is ever shared across key domains.
//! let other = cache.get_or_seal(&KeySet::from_seed(2), "main: halt")?;
//! assert_ne!(other.ctext, a.ctext);
//! # Ok::<(), sofia_transform::cache::SealError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use sofia_crypto::{CryptoEngine, KeySet};
use sofia_isa::asm;

use crate::{BlockFormat, SecureImage, TransformError, Transformer};

/// Why [`ImageCache::get_or_seal`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SealError {
    /// The program source did not parse.
    Parse(String),
    /// The transformer rejected the module.
    Transform(TransformError),
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::Parse(e) => write!(f, "program does not parse: {e}"),
            SealError::Transform(e) => write!(f, "secure installation failed: {e:?}"),
        }
    }
}

impl std::error::Error for SealError {}

/// Cache-effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the transformer.
    pub misses: u64,
    /// Sealed images currently held.
    pub entries: usize,
}

enum Entry {
    /// Some worker is sealing this key right now; wait on the condvar.
    Sealing,
    /// The sealed image.
    Ready(Arc<SecureImage>),
}

#[derive(Default)]
struct State {
    map: HashMap<(u64, u64), Entry>,
    hits: u64,
    misses: u64,
}

/// A thread-safe memo of secure installations, keyed by
/// `(key-material fingerprint, source hash)`.
///
/// All images are sealed with this cache's [`BlockFormat`] and the
/// transformer's default nonce — callers wanting per-version nonces (the
/// paper's version-separation argument) seal outside the cache.
pub struct ImageCache {
    format: BlockFormat,
    /// The [`CryptoEngine`] fresh seals run on, as its discriminant
    /// (0 = bitsliced, 1 = scalar). Runtime-switchable because the two
    /// engines produce bit-identical images (pinned by the transformer's
    /// equivalence test) — flipping it mid-flight changes host cost
    /// only, which is exactly what the fleet's graceful-degradation
    /// ladder needs after a bitslice-path fault.
    engine: AtomicU8,
    inner: Mutex<State>,
    sealed: std::sync::Condvar,
}

impl Default for ImageCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageCache {
    /// An empty cache sealing with [`BlockFormat::default`].
    pub fn new() -> ImageCache {
        Self::with_format(BlockFormat::default())
    }

    /// An empty cache sealing with an explicit block format.
    pub fn with_format(format: BlockFormat) -> ImageCache {
        ImageCache {
            format,
            engine: AtomicU8::new(0),
            inner: Mutex::new(State::default()),
            sealed: std::sync::Condvar::new(),
        }
    }

    /// The [`CryptoEngine`] fresh seals currently run on.
    pub fn engine(&self) -> CryptoEngine {
        match self.engine.load(Ordering::Relaxed) {
            1 => CryptoEngine::Scalar,
            _ => CryptoEngine::default(),
        }
    }

    /// Switches the engine used by *future* seals. Safe at any time:
    /// both engines seal bit-identical images (the transformer pins
    /// this), so cached entries and in-flight seals stay valid — only
    /// host-side seal cost changes. This is the fleet resilience
    /// ladder's `Scalar` fallback seam.
    pub fn set_engine(&self, engine: CryptoEngine) {
        let tag = match engine {
            CryptoEngine::Scalar => 1,
            _ => 0,
        };
        self.engine.store(tag, Ordering::Relaxed);
    }

    /// Whether a **ready** sealed image for `key` is in the cache right
    /// now — a lock-and-peek that never waits on in-flight seals and
    /// never seals. Schedulers use it to tell warm lookups from the
    /// fresh transforms a seal-farm fault could strike.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking seal.
    pub fn contains(&self, key: &ImageKey) -> bool {
        let ImageKey(raw) = *key;
        let state = self.inner.lock().expect("image cache poisoned");
        matches!(state.map.get(&raw), Some(Entry::Ready(_)))
    }

    /// The sealed image for `source` under `keys`, installing it on the
    /// first request and sharing the same `Arc` on every later one.
    ///
    /// # Errors
    ///
    /// Returns [`SealError`] if the source does not parse or the
    /// transformer rejects it. Failures are not cached — a later retry
    /// re-attempts the installation.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking seal.
    pub fn get_or_seal(&self, keys: &KeySet, source: &str) -> Result<Arc<SecureImage>, SealError> {
        self.get_or_seal_traced(keys, source)
            .map(|(image, _)| image)
    }

    /// [`ImageCache::get_or_seal`], additionally reporting whether the
    /// image came from the cache (`true`) or was sealed by this call
    /// (`false`) — per-request attribution for serving statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SealError`] if the source does not parse or the
    /// transformer rejects it.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking seal.
    pub fn get_or_seal_traced(
        &self,
        keys: &KeySet,
        source: &str,
    ) -> Result<(Arc<SecureImage>, bool), SealError> {
        let ImageKey(key) = image_key(keys, source);
        // Claim the key (or wait for / reuse whoever already did).
        let mut state = self.inner.lock().expect("image cache poisoned");
        loop {
            match state.map.get(&key) {
                Some(Entry::Ready(image)) => {
                    let image = Arc::clone(image);
                    state.hits += 1;
                    return Ok((image, true));
                }
                // Another worker is sealing exactly this program: wait
                // for its image instead of duplicating the work.
                Some(Entry::Sealing) => {
                    state = self.sealed.wait(state).expect("image cache poisoned");
                }
                None => {
                    state.map.insert(key, Entry::Sealing);
                    break;
                }
            }
        }
        drop(state);

        // Seal outside the lock: expensive installs for different
        // programs run in parallel, and cache hits never queue behind an
        // in-progress seal of something else.
        let image = asm::parse(source)
            .map_err(|e| SealError::Parse(e.to_string()))
            .and_then(|module| {
                Transformer::new(keys.clone())
                    .with_format(self.format)
                    .with_engine(self.engine())
                    .transform(&module)
                    .map(Arc::new)
                    .map_err(SealError::Transform)
            });

        let mut state = self.inner.lock().expect("image cache poisoned");
        match image {
            Ok(image) => {
                state.misses += 1;
                // Publish unless the key was purged while sealing (a
                // concurrent tenant eviction) — then the image is handed
                // to this caller only and not cached.
                if matches!(state.map.get(&key), Some(Entry::Sealing)) {
                    state.map.insert(key, Entry::Ready(Arc::clone(&image)));
                }
                self.sealed.notify_all();
                Ok((image, false))
            }
            Err(e) => {
                // Failures are not cached; release the claim so a later
                // (or concurrently waiting) caller can retry.
                if matches!(state.map.get(&key), Some(Entry::Sealing)) {
                    state.map.remove(&key);
                }
                self.sealed.notify_all();
                Err(e)
            }
        }
    }

    /// Drops every image sealed under `keys` (tenant eviction), returning
    /// how many entries were removed. Outstanding `Arc`s keep their
    /// images alive; the cache just stops serving them.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking seal.
    pub fn purge(&self, keys: &KeySet) -> usize {
        let fp = fingerprint_keys(keys);
        let mut state = self.inner.lock().expect("image cache poisoned");
        let before = state.map.len();
        state.map.retain(|&(key_fp, _), _| key_fp != fp);
        // In-flight seals for the purged domain lost their claim: wake
        // their waiters (they will re-claim), and the sealer itself will
        // notice the missing marker and skip publishing.
        self.sealed.notify_all();
        before - state.map.len()
    }

    /// Current counters.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking seal.
    pub fn stats(&self) -> ImageCacheStats {
        let state = self.inner.lock().expect("image cache poisoned");
        ImageCacheStats {
            hits: state.hits,
            misses: state.misses,
            entries: state
                .map
                .values()
                .filter(|e| matches!(e, Entry::Ready(_)))
                .count(),
        }
    }
}

// Compile-time guarantee: sealed images and the cache cross worker-thread
// boundaries in the fleet. An `Rc`/`RefCell` regression breaks the build
// here, not the fleet at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SecureImage>();
    assert_send_sync::<ImageCache>();
};

/// The cache's identity for one `(device keys, program source)` seal
/// request — the unit of single-flight deduplication.
///
/// Opaque by design: it reveals nothing about the key material (a
/// fingerprint, not the keys) and is `Copy`+`Hash`+`Ord`, so schedulers
/// above the cache (the fleet's seal farm) can group, sort and dedup
/// seal requests without holding key material or source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageKey((u64, u64));

/// The [`ImageKey`] that [`ImageCache::get_or_seal`] files `(keys,
/// source)` under. Equal keys always collapse to one seal; distinct
/// requests get distinct keys (up to fingerprint collision, which only
/// costs an extra cache share, never cross-domain ciphertext).
pub fn image_key(keys: &KeySet, source: &str) -> ImageKey {
    ImageKey((fingerprint_keys(keys), hash64(source.as_bytes())))
}

/// FNV-1a over the concatenated key material — an identity fingerprint
/// (not a security boundary; the keys themselves never leave the cache's
/// callers).
fn fingerprint_keys(keys: &KeySet) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for bytes in [keys.k1.as_bytes(), keys.k2.as_bytes(), keys.k3.as_bytes()] {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn hash64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seals_once_per_key_and_source() {
        let cache = ImageCache::new();
        let keys = KeySet::from_seed(0xF1EE);
        let a = cache.get_or_seal(&keys, "main: li t0, 1\n halt").unwrap();
        let b = cache.get_or_seal(&keys, "main: li t0, 1\n halt").unwrap();
        let c = cache.get_or_seal(&keys, "main: li t0, 2\n halt").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(
            cache.stats(),
            ImageCacheStats {
                hits: 1,
                misses: 2,
                entries: 2
            }
        );
    }

    #[test]
    fn key_domains_are_isolated() {
        let cache = ImageCache::new();
        let a = cache
            .get_or_seal(&KeySet::from_seed(1), "main: halt")
            .unwrap();
        let b = cache
            .get_or_seal(&KeySet::from_seed(2), "main: halt")
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_ne!(a.ctext, b.ctext, "same program, different key domains");
    }

    #[test]
    fn purge_removes_exactly_one_tenant() {
        let cache = ImageCache::new();
        let t1 = KeySet::from_seed(1);
        let t2 = KeySet::from_seed(2);
        cache.get_or_seal(&t1, "main: halt").unwrap();
        cache.get_or_seal(&t1, "main: nop\n halt").unwrap();
        cache.get_or_seal(&t2, "main: halt").unwrap();
        assert_eq!(cache.purge(&t1), 2);
        assert_eq!(cache.stats().entries, 1);
        // t2 still served from cache; t1 re-seals.
        cache.get_or_seal(&t2, "main: halt").unwrap();
        cache.get_or_seal(&t1, "main: halt").unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 4));
    }

    #[test]
    fn errors_surface_and_are_not_cached() {
        let cache = ImageCache::new();
        let keys = KeySet::from_seed(3);
        let err = cache.get_or_seal(&keys, "main: bogus t9").unwrap_err();
        assert!(matches!(err, SealError::Parse(_)), "{err}");
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get_or_seal(&keys, "main: halt").is_ok());
    }

    #[test]
    fn contains_peeks_without_sealing() {
        let cache = ImageCache::new();
        let keys = KeySet::from_seed(0xBEEF);
        let key = image_key(&keys, "main: halt");
        assert!(!cache.contains(&key));
        cache.get_or_seal(&keys, "main: halt").unwrap();
        assert!(cache.contains(&key));
        assert_eq!(cache.stats().misses, 1, "contains never seals");
        cache.purge(&keys);
        assert!(!cache.contains(&key));
    }

    #[test]
    fn engine_switch_seals_identical_images() {
        let cache = ImageCache::new();
        assert_eq!(cache.engine(), CryptoEngine::default());
        let a = cache
            .get_or_seal(&KeySet::from_seed(7), "main: li t0, 9\n halt")
            .unwrap();
        cache.set_engine(CryptoEngine::Scalar);
        assert_eq!(cache.engine(), CryptoEngine::Scalar);
        // A fresh key domain forces a fresh seal on the scalar engine;
        // the ciphertext matches the bitsliced seal of the same source
        // under the same keys (engine equivalence, via a second cache).
        let scalar = cache
            .get_or_seal(&KeySet::from_seed(8), "main: li t0, 9\n halt")
            .unwrap();
        let bitsliced = ImageCache::new()
            .get_or_seal(&KeySet::from_seed(8), "main: li t0, 9\n halt")
            .unwrap();
        assert_eq!(scalar.ctext, bitsliced.ctext);
        assert_ne!(a.ctext, scalar.ctext, "key domains still isolated");
    }

    #[test]
    fn concurrent_workers_seal_once() {
        let cache = std::sync::Arc::new(ImageCache::new());
        let keys = KeySet::from_seed(0xCC);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let keys = keys.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        cache.get_or_seal(&keys, "main: li t0, 5\n halt").unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "sealed more than once: {s:?}");
        assert_eq!(s.hits, 31);
    }
}
