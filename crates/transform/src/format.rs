//! Block geometry: execution blocks, multiplexor blocks and the sentinel
//! `prevPC` values.

/// `prevPC` presented by the hardware for the very first block after a
/// reset. Address `0x0` lies below the text base (`0x100`-aligned up to a
/// block boundary), so it can never be a real instruction address.
pub const RESET_PREV_PC: u32 = 0x0000_0000;

/// `prevPC` used to seal blocks that have **no** static predecessor
/// (unreachable code kept for layout fidelity). The address is the top of
/// the 24-bit word-address space and is never fetched, so such blocks can
/// never be entered without a MAC failure.
pub const UNREACHABLE_PREV_PC: u32 = 0x00FF_FFF0;

/// Which of the two SOFIA block types a block is (paper §II-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Single entry point (`cM1` at offset 0): 2 MAC words + `n`
    /// instructions.
    Exec,
    /// Two entry points (`cM1e2`/`cM2` call-site convention at offsets
    /// 4/8): 3 MAC words + `n − 1` instructions.
    Mux,
}

/// The geometry shared by every block of a transformed program.
///
/// The paper's final choice is eight 32-bit words per block: an execution
/// block holds 2 MAC words + 6 instructions, a multiplexor block 3 MAC
/// words + 5 instructions, and stores are banned from the first two
/// instruction slots of an execution block so MAC verification completes
/// before any store reaches the MA pipeline stage (Figs. 5/6).
///
/// [`BlockFormat::exec4`] reproduces the paper's *other* design point: a
/// four-instruction block that fits entirely before MA needs no store
/// restriction, at the cost of more blocks.
///
/// # Examples
///
/// ```
/// use sofia_transform::{BlockFormat, BlockKind};
///
/// let f = BlockFormat::default();
/// assert_eq!(f.block_words(), 8);
/// assert_eq!(f.insts(BlockKind::Exec), 6);
/// assert_eq!(f.insts(BlockKind::Mux), 5);
/// assert_eq!(f.block_bytes(), 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockFormat {
    /// Instructions per execution block (the paper's `n` = 6).
    pub exec_insts: usize,
    /// Stores may not occupy block word positions below this offset
    /// (default 4: bans exec slots 0–1 and mux slot 0, exactly the
    /// paper's "inst1/inst2" restriction). 0 disables the restriction.
    pub store_safe_word_offset: usize,
}

impl Default for BlockFormat {
    fn default() -> Self {
        BlockFormat {
            exec_insts: 6,
            store_safe_word_offset: 4,
        }
    }
}

impl BlockFormat {
    /// The paper's Fig. 5 variant: 4-instruction execution blocks that fit
    /// in the pipeline stages before MA, so stores are unrestricted.
    pub fn exec4() -> BlockFormat {
        BlockFormat {
            exec_insts: 4,
            store_safe_word_offset: 0,
        }
    }

    /// Checks the invariants of a custom format.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.exec_insts < 2 {
            return Err("exec_insts must be at least 2 (mux blocks need one instruction)".into());
        }
        if self.store_safe_word_offset >= self.block_words() {
            return Err("store_safe_word_offset leaves no legal store slot in a block".into());
        }
        Ok(())
    }

    /// Instructions carried by a block of the given kind.
    pub fn insts(&self, kind: BlockKind) -> usize {
        match kind {
            BlockKind::Exec => self.exec_insts,
            BlockKind::Mux => self.exec_insts - 1,
        }
    }

    /// MAC words stored in a block of the given kind.
    pub fn mac_words(&self, kind: BlockKind) -> usize {
        match kind {
            BlockKind::Exec => 2,
            BlockKind::Mux => 3,
        }
    }

    /// Total 32-bit words per block (same for both kinds).
    pub fn block_words(&self) -> usize {
        self.exec_insts + 2
    }

    /// Block size in bytes (the alignment of every block).
    pub fn block_bytes(&self) -> u32 {
        (self.block_words() * 4) as u32
    }

    /// Word position of instruction slot `slot` within a block.
    pub fn word_pos(&self, kind: BlockKind, slot: usize) -> usize {
        self.mac_words(kind) + slot
    }

    /// The fixed CBC-MAC message length (in words) for a block kind:
    /// instruction count rounded up to a whole number of 64-bit cipher
    /// blocks. Exec and mux use different keys, so the two domains never
    /// mix even when the padded lengths coincide.
    pub fn mac_padded_words(&self, kind: BlockKind) -> usize {
        let n = self.insts(kind);
        n + (n % 2)
    }

    /// Whether a store may sit at instruction slot `slot` of `kind`.
    pub fn store_allowed(&self, kind: BlockKind, slot: usize) -> bool {
        self.word_pos(kind, slot) >= self.store_safe_word_offset
    }

    /// The lowest text base address compatible with block alignment.
    pub fn text_base(&self) -> u32 {
        let min = sofia_isa::asm::DEFAULT_TEXT_BASE;
        let b = self.block_bytes();
        min.div_ceil(b) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_2e() {
        let f = BlockFormat::default();
        // "The size of both block types is chosen to be eight 32-bit words.
        //  Therefore, the execution block consists of 2 MAC words and 6
        //  instructions, while a multiplexor block consists of 3 MAC words
        //  and 5 instructions."
        assert_eq!(f.block_words(), 8);
        assert_eq!(f.mac_words(BlockKind::Exec), 2);
        assert_eq!(f.insts(BlockKind::Exec), 6);
        assert_eq!(f.mac_words(BlockKind::Mux), 3);
        assert_eq!(f.insts(BlockKind::Mux), 5);
    }

    #[test]
    fn store_restriction_matches_fig6() {
        let f = BlockFormat::default();
        // Stores banned on exec inst1/inst2 (slots 0 and 1)…
        assert!(!f.store_allowed(BlockKind::Exec, 0));
        assert!(!f.store_allowed(BlockKind::Exec, 1));
        assert!(f.store_allowed(BlockKind::Exec, 2));
        // …and on the first mux instruction (same word position).
        assert!(!f.store_allowed(BlockKind::Mux, 0));
        assert!(f.store_allowed(BlockKind::Mux, 1));
    }

    #[test]
    fn exec4_variant_has_no_restriction() {
        let f = BlockFormat::exec4();
        assert_eq!(f.block_words(), 6);
        assert!(f.store_allowed(BlockKind::Exec, 0));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn mac_padding_is_even() {
        let f = BlockFormat::default();
        assert_eq!(f.mac_padded_words(BlockKind::Exec), 6);
        assert_eq!(f.mac_padded_words(BlockKind::Mux), 6);
        let f4 = BlockFormat::exec4();
        assert_eq!(f4.mac_padded_words(BlockKind::Exec), 4);
        assert_eq!(f4.mac_padded_words(BlockKind::Mux), 4);
    }

    #[test]
    fn text_base_is_block_aligned() {
        let f = BlockFormat::default();
        assert_eq!(f.text_base() % f.block_bytes(), 0);
        assert!(f.text_base() >= sofia_isa::asm::DEFAULT_TEXT_BASE);
        let f4 = BlockFormat::exec4();
        assert_eq!(f4.text_base() % f4.block_bytes(), 0);
    }

    #[test]
    fn invalid_formats_rejected() {
        let bad = BlockFormat {
            exec_insts: 1,
            store_safe_word_offset: 0,
        };
        assert!(bad.validate().is_err());
        let bad2 = BlockFormat {
            exec_insts: 4,
            store_safe_word_offset: 99,
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn sentinels_are_outside_text() {
        let f = BlockFormat::default();
        assert!(RESET_PREV_PC < f.text_base());
        assert_eq!(UNREACHABLE_PREV_PC % 4, 0);
        const { assert!(UNREACHABLE_PREV_PC >> 2 < (1 << 24)) };
    }
}
