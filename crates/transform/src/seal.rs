//! Sealing: address assignment, operand resolution, MAC-then-Encrypt.
//!
//! Implements the install-time procedure of paper §II-C/§III: for each
//! block, a CBC-MAC is computed over the *plaintext* instruction words
//! (`k2` for execution blocks, `k3` for multiplexor blocks), the MAC words
//! are interleaved with the instructions, and every word is then
//! CTR-encrypted under `k1` with the counter `{ω ‖ prevPC ‖ PC}` of the
//! control-flow edge that legitimately reaches it.

use std::collections::BTreeMap;

use sofia_cfg::Cfg;
use sofia_crypto::{ctr, mac, CounterBlock, CryptoEngine, KeySet, Mac64, Nonce};
use sofia_isa::asm::{apply_reloc, layout_data, Module, Reloc, DEFAULT_DATA_BASE};

use crate::error::TransformError;
use crate::format::{BlockFormat, BlockKind, RESET_PREV_PC, UNREACHABLE_PREV_PC};
use crate::image::{SecureImage, TransformReport};
use crate::mux::Trees;
use crate::pack::{Packed, Src, Target};

pub(crate) struct SealInput<'a> {
    pub module: &'a Module,
    pub cfg: &'a Cfg,
    pub packed: &'a Packed,
    pub trees: &'a Trees,
    pub format: &'a BlockFormat,
    pub keys: &'a KeySet,
    pub nonce: Nonce,
    pub engine: CryptoEngine,
    pub source_instructions: usize,
}

pub(crate) fn seal(input: SealInput<'_>) -> Result<SecureImage, TransformError> {
    let SealInput {
        module,
        cfg,
        packed,
        trees,
        format,
        keys,
        nonce,
        engine,
        source_instructions,
    } = input;

    let text_base = format.text_base();
    let bb = format.block_bytes();
    let base = |bi: usize| text_base + bi as u32 * bb;
    let last_word = |bi: usize| base(bi) + bb - 4;

    // --- token addresses of text labels: the labelled instruction's word ---
    let mut text_tokens: BTreeMap<String, u32> = BTreeMap::new();
    for (i, item) in module.text.iter().enumerate() {
        if item.labels.is_empty() {
            continue;
        }
        let (b, s) = packed.placement[i].expect("every instruction is placed");
        let addr = base(b) + (format.word_pos(packed.blocks[b].kind, s) as u32) * 4;
        for l in &item.labels {
            text_tokens.insert(l.clone(), addr);
        }
    }

    // --- data layout (shared rules with the plain assembler) ---
    let (data, data_symbols) = layout_data(&module.data, DEFAULT_DATA_BASE, |l| {
        text_tokens.get(l).copied()
    })?;

    // --- entry lookup: which word a transfer from `src` must target ---
    let entry_addr = |dst_block: usize, src: Src| -> Option<u32> {
        let candidates = std::iter::once(dst_block).chain(
            trees
                .nodes_of
                .get(&dst_block)
                .into_iter()
                .flatten()
                .copied(),
        );
        for cand in candidates {
            let blk = &packed.blocks[cand];
            if let Some(pos) = blk.entries.iter().position(|e| e.src == src) {
                let offset = match blk.kind {
                    BlockKind::Exec => 0,
                    BlockKind::Mux => 4 * (pos as u32 + 1),
                };
                return Some(base(cand) + offset);
            }
        }
        None
    };
    let block_of_leader = |leader: usize| packed.placement[leader].expect("placed").0;
    let label_leader = |label: &str| -> Option<usize> { cfg.label(label) };

    // --- resolve every slot to a final machine word ---
    let mut block_words: Vec<Vec<u32>> = Vec::with_capacity(packed.blocks.len());
    for (bi, block) in packed.blocks.iter().enumerate() {
        let mut words = Vec::with_capacity(block.slots.len());
        for (s, slot) in block.slots.iter().enumerate() {
            let pc = base(bi) + (format.word_pos(block.kind, s) as u32) * 4;
            let inst = match &slot.target {
                None => slot.inst,
                Some(Target::Label(reloc)) => match reloc {
                    Reloc::Branch(l) | Reloc::Jump(l) => {
                        let leader =
                            label_leader(l).ok_or_else(|| TransformError::Layout(undef(l)))?;
                        let dst = block_of_leader(leader);
                        let addr = entry_addr(dst, Src::Block(bi)).ok_or_else(|| {
                            TransformError::Layout(undef(&format!(
                                "<entry for {l} from block {bi}>"
                            )))
                        })?;
                        apply_reloc(slot.inst, reloc, pc, addr)?
                    }
                    Reloc::Hi(l) | Reloc::Lo(l) => {
                        let addr = text_tokens
                            .get(l)
                            .or_else(|| data_symbols.get(l))
                            .copied()
                            .ok_or_else(|| TransformError::Layout(undef(l)))?;
                        apply_reloc(slot.inst, reloc, pc, addr)?
                    }
                },
                Some(Target::Leader(l)) => {
                    let dst = block_of_leader(*l);
                    let addr = entry_addr(dst, Src::Block(bi)).ok_or_else(|| {
                        TransformError::Layout(undef(&format!(
                            "<entry for leader {l} from block {bi}>"
                        )))
                    })?;
                    apply_reloc(slot.inst, &Reloc::Jump(format!("<leader {l}>")), pc, addr)?
                }
                Some(Target::Block(d)) => {
                    let addr = entry_addr(*d, Src::Block(bi)).ok_or_else(|| {
                        TransformError::Layout(undef(&format!("<entry of block {d}>")))
                    })?;
                    apply_reloc(slot.inst, &Reloc::Jump(format!("<block {d}>")), pc, addr)?
                }
            };
            words.push(inst.encode());
        }
        block_words.push(words);
    }

    // --- MAC then encrypt ---
    let expanded = keys.expand();
    let src_prev = |src: Src| -> u32 {
        match src {
            Src::Reset => RESET_PREV_PC,
            Src::Block(b) => last_word(b),
            Src::Orig(_) => unreachable!("entries are resolved"),
        }
    };

    // MAC phase. All blocks of one kind share a MAC key and a fixed
    // padded length, and their CBC chains are independent — so under the
    // bitsliced engine each kind MACs lane-parallel in one batch. The
    // scalar path is the reference oracle (bit-identical, pinned by
    // test).
    let macs: Vec<Mac64> = match engine {
        CryptoEngine::Scalar => packed
            .blocks
            .iter()
            .zip(&block_words)
            .map(|(block, insts)| {
                let mac_cipher = match block.kind {
                    BlockKind::Exec => &expanded.mac_exec,
                    BlockKind::Mux => &expanded.mac_mux,
                };
                mac::mac_words(mac_cipher, insts, format.mac_padded_words(block.kind))
            })
            .collect(),
        CryptoEngine::Bitsliced => {
            let mut macs = vec![Mac64::new(0); packed.blocks.len()];
            for kind in [BlockKind::Exec, BlockKind::Mux] {
                let idxs: Vec<usize> = packed
                    .blocks
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.kind == kind)
                    .map(|(i, _)| i)
                    .collect();
                if idxs.is_empty() {
                    continue;
                }
                let msgs: Vec<&[u32]> = idxs.iter().map(|&i| block_words[i].as_slice()).collect();
                let mac_cipher = match kind {
                    BlockKind::Exec => &expanded.mac_exec,
                    BlockKind::Mux => &expanded.mac_mux,
                };
                let got = mac::mac_words_batch(mac_cipher, &msgs, format.mac_padded_words(kind));
                for (i, mac) in idxs.into_iter().zip(got) {
                    macs[i] = mac;
                }
            }
            macs
        }
    };

    // Encrypt phase: every word's control-flow counter is known up front
    // (the whole point of install-time sealing), so the keystream for the
    // entire image is one flat sweep.
    let mut counters: Vec<CounterBlock> =
        Vec::with_capacity(packed.blocks.len() * format.block_words());
    let mut words: Vec<u32> = Vec::with_capacity(counters.capacity());
    for (bi, block) in packed.blocks.iter().enumerate() {
        let insts = &block_words[bi];
        let mac = macs[bi];

        // Plaintext word sequence and the prevPC of each word.
        let b = base(bi);
        let (plain, prevs): (Vec<u32>, Vec<u32>) = match block.kind {
            BlockKind::Exec => {
                let entry_prev = block
                    .entries
                    .first()
                    .map(|e| src_prev(e.src))
                    .unwrap_or(UNREACHABLE_PREV_PC);
                let mut plain = vec![mac.m1(), mac.m2()];
                plain.extend_from_slice(insts);
                let mut prevs = vec![entry_prev];
                for w in 0..plain.len() - 1 {
                    prevs.push(b + 4 * w as u32);
                }
                (plain, prevs)
            }
            BlockKind::Mux => {
                debug_assert_eq!(block.entries.len(), 2, "mux blocks have two entries");
                let p1 = block
                    .entries
                    .first()
                    .map(|e| src_prev(e.src))
                    .unwrap_or(UNREACHABLE_PREV_PC);
                let p2 = block
                    .entries
                    .get(1)
                    .map(|e| src_prev(e.src))
                    .unwrap_or(UNREACHABLE_PREV_PC);
                let mut plain = vec![mac.m1(), mac.m1(), mac.m2()];
                plain.extend_from_slice(insts);
                // Fig. 8: M2 is sealed with prevPC = addr(M1e2) on *both*
                // paths, so a single ciphertext serves both entries.
                let mut prevs = vec![p1, p2, b + 4];
                for w in 2..plain.len() - 1 {
                    prevs.push(b + 4 * w as u32);
                }
                (plain, prevs)
            }
        };
        debug_assert_eq!(plain.len(), format.block_words());
        debug_assert_eq!(prevs.len(), plain.len());
        for (w, (&word, &prev)) in plain.iter().zip(&prevs).enumerate() {
            counters.push(CounterBlock::from_edge(nonce, prev, b + 4 * w as u32));
            words.push(word);
        }
    }
    let mut ctext = words;
    match engine {
        CryptoEngine::Scalar => {
            for (word, &counter) in ctext.iter_mut().zip(&counters) {
                *word = ctr::apply(&expanded.ctr, counter, *word);
            }
        }
        CryptoEngine::Bitsliced => ctr::apply_batch(&expanded.ctr, &counters, &mut ctext),
    }

    // --- entry point ---
    let entry_leader = cfg.entry();
    let entry_block = block_of_leader(entry_leader);
    let entry = entry_addr(entry_block, Src::Reset)
        .ok_or_else(|| TransformError::Layout(undef("<reset entry>")))?;

    // --- symbols (debug aid) ---
    let mut symbols = text_tokens;
    symbols.extend(data_symbols);

    let exec_blocks = packed
        .blocks
        .iter()
        .filter(|b| b.kind == BlockKind::Exec)
        .count();
    let report = TransformReport {
        source_instructions,
        lowered_instructions: module.text.len(),
        blocks: packed.blocks.len(),
        exec_blocks,
        mux_blocks: packed.blocks.len() - exec_blocks,
        tree_blocks: trees.count,
        ft_trampolines: packed.ft_trampolines,
        landing_pads: packed.landing_pads,
        pad_nops: packed.pad_nops,
        text_bytes_in: source_instructions * 4,
        text_bytes_out: ctext.len() * 4,
    };

    Ok(SecureImage {
        nonce,
        format: *format,
        text_base,
        ctext,
        data_base: DEFAULT_DATA_BASE,
        data,
        entry,
        symbols,
        report,
    })
}

fn undef(label: &str) -> sofia_isa::AsmError {
    sofia_isa::AsmError {
        line: 0,
        kind: sofia_isa::error::AsmErrorKind::UndefinedLabel(label.to_string()),
    }
}
