//! # sofia-transform — the secure installer
//!
//! The install-time half of SOFIA (paper §II-C/D/E and §III): takes a
//! symbolic SL32 [`Module`] and produces a
//! [`SecureImage`] whose every instruction is
//!
//! 1. grouped into fixed-size **execution blocks** (one entry point) and
//!    **multiplexor blocks** (two entry points, trees for more — Fig. 9),
//!    with control transfers only in the last slot and stores kept clear
//!    of the early pipeline slots (Figs. 4–6);
//! 2. authenticated by a per-block CBC-MAC over the plaintext
//!    instructions (`k2`/`k3` per block type);
//! 3. encrypted word-by-word in CTR mode under `k1` with the
//!    control-flow-edge counter `{ω ‖ prevPC ‖ PC}` (MAC-then-Encrypt).
//!
//! The pipeline is: lower (indirect-dispatch ladders, single-exit
//! normalisation) → CFG → pack → mux trees → seal.
//!
//! # Examples
//!
//! ```
//! use sofia_crypto::KeySet;
//! use sofia_isa::asm;
//! use sofia_transform::Transformer;
//!
//! let module = asm::parse(
//!     "main: li t0, 3
//!      loop: subi t0, t0, 1
//!            bnez t0, loop
//!            halt",
//! )?;
//! let keys = KeySet::from_seed(7);
//! let image = Transformer::new(keys).transform(&module)?;
//! assert!(image.report.blocks >= 2);
//! assert_eq!(image.text_bytes() % 32, 0); // whole 8-word blocks
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//!
//! [`Module`]: sofia_isa::asm::Module

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod chain;
pub mod decode;
mod error;
pub mod fipac;
mod format;
mod image;
mod lower;
mod mux;
mod pack;
mod seal;
pub mod sponge;

pub use decode::DecodeError;
pub use error::TransformError;
pub use fipac::{install_fipac, FipacImage};
pub use format::{BlockFormat, BlockKind, RESET_PREV_PC, UNREACHABLE_PREV_PC};
pub use image::{SecureImage, TransformReport};
pub use sponge::{seal_sponge, SpongeImage};

use sofia_cfg::Cfg;
use sofia_crypto::{CryptoEngine, KeySet, Nonce};
use sofia_isa::asm::Module;

/// The secure installer: holds device keys and installation parameters.
///
/// # Examples
///
/// ```
/// use sofia_crypto::{KeySet, Nonce};
/// use sofia_transform::{BlockFormat, Transformer};
///
/// let t = Transformer::new(KeySet::from_seed(1))
///     .with_nonce(Nonce::new(42))
///     .with_format(BlockFormat::exec4());
/// # let _ = t;
/// ```
#[derive(Clone, Debug)]
pub struct Transformer {
    keys: KeySet,
    nonce: Nonce,
    format: BlockFormat,
    engine: CryptoEngine,
}

impl Transformer {
    /// Creates an installer with the given device keys, nonce ω = 1, the
    /// paper's default 8-word block format and the bitsliced host crypto
    /// engine.
    pub fn new(keys: KeySet) -> Transformer {
        Transformer {
            keys,
            nonce: Nonce::new(1),
            format: BlockFormat::default(),
            engine: CryptoEngine::default(),
        }
    }

    /// Sets the per-program nonce ω (must be unique per program/version).
    pub fn with_nonce(mut self, nonce: Nonce) -> Transformer {
        self.nonce = nonce;
        self
    }

    /// Selects a block geometry.
    pub fn with_format(mut self, format: BlockFormat) -> Transformer {
        self.format = format;
        self
    }

    /// Selects the host crypto engine sealing runs on. Purely a host
    /// throughput knob — the sealed image is bit-identical either way
    /// (pinned by test); [`CryptoEngine::Scalar`] is kept as the
    /// reference oracle and the baseline the host bench compares against.
    pub fn with_engine(mut self, engine: CryptoEngine) -> Transformer {
        self.engine = engine;
        self
    }

    /// The block geometry this installer uses.
    pub fn format(&self) -> BlockFormat {
        self.format
    }

    /// The host crypto engine sealing runs on.
    pub fn engine(&self) -> CryptoEngine {
        self.engine
    }

    /// Securely installs a module: lower → analyse → pack → trees → seal.
    ///
    /// # Errors
    ///
    /// Rejects programs whose control flow cannot be modelled precisely
    /// (undeclared indirect transfers, transfers into data, fall-off-end)
    /// and programs whose layout violates encoding ranges; see
    /// [`TransformError`].
    pub fn transform(&self, module: &Module) -> Result<SecureImage, TransformError> {
        self.format.validate().map_err(TransformError::BadFormat)?;
        if module.text.is_empty() {
            return Err(TransformError::EmptyProgram);
        }
        let source_instructions = module.text.len();
        let lowered = lower::lower(module)?;
        let cfg = Cfg::build(&lowered)?;
        let mut packed = pack::pack(&lowered, &cfg, &self.format);
        let trees = mux::build_trees(&mut packed, &self.format);
        seal::seal(seal::SealInput {
            module: &lowered,
            cfg: &cfg,
            packed: &packed,
            trees: &trees,
            format: &self.format,
            keys: &self.keys,
            nonce: self.nonce,
            engine: self.engine,
            source_instructions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_crypto::{ctr, mac, CounterBlock, Mac64};
    use sofia_isa::asm;
    use sofia_isa::Instruction;

    fn install(src: &str) -> SecureImage {
        let module = asm::parse(src).unwrap();
        Transformer::new(KeySet::from_seed(0xBEEF))
            .transform(&module)
            .unwrap()
    }

    /// Decrypts an exec block at block index `bi` by walking the same
    /// counter chain the hardware uses, returning its plain words.
    fn decrypt_exec_block(
        img: &SecureImage,
        keys: &KeySet,
        bi: usize,
        entry_prev: u32,
    ) -> Vec<u32> {
        let ks = keys.expand();
        let bw = img.format.block_words();
        let base = img.text_base + (bi * img.format.block_bytes() as usize) as u32;
        let mut out = Vec::new();
        let mut prev = entry_prev;
        for w in 0..bw {
            let pc = base + 4 * w as u32;
            let c = img.ctext[bi * bw + w];
            out.push(ctr::apply(
                &ks.ctr,
                CounterBlock::from_edge(img.nonce, prev, pc),
                c,
            ));
            prev = pc;
        }
        out
    }

    #[test]
    fn entry_block_decrypts_and_verifies() {
        let keys = KeySet::from_seed(0xBEEF);
        let img = install("main: addi t0, zero, 7\n halt");
        assert_eq!(img.entry, img.text_base); // single-pred entry: exec base
        let words = decrypt_exec_block(&img, &keys, 0, RESET_PREV_PC);
        // words = [M1, M2, i1..i6]
        let insts = &words[2..];
        assert_eq!(
            Instruction::decode(insts[0]).unwrap(),
            Instruction::Addi {
                rt: sofia_isa::Reg::T0,
                rs: sofia_isa::Reg::ZERO,
                imm: 7
            }
        );
        assert_eq!(Instruction::decode(insts[5]).unwrap(), Instruction::Halt);
        // MAC check (k2 domain, padded to 6 words)
        let m = mac::mac_words(&keys.expand().mac_exec, insts, 6);
        assert_eq!(Mac64::from_words(words[0], words[1]), m);
    }

    #[test]
    fn wrong_prev_pc_breaks_decryption() {
        let keys = KeySet::from_seed(0xBEEF);
        let img = install("main: addi t0, zero, 7\n halt");
        let words = decrypt_exec_block(&img, &keys, 0, 0x44); // wrong edge
        let insts = &words[2..];
        // Even if a garbled word happened to decode, the MAC cannot match.
        let m = mac::mac_words(&keys.expand().mac_exec, insts, 6);
        assert_ne!(Mac64::from_words(words[0], words[1]), m);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let module = asm::parse("main: addi t0, zero, 7\n halt").unwrap();
        let plain = module.layout(&asm::LayoutOptions::default()).unwrap();
        let img = Transformer::new(KeySet::from_seed(1))
            .transform(&module)
            .unwrap();
        // No plaintext instruction word survives in the ciphertext at the
        // corresponding position.
        assert!(img
            .ctext
            .iter()
            .zip(plain.words.iter())
            .all(|(c, p)| c != p));
    }

    #[test]
    fn different_nonce_different_image() {
        let module = asm::parse("main: halt").unwrap();
        let keys = KeySet::from_seed(5);
        let a = Transformer::new(keys.clone())
            .with_nonce(Nonce::new(1))
            .transform(&module)
            .unwrap();
        let b = Transformer::new(keys)
            .with_nonce(Nonce::new(2))
            .transform(&module)
            .unwrap();
        assert_ne!(a.ctext, b.ctext);
    }

    #[test]
    fn expansion_for_loops_exceeds_base_ratio() {
        // 8 words carry 6 instructions → ≥ 1.33× even for straight line;
        // loops add mux blocks and trampolines.
        let img = install(
            "main: li t0, 10
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        assert!(img.report.expansion() > 1.33);
        assert!(img.report.mux_blocks >= 1);
    }

    #[test]
    fn scalar_and_bitsliced_engines_seal_identical_images() {
        // The CryptoEngine knob is host-performance only: same keys, same
        // program, bit-identical ciphertext (exec blocks, mux blocks and
        // trees all covered by the multi-caller function).
        let module = asm::parse(
            "main: li s0, 0
                   jal f
                   jal f
                   jal f
             loop: subi s0, s0, 1
                   bnez s0, loop
                   halt
             f:    addi s0, s0, 2
                   ret",
        )
        .unwrap();
        let keys = KeySet::from_seed(0x5EA1);
        let scalar = Transformer::new(keys.clone())
            .with_engine(sofia_crypto::CryptoEngine::Scalar)
            .transform(&module)
            .unwrap();
        let bitsliced = Transformer::new(keys)
            .with_engine(sofia_crypto::CryptoEngine::Bitsliced)
            .transform(&module)
            .unwrap();
        assert!(scalar.report.mux_blocks >= 1, "{:?}", scalar.report);
        assert_eq!(scalar.ctext, bitsliced.ctext);
        assert_eq!(scalar.entry, bitsliced.entry);
        assert_eq!(scalar.data, bitsliced.data);
    }

    #[test]
    fn empty_program_rejected() {
        let module = asm::parse("").unwrap();
        assert!(matches!(
            Transformer::new(KeySet::from_seed(1)).transform(&module),
            Err(TransformError::EmptyProgram)
        ));
    }

    #[test]
    fn undeclared_indirect_rejected() {
        let module = asm::parse("main: jalr t0\n halt").unwrap();
        assert!(matches!(
            Transformer::new(KeySet::from_seed(1)).transform(&module),
            Err(TransformError::Cfg(_))
        ));
    }

    #[test]
    fn text_base_is_block_aligned_and_entry_inside() {
        let img = install("main: halt");
        assert_eq!(img.text_base % img.format.block_bytes(), 0);
        assert!(img.entry >= img.text_base);
        assert!(img.entry < img.text_base + img.text_bytes() as u32);
    }

    #[test]
    fn mux_entry_block_when_main_is_loop_target() {
        // main is both the reset entry and a branch target → mux entry.
        let img = install(
            "main: subi t0, t0, 1
                   bnez t0, main
                   halt",
        );
        // Reset edge is entry path 1 → call-site offset 4.
        assert_eq!(img.entry % img.format.block_bytes(), 4);
    }

    #[test]
    fn data_and_symbols_preserved() {
        let img = install(
            ".data
             tbl: .word 5, 6
             .text
             main: la a0, tbl
                   lw t0, 0(a0)
                   halt",
        );
        assert_eq!(&img.data[0..4], &5u32.to_le_bytes());
        assert!(img.symbols.contains_key("tbl"));
        assert!(img.symbols.contains_key("main"));
    }
}
