//! FIPAC-style installer (Nasahl et al., "FIPAC: Thwarting Fault- and
//! Software-Induced Control-Flow Attacks" — PAPERS.md).
//!
//! FIPAC leaves the text **in plaintext** and instead maintains a keyed
//! running CFI state — a CBC-MAC-style chain over the executed SL32
//! words under the device MAC key (see [`crate::chain`]) — with per-edge
//! patch values reconciling joins, exactly like the sponge backend.
//! Integrity is enforced at **justifying signature points**: at every
//! function return and every `halt` the installer records the canonical
//! state, and the fetch unit compares its runtime state against that
//! signature *before* the word issues. Tampering (or an unenumerated
//! edge) therefore executes until the next check — detection is
//! deferred, not immediate — but costs almost nothing on the fetch
//! critical path, since the state update pipelines off to the side.

use std::collections::BTreeMap;

use sofia_cfg::is_return;
use sofia_crypto::{CounterBlock, KeySet, Nonce};
use sofia_isa::asm::Module;
use sofia_isa::Instruction;

use crate::chain::build_chain;
use crate::error::TransformError;
use crate::RESET_PREV_PC;

/// A program installed for the FIPAC fetch unit: plaintext words plus
/// the public patch table and the expected-state table at every
/// justifying signature point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FipacImage {
    /// The per-program nonce diversifying the chain.
    pub nonce: Nonce,
    /// Base address of the (plaintext) text section.
    pub text_base: u32,
    /// Plaintext instruction words.
    pub words: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u32,
    /// Plaintext data section.
    pub data: Vec<u8>,
    /// The entry address out of reset.
    pub entry: u32,
    /// Per-edge state patches, keyed by `(from_pc, to_pc)`; includes the
    /// reset edge `(RESET_PREV_PC, entry)`.
    pub patches: BTreeMap<(u32, u32), u64>,
    /// Justifying signature points: `pc → expected state before issuing
    /// the word at pc`. Every `jr ra` and every `halt` is checked.
    pub checks: BTreeMap<u32, u64>,
    /// Resolved label addresses, for the harnesses.
    pub symbols: BTreeMap<String, u32>,
}

/// The state a FIPAC fetch unit boots with, derived from public header
/// fields only.
pub fn reset_state(keys: &KeySet, nonce: Nonce, entry: u32) -> u64 {
    let cipher = keys.expand().mac_exec;
    cipher.encrypt_block(CounterBlock::from_edge(nonce, RESET_PREV_PC, entry).as_u64())
}

/// Installs `module` for the FIPAC backend.
///
/// # Errors
///
/// Same contract as the other installers: the CFG must be enumerable and
/// the layout must succeed.
pub fn install_fipac(
    module: &Module,
    keys: &KeySet,
    nonce: Nonce,
) -> Result<FipacImage, TransformError> {
    let cipher = keys.expand().mac_exec;
    let permute = |x: u64| cipher.encrypt_block(x);

    let probe = module
        .layout(&sofia_isa::asm::LayoutOptions::default())
        .map_err(TransformError::Layout)?;
    let boot = permute(CounterBlock::from_edge(nonce, RESET_PREV_PC, probe.entry).as_u64());
    let seed = CounterBlock::from_edge(nonce, crate::UNREACHABLE_PREV_PC, probe.text_base).as_u64();

    let chain = build_chain(module, &permute, seed, boot)?;

    // Signature points: every conventional return and every halt. (The
    // fetch unit additionally treats a `halt` *without* a check entry as
    // an unjustified exit, so tampering cannot silently truncate a run
    // by conjuring a halt.)
    let a = &chain.assembly;
    let mut checks = BTreeMap::new();
    for (i, item) in module.text.iter().enumerate() {
        let checked = matches!(item.inst, Instruction::Halt)
            || (is_return(&item.inst) && item.indirect_targets.is_empty());
        if checked {
            checks.insert(a.text_base + 4 * i as u32, chain.states[i]);
        }
    }

    Ok(FipacImage {
        nonce,
        text_base: a.text_base,
        words: a.words.clone(),
        data_base: a.data_base,
        data: a.data.clone(),
        entry: a.entry,
        patches: chain.patches,
        checks,
        symbols: a.symbols.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;

    fn keys() -> KeySet {
        KeySet::from_seed(0xF1AC)
    }

    #[test]
    fn text_stays_plaintext_and_exits_are_checked() {
        let m = asm::parse("main: jal f\nhalt\nf: nop\nret").unwrap();
        let plain = m.layout(&asm::LayoutOptions::default()).unwrap();
        let img = install_fipac(&m, &keys(), Nonce::new(4)).unwrap();
        assert_eq!(img.words, plain.words, "FIPAC does not encrypt");
        // The halt and the return are both signature points.
        assert_eq!(img.checks.len(), 2);
        assert!(img.checks.contains_key(&(img.text_base + 4))); // halt
        assert!(img.checks.contains_key(&(img.text_base + 12))); // ret
    }

    #[test]
    fn replaying_the_chain_matches_every_signature() {
        let m = asm::parse("main: jal f\nhalt\nf: addi t0, zero, 9\nret").unwrap();
        let img = install_fipac(&m, &keys(), Nonce::new(8)).unwrap();
        let cipher = keys().expand().mac_exec;
        // Walk the valid execution path main→f→ret→halt, applying
        // patches exactly as the fetch unit would.
        let mut s =
            reset_state(&keys(), img.nonce, img.entry) ^ img.patches[&(RESET_PREV_PC, img.entry)];
        let word = |pc: u32| img.words[((pc - img.text_base) / 4) as usize];
        let absorb = |s: &mut u64, pc: u32| {
            if let Some(&exp) = img.checks.get(&pc) {
                assert_eq!(*s, exp, "signature at {pc:#x}");
            }
            *s = cipher.encrypt_block(*s ^ u64::from(word(pc)));
        };
        let (main, f) = (img.entry, img.text_base + 8);
        absorb(&mut s, main); // jal f
        s ^= img.patches[&(main, f)];
        absorb(&mut s, f); // addi
        absorb(&mut s, f + 4); // ret (checked)
        s ^= img.patches[&(f + 4, main + 4)];
        absorb(&mut s, main + 4); // halt (checked)
    }

    #[test]
    fn tampering_one_word_diverges_the_final_signature() {
        let m = asm::parse("main: addi t0, zero, 1\nnop\nhalt").unwrap();
        let img = install_fipac(&m, &keys(), Nonce::new(2)).unwrap();
        let cipher = keys().expand().mac_exec;
        let mut s =
            reset_state(&keys(), img.nonce, img.entry) ^ img.patches[&(RESET_PREV_PC, img.entry)];
        // Absorb a flipped first word, then the honest second word.
        s = cipher.encrypt_block(s ^ u64::from(img.words[0] ^ 0x1));
        s = cipher.encrypt_block(s ^ u64::from(img.words[1]));
        let halt_pc = img.text_base + 8;
        assert_ne!(s, img.checks[&halt_pc], "divergence must reach the check");
    }
}
