//! Packing lowered instructions into SOFIA blocks.
//!
//! Invariants established here (and relied on by the SOFIA hardware
//! model):
//!
//! * every control-transfer instruction sits in the **last** slot of its
//!   block ("control can only exit at inst_n", Fig. 4);
//! * every block-entry target is the first instruction of a block;
//! * blocks whose entry has ≥ 2 predecessors are multiplexor blocks and
//!   are never entered by plain fall-through — fall-through edges into
//!   them are converted into explicit jumps (in-block or via a one-block
//!   trampoline);
//! * return points are always single-predecessor execution blocks whose
//!   base equals the `ra` value written by the `jal` (conflicting edges
//!   are rerouted through a landing-pad block placed right after the
//!   call);
//! * stores respect the format's word-offset restriction (Fig. 6).

use std::collections::BTreeMap;

use sofia_cfg::{Cfg, EdgeKind};
use sofia_isa::asm::{Module, Reloc};
use sofia_isa::Instruction;

use crate::format::{BlockFormat, BlockKind};

/// Where an entry edge originates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Src {
    /// The processor reset (program entry); `prevPC` is the reset sentinel.
    Reset,
    /// An original instruction (resolved to its block after placement).
    Orig(usize),
    /// A packed block (used for synthetic blocks created during packing).
    Block(usize),
}

/// One resolved entry edge of a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct EntryEdge {
    pub src: Src,
    pub kind: EdgeKind,
}

/// How a slot's operand is resolved at seal time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Target {
    /// A relocation from the source module (branch/jump/hi/lo by label).
    Label(Reloc),
    /// A synthetic jump to the block of an original leader instruction.
    Leader(usize),
    /// A synthetic jump straight to another packed block (mux-tree nodes).
    Block(usize),
}

/// One instruction slot of a packed block.
#[derive(Clone, Debug)]
pub(crate) struct Slot {
    pub inst: Instruction,
    pub target: Option<Target>,
    /// Index in the lowered module, for placement bookkeeping.
    pub orig: Option<usize>,
}

impl Slot {
    pub(crate) fn pad_slot() -> Slot {
        Slot {
            inst: Instruction::nop(),
            target: None,
            orig: None,
        }
    }
}

/// Why a block exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Synth {
    /// Carries original program instructions.
    None,
    /// Converts a fall-through edge into a jump (into a mux entry).
    FtTrampoline,
    /// Return landing pad keeping a conflicted return point single-pred.
    LandingPad,
    /// Multiplexor-tree inner node (Fig. 9).
    TreeNode,
}

/// A packed block before sealing.
#[derive(Clone, Debug)]
pub(crate) struct PBlock {
    pub kind: BlockKind,
    pub slots: Vec<Slot>,
    pub leader: Option<usize>,
    pub synth: Synth,
    /// Entry edges; for leader blocks this is filled by
    /// [`resolve_entries`], synthetic blocks record theirs immediately.
    pub entries: Vec<EntryEdge>,
}

/// The packed program plus bookkeeping needed to seal it.
#[derive(Clone, Debug)]
pub(crate) struct Packed {
    pub blocks: Vec<PBlock>,
    /// lowered-module index → (block, slot)
    pub placement: Vec<Option<(usize, usize)>>,
    pub pad_nops: usize,
    pub ft_trampolines: usize,
    pub landing_pads: usize,
}

struct CurBlock {
    kind: BlockKind,
    slots: Vec<Slot>,
    leader: Option<usize>,
    /// Entry edges decided at open time (continuation blocks).
    pre_entries: Option<Vec<EntryEdge>>,
}

struct Packer<'a> {
    module: &'a Module,
    cfg: &'a Cfg,
    format: &'a BlockFormat,
    is_leader: Vec<bool>,
    blocks: Vec<PBlock>,
    placement: Vec<Option<(usize, usize)>>,
    /// (from_orig, leader_orig) → replacement source for that edge.
    overrides: BTreeMap<(usize, usize), Src>,
    cur: Option<CurBlock>,
    pad_nops: usize,
    ft_trampolines: usize,
    landing_pads: usize,
}

/// Packs the lowered module into blocks and resolves every entry edge.
pub(crate) fn pack(module: &Module, cfg: &Cfg, format: &BlockFormat) -> Packed {
    let n = module.text.len();
    let mut is_leader = vec![false; n];
    if n > 0 {
        is_leader[cfg.entry()] = true;
    }
    for (i, leader) in is_leader.iter_mut().enumerate() {
        if cfg.preds(i).iter().any(|e| e.kind != EdgeKind::FallThrough) {
            *leader = true;
        }
    }
    let mut p = Packer {
        module,
        cfg,
        format,
        is_leader,
        blocks: Vec::new(),
        placement: vec![None; n],
        overrides: BTreeMap::new(),
        cur: None,
        pad_nops: 0,
        ft_trampolines: 0,
        landing_pads: 0,
    };
    p.run();
    let mut packed = Packed {
        blocks: p.blocks,
        placement: p.placement,
        pad_nops: p.pad_nops,
        ft_trampolines: p.ft_trampolines,
        landing_pads: p.landing_pads,
    };
    resolve_entries(&mut packed, cfg, &p.overrides);
    packed
}

impl Packer<'_> {
    fn pred_count(&self, i: usize) -> usize {
        self.cfg.preds(i).len() + usize::from(i == self.cfg.entry())
    }

    fn run(&mut self) {
        let n = self.module.text.len();
        for i in 0..n {
            if self.is_leader[i] {
                self.close_for_leader(i);
            }
            if self.cur.is_none() {
                self.open(i);
            }
            self.place(i);
        }
        debug_assert!(
            self.cur.is_none(),
            "text must end with a control transfer (CFG guarantees this)"
        );
    }

    fn open(&mut self, i: usize) {
        let (kind, leader, pre) = if self.is_leader[i] {
            let kind = if self.pred_count(i) >= 2 {
                BlockKind::Mux
            } else {
                BlockKind::Exec
            };
            (kind, Some(i), None)
        } else {
            // Continuation block: reached by fall-through from the block
            // just closed, or unreachable (dead code after a jump).
            let pre = if i > 0 && self.module.text[i - 1].inst.falls_through() {
                vec![EntryEdge {
                    src: Src::Block(self.blocks.len() - 1),
                    kind: EdgeKind::FallThrough,
                }]
            } else {
                Vec::new()
            };
            (BlockKind::Exec, None, Some(pre))
        };
        self.cur = Some(CurBlock {
            kind,
            slots: Vec::new(),
            leader,
            pre_entries: pre,
        });
    }

    fn place(&mut self, i: usize) {
        let item = &self.module.text[i];
        let inst = item.inst;
        let target = item.reloc.clone().map(Target::Label);
        let kind = self.cur.as_ref().expect("open").kind;
        let cap = self.format.insts(kind);

        if inst.is_control_transfer() {
            // Transfers go in the last slot.
            while self.cur_len() < cap - 1 {
                self.push_pad();
            }
            self.push_slot(Slot {
                inst,
                target,
                orig: Some(i),
            });
            let b = self.push_cur();
            if matches!(inst, Instruction::Jal { .. }) {
                self.maybe_landing_pad(i);
            }
            if inst.is_branch() {
                self.maybe_ft_fixup_after(i, b);
            }
            return;
        }

        if inst.is_store() {
            while !self.format.store_allowed(kind, self.cur_len()) {
                self.push_pad();
            }
        }
        self.push_slot(Slot {
            inst,
            target,
            orig: Some(i),
        });
        if self.cur_len() == cap {
            let b = self.push_cur();
            // A full block falling through into a multi-pred leader needs
            // an explicit jump; there is no room in-block, so trampoline.
            self.maybe_ft_fixup_after(i, b);
        }
    }

    fn cur_len(&self) -> usize {
        self.cur.as_ref().expect("open").slots.len()
    }

    fn push_pad(&mut self) {
        self.cur
            .as_mut()
            .expect("open")
            .slots
            .push(Slot::pad_slot());
        self.pad_nops += 1;
    }

    fn push_slot(&mut self, slot: Slot) {
        let block_idx = self.blocks.len();
        let cur = self.cur.as_mut().expect("open");
        if let Some(orig) = slot.orig {
            self.placement[orig] = Some((block_idx, cur.slots.len()));
        }
        cur.slots.push(slot);
    }

    /// Pads the current block to capacity and appends it; returns its index.
    fn push_cur(&mut self) -> usize {
        let cap = self.format.insts(self.cur.as_ref().expect("open").kind);
        while self.cur_len() < cap {
            self.push_pad();
        }
        let cur = self.cur.take().expect("open");
        let idx = self.blocks.len();
        self.blocks.push(PBlock {
            kind: cur.kind,
            slots: cur.slots,
            leader: cur.leader,
            synth: Synth::None,
            entries: cur.pre_entries.unwrap_or_default(),
        });
        idx
    }

    /// Closing logic when the next instruction is a leader.
    fn close_for_leader(&mut self, leader: usize) {
        let Some(cur) = &self.cur else { return };
        debug_assert!(!cur.slots.is_empty(), "blocks are opened on demand");
        let kind = cur.kind;
        let cap = self.format.insts(kind);
        // The current block's last *placed* instruction falls through into
        // `leader` (transfers close their block eagerly in `place`).
        if self.pred_count(leader) >= 2 {
            if self.cur_len() < cap {
                // Convert the fall-through into an explicit in-block jump;
                // the edge source block is unchanged.
                while self.cur_len() < cap - 1 {
                    self.push_pad();
                }
                self.push_slot(Slot {
                    inst: Instruction::J { index: 0 },
                    target: Some(Target::Leader(leader)),
                    orig: None,
                });
                self.push_cur();
            } else {
                let b = self.push_cur();
                self.emit_ft_trampoline(leader, b);
            }
        } else {
            self.push_cur();
        }
    }

    /// After closing block `b` whose last instruction `i` can fall
    /// through (a conditional branch, or a block filled to capacity),
    /// fix up the fall-through edge if it enters a multi-pred leader.
    fn maybe_ft_fixup_after(&mut self, i: usize, b: usize) {
        let next = i + 1;
        if next < self.module.text.len() && self.is_leader[next] && self.pred_count(next) >= 2 {
            self.emit_ft_trampoline(next, b);
        }
    }

    /// Emits `[pads…, j leader]` as the next block, rerouting the
    /// fall-through edge `(leader-1 → leader)` through it.
    fn emit_ft_trampoline(&mut self, leader: usize, from_block: usize) {
        let cap = self.format.insts(BlockKind::Exec);
        let mut slots = vec![Slot::pad_slot(); cap - 1];
        self.pad_nops += cap - 1;
        slots.push(Slot {
            inst: Instruction::J { index: 0 },
            target: Some(Target::Leader(leader)),
            orig: None,
        });
        let idx = self.blocks.len();
        self.blocks.push(PBlock {
            kind: BlockKind::Exec,
            slots,
            leader: None,
            synth: Synth::FtTrampoline,
            entries: vec![EntryEdge {
                src: Src::Block(from_block),
                kind: EdgeKind::FallThrough,
            }],
        });
        self.ft_trampolines += 1;
        debug_assert!(leader > 0);
        self.overrides.insert((leader - 1, leader), Src::Block(idx));
    }

    /// If the return point of the `jal` at `i` has predecessors besides
    /// the callee's return, emit a landing pad directly after the call
    /// block so `ra` still addresses a single-pred execution block.
    fn maybe_landing_pad(&mut self, i: usize) {
        let l = i + 1;
        if l >= self.module.text.len() {
            return;
        }
        let preds = self.cfg.preds(l);
        let returns: Vec<_> = preds
            .iter()
            .filter(|e| e.kind == EdgeKind::Return)
            .collect();
        if returns.is_empty() {
            return;
        }
        let has_other = preds.len() > returns.len() || l == self.cfg.entry() || returns.len() > 1;
        if !has_other {
            return;
        }
        // Reroute every return edge into the pad. (Post-lowering there is
        // exactly one per call site, but stay safe.)
        let cap = self.format.insts(BlockKind::Exec);
        let mut slots = vec![Slot::pad_slot(); cap - 1];
        self.pad_nops += cap - 1;
        slots.push(Slot {
            inst: Instruction::J { index: 0 },
            target: Some(Target::Leader(l)),
            orig: None,
        });
        let idx = self.blocks.len();
        let entries = returns
            .iter()
            .map(|e| EntryEdge {
                src: Src::Orig(e.from),
                kind: EdgeKind::Return,
            })
            .collect();
        for e in &returns {
            self.overrides.insert((e.from, l), Src::Block(idx));
        }
        self.blocks.push(PBlock {
            kind: BlockKind::Exec,
            slots,
            leader: None,
            synth: Synth::LandingPad,
            entries,
        });
        self.landing_pads += 1;
    }
}

/// Fills every leader block's entry list from the CFG (applying edge
/// overrides) and resolves `Src::Orig` placeholders to blocks.
fn resolve_entries(packed: &mut Packed, cfg: &Cfg, overrides: &BTreeMap<(usize, usize), Src>) {
    let placement = packed.placement.clone();
    let resolve = |src: Src| -> Src {
        match src {
            Src::Orig(o) => {
                let (b, _) = placement[o].expect("placed instruction");
                Src::Block(b)
            }
            other => other,
        }
    };
    for block in packed.blocks.iter_mut() {
        if block.synth != Synth::None {
            for e in block.entries.iter_mut() {
                e.src = resolve(e.src);
            }
            continue;
        }
        if let Some(leader) = block.leader {
            let mut entries: Vec<EntryEdge> = Vec::new();
            if leader == cfg.entry() {
                entries.push(EntryEdge {
                    src: Src::Reset,
                    kind: EdgeKind::Jump,
                });
            }
            for e in cfg.preds(leader) {
                let src = overrides
                    .get(&(e.from, leader))
                    .copied()
                    .unwrap_or(Src::Orig(e.from));
                entries.push(EntryEdge {
                    src: resolve(src),
                    kind: e.kind,
                });
            }
            entries.sort_by_key(|e| e.src);
            entries.dedup_by_key(|e| e.src);
            block.entries = entries;
        } else {
            for e in block.entries.iter_mut() {
                e.src = resolve(e.src);
            }
        }
        debug_assert_eq!(
            block.kind == BlockKind::Mux,
            block.entries.len() >= 2,
            "block kind must match its entry multiplicity"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use sofia_isa::asm;

    fn packed(src: &str) -> (Packed, Module) {
        let module = lower(&asm::parse(src).unwrap()).unwrap();
        let cfg = Cfg::build(&module).unwrap();
        let p = pack(&module, &cfg, &BlockFormat::default());
        (p, module)
    }

    #[test]
    fn straight_line_pads_into_one_exec_block() {
        let (p, _) = packed("main: addi t0, zero, 1\n addi t1, zero, 2\n halt");
        assert_eq!(p.blocks.len(), 1);
        let b = &p.blocks[0];
        assert_eq!(b.kind, BlockKind::Exec);
        assert_eq!(b.slots.len(), 6);
        // halt in the last slot, pads in between
        assert!(matches!(b.slots[5].inst, Instruction::Halt));
        assert!(b.slots[2].inst.is_nop() && b.slots[4].inst.is_nop());
        assert_eq!(p.pad_nops, 3);
        // single Reset entry
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].src, Src::Reset);
    }

    #[test]
    fn transfers_always_sit_in_the_last_slot() {
        let (p, _) = packed(
            "main: li t0, 3
             loop: subi t0, t0, 1
                   bnez t0, loop
                   jal f
                   halt
             f:    ret",
        );
        for b in &p.blocks {
            for (s, slot) in b.slots.iter().enumerate() {
                if slot.inst.is_control_transfer() {
                    assert_eq!(s, b.slots.len() - 1, "transfer not in last slot: {b:?}");
                }
            }
        }
    }

    #[test]
    fn loop_head_becomes_mux_with_two_distinct_sources() {
        // loop head preds: fall-through from `li` + backward branch.
        let (p, _) = packed(
            "main: li t0, 3
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let mux: Vec<_> = p
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Mux)
            .collect();
        assert_eq!(mux.len(), 1);
        assert_eq!(mux[0].entries.len(), 2);
        let srcs: Vec<_> = mux[0].entries.iter().map(|e| e.src).collect();
        assert_ne!(srcs[0], srcs[1], "mux entries must have distinct sources");
        // The fall-through into the mux was converted to an explicit jump
        // (in-block `j`, since the first block had room).
        let first = &p.blocks[0];
        assert!(matches!(
            first.slots.last().unwrap().inst,
            Instruction::J { .. }
        ));
    }

    #[test]
    fn branch_fallthrough_into_mux_gets_trampoline() {
        // `beqz` falls through *directly* into `loop`, a multi-pred leader:
        // the not-taken path cannot take an in-block jump (the branch owns
        // the last slot), so a trampoline block is required.
        let (p, _) = packed(
            "main: beqz a0, loop
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        assert!(p.ft_trampolines >= 1);
        let t = p
            .blocks
            .iter()
            .find(|b| b.synth == Synth::FtTrampoline)
            .expect("trampoline exists");
        assert!(matches!(
            t.slots.last().unwrap().inst,
            Instruction::J { .. }
        ));
        assert_eq!(t.entries.len(), 1);
    }

    #[test]
    fn callee_with_two_callers_is_mux() {
        let (p, m) = packed(
            "main: jal f
                   jal f
                   halt
             f:    ret",
        );
        // find f's block: the block whose leader is the `jr ra`
        let jr_idx = m
            .text
            .iter()
            .position(|t| sofia_cfg::is_return(&t.inst))
            .unwrap();
        let (fb, _) = p.placement[jr_idx].unwrap();
        let fblock = &p.blocks[fb];
        assert_eq!(fblock.kind, BlockKind::Mux);
        assert_eq!(fblock.entries.len(), 2);
        assert_eq!(fblock.slots.len(), 5);
    }

    #[test]
    fn return_points_are_single_pred_exec_blocks() {
        let (p, m) = packed(
            "main: jal f
                   jal f
                   halt
             f:    ret",
        );
        // The second jal and the halt are return points; their blocks must
        // be Exec with exactly one (Return) entry.
        for i in 0..m.text.len() {
            let is_return_point = i > 0 && matches!(m.text[i - 1].inst, Instruction::Jal { .. });
            if !is_return_point {
                continue;
            }
            let (b, s) = p.placement[i].unwrap();
            // Only pads may precede the return point in its block (the
            // point itself may be a transfer, which sits in the last slot).
            assert!(p.blocks[b].slots[..s].iter().all(|x| x.orig.is_none()));
            assert_eq!(p.blocks[b].kind, BlockKind::Exec);
            assert_eq!(p.blocks[b].entries.len(), 1);
            assert_eq!(p.blocks[b].entries[0].kind, EdgeKind::Return);
        }
    }

    #[test]
    fn conflicted_return_point_gets_landing_pad() {
        // `rp` is both f's return point and a branch target.
        let (p, _) = packed(
            "main: jal f
             rp:   addi t0, t0, 1
                   bnez t0, rp
                   halt
             f:    ret",
        );
        assert_eq!(p.landing_pads, 1);
        let pad = p
            .blocks
            .iter()
            .find(|b| b.synth == Synth::LandingPad)
            .unwrap();
        assert_eq!(pad.kind, BlockKind::Exec);
        assert_eq!(pad.entries.len(), 1);
        assert_eq!(pad.entries[0].kind, EdgeKind::Return);
        assert!(matches!(
            pad.slots.last().unwrap().inst,
            Instruction::J { .. }
        ));
    }

    #[test]
    fn landing_pad_sits_directly_after_call_block() {
        let (p, m) = packed(
            "main: jal f
             rp:   addi t0, t0, 1
                   bnez t0, rp
                   halt
             f:    ret",
        );
        let jal_idx = m
            .text
            .iter()
            .position(|t| matches!(t.inst, Instruction::Jal { .. }))
            .unwrap();
        let (jal_block, _) = p.placement[jal_idx].unwrap();
        assert_eq!(p.blocks[jal_block + 1].synth, Synth::LandingPad);
    }

    #[test]
    fn stores_respect_the_restriction() {
        let (p, _) = packed(
            "main: li a0, 0x10000000
                   sw zero, 0(a0)
                   sw zero, 4(a0)
                   halt",
        );
        for b in &p.blocks {
            for (s, slot) in b.slots.iter().enumerate() {
                if slot.inst.is_store() {
                    assert!(
                        BlockFormat::default().store_allowed(b.kind, s),
                        "store at disallowed slot {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn store_first_program_pads_before_store() {
        let module = lower(&asm::parse("main: sw zero, 0(sp)\n halt").unwrap()).unwrap();
        let cfg = Cfg::build(&module).unwrap();
        let p = pack(&module, &cfg, &BlockFormat::default());
        let b = &p.blocks[0];
        assert!(b.slots[0].inst.is_nop());
        assert!(b.slots[1].inst.is_nop());
        assert!(b.slots[2].inst.is_store());
    }

    #[test]
    fn exec4_format_packs_four_per_block() {
        let module = lower(&asm::parse("main: nop\nnop\nnop\nnop\nnop\nhalt").unwrap()).unwrap();
        let cfg = Cfg::build(&module).unwrap();
        let p = pack(&module, &cfg, &BlockFormat::exec4());
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.blocks[0].slots.len(), 4);
        // continuation block entered by fall-through
        assert_eq!(p.blocks[1].entries.len(), 1);
        assert_eq!(p.blocks[1].entries[0].src, Src::Block(0));
    }

    #[test]
    fn dead_code_has_no_entries() {
        let (p, m) = packed(
            "main: j end
             dead: nop
             end:  halt",
        );
        let dead_idx = m
            .text
            .iter()
            .position(|t| t.labels.contains(&"dead".into()))
            .unwrap();
        let (b, _) = p.placement[dead_idx].unwrap();
        assert!(p.blocks[b].entries.is_empty());
    }

    #[test]
    fn every_real_instruction_is_placed_exactly_once() {
        let (p, m) = packed(
            "main: li t0, 5
             loop: subi t0, t0, 1
                   jal f
                   bnez t0, loop
                   halt
             f:    mul v0, a0, a0
                   ret",
        );
        for i in 0..m.text.len() {
            let (b, s) = p.placement[i].expect("placed");
            assert_eq!(p.blocks[b].slots[s].orig, Some(i));
        }
        // and no slot claims an orig twice
        let mut seen = std::collections::HashSet::new();
        for b in &p.blocks {
            for slot in &b.slots {
                if let Some(o) = slot.orig {
                    assert!(seen.insert(o));
                }
            }
        }
    }
}
