//! Multiplexor-tree construction (paper §II-D, Fig. 9).
//!
//! A block whose entry has `k > 2` predecessors cannot be a single
//! multiplexor block; instead a balanced tree of trampoline mux blocks
//! merges edges pairwise — each tree node accepts two entries and emits
//! one jump — until exactly two edges remain for the target block.
//! `k` callers therefore cost `k − 2` extra blocks, the scaling the
//! `fig9` experiment measures.

use std::collections::BTreeMap;

use sofia_cfg::EdgeKind;
use sofia_isa::Instruction;

use crate::format::{BlockFormat, BlockKind};
use crate::pack::{EntryEdge, PBlock, Packed, Slot, Src, Synth, Target};

/// Tree bookkeeping: which tree nodes were created for which target block.
/// Seal-time entry lookup searches the target's own entries first, then
/// its tree nodes'.
#[derive(Clone, Debug, Default)]
pub(crate) struct Trees {
    /// target block → tree-node block indices (in creation order).
    pub nodes_of: BTreeMap<usize, Vec<usize>>,
    /// total number of tree nodes created.
    pub count: usize,
}

/// Reduces every block with more than two entries to exactly two by
/// inserting multiplexor-tree trampolines at the end of the program.
pub(crate) fn build_trees(packed: &mut Packed, format: &BlockFormat) -> Trees {
    let mut trees = Trees::default();
    let original = packed.blocks.len();
    for bi in 0..original {
        if packed.blocks[bi].entries.len() <= 2 {
            continue;
        }
        debug_assert!(
            packed.blocks[bi]
                .entries
                .iter()
                .all(|e| e.kind != EdgeKind::FallThrough),
            "fall-through edges must have been converted before tree building"
        );
        let mut created = Vec::new();
        let mut level = std::mem::take(&mut packed.blocks[bi].entries);
        while level.len() > 2 {
            let mut next = Vec::new();
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let idx = packed.blocks.len();
                        packed.blocks.push(PBlock {
                            kind: BlockKind::Mux,
                            slots: Vec::new(), // filled after wiring
                            leader: None,
                            synth: Synth::TreeNode,
                            entries: vec![a, b],
                        });
                        created.push(idx);
                        next.push(EntryEdge {
                            src: Src::Block(idx),
                            kind: EdgeKind::Jump,
                        });
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        packed.blocks[bi].entries = level;

        // Wire each tree node's jump to the block that now lists it as an
        // entry source (either `bi` or a higher tree node).
        for &node in &created {
            let target = std::iter::once(bi)
                .chain(created.iter().copied())
                .find(|&candidate| {
                    candidate != node
                        && packed.blocks[candidate]
                            .entries
                            .iter()
                            .any(|e| e.src == Src::Block(node))
                })
                .expect("every tree node feeds exactly one block");
            let cap = format.insts(BlockKind::Mux);
            let mut slots = vec![Slot::pad_slot(); cap - 1];
            packed.pad_nops += cap - 1;
            slots.push(Slot {
                inst: Instruction::J { index: 0 },
                target: Some(Target::Block(target)),
                orig: None,
            });
            packed.blocks[node].slots = slots;
        }
        trees.count += created.len();
        trees.nodes_of.insert(bi, created);
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use sofia_cfg::Cfg;
    use sofia_isa::asm;

    fn packed_with_trees(src: &str) -> (Packed, Trees) {
        let module = lower(&asm::parse(src).unwrap()).unwrap();
        let cfg = Cfg::build(&module).unwrap();
        let format = BlockFormat::default();
        let mut p = crate::pack::pack(&module, &cfg, &format);
        let trees = build_trees(&mut p, &format);
        (p, trees)
    }

    fn caller_program(k: usize) -> String {
        let mut src = String::from("main:\n");
        for _ in 0..k {
            src.push_str("    jal f\n");
        }
        src.push_str("    halt\nf:  ret\n");
        src
    }

    #[test]
    fn two_callers_need_no_tree() {
        let (_, trees) = packed_with_trees(&caller_program(2));
        assert_eq!(trees.count, 0);
    }

    #[test]
    fn k_callers_cost_k_minus_2_nodes() {
        // Fig. 9: 4 callers → 2 tree nodes (+ the target mux itself).
        for k in 3..=9 {
            let (_, trees) = packed_with_trees(&caller_program(k));
            assert_eq!(trees.count, k - 2, "k = {k}");
        }
    }

    #[test]
    fn tree_nodes_are_mux_blocks_ending_in_a_jump() {
        let (p, trees) = packed_with_trees(&caller_program(5));
        for nodes in trees.nodes_of.values() {
            for &n in nodes {
                let b = &p.blocks[n];
                assert_eq!(b.kind, BlockKind::Mux);
                assert_eq!(b.synth, Synth::TreeNode);
                assert_eq!(b.entries.len(), 2);
                assert!(matches!(
                    b.slots.last().unwrap().inst,
                    Instruction::J { .. }
                ));
            }
        }
    }

    #[test]
    fn every_block_ends_with_at_most_two_entries() {
        let (p, _) = packed_with_trees(&caller_program(8));
        for b in &p.blocks {
            assert!(b.entries.len() <= 2, "{b:?}");
        }
    }

    #[test]
    fn every_original_edge_survives_in_exactly_one_entry_list() {
        // 6 callers: 6 call edges must appear exactly once across the
        // target's entries and its tree nodes' entries.
        let (p, trees) = packed_with_trees(&caller_program(6));
        let (&target, nodes) = trees.nodes_of.iter().next().unwrap();
        let mut call_edges = 0;
        for e in &p.blocks[target].entries {
            if e.kind == EdgeKind::Call {
                call_edges += 1;
            }
        }
        for &n in nodes {
            for e in &p.blocks[n].entries {
                if e.kind == EdgeKind::Call {
                    call_edges += 1;
                }
            }
        }
        assert_eq!(call_edges, 6);
    }
}
