//! Shared machinery for the *state-chained* integrity backends (sponge
//! CFP and FIPAC): a keyed running state walked over the linear text,
//! plus per-edge **patch values** that reconcile the state across control
//! transfers.
//!
//! Both alternative backends replace SOFIA's per-edge seals with one
//! canonical chain: the state before word *i* is
//!
//! ```text
//! S₀    = P(init)
//! Sᵢ₊₁  = P(Sᵢ ⊕ wordᵢ)
//! ```
//!
//! where `P` is a keyed permutation (RECTANGLE under a device key) and
//! `wordᵢ` is the *plaintext* instruction word. Sequential execution
//! keeps the runtime state in sync for free; every non-fall-through CFG
//! edge `a → t` gets a public patch
//!
//! ```text
//! patch(a, t) = S(a)⁺ ⊕ S(t)
//! ```
//!
//! (`S(a)⁺` = state after absorbing the transferring word) that the fetch
//! unit XORs in when control actually takes the edge. A transfer along an
//! edge the installer never enumerated finds no patch, so the runtime
//! state diverges from the canonical chain — which is exactly the
//! detection mechanism of both schemes (garbage decryption for the
//! sponge, a failed signature check for FIPAC).
//!
//! Unlike SOFIA's sealer, no dispatch ladders or multiplexer trees are
//! needed: a block with many predecessors simply carries one patch per
//! incoming edge. The price is paid elsewhere — detection is no longer
//! immediate (see the backend docs).

use std::collections::BTreeMap;

use sofia_cfg::{Cfg, EdgeKind};
use sofia_isa::asm::{Assembly, LayoutOptions, Module};

use crate::error::TransformError;

/// The canonical chain of a laid-out module: the plain [`Assembly`], the
/// state *before* each text word, and the patch table over all
/// non-fall-through CFG edges (keyed by `(from_pc, to_pc)` and including
/// the reset edge `(RESET_PREV_PC, entry)`).
pub(crate) struct Chain {
    pub assembly: Assembly,
    /// `states[i]` is the canonical state before absorbing word `i`;
    /// `states[n]` is the state after the final word.
    pub states: Vec<u64>,
    pub patches: BTreeMap<(u32, u32), u64>,
}

/// Lays out `module` with the plain assembler rules and walks the keyed
/// chain over its text.
///
/// * `permute` — the keyed permutation `P`;
/// * `init` — the pre-permutation seed of the canonical chain;
/// * `reset_state` — the state the *fetch unit* boots with (it must be
///   derivable from public image fields alone); the reset edge's patch
///   moves it onto the canonical chain at the entry word.
pub(crate) fn build_chain(
    module: &Module,
    permute: &dyn Fn(u64) -> u64,
    init: u64,
    reset_state: u64,
) -> Result<Chain, TransformError> {
    if module.text.is_empty() {
        return Err(TransformError::EmptyProgram);
    }
    let cfg = Cfg::build(module)?;
    let assembly = module
        .layout(&LayoutOptions::default())
        .map_err(TransformError::Layout)?;

    let n = assembly.words.len();
    let mut states = Vec::with_capacity(n + 1);
    let mut s = permute(init);
    for &w in &assembly.words {
        states.push(s);
        s = permute(s ^ u64::from(w));
    }
    states.push(s);

    let addr = |i: usize| assembly.text_base + 4 * i as u32;
    let mut patches = BTreeMap::new();
    for i in 0..n {
        for e in cfg.succs(i) {
            if e.kind == EdgeKind::FallThrough {
                continue;
            }
            // State after the transferring word, onto the state before
            // the destination word.
            patches.insert(
                (addr(e.from), addr(e.to)),
                states[e.from + 1] ^ states[e.to],
            );
        }
    }
    // The reset edge: the fetch unit derives `reset_state` from public
    // header fields and patches onto the canonical entry state.
    let entry_index = (assembly.entry - assembly.text_base) / 4;
    patches.insert(
        (crate::RESET_PREV_PC, assembly.entry),
        reset_state ^ states[entry_index as usize],
    );

    Ok(Chain {
        assembly,
        states,
        patches,
    })
}
