//! Sponge-based control-flow protection installer (Werner et al.,
//! "Sponge-Based Control-Flow Protection for IoT Devices" — PAPERS.md).
//!
//! SCFP keeps the text section encrypted under a **sponge state** that
//! absorbs every decrypted instruction word: word *i* is decrypted with
//! the keystream of the canonical chain state `Sᵢ` (see
//! [`crate::chain`]), and the state then absorbs the plaintext. There is
//! **no MAC anywhere** — authenticity is implicit. Tamper with a word, or
//! arrive over an edge the installer never enumerated, and the runtime
//! state diverges from the canonical chain: every subsequent word
//! decrypts to keyed garbage, and the core traps on the first word that
//! fails to decode. Detection is therefore *probabilistic with a short
//! expected latency* (a few garbage instructions may execute first),
//! which is the central trade-off against SOFIA's immediate MAC check —
//! the comparison `BENCH_backends.json` quantifies.

use std::collections::BTreeMap;

use sofia_crypto::{CounterBlock, KeySet, Nonce};

use crate::chain::build_chain;
use crate::error::TransformError;
use crate::RESET_PREV_PC;
use sofia_isa::asm::Module;

/// A program sealed for the sponge-CFP fetch unit: encrypted text, the
/// public patch table, and the plaintext data section.
///
/// Like [`crate::SecureImage`] the image carries **no key material**; the
/// patch table is public (in hardware SCFP the patches sit in the
/// instruction stream at each branch site).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpongeImage {
    /// The per-program nonce diversifying the chain.
    pub nonce: Nonce,
    /// Base address of the encrypted text section.
    pub text_base: u32,
    /// Sponge-encrypted text, one word per instruction.
    pub ctext: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u32,
    /// Plaintext data section.
    pub data: Vec<u8>,
    /// The entry address out of reset.
    pub entry: u32,
    /// Per-edge state patches, keyed by `(from_pc, to_pc)`; includes the
    /// reset edge `(RESET_PREV_PC, entry)`.
    pub patches: BTreeMap<(u32, u32), u64>,
    /// Resolved label addresses, for the harnesses.
    pub symbols: BTreeMap<String, u32>,
}

impl SpongeImage {
    /// Size of the encrypted text in bytes. The sponge scheme adds *no*
    /// text expansion (contrast SOFIA's MAC words and mux blocks); its
    /// side table is the per-edge patch list.
    pub fn text_bytes(&self) -> usize {
        self.ctext.len() * 4
    }
}

/// The public seed of the canonical chain: a counter block over the
/// unreachable edge, so it collides with no real control-flow edge.
fn chain_seed(nonce: Nonce, text_base: u32) -> u64 {
    CounterBlock::from_edge(nonce, crate::UNREACHABLE_PREV_PC, text_base).as_u64()
}

/// The state a sponge fetch unit boots with, derived from public header
/// fields only (the reset-edge patch moves it onto the canonical chain).
pub fn reset_state(keys: &KeySet, nonce: Nonce, entry: u32) -> u64 {
    let cipher = keys.expand().ctr;
    cipher.encrypt_block(CounterBlock::from_edge(nonce, RESET_PREV_PC, entry).as_u64())
}

/// Seals `module` for the sponge-CFP backend.
///
/// # Errors
///
/// Rejects programs whose control flow cannot be enumerated (same
/// [`sofia_cfg`] contract as the SOFIA installer) and layout failures.
pub fn seal_sponge(
    module: &Module,
    keys: &KeySet,
    nonce: Nonce,
) -> Result<SpongeImage, TransformError> {
    let cipher = keys.expand().ctr;
    let permute = |x: u64| cipher.encrypt_block(x);

    // The reset state depends on the entry address, which the layout
    // determines — lay out once (cheap) to learn it, then build the
    // chain with the matching reset patch.
    let probe = module
        .layout(&sofia_isa::asm::LayoutOptions::default())
        .map_err(TransformError::Layout)?;
    let boot = permute(CounterBlock::from_edge(nonce, RESET_PREV_PC, probe.entry).as_u64());

    let chain = build_chain(module, &permute, chain_seed(nonce, probe.text_base), boot)?;
    let a = chain.assembly;

    let ctext = a
        .words
        .iter()
        .zip(&chain.states)
        .map(|(&w, &s)| w ^ (s as u32))
        .collect();

    Ok(SpongeImage {
        nonce,
        text_base: a.text_base,
        ctext,
        data_base: a.data_base,
        data: a.data,
        entry: a.entry,
        patches: chain.patches,
        symbols: a.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;

    fn keys() -> KeySet {
        KeySet::from_seed(0x5707)
    }

    #[test]
    fn text_is_unintelligible_but_patch_table_is_small() {
        let m = asm::parse("main: addi t0, zero, 1\nbeqz t0, end\nnop\nend: halt").unwrap();
        let plain = m.layout(&asm::LayoutOptions::default()).unwrap();
        let img = seal_sponge(&m, &keys(), Nonce::new(9)).unwrap();
        assert_eq!(img.ctext.len(), plain.words.len(), "no text expansion");
        assert_ne!(img.ctext, plain.words);
        // One patch per non-fall-through edge plus the reset edge.
        assert_eq!(img.patches.len(), 2);
        assert!(img.patches.contains_key(&(RESET_PREV_PC, img.entry)));
    }

    #[test]
    fn decrypting_along_the_chain_recovers_the_program() {
        let m = asm::parse("main: addi t0, zero, 7\nnop\nhalt").unwrap();
        let plain = m.layout(&asm::LayoutOptions::default()).unwrap();
        let img = seal_sponge(&m, &keys(), Nonce::new(3)).unwrap();
        let cipher = keys().expand().ctr;
        // Replay the fetch unit's walk: boot state + reset patch, then
        // decrypt-absorb word by word.
        let mut s =
            reset_state(&keys(), img.nonce, img.entry) ^ img.patches[&(RESET_PREV_PC, img.entry)];
        for (i, &c) in img.ctext.iter().enumerate() {
            let w = c ^ (s as u32);
            assert_eq!(w, plain.words[i], "word {i}");
            s = cipher.encrypt_block(s ^ u64::from(w));
        }
    }

    #[test]
    fn nonce_diversifies_ciphertext() {
        let m = asm::parse("main: nop\nhalt").unwrap();
        let a = seal_sponge(&m, &keys(), Nonce::new(1)).unwrap();
        let b = seal_sponge(&m, &keys(), Nonce::new(2)).unwrap();
        assert_ne!(a.ctext, b.ctext);
    }
}
