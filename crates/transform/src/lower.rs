//! Lowering passes that make control flow statically precise:
//!
//! 1. **Indirect-transfer lowering** — every `jalr` (and computed `jr`)
//!    with declared `.indirect` targets becomes a *direct-dispatch
//!    ladder*: compare the register against each declared target's address
//!    token, take the matching direct call/jump, and `halt` (a CFI trap)
//!    if nothing matches. After this pass, every control transfer in the
//!    program is direct or a plain `jr ra` return, so each call site is a
//!    distinct CFG edge — which is what lets return points be sealed with
//!    a single `prevPC` (the callee's one return instruction).
//! 2. **Single-exit normalisation** — functions with several `jr ra`
//!    instructions keep one epilogue; the others branch to it. Return
//!    points then have exactly one predecessor.
//!
//! The ladders use `k0` (`r26`) as scratch, which the transformer reserves
//! (programs must not keep live values there across indirect transfers —
//! the same contract MIPS kernels had for `k0`/`k1`).

use sofia_cfg::{is_return, Cfg};
use sofia_isa::asm::{Module, Reloc, TextItem};
use sofia_isa::{Instruction, Reg};

use crate::error::TransformError;

/// Runs both lowering passes, returning a module whose control flow is
/// fully direct (apart from `jr ra` returns).
pub fn lower(module: &Module) -> Result<Module, TransformError> {
    let lowered = lower_indirect(module)?;
    normalize_single_exit(lowered)
}

/// Pass 1: rewrite indirect transfers into direct-dispatch ladders.
fn lower_indirect(module: &Module) -> Result<Module, TransformError> {
    let mut out = Module {
        text: Vec::with_capacity(module.text.len()),
        data: module.data.clone(),
        entry: module.entry.clone(),
        constants: module.constants.clone(),
    };
    let mut fresh = 0usize;
    let mut pending_label: Option<String> = None;

    for item in &module.text {
        let mut item = item.clone();
        if let Some(l) = pending_label.take() {
            item.labels.push(l);
        }
        let is_indirect = item.inst.is_indirect_jump() && !item.indirect_targets.is_empty();
        if !is_indirect {
            if item.inst.is_indirect_jump() && !is_return(&item.inst) {
                // A computed transfer without declared targets: the CFG
                // build would reject it anyway; let that error surface
                // with its proper context.
            }
            out.text.push(item);
            continue;
        }

        let (rs, link) = match item.inst {
            Instruction::Jalr { rd, rs } => {
                if rd != Reg::RA {
                    return Err(TransformError::IndirectLinksNonRa { line: item.line });
                }
                (rs, true)
            }
            Instruction::Jr { rs } => (rs, false),
            _ => unreachable!("indirect jump is jr or jalr"),
        };
        if rs == Reg::K0 {
            return Err(TransformError::ScratchRegisterClash { line: item.line });
        }

        let id = fresh;
        fresh += 1;
        let targets = item.indirect_targets.clone();
        let line = item.line;
        let mut labels = std::mem::take(&mut item.labels);

        let mut emit = |inst: Instruction, reloc: Option<Reloc>, labels: Vec<String>| {
            out.text.push(TextItem {
                labels,
                inst,
                reloc,
                indirect_targets: Vec::new(),
                line,
            });
        };

        // Comparison ladder.
        for (t_idx, target) in targets.iter().enumerate() {
            let case_label = if link {
                format!("__sofia_icall_{id}_{t_idx}")
            } else {
                target.clone()
            };
            emit(
                Instruction::Lui {
                    rt: Reg::K0,
                    imm: 0,
                },
                Some(Reloc::Hi(target.clone())),
                std::mem::take(&mut labels),
            );
            emit(
                Instruction::Ori {
                    rt: Reg::K0,
                    rs: Reg::K0,
                    imm: 0,
                },
                Some(Reloc::Lo(target.clone())),
                Vec::new(),
            );
            emit(
                Instruction::Beq {
                    rs,
                    rt: Reg::K0,
                    offset: 0,
                },
                Some(Reloc::Branch(case_label)),
                Vec::new(),
            );
        }
        // No declared target matched: a run-time CFI violation.
        emit(Instruction::Halt, None, Vec::new());

        if link {
            // Per-target call stubs with a common continuation.
            let cont = format!("__sofia_cont_{id}");
            for (t_idx, target) in targets.iter().enumerate() {
                emit(
                    Instruction::Jal { index: 0 },
                    Some(Reloc::Jump(target.clone())),
                    vec![format!("__sofia_icall_{id}_{t_idx}")],
                );
                emit(
                    Instruction::J { index: 0 },
                    Some(Reloc::Jump(cont.clone())),
                    Vec::new(),
                );
            }
            // The continuation label lands on the next original item.
            pending_label = Some(cont);
        }
    }

    if let Some(label) = pending_label {
        // The indirect call was the last instruction; give the
        // continuation somewhere to land (the CFG pass will then reject
        // the fall-off-end if nothing follows, as it should).
        out.text.push(TextItem {
            labels: vec![label],
            inst: Instruction::Halt,
            reloc: None,
            indirect_targets: Vec::new(),
            line: 0,
        });
    }
    Ok(out)
}

/// Pass 2: one `jr ra` per function; the rest branch to it.
fn normalize_single_exit(mut module: Module) -> Result<Module, TransformError> {
    let cfg = Cfg::build(&module)?;
    // Collect returns per function extent.
    let mut by_fn: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, item) in module.text.iter().enumerate() {
        if is_return(&item.inst) && item.indirect_targets.is_empty() {
            by_fn.entry(cfg.function_of(i)).or_default().push(i);
        }
    }
    for (f, rets) in by_fn {
        if rets.len() < 2 {
            continue;
        }
        let epilogue = *rets.last().expect("non-empty");
        let label = format!("__sofia_epilogue_{f}");
        module.text[epilogue].labels.push(label.clone());
        for &r in &rets[..rets.len() - 1] {
            module.text[r].inst = Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: 0,
            };
            module.text[r].reloc = Some(Reloc::Branch(label.clone()));
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_cfg::EdgeKind;
    use sofia_isa::asm;

    #[test]
    fn jalr_becomes_dispatch_ladder() {
        let m = asm::parse(
            "main: la t0, f
                   .indirect f, g
                   jalr t0
                   halt
             f:    ret
             g:    ret",
        )
        .unwrap();
        let l = lower(&m).unwrap();
        // No indirect jumps with targets remain.
        assert!(!l
            .text
            .iter()
            .any(|t| t.inst.is_indirect_jump() && !t.indirect_targets.is_empty()));
        // Two jal call sites appeared.
        let jals = l
            .text
            .iter()
            .filter(|t| matches!(t.inst, Instruction::Jal { .. }))
            .count();
        assert_eq!(jals, 2);
        // The lowered module has a precise CFG.
        let cfg = Cfg::build(&l).unwrap();
        assert!(cfg.len() > m.text.len());
    }

    #[test]
    fn ladder_preserves_semantics_structure() {
        let m = asm::parse(
            "main: la t0, f
                   .indirect f
                   jalr t0
                   halt
             f:    ret",
        )
        .unwrap();
        let l = lower(&m).unwrap();
        // la(2) + [lui,ori,beq](3) + halt + [jal,j](2) + halt + f:ret
        let insts: Vec<_> = l.text.iter().map(|t| t.inst.mnemonic()).collect();
        assert_eq!(
            insts,
            vec!["lui", "ori", "lui", "ori", "beq", "halt", "jal", "j", "halt", "jr"]
        );
        // The continuation label is attached to the original `halt`.
        assert!(l.text[8]
            .labels
            .iter()
            .any(|s| s.starts_with("__sofia_cont")));
    }

    #[test]
    fn computed_jr_dispatches_directly() {
        let m = asm::parse(
            "main: la t0, a
                   .indirect a, b
                   jr t0
             a:    halt
             b:    halt",
        )
        .unwrap();
        let l = lower(&m).unwrap();
        // jr ladders do not link: no jal present.
        assert!(!l.text.iter().any(|t| t.inst.is_call()));
        let cfg = Cfg::build(&l).unwrap();
        // The beq edges reach both cases.
        let a = cfg.label("a").unwrap();
        let b = cfg.label("b").unwrap();
        assert!(cfg.preds(a).iter().any(|e| e.kind == EdgeKind::Branch));
        assert!(cfg.preds(b).iter().any(|e| e.kind == EdgeKind::Branch));
    }

    #[test]
    fn multi_exit_function_normalised() {
        let m = asm::parse(
            "main: jal f
                   halt
             f:    beqz a0, early
                   addi v0, zero, 1
                   ret
             early: addi v0, zero, 2
                   ret",
        )
        .unwrap();
        let l = lower(&m).unwrap();
        let rets = l.text.iter().filter(|t| is_return(&t.inst)).count();
        assert_eq!(rets, 1, "exactly one return after normalisation");
        // Return points now have a single Return predecessor.
        let cfg = Cfg::build(&l).unwrap();
        let ret_preds = cfg
            .preds(1)
            .iter()
            .filter(|e| e.kind == EdgeKind::Return)
            .count();
        assert_eq!(ret_preds, 1);
    }

    #[test]
    fn jalr_with_wrong_link_register_rejected() {
        let m = asm::parse(
            "main: la t0, f
                   .indirect f
                   jalr s0, t0
                   halt
             f:    ret",
        )
        .unwrap();
        assert!(matches!(
            lower(&m),
            Err(TransformError::IndirectLinksNonRa { .. })
        ));
    }

    #[test]
    fn scratch_clash_rejected() {
        let m = asm::parse(
            "main: la k0, f
                   .indirect f
                   jalr k0
                   halt
             f:    ret",
        )
        .unwrap();
        assert!(matches!(
            lower(&m),
            Err(TransformError::ScratchRegisterClash { .. })
        ));
    }

    #[test]
    fn plain_programs_pass_through() {
        let m = asm::parse("main: addi t0, zero, 1\n halt").unwrap();
        let l = lower(&m).unwrap();
        assert_eq!(l.text.len(), m.text.len());
    }
}
