//! The shared binary-container toolkit: typed decode errors plus the
//! length-checked little-endian reader/writer every serialised artefact
//! in the workspace uses ([`crate::SecureImage`], `sofia_core`'s machine
//! snapshots, `sofia_fleet`'s job checkpoints).
//!
//! Two invariants every decoder built on [`Reader`] gets for free:
//!
//! * **no panic on any input** — every read is bounds-checked and every
//!   error is a typed [`DecodeError`], so corrupt or adversarial byte
//!   streams are rejected, never unwrapped into a panic;
//! * **no unbounded allocation** — element counts are checked against
//!   the bytes actually remaining *before* any buffer is sized, so a
//!   corrupted length field cannot request gigabytes.

use std::error::Error;
use std::fmt;

/// Why a serialised artefact could not be decoded.
///
/// Shared by every binary container in the workspace (secure images,
/// machine snapshots, job checkpoints), so callers match on one error
/// type regardless of which artefact they are loading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with the artefact's magic bytes.
    BadMagic {
        /// The magic the decoder expected (ASCII).
        expected: &'static str,
    },
    /// The stream ended before a field could be read in full.
    Truncated {
        /// Byte offset at which the read started.
        at: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Bytes were left over after the artefact was fully parsed.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// An enum/bool tag held a value outside its domain.
    BadTag {
        /// The field being decoded.
        field: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A length or count field contradicts the rest of the stream (or
    /// the configuration encoded alongside it).
    BadLength {
        /// The field being decoded.
        field: &'static str,
        /// The length the containing structure requires.
        expected: u64,
        /// The length the stream claimed.
        found: u64,
    },
    /// A field's value is structurally invalid (bad geometry, bad
    /// ordering, out-of-range index, …).
    BadField {
        /// The field being decoded.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// The integrity checksum over the payload did not match — the
    /// stream was corrupted somewhere between encode and decode.
    ChecksumMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic { expected } => {
                write!(f, "bad magic (expected {expected:?})")
            }
            DecodeError::Truncated {
                at,
                needed,
                remaining,
            } => write!(
                f,
                "truncated stream: {needed} bytes needed at offset {at}, {remaining} remaining"
            ),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the artefact")
            }
            DecodeError::BadTag { field, tag } => {
                write!(f, "field {field}: invalid tag {tag}")
            }
            DecodeError::BadLength {
                field,
                expected,
                found,
            } => write!(f, "field {field}: length {found} (expected {expected})"),
            DecodeError::BadField { field, reason } => {
                write!(f, "field {field}: {reason}")
            }
            DecodeError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
        }
    }
}

impl Error for DecodeError {}

/// FNV-1a over `bytes` — the integrity checksum appended to checksummed
/// containers. Any single-byte substitution changes the digest (each
/// step is an invertible map of the running state), which is what makes
/// the snapshot corruption property testable exhaustively. It is a
/// *corruption* check, not a MAC: an adversary can recompute it, and the
/// artefacts that need tamper evidence get it from the sealed image's
/// MACs instead (see the snapshot security notes in `sofia_core`).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A little-endian byte-stream writer (the encode half of [`Reader`]).
#[derive(Debug, Default)]
pub struct Writer {
    out: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Starts an artefact with its magic bytes.
    pub fn magic(&mut self, magic: &[u8]) {
        self.out.extend_from_slice(magic);
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Appends a bool as `0`/`1`.
    pub fn bool(&mut self, v: bool) {
        self.out.push(v as u8);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Finishes an unchecksummed artefact.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Appends the FNV-1a digest of everything written so far and
    /// finishes the artefact. Decoders built with
    /// [`Reader::new_checksummed`] verify it before parsing a byte.
    pub fn finish_checksummed(mut self) -> Vec<u8> {
        let digest = fnv64(&self.out);
        self.out.extend_from_slice(&digest.to_le_bytes());
        self.out
    }
}

/// A bounds-checked little-endian byte-stream reader.
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader over an unchecksummed stream.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    /// A reader over a stream written by [`Writer::finish_checksummed`]:
    /// verifies the trailing digest over the payload *first*, so the
    /// parser proper only ever sees bytes that survived transit intact.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the stream cannot even hold the
    /// digest, [`DecodeError::ChecksumMismatch`] if it does not match.
    pub fn new_checksummed(bytes: &'a [u8]) -> Result<Reader<'a>, DecodeError> {
        let Some(payload_len) = bytes.len().checked_sub(8) else {
            return Err(DecodeError::Truncated {
                at: 0,
                needed: 8,
                remaining: bytes.len(),
            });
        };
        let (payload, digest) = bytes.split_at(payload_len);
        let found = u64::from_le_bytes(digest.try_into().expect("8-byte split"));
        if fnv64(payload) != found {
            return Err(DecodeError::ChecksumMismatch);
        }
        Ok(Reader {
            bytes: payload,
            at: 0,
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::Truncated {
                at: self.at,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Checks and consumes an artefact's magic bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`] (also covering a too-short stream).
    pub fn magic(&mut self, magic: &[u8], expected: &'static str) -> Result<(), DecodeError> {
        match self.take(magic.len()) {
            Ok(m) if m == magic => Ok(()),
            _ => Err(DecodeError::BadMagic { expected }),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a strict bool (`0`/`1` only — anything else is corruption).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] or [`DecodeError::BadTag`].
    pub fn bool(&mut self, field: &'static str) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                field,
                tag: tag as u64,
            }),
        }
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte take")))
    }

    /// Reads an element count and pre-checks it against the bytes still
    /// available (`min_elem_bytes` per element), so a corrupted count
    /// can neither over-allocate nor defer truncation deep into a parse
    /// loop.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] or [`DecodeError::BadLength`].
    pub fn count(
        &mut self,
        field: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(DecodeError::BadLength {
                field,
                expected: (self.remaining() / min_elem_bytes.max(1)) as u64,
                found: n as u64,
            });
        }
        Ok(n)
    }

    /// Asserts the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`].
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.magic(b"TST1\0");
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.magic(b"TST1\0", "TST1").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn checksummed_stream_rejects_any_flip() {
        let mut w = Writer::new();
        w.magic(b"TST1\0");
        w.u64(42);
        let bytes = w.finish_checksummed();
        assert!(Reader::new_checksummed(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert_eq!(
                Reader::new_checksummed(&bad).err(),
                Some(DecodeError::ChecksumMismatch),
                "flip at byte {i} undetected"
            );
        }
        assert!(matches!(
            Reader::new_checksummed(&bytes[..4]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn counts_are_checked_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 billion elements…
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        // …but zero bytes follow, so the count is rejected up front.
        assert!(matches!(
            r.count("elems", 4),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(DecodeError::Truncated { .. })));
        let r = Reader::new(&[1, 2]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { extra: 2 }));
    }
}
