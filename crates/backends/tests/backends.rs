//! Behaviour contract of the alternative backends: clean runs are
//! architecturally identical to the vanilla baseline; tampering and
//! hijacks are detected through each scheme's own mechanism.

use sofia_backends::{
    BackendConfig, BackendOutcome, FipacMachine, FipacViolation, SpongeMachine, SpongeViolation,
};
use sofia_core::machine::ResetPolicy;
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::{KeySet, Nonce};
use sofia_isa::asm;
use sofia_transform::{install_fipac, seal_sponge};

const FUEL: u64 = 1_000_000;

const SUM_LOOP: &str = "
main: li t0, 5
      li t1, 0
loop: add t1, t1, t0
      subi t0, t0, 1
      bnez t0, loop
      li a0, 0xFFFF0000
      sw t1, 0(a0)
      jal f
      halt
f:    addi t1, t1, 1
      ret
";

fn keys() -> KeySet {
    KeySet::from_seed(0xBACE)
}

fn vanilla_out(src: &str) -> (Vec<u32>, u64) {
    let program = asm::assemble(src).unwrap();
    let mut m = VanillaMachine::new(&program);
    assert!(m.run(FUEL).unwrap().is_halted());
    (m.mem().mmio.out_words.clone(), m.stats().cycles)
}

fn sponge(src: &str) -> SpongeMachine {
    let module = asm::parse(src).unwrap();
    let image = seal_sponge(&module, &keys(), Nonce::new(7)).unwrap();
    SpongeMachine::new(&image, &keys())
}

fn fipac(src: &str) -> FipacMachine {
    let module = asm::parse(src).unwrap();
    let image = install_fipac(&module, &keys(), Nonce::new(7)).unwrap();
    FipacMachine::new(&image, &keys())
}

#[test]
fn sponge_clean_run_matches_vanilla_architecturally() {
    let (out, vanilla_cycles) = vanilla_out(SUM_LOOP);
    let mut m = sponge(SUM_LOOP);
    assert!(m.run(FUEL).unwrap().is_halted());
    assert_eq!(m.mem().mmio.out_words, out);
    assert!(m.violations().is_empty());
    // The serial permute makes the sponge strictly slower than baseline.
    assert!(m.stats().cycles > vanilla_cycles);
}

#[test]
fn fipac_clean_run_matches_vanilla_and_is_cheaper_than_sponge() {
    let (out, vanilla_cycles) = vanilla_out(SUM_LOOP);
    let mut f = fipac(SUM_LOOP);
    assert!(f.run(FUEL).unwrap().is_halted());
    assert_eq!(f.mem().mmio.out_words, out);
    assert!(f.fetch().stats().checks_passed >= 2); // ret + halt
    let mut s = sponge(SUM_LOOP);
    assert!(s.run(FUEL).unwrap().is_halted());
    // Overhead ordering: vanilla <= fipac < sponge on the same workload.
    assert!(f.stats().cycles >= vanilla_cycles);
    assert!(f.stats().cycles < s.stats().cycles);
}

#[test]
fn sponge_tampered_word_is_detected() {
    let mut m = sponge(SUM_LOOP);
    m.mem_mut().rom_mut()[2] ^= 0xFFFF_FFFF;
    match m.run(FUEL) {
        Ok(BackendOutcome::ViolationStop(_)) | Err(_) => {}
        other => panic!("tamper survived: {other:?}"),
    }
}

#[test]
fn sponge_detection_is_sticky_across_refetch() {
    // The garbage word is not absorbed, so the violation reproduces
    // identically on every reboot: the reboot policy must give up.
    let module = asm::parse(SUM_LOOP).unwrap();
    let image = seal_sponge(&module, &keys(), Nonce::new(7)).unwrap();
    let config = BackendConfig {
        reset_policy: ResetPolicy::Reboot { max_resets: 3 },
        ..BackendConfig::default()
    };
    let mut m = SpongeMachine::sponge_with_config(&image, &keys(), &config);
    m.mem_mut().rom_mut()[0] ^= 0xFFFF_FFFF;
    assert_eq!(
        m.run(FUEL).unwrap(),
        BackendOutcome::ResetLoop { resets: 3 }
    );
    assert_eq!(m.violations().len(), 4); // initial + one per reset
}

#[test]
fn sponge_hijack_desynchronises_the_state() {
    let mut m = sponge(SUM_LOOP);
    let target = m.fetch().next_target() + 8; // skip into the program
    m.fetch_mut().hijack(target);
    match m.run(FUEL) {
        Ok(BackendOutcome::ViolationStop(_)) | Err(_) => {}
        other => panic!("hijack survived: {other:?}"),
    }
    assert!(m.fetch().stats().patched_edges <= 1);
}

#[test]
fn fipac_tampered_word_is_caught_at_the_next_check() {
    let mut m = fipac("main: addi t0, zero, 1\nnop\nnop\nhalt");
    // Flip an immediate bit: still decodes, still executes — FIPAC only
    // notices when the running state meets the halt signature.
    m.mem_mut().rom_mut()[0] ^= 0x2;
    let outcome = m.run(FUEL).unwrap();
    assert!(
        matches!(
            outcome,
            BackendOutcome::ViolationStop(FipacViolation::StateMismatch { .. })
        ),
        "{outcome:?}"
    );
    // Deferred detection: the tampered instruction (and the nops) retired
    // before the signature point fired.
    assert!(m.stats().instret >= 3, "{}", m.stats().instret);
}

#[test]
fn fipac_hijack_is_caught_at_the_next_check() {
    let mut m = fipac("main: addi t0, zero, 1\nnop\nnop\nhalt");
    let target = m.fetch().next_target() + 8;
    m.fetch_mut().hijack(target);
    let outcome = m.run(FUEL).unwrap();
    assert!(
        matches!(
            outcome,
            BackendOutcome::ViolationStop(FipacViolation::StateMismatch { .. })
        ),
        "{outcome:?}"
    );
}

#[test]
fn fipac_conjured_halt_is_an_unjustified_exit() {
    let mut m = fipac("main: addi t0, zero, 1\nnop\nnop\nhalt");
    let halt_word = asm::assemble("main: halt").unwrap().words[0];
    m.mem_mut().rom_mut()[1] = halt_word;
    let outcome = m.run(FUEL).unwrap();
    assert!(
        matches!(
            outcome,
            BackendOutcome::ViolationStop(FipacViolation::UnjustifiedExit { .. })
        ),
        "{outcome:?}"
    );
}

#[test]
fn fipac_elided_checks_let_tampering_through_silently() {
    // The discriminating fault: skip the comparison and FIPAC's deferred
    // detection has nothing left — the run completes as if honest.
    let mut m = fipac("main: addi t0, zero, 1\nnop\nnop\nhalt");
    m.mem_mut().rom_mut()[0] ^= 0x2;
    m.fetch_mut().elide_checks();
    assert!(m.run(FUEL).unwrap().is_halted());
    assert!(m.violations().is_empty());
    assert_eq!(m.regs().get(sofia_isa::Reg::T0), 3); // tampered imm took effect
}

#[test]
fn out_of_image_fetch_is_refused_by_both() {
    let mut s = sponge(SUM_LOOP);
    s.fetch_mut().hijack(0x10);
    assert!(matches!(
        s.run(FUEL).unwrap(),
        BackendOutcome::ViolationStop(SpongeViolation::FetchOutOfImage { addr: 0x10 })
    ));
    let mut f = fipac(SUM_LOOP);
    f.fetch_mut().hijack(0x10);
    assert!(matches!(
        f.run(FUEL).unwrap(),
        BackendOutcome::ViolationStop(FipacViolation::FetchOutOfImage { addr: 0x10 })
    ));
}
