//! The FIPAC-style fetch unit: plaintext fetch with a keyed running CFI
//! state, checked at justifying signature points (Nasahl et al.,
//! PAPERS.md; installer in [`sofia_transform::fipac`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use sofia_cpu::fetch::{Batch, FetchCtx, FetchUnit, Slot, SlotOutcome};
use sofia_cpu::Trap;
use sofia_crypto::{KeySet, Rectangle};
use sofia_isa::Instruction;
use sofia_transform::{FipacImage, RESET_PREV_PC};

/// What the FIPAC unit detects. All of it is *deferred*: the running
/// state diverges silently and only a signature point surfaces the
/// mismatch — the scheme's defining trade against SOFIA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FipacViolation {
    /// The running CFI state did not match the installed signature at a
    /// justifying check point.
    StateMismatch {
        /// Address of the checked word.
        pc: u32,
    },
    /// A `halt` was fetched at an address the installer never marked as
    /// an exit — tampered code trying to truncate the run silently.
    UnjustifiedExit {
        /// Address of the rogue halt.
        pc: u32,
    },
    /// The fetch cursor left the installed text image.
    FetchOutOfImage {
        /// The offending address.
        addr: u32,
    },
}

impl fmt::Display for FipacViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FipacViolation::StateMismatch { pc } => {
                write!(f, "CFI state mismatch at signature point {pc:#010x}")
            }
            FipacViolation::UnjustifiedExit { pc } => {
                write!(f, "unjustified exit (unchecked halt) at {pc:#010x}")
            }
            FipacViolation::FetchOutOfImage { addr } => {
                write!(f, "fetch outside installed image at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for FipacViolation {}

/// Cycle model of the FIPAC fetch path. The state update runs *off* the
/// fetch critical path (it only has to settle before the next signature
/// point), so steady-state fetch costs one issue cycle per word like the
/// baseline; only checks and redirects stall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FipacTiming {
    /// Stall cycles to compare state against a signature.
    pub check_latency: u32,
    /// Stall cycles to look up and apply an edge patch on redirect.
    pub redirect_setup: u32,
    /// Cycles a hardware reset costs.
    pub reboot_cycles: u64,
}

impl Default for FipacTiming {
    fn default() -> Self {
        FipacTiming {
            check_latency: 1,
            redirect_setup: 1,
            reboot_cycles: 200,
        }
    }
}

/// Fetch-path counters of the FIPAC unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FipacStats {
    /// Words fetched.
    pub words_fetched: u64,
    /// Keyed state updates performed.
    pub updates: u64,
    /// Signature checks that passed.
    pub checks_passed: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Control transfers that consulted the patch table.
    pub patched_edges: u64,
    /// Transfers along unenumerated edges.
    pub unpatched_edges: u64,
}

const MAX_BATCH: usize = 8;

/// A [`FetchUnit`] that fetches plaintext words, folds each into a keyed
/// CBC-MAC-style running state, and compares the state against installed
/// signatures at every justifying check point.
#[derive(Clone, Debug)]
pub struct FipacFetch {
    cipher: Rectangle,
    patches: Arc<BTreeMap<(u32, u32), u64>>,
    checks: Arc<BTreeMap<u32, u64>>,
    text_base: u32,
    text_words: u32,
    entry: u32,
    boot_state: u64,
    state: u64,
    next_target: u32,
    prev_pc: u32,
    redirected: bool,
    enforce_checks: bool,
    timing: FipacTiming,
    stats: FipacStats,
}

impl FipacFetch {
    /// Builds the unit for an installed image under the device keys.
    pub fn new(image: &FipacImage, keys: &KeySet, timing: FipacTiming) -> FipacFetch {
        let cipher = keys.expand().mac_exec;
        let boot_state = sofia_transform::fipac::reset_state(keys, image.nonce, image.entry);
        let mut unit = FipacFetch {
            cipher,
            patches: Arc::new(image.patches.clone()),
            checks: Arc::new(image.checks.clone()),
            text_base: image.text_base,
            text_words: image.words.len() as u32,
            entry: image.entry,
            boot_state,
            state: 0,
            next_target: image.entry,
            prev_pc: RESET_PREV_PC,
            redirected: true,
            enforce_checks: true,
            timing,
            stats: FipacStats::default(),
        };
        unit.boot();
        unit
    }

    fn boot(&mut self) {
        self.state = self.boot_state ^ self.patch(RESET_PREV_PC, self.entry);
        self.next_target = self.entry;
        self.prev_pc = RESET_PREV_PC;
        self.redirected = true;
    }

    fn patch(&mut self, from: u32, to: u32) -> u64 {
        match self.patches.get(&(from, to)) {
            Some(&p) => {
                self.stats.patched_edges += 1;
                p
            }
            None => {
                self.stats.unpatched_edges += 1;
                0
            }
        }
    }

    /// The timing model in force.
    pub fn timing(&self) -> FipacTiming {
        self.timing
    }

    /// Fetch-path counters.
    pub fn stats(&self) -> FipacStats {
        self.stats
    }

    /// The address the next batch will be fetched from.
    pub fn next_target(&self) -> u32 {
        self.next_target
    }

    /// Redirects the next fetch — the attack harness's hijack channel.
    pub fn hijack(&mut self, target: u32) {
        self.next_target = target;
        self.redirected = true;
    }

    /// Disables the signature *comparison* — the harness's model of a
    /// fault that skips the check unit's compare (the `check-elision`
    /// attack row). The running state keeps updating and signature
    /// points still justify exits; nothing ever compares the state.
    pub fn elide_checks(&mut self) {
        self.enforce_checks = false;
    }
}

impl FetchUnit for FipacFetch {
    type Violation = FipacViolation;

    const ISSUE_CHARGED_IN_FETCH: bool = true;

    fn fetch_batch(
        &mut self,
        ctx: &mut FetchCtx<'_>,
        out: &mut Batch,
    ) -> Result<Option<FipacViolation>, Trap> {
        let mut pc = self.next_target;
        if self.redirected {
            ctx.stats.cycles += self.timing.redirect_setup as u64;
        }
        for _ in 0..MAX_BATCH {
            if pc % 4 != 0 || pc < self.text_base || (pc - self.text_base) / 4 >= self.text_words {
                if out.is_empty() {
                    return Ok(Some(FipacViolation::FetchOutOfImage { addr: pc }));
                }
                break;
            }
            let stall = ctx.icache.access_cycles(pc) as u64;
            ctx.stats.icache_stall_cycles += stall;
            ctx.stats.cycles += stall;
            let word = ctx.mem.fetch(pc)?;
            // Signature points gate *before* the word issues.
            if let Some(&expected) = self.checks.get(&pc) {
                ctx.stats.cycles += self.timing.check_latency as u64;
                if self.enforce_checks && self.state != expected {
                    if out.is_empty() {
                        return Ok(Some(FipacViolation::StateMismatch { pc }));
                    }
                    break;
                }
                self.stats.checks_passed += 1;
            }
            let inst = Instruction::decode(word)
                .map_err(|e| Trap::IllegalInstruction { word: e.word(), pc })?;
            if matches!(inst, Instruction::Halt) && !self.checks.contains_key(&pc) {
                if out.is_empty() {
                    return Ok(Some(FipacViolation::UnjustifiedExit { pc }));
                }
                break;
            }
            // One issue cycle per word; the keyed update pipelines off
            // the critical path.
            ctx.stats.cycles += 1;
            self.state = self.cipher.encrypt_block(self.state ^ u64::from(word));
            self.stats.words_fetched += 1;
            self.stats.updates += 1;
            out.push(Slot { pc, inst });
            if inst.is_control_transfer() || !inst.falls_through() {
                break;
            }
            pc = pc.wrapping_add(4);
        }
        self.stats.batches += 1;
        self.redirected = false;
        Ok(None)
    }

    fn retire(
        &mut self,
        pc: u32,
        slot: usize,
        batch_len: usize,
        outcome: SlotOutcome,
    ) -> Result<(), FipacViolation> {
        debug_assert!(slot < batch_len);
        match outcome {
            SlotOutcome::Sequential => {
                if slot + 1 == batch_len {
                    self.next_target = pc.wrapping_add(4);
                    self.prev_pc = pc;
                }
            }
            SlotOutcome::Transfer { target } => {
                let p = self.patch(pc, target);
                self.state ^= p;
                self.next_target = target;
                self.prev_pc = pc;
                self.redirected = true;
            }
        }
        Ok(())
    }

    fn on_reset(&mut self) -> u64 {
        self.boot();
        self.stats = FipacStats::default();
        self.timing.reboot_cycles
    }
}
