//! # sofia-backends — alternative integrity backends
//!
//! Two complete code-integrity schemes from the literature, implemented
//! behind the same [`FetchUnit`] seam (and sharing the same
//! [`Pipeline`] engine) as SOFIA itself, so the three can be compared
//! attack-for-attack and cycle-for-cycle on identical workloads:
//!
//! * [`SpongeFetch`] / [`SpongeMachine`] — **sponge-based control-flow
//!   protection** (Werner et al., SCFP). The text is encrypted against a
//!   running sponge state that absorbs every fetched word; control-flow
//!   edges carry public patch values that re-align the state across
//!   joins. There is no MAC: a tampered word or an out-of-CFG fetch
//!   desynchronises the state, and everything after it decrypts to
//!   garbage that fails instruction decode — *implicit* integrity with a
//!   short probabilistic detection latency, paid for with a serial
//!   permutation on the fetch critical path.
//!
//! * [`FipacFetch`] / [`FipacMachine`] — **FIPAC-style keyed CFI state**
//!   (Nasahl et al.). The text stays in plaintext; a CBC-MAC-style keyed
//!   state over executed words (patched across edges the same way) is
//!   compared against installed signatures at justifying check points
//!   (returns and exits). Near-zero fetch overhead — the state update
//!   pipelines off the critical path — but detection is deferred to the
//!   next check, so tampered instructions *execute* before being caught.
//!
//! Both installers live in `sofia_transform` ([`seal_sponge`],
//! [`install_fipac`]) and share one chain/patch pass; neither needs
//! SOFIA's block packing or mux trees, which is the structural contrast
//! the comparison harness (`tests/`, `BENCH_backends.json`) quantifies.
//!
//! # Examples
//!
//! ```
//! use sofia_backends::SpongeMachine;
//! use sofia_crypto::{KeySet, Nonce};
//! use sofia_isa::asm;
//! use sofia_transform::seal_sponge;
//!
//! let keys = KeySet::from_seed(3);
//! let module = asm::parse(
//!     "main: li t0, 5
//!            li a0, 0xFFFF0000
//!            sw t0, 0(a0)
//!            halt",
//! )?;
//! let image = seal_sponge(&module, &keys, Nonce::new(1))?;
//! let mut m = SpongeMachine::new(&image, &keys);
//! assert!(m.run(10_000)?.is_halted());
//! assert_eq!(m.mem().mmio.out_words, vec![5]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`FetchUnit`]: sofia_cpu::FetchUnit
//! [`Pipeline`]: sofia_cpu::engine::Pipeline
//! [`seal_sponge`]: sofia_transform::seal_sponge
//! [`install_fipac`]: sofia_transform::install_fipac

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Same wall as `sofia-fleet`: a backend is a comparison *subject*, and a
// stray `unwrap` in one scheme's fetch path would abort the whole
// cross-backend harness instead of producing that scheme's typed
// `BackendOutcome`. Non-test code routes every fallible step through the
// typed error surface.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fipac;
pub mod machine;
pub mod sponge;

pub use fipac::{FipacFetch, FipacStats, FipacTiming, FipacViolation};
pub use machine::{BackendConfig, BackendMachine, BackendOutcome, FipacMachine, SpongeMachine};
pub use sponge::{SpongeFetch, SpongeStats, SpongeTiming, SpongeViolation};
