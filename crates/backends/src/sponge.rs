//! The sponge-CFP fetch unit: decrypt-absorb fetch with implicit
//! authenticity (Werner et al., PAPERS.md; installer in
//! [`sofia_transform::sponge`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use sofia_cpu::fetch::{Batch, FetchCtx, FetchUnit, Slot, SlotOutcome};
use sofia_cpu::Trap;
use sofia_crypto::{KeySet, Rectangle};
use sofia_isa::Instruction;
use sofia_transform::{SpongeImage, RESET_PREV_PC};

/// What the sponge unit can detect *directly*. Garbage decodes are the
/// scheme's only data-integrity signal — there is no MAC — so most
/// attacks surface as [`SpongeViolation::GarbageDecode`] a few
/// instructions after the fault, never as an immediate mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpongeViolation {
    /// A fetched word decrypted to a bit pattern that is not an SL32
    /// instruction — the downstream evidence of a tampered word or an
    /// unenumerated control-flow edge.
    GarbageDecode {
        /// Address of the undecodable word.
        pc: u32,
        /// The garbage plaintext.
        word: u32,
    },
    /// The fetch cursor left the sealed text image.
    FetchOutOfImage {
        /// The offending address.
        addr: u32,
    },
}

impl fmt::Display for SpongeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpongeViolation::GarbageDecode { pc, word } => {
                write!(
                    f,
                    "sponge state diverged: garbage decode {word:#010x} at {pc:#010x}"
                )
            }
            SpongeViolation::FetchOutOfImage { addr } => {
                write!(f, "fetch outside sealed image at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for SpongeViolation {}

/// Cycle model of the sponge fetch path. The defining cost: the state
/// chain is *serial* — word `i+1` cannot decrypt before word `i` has
/// been absorbed and permuted — so every fetched word pays the full
/// permutation latency, where SOFIA's CTR keystream runs words in
/// parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpongeTiming {
    /// Cycles per keyed permutation (absorb + squeeze of one word).
    pub permute_latency: u32,
    /// Pipeline-fill cycles after a redirect (patch lookup + state swap).
    pub redirect_setup: u32,
    /// Cycles a hardware reset costs.
    pub reboot_cycles: u64,
}

impl Default for SpongeTiming {
    fn default() -> Self {
        SpongeTiming {
            permute_latency: 2,
            redirect_setup: 1,
            reboot_cycles: 200,
        }
    }
}

/// Fetch-path counters of the sponge unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpongeStats {
    /// Words fetched and decrypted.
    pub words_fetched: u64,
    /// Keyed permutations performed (one per absorbed word).
    pub permutes: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Control transfers that consulted the patch table.
    pub patched_edges: u64,
    /// Transfers along edges the installer never enumerated (the state
    /// diverges; kept as a counter for the harnesses).
    pub unpatched_edges: u64,
}

/// Longest batch the unit delivers before handing control back to the
/// engine (mirrors SOFIA's 8-word block granularity so the comparison
/// is geometry-fair).
const MAX_BATCH: usize = 8;

/// A [`FetchUnit`] that decrypts each word with the running sponge state
/// and absorbs the plaintext, trapping (as a violation) on the first
/// garbage decode. See the crate docs for the scheme's contract.
#[derive(Clone, Debug)]
pub struct SpongeFetch {
    cipher: Rectangle,
    patches: Arc<BTreeMap<(u32, u32), u64>>,
    text_base: u32,
    text_words: u32,
    entry: u32,
    boot_state: u64,
    state: u64,
    next_target: u32,
    prev_pc: u32,
    redirected: bool,
    last_pc: u32,
    timing: SpongeTiming,
    stats: SpongeStats,
}

impl SpongeFetch {
    /// Builds the unit for a sealed image under the device keys.
    pub fn new(image: &SpongeImage, keys: &KeySet, timing: SpongeTiming) -> SpongeFetch {
        let cipher = keys.expand().ctr;
        let boot_state = sofia_transform::sponge::reset_state(keys, image.nonce, image.entry);
        let mut unit = SpongeFetch {
            cipher,
            patches: Arc::new(image.patches.clone()),
            text_base: image.text_base,
            text_words: image.ctext.len() as u32,
            entry: image.entry,
            boot_state,
            state: 0,
            next_target: image.entry,
            prev_pc: RESET_PREV_PC,
            redirected: true,
            last_pc: image.entry,
            timing,
            stats: SpongeStats::default(),
        };
        unit.boot();
        unit
    }

    fn boot(&mut self) {
        // Reset is an edge like any other: boot state plus the
        // installer's reset patch lands on the canonical chain.
        self.state = self.boot_state ^ self.patch(RESET_PREV_PC, self.entry);
        self.next_target = self.entry;
        self.prev_pc = RESET_PREV_PC;
        self.redirected = true;
    }

    fn patch(&mut self, from: u32, to: u32) -> u64 {
        match self.patches.get(&(from, to)) {
            Some(&p) => {
                self.stats.patched_edges += 1;
                p
            }
            None => {
                // Hardware reads whatever patch bits sit at the branch
                // site; an unenumerated edge finds none — model that as
                // zero and let the state diverge.
                self.stats.unpatched_edges += 1;
                0
            }
        }
    }

    /// The timing model in force.
    pub fn timing(&self) -> SpongeTiming {
        self.timing
    }

    /// Fetch-path counters.
    pub fn stats(&self) -> SpongeStats {
        self.stats
    }

    /// The address the next batch will be fetched from.
    pub fn next_target(&self) -> u32 {
        self.next_target
    }

    /// Redirects the next fetch — the attack harness's hijack channel.
    /// The sponge state is left untouched: exactly what a control-flow
    /// hijack looks like to this hardware.
    pub fn hijack(&mut self, target: u32) {
        self.next_target = target;
        self.redirected = true;
    }
}

impl FetchUnit for SpongeFetch {
    type Violation = SpongeViolation;

    const ISSUE_CHARGED_IN_FETCH: bool = true;

    fn fetch_batch(
        &mut self,
        ctx: &mut FetchCtx<'_>,
        out: &mut Batch,
    ) -> Result<Option<SpongeViolation>, Trap> {
        let mut pc = self.next_target;
        if self.redirected {
            ctx.stats.cycles += self.timing.redirect_setup as u64;
        }
        for _ in 0..MAX_BATCH {
            if pc % 4 != 0 || pc < self.text_base || (pc - self.text_base) / 4 >= self.text_words {
                // Deliver what already decoded; stop the machine if the
                // very first word is out of image.
                if out.is_empty() {
                    return Ok(Some(SpongeViolation::FetchOutOfImage { addr: pc }));
                }
                break;
            }
            let stall = ctx.icache.access_cycles(pc) as u64;
            ctx.stats.icache_stall_cycles += stall;
            ctx.stats.cycles += stall;
            let word = ctx.mem.fetch(pc)?;
            let plain = word ^ (self.state as u32);
            let Ok(inst) = Instruction::decode(plain) else {
                // The garbage word is not absorbed, so a refetch sees the
                // same state and the same garbage — detection is sticky.
                if out.is_empty() {
                    return Ok(Some(SpongeViolation::GarbageDecode { pc, word: plain }));
                }
                // The decoded prefix executes; the next batch re-arrives
                // here and reports the violation.
                break;
            };
            self.state = self.cipher.encrypt_block(self.state ^ u64::from(plain));
            self.stats.words_fetched += 1;
            self.stats.permutes += 1;
            // Serial decrypt-absorb: every word pays the permutation
            // latency (issue cycle included).
            ctx.stats.cycles += self.timing.permute_latency as u64;
            out.push(Slot { pc, inst });
            self.last_pc = pc;
            if inst.is_control_transfer() || !inst.falls_through() {
                break;
            }
            pc = pc.wrapping_add(4);
        }
        self.stats.batches += 1;
        self.redirected = false;
        Ok(None)
    }

    fn retire(
        &mut self,
        pc: u32,
        slot: usize,
        batch_len: usize,
        outcome: SlotOutcome,
    ) -> Result<(), SpongeViolation> {
        debug_assert!(slot < batch_len);
        match outcome {
            SlotOutcome::Sequential => {
                if slot + 1 == batch_len {
                    self.next_target = pc.wrapping_add(4);
                    self.prev_pc = pc;
                }
            }
            SlotOutcome::Transfer { target } => {
                let p = self.patch(pc, target);
                self.state ^= p;
                self.next_target = target;
                self.prev_pc = pc;
                self.redirected = true;
            }
        }
        Ok(())
    }

    fn on_reset(&mut self) -> u64 {
        self.boot();
        self.stats = SpongeStats::default();
        self.timing.reboot_cycles
    }
}
