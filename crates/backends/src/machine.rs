//! A generic machine around any [`FetchUnit`] — the same shared
//! [`Pipeline`] engine as `SofiaMachine` and `VanillaMachine`, with the
//! same [`ResetPolicy`] dispatch, parameterised over the backend's fetch
//! unit so the sponge and FIPAC machines are one wrapper, not two.

use sofia_core::machine::ResetPolicy;
use sofia_cpu::engine::{EngineOutcome, Pipeline};
use sofia_cpu::exec::RegFile;
use sofia_cpu::machine::MachineConfig;
use sofia_cpu::mem::Memory;
use sofia_cpu::{ExecStats, FetchUnit, Trap};
use sofia_crypto::KeySet;
use sofia_transform::{FipacImage, SpongeImage};

use crate::fipac::{FipacFetch, FipacTiming};
use crate::sponge::{SpongeFetch, SpongeTiming};

/// Configuration shared by all backend machines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendConfig {
    /// Baseline machine parameters (RAM, I-cache, pipeline penalties).
    pub machine: MachineConfig,
    /// Reset-line behaviour, reusing the SOFIA core's policy type.
    pub reset_policy: ResetPolicy,
}

/// Why a [`BackendMachine::run`] call returned. Generic over the
/// backend's violation type — the shape mirrors
/// [`sofia_core::machine::RunOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendOutcome<V> {
    /// The program executed `halt` normally.
    Halted,
    /// The step budget ran out.
    OutOfFuel,
    /// A violation was detected (policy [`ResetPolicy::HaltAndReport`]).
    ViolationStop(V),
    /// Persistent tampering kept resetting the core
    /// (policy [`ResetPolicy::Reboot`]).
    ResetLoop {
        /// Resets performed before giving up.
        resets: u32,
    },
}

impl<V: Copy> BackendOutcome<V> {
    /// Whether the program reached `halt` untampered.
    pub fn is_halted(&self) -> bool {
        matches!(self, BackendOutcome::Halted)
    }

    /// The violation that stopped the run, if any.
    pub fn violation(&self) -> Option<V> {
        match self {
            BackendOutcome::ViolationStop(v) => Some(*v),
            _ => None,
        }
    }
}

/// A processor built from the shared pipeline engine and an arbitrary
/// integrity backend's fetch unit.
#[derive(Clone, Debug)]
pub struct BackendMachine<F: FetchUnit> {
    engine: Pipeline<F>,
    reset_policy: ResetPolicy,
    violations: Vec<F::Violation>,
}

/// The sponge-CFP machine (Werner et al. SCFP).
pub type SpongeMachine = BackendMachine<SpongeFetch>;

/// The FIPAC-style machine (Nasahl et al.).
pub type FipacMachine = BackendMachine<FipacFetch>;

impl<F: FetchUnit> BackendMachine<F> {
    /// Wraps a ready fetch unit around the shared pipeline, loading
    /// `text` into ROM and `data` into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn from_parts(
        fetch: F,
        text_base: u32,
        text: Vec<u32>,
        data_base: u32,
        data: &[u8],
        config: &BackendConfig,
    ) -> BackendMachine<F> {
        BackendMachine {
            engine: Pipeline::new(fetch, text_base, text, data_base, data, &config.machine),
            reset_policy: config.reset_policy,
            violations: Vec::new(),
        }
    }

    /// Runs until `halt`, a stopping violation, a trap, or `max_slots`
    /// executed instruction slots, with this machine's [`ResetPolicy`]
    /// deciding each violation's fate — the same dispatch as
    /// `SofiaMachine::run`.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run(&mut self, max_slots: u64) -> Result<BackendOutcome<F::Violation>, Trap> {
        let policy = self.reset_policy;
        let violations = &mut self.violations;
        let (outcome, _consumed) = self.engine.run_metered(max_slots, |v, resets_so_far| {
            violations.push(v);
            policy.dispose(resets_so_far)
        })?;
        let outcome = match outcome {
            EngineOutcome::Halted => match self.violations.last() {
                Some(&v) if matches!(self.reset_policy, ResetPolicy::HaltAndReport) => {
                    BackendOutcome::ViolationStop(v)
                }
                _ => BackendOutcome::Halted,
            },
            EngineOutcome::OutOfFuel => BackendOutcome::OutOfFuel,
            EngineOutcome::Stopped(v) => BackendOutcome::ViolationStop(v),
            EngineOutcome::ResetLoop { resets } => BackendOutcome::ResetLoop { resets },
        };
        Ok(outcome)
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        self.engine.regs()
    }

    /// The physical memory (MMIO log included).
    pub fn mem(&self) -> &Memory {
        self.engine.mem()
    }

    /// Mutable memory access — the attack harness's tamper channel.
    pub fn mem_mut(&mut self) -> &mut Memory {
        self.engine.mem_mut()
    }

    /// Baseline execution counters.
    pub fn stats(&self) -> ExecStats {
        self.engine.stats()
    }

    /// Violations detected so far (all of them, across reboots).
    pub fn violations(&self) -> &[F::Violation] {
        &self.violations
    }

    /// Resets performed (reboot policy).
    pub fn resets(&self) -> u64 {
        self.engine.resets()
    }

    /// Whether the machine reached `halt` (or stopped on a violation).
    pub fn is_halted(&self) -> bool {
        self.engine.is_halted()
    }

    /// The backend's fetch unit.
    pub fn fetch(&self) -> &F {
        self.engine.fetch()
    }

    /// Mutable fetch-unit access — hijack and fault channels.
    pub fn fetch_mut(&mut self) -> &mut F {
        self.engine.fetch_mut()
    }
}

impl SpongeMachine {
    /// Builds a sponge-CFP machine with default configuration.
    pub fn new(image: &SpongeImage, keys: &KeySet) -> SpongeMachine {
        Self::sponge_with_config(image, keys, &BackendConfig::default())
    }

    /// Builds a sponge-CFP machine, loading ciphertext into ROM.
    pub fn sponge_with_config(
        image: &SpongeImage,
        keys: &KeySet,
        config: &BackendConfig,
    ) -> SpongeMachine {
        let unit = SpongeFetch::new(image, keys, SpongeTiming::default());
        BackendMachine::from_parts(
            unit,
            image.text_base,
            image.ctext.clone(),
            image.data_base,
            &image.data,
            config,
        )
    }
}

impl FipacMachine {
    /// Builds a FIPAC machine with default configuration.
    pub fn new(image: &FipacImage, keys: &KeySet) -> FipacMachine {
        Self::fipac_with_config(image, keys, &BackendConfig::default())
    }

    /// Builds a FIPAC machine, loading plaintext words into ROM.
    pub fn fipac_with_config(
        image: &FipacImage,
        keys: &KeySet,
        config: &BackendConfig,
    ) -> FipacMachine {
        let unit = FipacFetch::new(image, keys, FipacTiming::default());
        BackendMachine::from_parts(
            unit,
            image.text_base,
            image.words.clone(),
            image.data_base,
            &image.data,
            config,
        )
    }
}
