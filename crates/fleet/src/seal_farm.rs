//! The seal farm: a batch's cold-start seals as parallel pool work.
//!
//! Sealing is the provider-side cost of SOFIA's install-time story
//! (paper §II-C): every `(device keys, program)` pair a batch admits
//! cold must run the full transform — lower, CFG, pack, mux trees,
//! MAC-then-encrypt — before its first instruction simulates. Left to
//! the job path, a multi-tenant cold-start wave convoys those seals:
//! each worker stalls on its own job's install, and with fewer distinct
//! images than workers the [`ImageCache`]'s single-flight turns the
//! wave into a queue.
//!
//! The farm instead shards the *distinct* seal requests of a wave
//! across its own work-stealing pool:
//!
//! * **Single-flight by construction** — requests are deduplicated on
//!   their [`ImageKey`] before distribution, so N concurrent requests
//!   for one image become exactly one seal task whose `Arc` every
//!   waiter shares (the cache's own in-progress marker still guards
//!   against seals racing in from outside the farm);
//! * **Work stealing** — tasks are dealt round-robin onto per-worker
//!   deques; a worker serves its own front and steals a sibling's back
//!   only when dry. Seal tasks never re-queue, so emptiness is
//!   monotone and workers simply exit when every deque drains — no
//!   parking protocol needed;
//! * **Cache-mediated** — every seal goes through
//!   [`ImageCache::get_or_seal_traced`], so farm-sealed images land in
//!   the shared cache with normal hit/miss accounting, and later
//!   batches (or inline callers) reuse them.
//!
//! Failures are reported per key but never cached (matching the
//! cache's own policy): a failed request re-attempts — and fails
//! identically, seals are deterministic — wherever it is retried.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fleet::{into_clean, lock_clean};

use sofia_crypto::KeySet;
use sofia_transform::cache::{image_key, ImageCache, ImageKey, SealError};
use sofia_transform::SecureImage;

/// How one distinct seal request fared.
#[derive(Clone, Debug)]
pub struct SealVerdict {
    /// The sealed image, or why sealing failed.
    pub image: Result<Arc<SecureImage>, SealError>,
    /// Whether *this wave* ran the transformer (a cache miss). `false`
    /// means the image was already cached — the wave only shared it.
    pub fresh: bool,
}

/// Everything one [`SealFarm::seal_wave`] call produced.
#[derive(Debug, Default)]
pub struct SealWave {
    /// One verdict per **distinct** [`ImageKey`] in the wave.
    pub verdicts: HashMap<ImageKey, SealVerdict>,
    /// Requests before deduplication.
    pub requests: usize,
    /// Distinct images the wave actually needed (`verdicts.len()`).
    pub distinct: usize,
    /// Cross-deque steals the farm's pool performed.
    pub steals: u64,
}

/// A parallel sealer over a shared [`ImageCache`].
///
/// # Examples
///
/// ```
/// use sofia_crypto::KeySet;
/// use sofia_fleet::SealFarm;
/// use sofia_transform::cache::{image_key, ImageCache};
///
/// let cache = ImageCache::new();
/// let farm = SealFarm::new(&cache, 4);
/// let keys = KeySet::from_seed(1);
/// // Three requests, two distinct images: the duplicate is deduplicated
/// // before any worker sees it.
/// let wave = farm.seal_wave(&[
///     (&keys, "main: halt"),
///     (&keys, "main: halt"),
///     (&keys, "main: nop\n halt"),
/// ]);
/// assert_eq!((wave.requests, wave.distinct), (3, 2));
/// assert!(wave.verdicts[&image_key(&keys, "main: halt")].fresh);
/// assert_eq!(cache.stats().misses, 2);
/// ```
pub struct SealFarm<'a> {
    cache: &'a ImageCache,
    workers: usize,
}

impl<'a> SealFarm<'a> {
    /// A farm sealing into `cache` with `workers` threads (clamped to
    /// ≥ 1).
    pub fn new(cache: &'a ImageCache, workers: usize) -> SealFarm<'a> {
        SealFarm {
            cache,
            workers: workers.max(1),
        }
    }

    /// Seals every distinct `(keys, source)` of `requests`, in parallel
    /// across the farm's workers, and returns the per-key verdicts.
    ///
    /// Duplicate requests collapse to one task (single-flight); the
    /// first occurrence's key material drives the seal. With one worker
    /// — or one distinct image — the wave runs on the calling thread,
    /// spawning nothing.
    pub fn seal_wave(&self, requests: &[(&KeySet, &str)]) -> SealWave {
        let total = requests.len();
        // Single-flight: one task per distinct image key, first
        // occurrence wins (identical keys ⇒ identical seal inputs, so
        // which occurrence runs is immaterial).
        let mut seen = HashSet::new();
        let mut tasks: Vec<(ImageKey, &KeySet, &str)> = Vec::new();
        for &(keys, source) in requests {
            let key = image_key(keys, source);
            if seen.insert(key) {
                tasks.push((key, keys, source));
            }
        }
        let distinct = tasks.len();

        // The transformer is pure library code, but a panic inside it
        // must not cost the wave its worker (and, through the poisoned
        // verdict lock, the whole farm): a panicking seal task is caught
        // and simply yields no verdict, so the requesting job re-seals
        // inline — where the same panic becomes that one job's typed
        // `WorkerPanic` record instead of a farm-wide abort.
        let seal_one = |(key, keys, source): (ImageKey, &KeySet, &str)| {
            let sealed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.cache.get_or_seal_traced(keys, source)
            }))
            .ok()?;
            let (image, from_cache) = match sealed {
                Ok((image, from_cache)) => (Ok(image), from_cache),
                Err(e) => (Err(e), false),
            };
            Some((
                key,
                SealVerdict {
                    image,
                    fresh: !from_cache,
                },
            ))
        };

        let workers = self.workers.min(distinct);
        if workers <= 1 {
            return SealWave {
                verdicts: tasks.into_iter().filter_map(seal_one).collect(),
                requests: total,
                distinct,
                steals: 0,
            };
        }

        // Work-stealing pool: deal tasks round-robin, serve own front,
        // steal a sibling's back when dry. Tasks never re-queue, so a
        // worker that finds every deque empty can exit outright.
        type TaskDeque<'t> = Mutex<VecDeque<(ImageKey, &'t KeySet, &'t str)>>;
        let mut deques: Vec<TaskDeque> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            deques[i % workers]
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(task);
        }
        let deques = &deques;
        let verdicts: Mutex<HashMap<ImageKey, SealVerdict>> = Mutex::new(HashMap::new());
        let steals = AtomicU64::new(0);
        let lock_deque = |w: usize| lock_clean(&deques[w]);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (verdicts, steals, seal_one) = (&verdicts, &steals, &seal_one);
                scope.spawn(move || loop {
                    let mut next = { lock_deque(w).pop_front() };
                    if next.is_none() {
                        next = (1..workers).find_map(|i| {
                            let stolen = { lock_deque((w + i) % workers).pop_back() };
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        });
                    }
                    match next {
                        Some(task) => {
                            if let Some((key, verdict)) = seal_one(task) {
                                lock_clean(verdicts).insert(key, verdict);
                            }
                        }
                        None => return,
                    }
                });
            }
        });
        SealWave {
            verdicts: into_clean(verdicts),
            requests: total,
            distinct,
            steals: steals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_seals_each_distinct_image_once() {
        let cache = ImageCache::new();
        let farm = SealFarm::new(&cache, 4);
        let tenants: Vec<KeySet> = (0..6).map(|s| KeySet::from_seed(s + 1)).collect();
        let requests: Vec<(&KeySet, &str)> = tenants
            .iter()
            .flat_map(|k| [(k, "main: halt"), (k, "main: halt")])
            .collect();
        let wave = farm.seal_wave(&requests);
        assert_eq!((wave.requests, wave.distinct), (12, 6));
        assert_eq!(wave.verdicts.len(), 6);
        assert!(wave.verdicts.values().all(|v| v.fresh && v.image.is_ok()));
        assert_eq!(cache.stats().misses, 6, "one seal per distinct image");
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn warm_images_are_shared_not_resealed() {
        let cache = ImageCache::new();
        let keys = KeySet::from_seed(9);
        let warm = cache.get_or_seal(&keys, "main: halt").unwrap();
        let farm = SealFarm::new(&cache, 2);
        let wave = farm.seal_wave(&[(&keys, "main: halt")]);
        let verdict = &wave.verdicts[&image_key(&keys, "main: halt")];
        assert!(!verdict.fresh);
        assert!(Arc::ptr_eq(verdict.image.as_ref().unwrap(), &warm));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn failures_surface_per_key_and_are_not_cached() {
        let cache = ImageCache::new();
        let keys = KeySet::from_seed(3);
        let farm = SealFarm::new(&cache, 2);
        let wave = farm.seal_wave(&[(&keys, "main: bogus t9"), (&keys, "main: halt")]);
        assert_eq!(wave.distinct, 2);
        assert!(wave.verdicts[&image_key(&keys, "main: bogus t9")]
            .image
            .is_err());
        assert!(wave.verdicts[&image_key(&keys, "main: halt")].image.is_ok());
        assert_eq!(cache.stats().entries, 1, "failures are not cached");
    }
}
