//! Job descriptions and per-job results.

use sofia_core::machine::RunOutcome;
use sofia_core::{SofiaStats, Violation};
use sofia_cpu::Trap;

/// A tenant of the fleet: one device-key domain. In the paper's
/// deployment model this is one device (or one homogeneous device
/// family) whose keys "are known only by the software provider".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A job accepted by [`crate::Fleet::submit`], in submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// The adversary channel of the fleet harness: what a fault-injecting
/// attacker does to one tenant's device before its job runs. Mirrors the
/// `sofia-attacks` tamper channels so quarantine-isolation experiments
/// can host a victim tenant inside an otherwise honest fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sabotage {
    /// XOR `mask` into ROM word `word` (ciphertext tamper — the SI unit's
    /// detection case). Out-of-range words are a no-op.
    FlipRomWord {
        /// ROM word index to corrupt.
        word: usize,
        /// Bits to flip.
        mask: u32,
    },
    /// Panic on the worker thread the moment the job is serviced — the
    /// host-fault channel. Not a security event (nothing simulated
    /// misbehaves); it exists so the panic-isolation regression suite can
    /// prove one faulting job degrades to a quarantined
    /// [`JobOutcome::WorkerPanic`] record instead of poisoning the pool's
    /// shared state and aborting the whole batch.
    PanicInWorker,
}

/// One unit of work: a tenant's program plus its fuel budget.
///
/// The program travels as source; the fleet seals it **once** per
/// `(tenant keys, program)` into the shared image cache and reuses the
/// sealed image for every later job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// SL32 assembly source of the program (inputs live in its `.data`).
    pub source: String,
    /// Instruction-slot budget; exceeding it ends the job as
    /// [`RunOutcome::OutOfFuel`].
    pub fuel: u64,
    /// Optional pre-run tamper, for attack experiments.
    pub sabotage: Option<Sabotage>,
}

impl JobSpec {
    /// A clean job (no sabotage).
    pub fn new(tenant: TenantId, source: impl Into<String>, fuel: u64) -> JobSpec {
        JobSpec {
            tenant,
            source: source.into(),
            fuel,
            sabotage: None,
        }
    }

    /// The same job with a tamper applied before it runs.
    pub fn with_sabotage(mut self, sabotage: Sabotage) -> JobSpec {
        self.sabotage = Some(sabotage);
        self
    }
}

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The machine ran to a verdict (halt, out-of-fuel, stopping
    /// violation, or reset-loop abandonment).
    Completed(RunOutcome),
    /// An architectural trap escaped the program — a program bug, not a
    /// security event (traps can only occur in verified blocks).
    Trapped(Trap),
    /// The program never ran: it failed to parse or to seal.
    SealFailed(String),
    /// The worker servicing the job faulted on the **host** side — a
    /// panic in the simulator, or a park/revive round-trip that failed.
    /// Never a security verdict (the simulated device did nothing
    /// wrong), but the tenant is still contained per the quarantine
    /// policy: a job that can crash a worker once can do it again, and
    /// degrading to a per-tenant failure is exactly the blast-radius
    /// guarantee the fleet exists for.
    WorkerPanic(String),
    /// A parked snapshot failed to revive — its `SOFS1` bytes were
    /// corrupted or its MAC re-verification failed under the tenant's
    /// keys. Like [`JobOutcome::WorkerPanic`] this is a host-side fault
    /// (the simulated device did nothing wrong), contained to the one
    /// job/tenant whose snapshot rotted; unlike a worker panic it names
    /// the storage seam, so operators (and the resilience ladder's
    /// vcache-off rung) can react to snapshot rot specifically.
    RevivalFailed(String),
    /// The job was shed from the queue because its virtual-time sojourn
    /// exceeded its service class's deadline — an availability decision
    /// by [`crate::resilience`], not a security verdict, and the only
    /// outcome produced without the job ever running. The tenant is
    /// *not* quarantined (the job did nothing; the fleet was slow).
    DeadlineMissed {
        /// The class deadline the job exceeded, in virtual cycles.
        deadline_cycles: u64,
    },
}

impl JobOutcome {
    /// Whether the job reached `halt` untampered.
    pub fn is_halted(&self) -> bool {
        matches!(self, JobOutcome::Completed(o) if o.is_halted())
    }

    /// Whether this outcome is a security violation verdict (the
    /// quarantine trigger).
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            JobOutcome::Completed(RunOutcome::ViolationStop(_))
                | JobOutcome::Completed(RunOutcome::ResetLoop { .. })
        )
    }
}

/// Everything the fleet reports about one finished job.
///
/// `outcome`, `out_words` and `violations` are the determinism-invariant
/// surface: for a fixed job set and configuration they are bit-identical
/// at every worker count, in both scheduling modes, and equal to serial
/// single-machine execution. The tick fields come from the deterministic
/// virtual-time schedule model (see [`crate::schedule`]).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job.
    pub job: JobId,
    /// Its tenant.
    pub tenant: TenantId,
    /// Final verdict (after the retry, if the quarantine policy retried).
    pub outcome: JobOutcome,
    /// Words the program emitted on the MMIO word port.
    pub out_words: Vec<u32>,
    /// Every violation detected across the job's run (and retry), in
    /// detection order.
    pub violations: Vec<Violation>,
    /// All machine work the job did — the first run plus the
    /// reboot-retry (if the quarantine policy retried), merged. This is
    /// what the virtual-time schedule prices, so fleet totals stay
    /// work-conserving. `out_words` are the final device run's MMIO log
    /// (a reboot-retry is a fresh device).
    pub stats: SofiaStats,
    /// Whether the sealed image came from the shared cache.
    pub seal_cache_hit: bool,
    /// Whether the quarantine policy re-ran the job under a reboot
    /// [`sofia_core::ResetPolicy`].
    pub retried: bool,
    /// Scheduler quanta the job consumed (1 under run-to-completion).
    pub slices: u32,
    /// Simulated cycles per scheduler quantum, in order — the cost input
    /// of the virtual-time schedule model.
    pub slice_cycles: Vec<u64>,
    /// Scheduler tick at which the job first ran.
    pub start_tick: u64,
    /// Scheduler tick after the one in which the job finished.
    pub end_tick: u64,
    /// Virtual tick at which the job arrived. Always 0 under the batch
    /// [`crate::Fleet`] (a batch's jobs all arrive at tick 0); the
    /// [`crate::AsyncFleet`] driver records the real arrival tick of its
    /// open/closed-loop workloads here.
    pub arrival_tick: u64,
    /// Simulated cycles between the job's arrival and its completion on
    /// the virtual-time model — the deterministic sojourn latency the
    /// per-class p50/p99 figures in `BENCH_fleet.json` are built from.
    pub sojourn_cycles: u64,
}

impl JobRecord {
    /// Ticks the job waited between arrival and first service —
    /// zero-cost admission would be `start_tick == arrival_tick` (under
    /// the batch [`crate::Fleet`] every job arrives at tick 0, so this
    /// is simply `start_tick`).
    pub fn queue_latency_ticks(&self) -> u64 {
        self.start_tick.saturating_sub(self.arrival_tick)
    }

    /// Simulated cycles the job consumed in total.
    pub fn cycles(&self) -> u64 {
        self.stats.exec.cycles
    }
}
