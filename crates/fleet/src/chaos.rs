//! Deterministic host-fault injection: the chaos plan.
//!
//! The paper's integrity argument is about surviving *adversarial*
//! faults; this module is about surviving *infrastructure* faults — the
//! seal farm erroring out, a parked snapshot rotting on disk, a worker
//! stalling or crashing, a checkpoint truncated in transit. A serving
//! fleet for "millions of users" meets all of them, so the fleet's
//! recovery machinery ([`crate::resilience`]) has to be *testable*, and
//! testable means **replayable**: every fault a run injects must be a
//! pure function of the plan's seed, the virtual tick and the job (or
//! byte stream) it strikes — never of host threads or wall-clock.
//!
//! A [`ChaosPlan`] is therefore a bundle of per-seam Bernoulli fault
//! processes over the driver's virtual clock. Each seam draws from a
//! splitmix64-mixed hash of `(seed, seam, tick, salt)`, so:
//!
//! * the same plan replays the same fault sequence on every run, at any
//!   host thread count (draws happen on the coordinator);
//! * seams are independent — raising the seal-fault rate does not shift
//!   which revivals corrupt;
//! * a retried job re-draws at its retry tick, so faults are transient
//!   by default (exactly the shape retry-with-backoff is for).
//!
//! The load-bearing invariant, pinned by `tests/fleet_chaos.rs` and
//! asserted before every `BENCH_chaos.json` emission:
//! [`ChaosPlan::none`] is bit-for-bit invisible — a driver configured
//! with it produces the exact record surface of a driver built before
//! this module existed.

use crate::job::{JobId, TenantId};

/// A per-draw fault probability in parts-per-million: `0` never fires,
/// [`FaultRate::ALWAYS`] always does. Integer ppm (not `f64`) keeps the
/// strike decision exact and platform-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRate(pub u32);

impl FaultRate {
    /// The zero process: never strikes (the [`ChaosPlan::none`] rate).
    pub const NEVER: FaultRate = FaultRate(0);
    /// Strikes on every draw — the 100%-failure-storm setting.
    pub const ALWAYS: FaultRate = FaultRate(1_000_000);

    /// A rate of `ppm` strikes per million draws (clamped to 100%).
    pub fn ppm(ppm: u32) -> FaultRate {
        FaultRate(ppm.min(1_000_000))
    }
}

/// Where a fault process injects. Each seam carries its own salt into
/// the mix so the processes stay independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Seam {
    /// A fresh seal (transformer actually running — cache hits are not
    /// drawn against) fails as if the farm host errored.
    Seal,
    /// A parked `SOFS1` snapshot is corrupted before revival; the MAC'd
    /// container turns it into a typed decode failure, never garbage.
    Snapshot,
    /// A worker serves its quantum but takes a stall tax in virtual
    /// cycles (host jitter, priced on the deterministic clock).
    Stall,
    /// The worker servicing the quantum dies; the job degrades to a
    /// typed [`crate::JobOutcome::WorkerPanic`] record.
    Panic,
    /// A checkpoint byte stream is truncated in transit (the migration
    /// path's fault — exercised by harnesses via
    /// [`ChaosPlan::truncate_checkpoint`]).
    Checkpoint,
    /// A transient burst of hostile (sabotaged) arrivals — the
    /// quarantine-storm process workload generators draw from.
    Storm,
}

impl Seam {
    fn salt(self) -> u64 {
        match self {
            Seam::Seal => 0x5EA1,
            Seam::Snapshot => 0x5A4B,
            Seam::Stall => 0x57A1,
            Seam::Panic => 0xBADC,
            Seam::Checkpoint => 0xC4EC,
            Seam::Storm => 0x5702,
        }
    }
}

/// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation. Pure
/// function — the whole point (no RNG state, no host entropy).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded fault-injection plan: one [`FaultRate`] per seam, all
/// drawn from one seed. `Eq` so configurations can be compared and
/// pinned in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Root of every draw. Two plans with the same rates but different
    /// seeds inject *different* (but each replayable) fault sequences.
    pub seed: u64,
    /// Fresh-transform failures (the seal farm's host erroring).
    pub seal_fault: FaultRate,
    /// Parked-snapshot corruption before revival.
    pub snapshot_corruption: FaultRate,
    /// Per-quantum worker stalls.
    pub worker_stall: FaultRate,
    /// Virtual cycles one stall costs (priced into the tick like any
    /// other quantum cost; the machine's own simulated cycles are
    /// untouched — a stall is scheduler time, not device work).
    pub stall_cycles: u64,
    /// Per-quantum worker deaths.
    pub worker_panic: FaultRate,
    /// Checkpoint-in-transit truncation (drawn by
    /// [`ChaosPlan::truncate_checkpoint`] callers).
    pub checkpoint_truncation: FaultRate,
    /// Per-tick hostile-burst arrivals (drawn by workload generators —
    /// the fleet itself cannot invent tenants).
    pub storm: FaultRate,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

impl ChaosPlan {
    /// The no-fault plan: every rate zero, bit-for-bit invisible to the
    /// driver (the invariant `tests/fleet_chaos.rs` pins).
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            seal_fault: FaultRate::NEVER,
            snapshot_corruption: FaultRate::NEVER,
            worker_stall: FaultRate::NEVER,
            stall_cycles: 0,
            worker_panic: FaultRate::NEVER,
            checkpoint_truncation: FaultRate::NEVER,
            storm: FaultRate::NEVER,
        }
    }

    /// Every seam at the same rate — the `BENCH_chaos.json` sweep's
    /// shape (`0 / 1e-3 / 1e-2` per draw, i.e. ppm `0 / 1000 / 10000`).
    pub fn uniform(seed: u64, rate: FaultRate) -> ChaosPlan {
        ChaosPlan {
            seed,
            seal_fault: rate,
            snapshot_corruption: rate,
            worker_stall: rate,
            stall_cycles: 2_000,
            worker_panic: rate,
            checkpoint_truncation: rate,
            storm: rate,
        }
    }

    /// Whether every process is zero — the fast-path guard injection
    /// sites use to stay off the hot path entirely.
    pub fn is_none(&self) -> bool {
        self.seal_fault == FaultRate::NEVER
            && self.snapshot_corruption == FaultRate::NEVER
            && self.worker_stall == FaultRate::NEVER
            && self.worker_panic == FaultRate::NEVER
            && self.checkpoint_truncation == FaultRate::NEVER
            && self.storm == FaultRate::NEVER
    }

    fn rate(&self, seam: Seam) -> FaultRate {
        match seam {
            Seam::Seal => self.seal_fault,
            Seam::Snapshot => self.snapshot_corruption,
            Seam::Stall => self.worker_stall,
            Seam::Panic => self.worker_panic,
            Seam::Checkpoint => self.checkpoint_truncation,
            Seam::Storm => self.storm,
        }
    }

    fn draw(&self, seam: Seam, tick: u64, salt: u64) -> u64 {
        mix64(
            self.seed
                ^ mix64(seam.salt())
                ^ mix64(tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ salt.wrapping_mul(0xD134_2543_DE82_EF95),
        )
    }

    /// Whether `seam`'s process strikes at `(tick, salt)` — `salt` is
    /// the job id (or byte-stream id) the draw is keyed to. Pure:
    /// the same arguments always answer the same way.
    pub fn strikes(&self, seam: Seam, tick: u64, salt: u64) -> bool {
        let rate = self.rate(seam);
        if rate == FaultRate::NEVER {
            return false;
        }
        if rate >= FaultRate::ALWAYS {
            return true;
        }
        self.draw(seam, tick, salt) % 1_000_000 < rate.0 as u64
    }

    /// A deterministic draw in `[0, bound]` — the retry machinery's
    /// backoff jitter source, so even the jitter replays.
    pub fn jitter(&self, bound: u64, tick: u64, salt: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.draw(Seam::Stall, tick, salt ^ 0x0011_77E2) % (bound + 1)
    }

    /// Flips one deterministically chosen byte of a parked snapshot —
    /// the [`Seam::Snapshot`] fault's payload. The `SOFS1` container's
    /// checksum turns this into a typed decode error on revival.
    pub fn corrupt_snapshot(&self, bytes: &mut [u8], tick: u64, salt: u64) {
        if bytes.is_empty() {
            return;
        }
        let at = (self.draw(Seam::Snapshot, tick, salt ^ 0xC0DE) as usize) % bytes.len();
        bytes[at] ^= 0x40;
    }

    /// Draws the [`Seam::Checkpoint`] process and, on a strike,
    /// truncates `bytes` at a deterministic offset (at least the magic
    /// survives, so decoding fails on length/checksum — typed — rather
    /// than on an empty buffer). Returns whether the fault fired.
    pub fn truncate_checkpoint(&self, bytes: &mut Vec<u8>, tick: u64, salt: u64) -> bool {
        if !self.strikes(Seam::Checkpoint, tick, salt) || bytes.len() < 8 {
            return false;
        }
        let keep =
            8 + (self.draw(Seam::Checkpoint, tick, salt ^ 0x7241) as usize) % (bytes.len() - 7);
        bytes.truncate(keep.min(bytes.len() - 1));
        true
    }
}

/// One fault the coordinator assigned to a lane this tick. Travels in
/// the lane task to the (possibly pooled) lane runner, which applies it
/// — the *decision* stays coordinator-side and deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum InjectedFault {
    /// The lane's fresh seal fails (typed `SealFailed` record).
    SealFault,
    /// The lane's worker dies before the quantum (typed `WorkerPanic`).
    WorkerPanic,
    /// The quantum runs but costs `cycles` extra virtual time.
    Stall {
        /// The stall tax in simulated cycles.
        cycles: u64,
    },
}

/// What a fault event attributes: the struck job and its tenant, when
/// the seam is job-scoped (`None` for stream-scoped seams like
/// checkpoint truncation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTarget {
    /// The struck job, if the seam is job-scoped.
    pub job: Option<JobId>,
    /// Its tenant.
    pub tenant: Option<TenantId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_strikes_anywhere() {
        let plan = ChaosPlan::none();
        assert!(plan.is_none());
        for tick in 0..200 {
            for salt in 0..20 {
                for seam in [
                    Seam::Seal,
                    Seam::Snapshot,
                    Seam::Stall,
                    Seam::Panic,
                    Seam::Checkpoint,
                    Seam::Storm,
                ] {
                    assert!(!plan.strikes(seam, tick, salt));
                }
            }
        }
    }

    #[test]
    fn always_strikes_everywhere_and_draws_replay() {
        let plan = ChaosPlan::uniform(42, FaultRate::ALWAYS);
        assert!(plan.strikes(Seam::Seal, 7, 3));
        let a = ChaosPlan::uniform(9, FaultRate::ppm(250_000));
        let b = ChaosPlan::uniform(9, FaultRate::ppm(250_000));
        for tick in 0..500 {
            assert_eq!(
                a.strikes(Seam::Panic, tick, 11),
                b.strikes(Seam::Panic, tick, 11)
            );
        }
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let plan = ChaosPlan::uniform(0xFEED, FaultRate::ppm(100_000)); // 10%
        let strikes = (0..10_000u64)
            .filter(|&t| plan.strikes(Seam::Seal, t, 1))
            .count();
        assert!(
            (600..=1_400).contains(&strikes),
            "10% process fired {strikes}/10000 times"
        );
    }

    #[test]
    fn seams_draw_independently() {
        let plan = ChaosPlan::uniform(1, FaultRate::ppm(500_000));
        let seal: Vec<bool> = (0..256).map(|t| plan.strikes(Seam::Seal, t, 0)).collect();
        let snap: Vec<bool> = (0..256)
            .map(|t| plan.strikes(Seam::Snapshot, t, 0))
            .collect();
        assert_ne!(seal, snap, "seams must not mirror each other");
    }

    #[test]
    fn truncation_leaves_a_decodable_prefix_length() {
        let plan = ChaosPlan::uniform(3, FaultRate::ALWAYS);
        let mut bytes: Vec<u8> = (0..200u8).collect();
        assert!(plan.truncate_checkpoint(&mut bytes, 5, 1));
        assert!(bytes.len() >= 8 && bytes.len() < 200);
        // Replay: the same draw truncates to the same length.
        let mut again: Vec<u8> = (0..200u8).collect();
        plan.truncate_checkpoint(&mut again, 5, 1);
        assert_eq!(bytes, again);
    }
}
