//! Fleet-level statistics, rolled up from the per-job
//! [`sofia_core::SofiaStats`].

use std::collections::BTreeMap;

use crate::job::{JobOutcome, JobRecord};

/// Counters for one tenant (or, via [`FleetStats::total`], the fleet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs run to a verdict.
    pub jobs: u64,
    /// Jobs that reached `halt`.
    pub halted: u64,
    /// Jobs whose final verdict was a violation.
    pub violating_jobs: u64,
    /// Individual violation reports (a rebooting retry can log several
    /// per job).
    pub violations: u64,
    /// Jobs that ended in an architectural trap.
    pub traps: u64,
    /// Jobs that exhausted their fuel budget.
    pub out_of_fuel: u64,
    /// Jobs that failed to parse or seal.
    pub seal_failures: u64,
    /// Jobs whose servicing worker faulted on the host side (panic,
    /// failed park/revive) — contained per tenant, never fleet-fatal.
    pub worker_panics: u64,
    /// Jobs whose parked snapshot failed to revive (corrupted bytes or
    /// MAC mismatch under the tenant's keys) — the storage-seam sibling
    /// of `worker_panics`, contained the same way.
    pub revival_failures: u64,
    /// Jobs shed unrun because their queue sojourn exceeded the class
    /// deadline (see [`crate::resilience`]). Not a quarantine trigger.
    pub deadline_missed: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Instruction slots retired.
    pub instret: u64,
    /// Verified-block cache hits across the tenant's machines.
    pub vcache_hits: u64,
    /// Verified-block cache misses across the tenant's machines.
    pub vcache_misses: u64,
    /// Jobs whose sealed image came from the shared image cache.
    pub seal_cache_hits: u64,
    /// Jobs that had to seal their image.
    pub seal_cache_misses: u64,
    /// Jobs re-run under the reboot policy by
    /// [`crate::QuarantinePolicy::RetryWithReboot`].
    pub retries: u64,
    /// Scheduler quanta consumed.
    pub slices: u64,
    /// Scheduler ticks jobs spent queued before first service, summed.
    pub queue_latency_ticks: u64,
}

impl TenantStats {
    /// Verified-block cache hit rate, in `[0, 1]`.
    pub fn vcache_hit_rate(&self) -> f64 {
        let total = self.vcache_hits + self.vcache_misses;
        if total == 0 {
            0.0
        } else {
            self.vcache_hits as f64 / total as f64
        }
    }

    /// Mean scheduler-tick queue latency per job.
    pub fn mean_queue_latency_ticks(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.queue_latency_ticks as f64 / self.jobs as f64
        }
    }

    /// Folds one finished job into the counters.
    pub(crate) fn absorb(&mut self, r: &JobRecord) {
        self.jobs += 1;
        match &r.outcome {
            JobOutcome::Completed(sofia_core::machine::RunOutcome::OutOfFuel) => {
                self.out_of_fuel += 1
            }
            JobOutcome::Completed(o) if o.is_halted() => self.halted += 1,
            JobOutcome::Completed(_) => {}
            JobOutcome::Trapped(_) => self.traps += 1,
            JobOutcome::SealFailed(_) => self.seal_failures += 1,
            JobOutcome::WorkerPanic(_) => self.worker_panics += 1,
            JobOutcome::RevivalFailed(_) => self.revival_failures += 1,
            JobOutcome::DeadlineMissed { .. } => self.deadline_missed += 1,
        }
        if r.outcome.is_violation() {
            self.violating_jobs += 1;
        }
        self.violations += r.violations.len() as u64;
        self.cycles += r.stats.exec.cycles;
        self.instret += r.stats.exec.instret;
        self.vcache_hits += r.stats.vcache_hits;
        self.vcache_misses += r.stats.vcache_misses;
        if matches!(
            r.outcome,
            JobOutcome::SealFailed(_)
                | JobOutcome::WorkerPanic(_)
                | JobOutcome::RevivalFailed(_)
                | JobOutcome::DeadlineMissed { .. }
        ) {
            // No image reached the job; the seal counters stay untouched.
        } else if r.seal_cache_hit {
            self.seal_cache_hits += 1;
        } else {
            self.seal_cache_misses += 1;
        }
        self.retries += r.retried as u64;
        self.slices += r.slices as u64;
        self.queue_latency_ticks += r.queue_latency_ticks();
    }

    fn merge(&mut self, other: &TenantStats) {
        self.jobs += other.jobs;
        self.halted += other.halted;
        self.violating_jobs += other.violating_jobs;
        self.violations += other.violations;
        self.traps += other.traps;
        self.out_of_fuel += other.out_of_fuel;
        self.seal_failures += other.seal_failures;
        self.worker_panics += other.worker_panics;
        self.revival_failures += other.revival_failures;
        self.deadline_missed += other.deadline_missed;
        self.cycles += other.cycles;
        self.instret += other.instret;
        self.vcache_hits += other.vcache_hits;
        self.vcache_misses += other.vcache_misses;
        self.seal_cache_hits += other.seal_cache_hits;
        self.seal_cache_misses += other.seal_cache_misses;
        self.retries += other.retries;
        self.slices += other.slices;
        self.queue_latency_ticks += other.queue_latency_ticks;
    }
}

/// The aggregated view [`crate::Fleet::stats`] returns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// Per-tenant roll-ups, keyed by raw tenant id.
    pub tenants: BTreeMap<u32, TenantStats>,
    /// Batches executed.
    pub batches: u64,
    /// Submissions rejected (unknown, suspended or evicted tenants).
    pub rejected_submissions: u64,
    /// Tenants currently suspended.
    pub suspended_tenants: u64,
    /// Tenants evicted so far.
    pub evicted_tenants: u64,
    /// Virtual-time makespan of the most recent batch, in simulated
    /// cycles (deterministic — see [`crate::schedule`]).
    pub last_makespan_cycles: u64,
    /// Scheduler ticks the most recent batch took.
    pub last_ticks: u64,
    /// Jobs the most recent batch's work-stealing pool moved between
    /// workers (0 under [`crate::PoolMode::SharedQueue`]). Host-side
    /// diagnostics only — steals never affect results or virtual time.
    pub last_steals: u64,
}

impl FleetStats {
    /// The whole-fleet roll-up across tenants.
    pub fn total(&self) -> TenantStats {
        let mut total = TenantStats::default();
        for stats in self.tenants.values() {
            total.merge(stats);
        }
        total
    }
}
