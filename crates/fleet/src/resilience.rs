//! Self-healing policy for the async fleet: deadlines, retry budgets,
//! circuit breaking and graceful degradation — every decision a typed
//! event, never a panic.
//!
//! [`crate::chaos`] decides *what breaks*; this module decides *what
//! the fleet does about it*. The two are deliberately separate: chaos
//! is a test-harness concern (default [`crate::ChaosPlan::none`]),
//! resilience is a serving-policy concern (default
//! [`ResilienceConfig::default`], everything off) — and both defaults
//! compose to a driver bit-identical with the pre-chaos fleet.
//!
//! The recovery ladder, in escalation order:
//!
//! 1. **Retry with backoff** — a job finishing with an infrastructure
//!    fault outcome (`SealFailed` / `WorkerPanic` / `RevivalFailed`) is
//!    re-queued `base << attempt` ticks later (plus seeded jitter) until
//!    its per-job budget runs out. Transient faults cost latency, not
//!    availability.
//! 2. **Deadlines** — queued work whose sojourn exceeds its class
//!    deadline (priced in *virtual* cycles) is shed with a typed
//!    [`crate::JobOutcome::DeadlineMissed`] record instead of rotting in
//!    queue and dragging every later arrival past its own SLO.
//! 3. **Circuit breaker** — a burst of faults inside a sliding window
//!    opens a class-level breaker that sheds best-effort admissions
//!    (weight ≤ `shed_max_weight`) for a cooldown, protecting
//!    interactive SLOs with capacity instead of hope. Open → close
//!    spans are the MTTR the bench reports.
//! 4. **Graceful degradation** — repeated faults on one path flip a
//!    cheaper-but-correct fallback: vcache-off for a tenant whose
//!    snapshots keep failing revival, `CryptoEngine::Scalar` after
//!    bitslice-path seal faults, Farm→Inline sealing after farm faults.
//!    All three fallbacks are bit-identical on the record surface (the
//!    engine and seal-placement invariants are pinned elsewhere), so
//!    degradation trades host throughput, never correctness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::chaos::Seam;
use crate::job::{JobId, TenantId};
use crate::ClassId;

/// Class-level circuit-breaker policy. The breaker is global (faults
/// anywhere open it) but sheds only low-weight classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window, in ticks, over which faults are counted.
    pub window_ticks: u64,
    /// Faults inside the window that trip the breaker open.
    pub fault_threshold: u32,
    /// Ticks the breaker stays open once tripped.
    pub cooldown_ticks: u64,
    /// Classes with WFQ weight ≤ this are shed while open; heavier
    /// (interactive) classes keep admitting.
    pub shed_max_weight: u64,
}

/// Recovery policy knobs. `Default` turns *everything* off so the
/// plain fleet is untouched; [`ResilienceConfig::standard`] is the
/// preset the bench and drills use.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Per-class sojourn deadline in virtual cycles (arrival → finish).
    /// Classes absent from the map have no deadline.
    pub deadlines: BTreeMap<ClassId, u64>,
    /// Retries a job may consume before its fault outcome sticks.
    pub max_retries: u32,
    /// Backoff base: retry `n` waits `base << (n-1)` ticks (saturating).
    pub backoff_base_ticks: u64,
    /// Upper bound on the seeded jitter added to each backoff.
    pub backoff_jitter_ticks: u64,
    /// Circuit-breaker policy; `None` never sheds.
    pub breaker: Option<BreakerConfig>,
    /// After this many revival failures for one tenant, its future jobs
    /// run with the verification cache disabled (`None` = never).
    pub vcache_off_after: Option<u32>,
    /// After this many seal-path faults fleet-wide, image sealing drops
    /// to `CryptoEngine::Scalar` (`None` = never).
    pub scalar_crypto_after: Option<u32>,
    /// After this many seal-path faults fleet-wide, presealing via the
    /// farm is bypassed in favour of inline lane seals (`None` = never).
    pub inline_seal_after: Option<u32>,
}

impl ResilienceConfig {
    /// The survival preset: bounded retries with jittered backoff, a
    /// breaker shedding weight-1 classes, and the full degradation
    /// ladder armed. Deadlines are left to the caller (they depend on
    /// workload scale).
    pub fn standard() -> ResilienceConfig {
        ResilienceConfig {
            deadlines: BTreeMap::new(),
            max_retries: 2,
            backoff_base_ticks: 2,
            backoff_jitter_ticks: 3,
            breaker: Some(BreakerConfig {
                window_ticks: 32,
                fault_threshold: 10,
                cooldown_ticks: 24,
                shed_max_weight: 1,
            }),
            vcache_off_after: Some(2),
            scalar_crypto_after: Some(3),
            inline_seal_after: Some(3),
        }
    }

    pub(crate) fn retryable(&self) -> bool {
        self.max_retries > 0
    }
}

/// A degradation rung that has been stepped down to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeMode {
    /// One tenant's jobs now run with the verification cache off.
    VcacheOff,
    /// Image sealing fell back to the scalar crypto engine.
    ScalarCrypto,
    /// Farm presealing is bypassed; lanes seal inline.
    InlineSeal,
}

/// One fault or recovery decision, in coordinator (deterministic)
/// order. The event log is the accounting surface the acceptance
/// criterion "every fault accounted for by a typed event" pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceEvent {
    /// The chaos plan struck a seam.
    FaultInjected {
        /// Virtual tick of the strike.
        tick: u64,
        /// Which fault process fired.
        seam: Seam,
        /// The struck job, when the seam is job-scoped.
        job: Option<JobId>,
        /// Its tenant.
        tenant: Option<TenantId>,
    },
    /// A faulted job was re-queued instead of finished.
    RetryScheduled {
        /// Tick the fault outcome settled.
        tick: u64,
        /// The retried job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// 1-based retry number.
        attempt: u32,
        /// Tick the retry re-arrives at.
        resume_tick: u64,
    },
    /// A job consumed its whole retry budget; the fault outcome stands.
    RetriesExhausted {
        /// Tick of the final fault.
        tick: u64,
        /// The job whose budget ran out.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// Retries consumed.
        attempts: u32,
    },
    /// A queued job blew its class deadline and was shed with a typed
    /// `DeadlineMissed` record.
    DeadlineShed {
        /// Tick of the shed.
        tick: u64,
        /// The shed job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// Queue cycles it had accrued.
        waited_cycles: u64,
        /// The class deadline it exceeded.
        deadline_cycles: u64,
    },
    /// A job *finished*, but past its class deadline (served late, not
    /// shed — the SLO metric distinguishes the two).
    DeadlineLate {
        /// Tick it finished.
        tick: u64,
        /// The late job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// Arrival → finish, in virtual cycles.
        sojourn_cycles: u64,
        /// The deadline it exceeded.
        deadline_cycles: u64,
    },
    /// The breaker shed an admission.
    LoadShed {
        /// Tick of the rejected admission.
        tick: u64,
        /// The shed tenant.
        tenant: TenantId,
        /// Its class.
        class: ClassId,
    },
    /// Fault pressure tripped the breaker open.
    BreakerOpened {
        /// Tick it opened.
        tick: u64,
        /// Tick it will close (cooldown end).
        until_tick: u64,
        /// Faults inside the window that tripped it.
        recent_faults: u32,
    },
    /// The breaker's cooldown elapsed.
    BreakerClosed {
        /// Tick it closed.
        tick: u64,
        /// Tick it had opened (close − open = recovery span).
        opened_tick: u64,
    },
    /// A degradation rung engaged (each rung fires at most once per
    /// scope — once per tenant for vcache, once fleet-wide otherwise).
    Degraded {
        /// Tick the fallback engaged.
        tick: u64,
        /// Which rung.
        mode: DegradeMode,
        /// The scoped tenant (vcache rung only).
        tenant: Option<TenantId>,
    },
}

/// Counters over the resilience event stream — the roll-up
/// `BENCH_chaos.json` and operators read. Every counter here has a
/// corresponding typed [`ResilienceEvent`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Total chaos strikes across all seams.
    pub faults_injected: u64,
    /// Seal-seam strikes.
    pub seal_faults: u64,
    /// Snapshot-corruption strikes.
    pub snapshot_corruptions: u64,
    /// Worker-stall strikes.
    pub worker_stalls: u64,
    /// Worker-death strikes.
    pub worker_panics_injected: u64,
    /// Checkpoint-truncation strikes (harness-drawn).
    pub checkpoint_truncations: u64,
    /// Storm-burst strikes (harness-drawn).
    pub storm_bursts: u64,
    /// Retries scheduled.
    pub retries_scheduled: u64,
    /// Jobs whose retry budget ran out.
    pub retries_exhausted: u64,
    /// Jobs shed from queue past deadline.
    pub deadline_shed: u64,
    /// Jobs finished past deadline.
    pub deadline_late: u64,
    /// Admissions shed by the open breaker.
    pub load_shed: u64,
    /// Breaker open transitions.
    pub breaker_opens: u64,
    /// Breaker close transitions.
    pub breaker_closes: u64,
    /// Ticks spent open across all open→close spans (MTTR numerator).
    pub breaker_open_ticks: u64,
    /// Tenants degraded to vcache-off.
    pub vcache_off_tenants: u64,
    /// Scalar-crypto fallback engaged (0 or 1).
    pub scalar_fallbacks: u64,
    /// Inline-seal fallback engaged (0 or 1).
    pub inline_seal_fallbacks: u64,
}

/// Degradation actions the executor must apply after feeding a seal
/// fault in (the state machine decides, the executor owns the cache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct DegradeActions {
    pub(crate) engage_scalar: bool,
    pub(crate) engage_inline_seal: bool,
}

/// Coordinator-side resilience state machine. All mutation happens on
/// the driver thread, so the event order is deterministic.
#[derive(Debug)]
pub(crate) struct ResilienceState {
    pub(crate) config: ResilienceConfig,
    pub(crate) stats: ResilienceStats,
    events: Vec<ResilienceEvent>,
    /// Per-job retry attempts consumed (keyed by raw job id).
    attempts: BTreeMap<u64, u32>,
    /// Ticks of recent breaker-feeding faults (sliding window).
    fault_ticks: VecDeque<u64>,
    /// `(opened_tick, until_tick)` while the breaker is open.
    breaker_open: Option<(u64, u64)>,
    /// Seal-path faults seen (drives the crypto/seal rungs).
    seal_faults_seen: u32,
    /// Revival failures per tenant (drives the vcache rung).
    revival_failures: BTreeMap<u32, u32>,
    /// Tenants stepped down to vcache-off.
    vcache_degraded: BTreeSet<u32>,
    scalar_engaged: bool,
    inline_seal_engaged: bool,
}

impl ResilienceState {
    pub(crate) fn new(config: ResilienceConfig) -> ResilienceState {
        ResilienceState {
            config,
            stats: ResilienceStats::default(),
            events: Vec::new(),
            attempts: BTreeMap::new(),
            fault_ticks: VecDeque::new(),
            breaker_open: None,
            seal_faults_seen: 0,
            revival_failures: BTreeMap::new(),
            vcache_degraded: BTreeSet::new(),
            scalar_engaged: false,
            inline_seal_engaged: false,
        }
    }

    pub(crate) fn drain_events(&mut self) -> Vec<ResilienceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Record a chaos strike: one typed event + the per-seam counter.
    /// For [`Seam::Seal`] the return value tells the executor which
    /// degradation rungs just engaged.
    pub(crate) fn note_fault(
        &mut self,
        tick: u64,
        seam: Seam,
        job: Option<JobId>,
        tenant: Option<TenantId>,
    ) -> DegradeActions {
        self.stats.faults_injected += 1;
        match seam {
            Seam::Seal => self.stats.seal_faults += 1,
            Seam::Snapshot => self.stats.snapshot_corruptions += 1,
            Seam::Stall => self.stats.worker_stalls += 1,
            Seam::Panic => self.stats.worker_panics_injected += 1,
            Seam::Checkpoint => self.stats.checkpoint_truncations += 1,
            Seam::Storm => self.stats.storm_bursts += 1,
        }
        self.events.push(ResilienceEvent::FaultInjected {
            tick,
            seam,
            job,
            tenant,
        });
        if seam == Seam::Seal {
            self.seal_faults_seen = self.seal_faults_seen.saturating_add(1);
            return self.seal_degradations(tick);
        }
        DegradeActions::default()
    }

    fn seal_degradations(&mut self, tick: u64) -> DegradeActions {
        let mut actions = DegradeActions::default();
        if let Some(after) = self.config.scalar_crypto_after {
            if !self.scalar_engaged && self.seal_faults_seen >= after {
                self.scalar_engaged = true;
                self.stats.scalar_fallbacks += 1;
                self.events.push(ResilienceEvent::Degraded {
                    tick,
                    mode: DegradeMode::ScalarCrypto,
                    tenant: None,
                });
                actions.engage_scalar = true;
            }
        }
        if let Some(after) = self.config.inline_seal_after {
            if !self.inline_seal_engaged && self.seal_faults_seen >= after {
                self.inline_seal_engaged = true;
                self.stats.inline_seal_fallbacks += 1;
                self.events.push(ResilienceEvent::Degraded {
                    tick,
                    mode: DegradeMode::InlineSeal,
                    tenant: None,
                });
                actions.engage_inline_seal = true;
            }
        }
        actions
    }

    /// Whether farm presealing is currently bypassed.
    pub(crate) fn inline_seal_engaged(&self) -> bool {
        self.inline_seal_engaged
    }

    /// Record a revival failure for `tenant`; returns `true` when this
    /// failure steps the tenant down to vcache-off (fires once).
    pub(crate) fn note_revival_failure(&mut self, tick: u64, tenant: TenantId) -> bool {
        let after = match self.config.vcache_off_after {
            Some(after) => after,
            None => return false,
        };
        let seen = self.revival_failures.entry(tenant.0).or_insert(0);
        *seen = seen.saturating_add(1);
        if *seen >= after && self.vcache_degraded.insert(tenant.0) {
            self.stats.vcache_off_tenants += 1;
            self.events.push(ResilienceEvent::Degraded {
                tick,
                mode: DegradeMode::VcacheOff,
                tenant: Some(tenant),
            });
            return true;
        }
        false
    }

    /// Whether `tenant`'s jobs should run with the vcache disabled.
    pub(crate) fn vcache_degraded(&self, tenant: TenantId) -> bool {
        self.vcache_degraded.contains(&tenant.0)
    }

    /// Feed one fault *record* (settled fault outcome, retried or not)
    /// into the breaker window; may trip it open.
    pub(crate) fn feed_breaker(&mut self, tick: u64) {
        let breaker = match &self.config.breaker {
            Some(b) => b.clone(),
            None => return,
        };
        self.fault_ticks.push_back(tick);
        while let Some(&front) = self.fault_ticks.front() {
            if front + breaker.window_ticks <= tick {
                self.fault_ticks.pop_front();
            } else {
                break;
            }
        }
        let recent = self.fault_ticks.len() as u32;
        if self.breaker_open.is_none() && recent >= breaker.fault_threshold {
            let until = tick + breaker.cooldown_ticks;
            self.breaker_open = Some((tick, until));
            self.stats.breaker_opens += 1;
            self.events.push(ResilienceEvent::BreakerOpened {
                tick,
                until_tick: until,
                recent_faults: recent,
            });
        }
    }

    /// Close the breaker if its cooldown has elapsed (called at the top
    /// of every tick, before admissions).
    pub(crate) fn breaker_tick(&mut self, tick: u64) {
        if let Some((opened, until)) = self.breaker_open {
            if tick >= until {
                self.breaker_open = None;
                self.stats.breaker_closes += 1;
                self.stats.breaker_open_ticks += until - opened;
                self.events.push(ResilienceEvent::BreakerClosed {
                    tick,
                    opened_tick: opened,
                });
            }
        }
    }

    /// Whether an admission for a class of `weight` should be shed.
    pub(crate) fn sheds(&self, weight: u64) -> bool {
        match (&self.breaker_open, &self.config.breaker) {
            (Some(_), Some(b)) => weight <= b.shed_max_weight,
            _ => false,
        }
    }

    pub(crate) fn note_load_shed(&mut self, tick: u64, tenant: TenantId, class: ClassId) {
        self.stats.load_shed += 1;
        self.events.push(ResilienceEvent::LoadShed {
            tick,
            tenant,
            class,
        });
    }

    /// Consume one retry from `job`'s budget. Returns
    /// `Some(attempt_number)` if the job may retry, `None` (plus the
    /// exhaustion event, when the budget existed) if the fault stands.
    pub(crate) fn take_retry(&mut self, tick: u64, job: JobId, tenant: TenantId) -> Option<u32> {
        if !self.config.retryable() {
            return None;
        }
        let used = self.attempts.entry(job.0).or_insert(0);
        if *used < self.config.max_retries {
            *used += 1;
            let attempt = *used;
            self.stats.retries_scheduled += 1;
            Some(attempt)
        } else {
            let attempts = *used;
            self.attempts.remove(&job.0);
            self.stats.retries_exhausted += 1;
            self.events.push(ResilienceEvent::RetriesExhausted {
                tick,
                job,
                tenant,
                attempts,
            });
            None
        }
    }

    pub(crate) fn note_retry_scheduled(
        &mut self,
        tick: u64,
        job: JobId,
        tenant: TenantId,
        attempt: u32,
        resume_tick: u64,
    ) {
        self.events.push(ResilienceEvent::RetryScheduled {
            tick,
            job,
            tenant,
            attempt,
            resume_tick,
        });
    }

    /// Forget a job's retry ledger once it finishes for good.
    pub(crate) fn finish_job(&mut self, job: JobId) {
        self.attempts.remove(&job.0);
    }

    /// The deadline for `class`, if one is configured.
    pub(crate) fn deadline(&self, class: ClassId) -> Option<u64> {
        self.config.deadlines.get(&class).copied()
    }

    pub(crate) fn note_deadline_shed(
        &mut self,
        tick: u64,
        job: JobId,
        tenant: TenantId,
        waited_cycles: u64,
        deadline_cycles: u64,
    ) {
        self.stats.deadline_shed += 1;
        self.events.push(ResilienceEvent::DeadlineShed {
            tick,
            job,
            tenant,
            waited_cycles,
            deadline_cycles,
        });
    }

    pub(crate) fn note_deadline_late(
        &mut self,
        tick: u64,
        job: JobId,
        tenant: TenantId,
        sojourn_cycles: u64,
        deadline_cycles: u64,
    ) {
        self.stats.deadline_late += 1;
        self.events.push(ResilienceEvent::DeadlineLate {
            tick,
            job,
            tenant,
            sojourn_cycles,
            deadline_cycles,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = ResilienceConfig::default();
        assert!(!cfg.retryable());
        assert!(cfg.deadlines.is_empty());
        assert!(cfg.breaker.is_none());
        let mut state = ResilienceState::new(cfg);
        state.feed_breaker(5);
        assert!(!state.sheds(1));
        assert!(state.take_retry(5, JobId(1), TenantId(1)).is_none());
        assert!(state.drain_events().is_empty());
        assert_eq!(state.stats, ResilienceStats::default());
    }

    #[test]
    fn breaker_opens_sheds_and_closes() {
        let mut cfg = ResilienceConfig::standard();
        cfg.breaker = Some(BreakerConfig {
            window_ticks: 10,
            fault_threshold: 3,
            cooldown_ticks: 5,
            shed_max_weight: 1,
        });
        let mut state = ResilienceState::new(cfg);
        state.feed_breaker(1);
        state.feed_breaker(2);
        assert!(!state.sheds(1));
        state.feed_breaker(3);
        assert!(state.sheds(1), "third fault in window trips the breaker");
        assert!(!state.sheds(4), "heavy classes keep admitting");
        state.breaker_tick(7);
        assert!(state.sheds(1), "cooldown not elapsed");
        state.breaker_tick(8);
        assert!(!state.sheds(1), "cooldown elapsed");
        assert_eq!(state.stats.breaker_opens, 1);
        assert_eq!(state.stats.breaker_closes, 1);
        assert_eq!(state.stats.breaker_open_ticks, 5);
        let events = state.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ResilienceEvent::BreakerOpened { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ResilienceEvent::BreakerClosed { .. })));
    }

    #[test]
    fn retry_budget_is_per_job_and_exhausts() {
        let mut cfg = ResilienceConfig::standard();
        cfg.max_retries = 2;
        let mut state = ResilienceState::new(cfg);
        let (job, tenant) = (JobId(9), TenantId(3));
        assert_eq!(state.take_retry(1, job, tenant), Some(1));
        assert_eq!(state.take_retry(2, job, tenant), Some(2));
        assert_eq!(state.take_retry(3, job, tenant), None);
        assert_eq!(state.stats.retries_scheduled, 2);
        assert_eq!(state.stats.retries_exhausted, 1);
        // A different job has its own budget.
        assert_eq!(state.take_retry(4, JobId(10), tenant), Some(1));
    }

    #[test]
    fn seal_faults_walk_the_degradation_ladder_once() {
        let mut cfg = ResilienceConfig::standard();
        cfg.scalar_crypto_after = Some(2);
        cfg.inline_seal_after = Some(3);
        let mut state = ResilienceState::new(cfg);
        let a1 = state.note_fault(1, Seam::Seal, None, None);
        assert!(!a1.engage_scalar && !a1.engage_inline_seal);
        let a2 = state.note_fault(2, Seam::Seal, None, None);
        assert!(a2.engage_scalar && !a2.engage_inline_seal);
        let a3 = state.note_fault(3, Seam::Seal, None, None);
        assert!(!a3.engage_scalar && a3.engage_inline_seal);
        let a4 = state.note_fault(4, Seam::Seal, None, None);
        assert_eq!(a4, DegradeActions::default(), "each rung fires once");
        assert_eq!(state.stats.scalar_fallbacks, 1);
        assert_eq!(state.stats.inline_seal_fallbacks, 1);
        assert!(state.inline_seal_engaged());
    }

    #[test]
    fn vcache_rung_is_per_tenant() {
        let mut cfg = ResilienceConfig::standard();
        cfg.vcache_off_after = Some(2);
        let mut state = ResilienceState::new(cfg);
        assert!(!state.note_revival_failure(1, TenantId(7)));
        assert!(state.note_revival_failure(2, TenantId(7)));
        assert!(!state.note_revival_failure(3, TenantId(7)), "fires once");
        assert!(state.vcache_degraded(TenantId(7)));
        assert!(!state.vcache_degraded(TenantId(8)));
        assert_eq!(state.stats.vcache_off_tenants, 1);
    }

    #[test]
    fn every_counter_bump_has_a_typed_event() {
        let mut state = ResilienceState::new(ResilienceConfig::standard());
        state.note_fault(1, Seam::Snapshot, Some(JobId(1)), Some(TenantId(1)));
        state.note_deadline_shed(2, JobId(2), TenantId(1), 900, 500);
        state.note_deadline_late(3, JobId(3), TenantId(1), 700, 500);
        state.note_load_shed(4, TenantId(2), ClassId(0));
        let events = state.drain_events();
        assert_eq!(events.len(), 4);
        assert_eq!(state.stats.faults_injected, 1);
        assert_eq!(state.stats.deadline_shed, 1);
        assert_eq!(state.stats.deadline_late, 1);
        assert_eq!(state.stats.load_shed, 1);
    }
}
