//! The fleet service: tenants, the shared seal cache, the worker pool
//! and the two scheduling disciplines.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use sofia_core::machine::{RunOutcome, SliceOutcome, SofiaMachine};
use sofia_core::{ResetPolicy, SofiaConfig};
use sofia_crypto::KeySet;
use sofia_transform::cache::{image_key, ImageCache, ImageCacheStats, ImageKey};
use sofia_transform::SecureImage;

use crate::checkpoint::{AdoptError, JobCheckpoint};
use crate::job::{JobId, JobOutcome, JobRecord, JobSpec, Sabotage, TenantId};
use crate::quarantine::{fold_policy, QuarantinePolicy, TenantState};
use crate::schedule::price_schedule;
use crate::seal_farm::{SealFarm, SealVerdict};
use crate::stats::{FleetStats, TenantStats};

/// How the worker pool shares machine time between jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Each worker runs its job to a verdict before taking the next —
    /// minimal overhead, but a long job monopolises its worker.
    #[default]
    RunToCompletion,
    /// Preemptive round-robin on the engine's fuel seam: every quantum a
    /// job gets at most `slice` instruction slots, then re-queues behind
    /// the waiting jobs. A long ADPCM job cannot starve short jobs.
    FuelSliced {
        /// Instruction slots per scheduler quantum (clamped to ≥ 1).
        slice: u64,
    },
}

/// How queued jobs are distributed across the worker threads.
///
/// Purely a **host**-side choice: scheduling decides *when* a job's
/// blocks are simulated, never *what* they compute, so the fleet ≡ serial
/// bit-identity invariant holds under either pool (pinned by running the
/// whole fleet suite against the work-stealing default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolMode {
    /// One shared FIFO protected by a single lock — every pop and every
    /// re-queue of every worker serialises on it. Kept as the contention
    /// baseline the host bench measures against.
    SharedQueue,
    /// Per-worker deques with work stealing: a worker serves the front of
    /// its own deque, re-queues preempted jobs to its own back, and only
    /// when it runs dry steals from the back of a sibling — so the queue
    /// lock a worker touches in steady state is almost always its own,
    /// uncontended one (the default).
    #[default]
    WorkStealing,
}

/// How a batch's cold images get sealed.
///
/// Purely a **host**-side choice, like [`PoolMode`]: seals are
/// deterministic, so both modes produce bit-identical images, job
/// records, per-tenant statistics and cache counters (pinned by the
/// workspace `seal_farm` suite). The modes only move *when* the
/// transformer runs and on which thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SealMode {
    /// Each job seals lazily on its first quantum. A multi-tenant
    /// cold-start wave convoys: workers stall on their own jobs'
    /// installs, and duplicate requests queue on the cache's
    /// single-flight marker. Kept as the contention baseline the host
    /// bench measures against.
    Inline,
    /// Batch admission pre-seals the wave's distinct cold images across
    /// a [`crate::SealFarm`] before any job runs (the default). Jobs
    /// then find their image ready — the first job of each freshly
    /// sealed image adopts it directly, every other job takes the now
    /// guaranteed-warm cache path, keeping attribution and cache
    /// counters bit-identical to [`SealMode::Inline`].
    #[default]
    Farm,
}

/// Full configuration of a [`Fleet`].
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Worker threads in the pool (clamped to ≥ 1). Also the worker
    /// count of the virtual-time schedule model and of the seal farm.
    pub workers: usize,
    /// Scheduling discipline.
    pub mode: SchedMode,
    /// Host work-distribution strategy for the worker pool.
    pub pool: PoolMode,
    /// Host strategy for sealing a batch's cold images.
    pub seal: SealMode,
    /// Containment for violating tenants.
    pub quarantine: QuarantinePolicy,
    /// The SOFIA machine configuration every job runs under.
    pub sofia: SofiaConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            mode: SchedMode::default(),
            pool: PoolMode::default(),
            seal: SealMode::default(),
            quarantine: QuarantinePolicy::default(),
            sofia: SofiaConfig::default(),
        }
    }
}

/// Why the fleet refused an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
    /// [`Fleet::register_tenant`] for an id already present.
    TenantExists(TenantId),
    /// The tenant is suspended by its quarantine.
    Quarantined(TenantId),
    /// The tenant was evicted; this fleet will not serve it again.
    Evicted(TenantId),
    /// No job with this id is queued (it finished, was checkpointed
    /// away, or never existed).
    UnknownJob(JobId),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownTenant(t) => write!(f, "{t} is not registered"),
            FleetError::TenantExists(t) => write!(f, "{t} is already registered"),
            FleetError::Quarantined(t) => write!(f, "{t} is quarantined"),
            FleetError::Evicted(t) => write!(f, "{t} was evicted"),
            FleetError::UnknownJob(j) => write!(f, "{j} is not queued"),
        }
    }
}

impl std::error::Error for FleetError {}

struct Tenant {
    keys: KeySet,
    state: TenantState,
    stats: TenantStats,
}

/// Locks a mutex, shrugging off poisoning. Every shared structure the
/// pools guard (queues, record slots, settled counters) is only ever
/// mutated by whole-value pushes and assignments, so a panic on another
/// worker cannot leave it half-written — the poison flag carries no
/// information here, and propagating it is exactly the cascade the
/// panic-isolation suite pins against: one bad job must not take the
/// batch (or a later batch on the same fleet) down with it.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Mutex::into_inner`] with the same poison-shrugging rationale as
/// [`lock_clean`].
pub(crate) fn into_clean<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One queued job plus the run state it accumulates across quanta.
///
/// `pub(crate)` seam: the batch [`Fleet`] and the async
/// [`crate::AsyncFleet`] driver share this state machine (and
/// [`service_quantum`]), which is what keeps their per-job execution —
/// sealing, sabotage, slicing, reboot-retries, record assembly —
/// bit-identical by construction.
pub(crate) struct JobRun {
    pub(crate) idx: usize,
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) keys: KeySet,
    pub(crate) image: Option<Arc<SecureImage>>,
    pub(crate) machine: Option<SofiaMachine>,
    pub(crate) remaining: u64,
    pub(crate) seal_cache_hit: bool,
    pub(crate) retried: bool,
    /// Violations and statistics of the first (violating) run, parked
    /// while the reboot-retry runs — merged into the final record.
    pub(crate) prior: Option<(Vec<sofia_core::Violation>, sofia_core::SofiaStats)>,
    pub(crate) slices: u32,
    pub(crate) slice_cycles: Vec<u64>,
    /// Quanta served in the current batch call — the counter
    /// [`Fleet::run_batch_capped`] caps to suspend jobs mid-flight.
    pub(crate) quanta_this_batch: u32,
    /// Per-run SOFIA configuration override. `None` (always, outside
    /// the resilience ladder) means the fleet-wide `config.sofia` —
    /// the async driver sets this for tenants degraded to vcache-off
    /// after repeated revival failures (see [`crate::resilience`]).
    pub(crate) sofia_override: Option<SofiaConfig>,
}

impl JobRun {
    /// A fresh, never-serviced run for an admitted spec.
    pub(crate) fn new(idx: usize, id: JobId, keys: KeySet, spec: JobSpec) -> JobRun {
        let remaining = spec.fuel;
        JobRun {
            idx,
            id,
            keys,
            spec,
            image: None,
            machine: None,
            remaining,
            seal_cache_hit: false,
            retried: false,
            prior: None,
            slices: 0,
            slice_cycles: Vec::new(),
            quanta_this_batch: 0,
            sofia_override: None,
        }
    }

    /// The SOFIA configuration this run's machines are built under.
    pub(crate) fn effective_sofia<'a>(&'a self, config: &'a FleetConfig) -> &'a SofiaConfig {
        self.sofia_override.as_ref().unwrap_or(&config.sofia)
    }
}

/// The multi-tenant sealed-program execution service.
///
/// Tenants register their device [`KeySet`]; jobs carry a program and a
/// fuel budget. Each tenant's program is sealed **once** into the shared
/// [`ImageCache`] under that tenant's keys, and jobs run across a
/// `std::thread` worker pool in one of two scheduling modes.
///
/// **Determinism invariant** (pinned by the `fleet` test suites): for any
/// job set, fleet execution at any worker count and in either scheduling
/// mode produces bit-identical per-job results, traps and violation
/// reports to serial single-machine execution. Scheduling decides *when*
/// a job's blocks run, never *what* they compute: each job owns its
/// machine, preemption happens only between blocks on the engine's
/// metered fuel seam, and quarantine folds in submission order after the
/// batch.
///
/// # Examples
///
/// ```
/// use sofia_crypto::KeySet;
/// use sofia_fleet::{Fleet, FleetConfig, JobSpec, SchedMode, TenantId};
///
/// let mut fleet = Fleet::new(FleetConfig {
///     workers: 2,
///     mode: SchedMode::FuelSliced { slice: 500 },
///     ..Default::default()
/// });
/// let alice = TenantId(1);
/// fleet.register_tenant(alice, KeySet::from_seed(0xA11CE))?;
/// fleet.submit(JobSpec::new(
///     alice,
///     "main: li t0, 6
///            li t1, 7
///            mul t2, t0, t1
///            li a0, 0xFFFF0000
///            sw t2, 0(a0)
///            halt",
///     100_000,
/// ))?;
/// let records = fleet.run_batch();
/// assert!(records[0].outcome.is_halted());
/// assert_eq!(records[0].out_words, vec![42]);
/// # Ok::<(), sofia_fleet::FleetError>(())
/// ```
pub struct Fleet {
    config: FleetConfig,
    cache: ImageCache,
    tenants: BTreeMap<u32, Tenant>,
    queue: Vec<JobRun>,
    next_job: u64,
    batches: u64,
    rejected: u64,
    evicted: u64,
    last_makespan_cycles: u64,
    last_ticks: u64,
    last_steals: u64,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Fleet {
        Fleet {
            cache: ImageCache::with_format(sofia_transform::BlockFormat::default()),
            config,
            tenants: BTreeMap::new(),
            queue: Vec::new(),
            next_job: 0,
            batches: 0,
            rejected: 0,
            evicted: 0,
            last_makespan_cycles: 0,
            last_ticks: 0,
            last_steals: 0,
        }
    }

    /// Onboards a tenant with its device keys.
    ///
    /// # Errors
    ///
    /// Rejects ids already registered (including evicted ones — an
    /// evicted tenant's id is burnt for this fleet).
    pub fn register_tenant(&mut self, id: TenantId, keys: KeySet) -> Result<(), FleetError> {
        if self.tenants.contains_key(&id.0) {
            return Err(FleetError::TenantExists(id));
        }
        self.tenants.insert(
            id.0,
            Tenant {
                keys,
                state: TenantState::Active,
                stats: TenantStats::default(),
            },
        );
        Ok(())
    }

    /// Queues a job for the next batch.
    ///
    /// Quarantine is an admission decision: jobs already accepted always
    /// run (keeping batch results independent of worker interleaving),
    /// while a suspended or evicted tenant is rejected here.
    ///
    /// # Errors
    ///
    /// Rejects unknown, suspended and evicted tenants.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, FleetError> {
        let tenant = match self.tenants.get(&spec.tenant.0) {
            None => {
                self.rejected += 1;
                return Err(FleetError::UnknownTenant(spec.tenant));
            }
            Some(t) => t,
        };
        match tenant.state {
            TenantState::Active => {}
            TenantState::Suspended => {
                self.rejected += 1;
                return Err(FleetError::Quarantined(spec.tenant));
            }
            TenantState::Evicted => {
                self.rejected += 1;
                return Err(FleetError::Evicted(spec.tenant));
            }
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue
            .push(JobRun::new(self.queue.len(), id, tenant.keys.clone(), spec));
        Ok(id)
    }

    /// Runs every queued job across the worker pool and returns the
    /// records in submission order, then folds statistics and quarantine
    /// transitions (also in submission order — worker interleaving never
    /// influences them).
    pub fn run_batch(&mut self) -> Vec<JobRecord> {
        self.run_batch_capped(u32::MAX)
    }

    /// [`Fleet::run_batch`] with a per-job quantum cap: every queued job
    /// is served at most `max_quanta` scheduler quanta this call; a job
    /// still runnable after its cap is **suspended in place** — it stays
    /// queued (machine state intact, between blocks) for the next batch
    /// call, or for [`Fleet::checkpoint_job`] to carry it to another
    /// fleet. Finished jobs are returned in submission order, and only
    /// they fold into statistics/quarantine.
    ///
    /// Which jobs suspend is a per-job deterministic function of the job
    /// set and the cap (a job runs `min(max_quanta, quanta_to_finish)`
    /// quanta regardless of worker interleaving), so the fleet ≡ serial
    /// bit-identity invariant extends to capped batches unchanged. Under
    /// [`SchedMode::RunToCompletion`] a quantum is the whole job, so any
    /// cap ≥ 1 behaves like an uncapped batch.
    pub fn run_batch_capped(&mut self, max_quanta: u32) -> Vec<JobRecord> {
        for run in &mut self.queue {
            run.quanta_this_batch = 0;
        }
        let mut runs = std::mem::take(&mut self.queue);
        self.batches += 1;
        if runs.is_empty() {
            self.last_makespan_cycles = 0;
            self.last_ticks = 0;
            self.last_steals = 0;
            return Vec::new();
        }
        // Farm mode: pre-seal the wave's distinct cold images in
        // parallel, before any worker takes a job. The first job of each
        // sealed image adopts it (with the farm's fresh/shared verdict as
        // its cache attribution); every later duplicate is left to the
        // normal cache path, which the farm just guaranteed is warm —
        // so records and cache counters are bit-identical to
        // [`SealMode::Inline`], only the convoy is gone. Failed seals
        // assign nothing: the job path re-attempts and fails identically
        // (seals are deterministic), preserving record parity.
        if self.config.seal == SealMode::Farm {
            let requests: Vec<(&KeySet, &str)> = runs
                .iter()
                .filter(|r| r.machine.is_none() && r.image.is_none())
                .map(|r| (&r.keys, r.spec.source.as_str()))
                .collect();
            if !requests.is_empty() {
                let farm = SealFarm::new(&self.cache, self.config.workers);
                let wave = farm.seal_wave(&requests);
                let mut claimed: HashSet<ImageKey> = HashSet::new();
                for run in &mut runs {
                    if run.machine.is_some() || run.image.is_some() {
                        continue;
                    }
                    let key = image_key(&run.keys, &run.spec.source);
                    if !claimed.insert(key) {
                        continue;
                    }
                    if let Some(SealVerdict {
                        image: Ok(image),
                        fresh,
                    }) = wave.verdicts.get(&key)
                    {
                        run.image = Some(Arc::clone(image));
                        run.seal_cache_hit = !fresh;
                    }
                }
            }
        }
        let n = runs.len();
        let workers = self.config.workers.max(1).min(n);
        let slots: Mutex<Vec<Option<JobRecord>>> = Mutex::new((0..n).map(|_| None).collect());
        let suspended: Mutex<Vec<JobRun>> = Mutex::new(Vec::new());
        let cap = max_quanta.max(1);
        self.last_steals = match self.config.pool {
            PoolMode::SharedQueue => {
                run_pool_shared(
                    runs,
                    workers,
                    &slots,
                    &suspended,
                    cap,
                    &self.config,
                    &self.cache,
                );
                0
            }
            PoolMode::WorkStealing => run_pool_stealing(
                runs,
                workers,
                &slots,
                &suspended,
                cap,
                &self.config,
                &self.cache,
            ),
        };
        // Suspended jobs go back on the queue in submission order, ready
        // for the next batch call or a checkpoint.
        let mut parked = into_clean(suspended);
        parked.sort_by_key(|r| r.idx);
        for (i, mut run) in parked.into_iter().enumerate() {
            run.idx = i;
            self.queue.push(run);
        }
        let mut records: Vec<JobRecord> = into_clean(slots).into_iter().flatten().collect();
        // Every job settles exactly one way: a record or a suspension.
        // A mismatch can only mean a worker-pool bug lost a run — fail
        // loudly rather than silently dropping a job (and possibly a
        // violation verdict) from the fold below.
        assert_eq!(
            records.len() + self.queue.len(),
            n,
            "fleet batch lost a job: {} records + {} suspended != {} submitted",
            records.len(),
            self.queue.len(),
            n
        );

        // Price the batch on the virtual-time model (host-independent).
        let quanta: Vec<Vec<u64>> = records.iter().map(|r| r.slice_cycles.clone()).collect();
        let schedule = price_schedule(self.config.workers.max(1), &quanta);
        for (record, ticks) in records.iter_mut().zip(&schedule.per_job) {
            record.start_tick = ticks.start;
            record.end_tick = ticks.end;
            // Batch jobs all arrive at tick 0 of the batch's virtual
            // clock, so the sojourn is the completion instant itself.
            record.sojourn_cycles = ticks.end_cycles;
        }
        self.last_makespan_cycles = schedule.makespan_cycles;
        self.last_ticks = schedule.ticks;

        // Deterministic fold: stats and quarantine in submission order.
        for record in &records {
            let Some(tenant) = self.tenants.get_mut(&record.tenant.0) else {
                // Admission guarantees every record's tenant is
                // registered; an unknown one here is a fleet bug.
                debug_assert!(false, "record for unregistered {}", record.tenant);
                continue;
            };
            tenant.stats.absorb(record);
            let fold = fold_policy(
                self.config.quarantine,
                &mut tenant.state,
                needs_containment(record),
            );
            if fold.evicted_now {
                self.evicted += 1;
            }
            if fold.purge {
                // Every evicted-tenant record purges, not just the
                // eviction: a job suspended by `run_batch_capped` and
                // resumed after its tenant's eviction re-seals the image
                // this very batch, and the entry must not outlive the
                // fold.
                self.cache.purge(&tenant.keys);
            }
        }
        records
    }

    /// Lifts a suspension (an operator decision after investigating).
    /// Returns whether the tenant went back to [`TenantState::Active`]
    /// (evicted tenants never do).
    pub fn release(&mut self, id: TenantId) -> bool {
        match self.tenants.get_mut(&id.0) {
            Some(t) if t.state == TenantState::Suspended => {
                t.state = TenantState::Active;
                true
            }
            _ => false,
        }
    }

    /// A tenant's service state.
    pub fn tenant_state(&self, id: TenantId) -> Option<TenantState> {
        self.tenants.get(&id.0).map(|t| t.state)
    }

    /// Jobs queued for the next batch.
    pub fn pending_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Ids of the queued jobs, in service order — fresh submissions and
    /// jobs suspended by [`Fleet::run_batch_capped`] alike.
    pub fn queued_jobs(&self) -> Vec<JobId> {
        self.queue.iter().map(|r| r.id).collect()
    }

    /// Removes a queued job and packages everything another fleet needs
    /// to finish it: the spec (tenant, source, fuel, sabotage), the
    /// accumulated scheduling history, and — if the job has already run
    /// — the suspended machine as a [`sofia_core::MachineSnapshot`].
    /// The ciphertext stays behind: the adopting fleet re-seals the
    /// source from its tenant's [`KeySet`] through its own image cache,
    /// and the image MACs cover the code in transit.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownJob`] if `id` is not queued (it finished,
    /// was already checkpointed, or never existed).
    pub fn checkpoint_job(&mut self, id: JobId) -> Result<JobCheckpoint, FleetError> {
        let pos = self
            .queue
            .iter()
            .position(|r| r.id == id)
            .ok_or(FleetError::UnknownJob(id))?;
        let run = self.queue.remove(pos);
        for (i, r) in self.queue.iter_mut().enumerate() {
            r.idx = i;
        }
        Ok(JobCheckpoint {
            tenant: run.spec.tenant,
            source: run.spec.source,
            fuel: run.spec.fuel,
            sabotage: run.spec.sabotage,
            remaining: run.remaining,
            retried: run.retried,
            prior: run.prior,
            slices: run.slices,
            slice_cycles: run.slice_cycles,
            machine: run.machine.as_ref().map(|m| m.snapshot(run.remaining)),
        })
    }

    /// Adopts a job checkpointed out of another fleet: re-seals the
    /// tenant's program through this fleet's [`ImageCache`] (the tenant
    /// must be registered here with the same device keys for the resumed
    /// edge to verify), restores the suspended machine against the
    /// freshly sealed image, and queues the job to finish in the next
    /// batch. Returns the job's id in *this* fleet.
    ///
    /// Restoration re-verifies every warm verified-block-cache line
    /// against the re-sealed image, so a checkpoint cannot smuggle
    /// unverified plaintext between fleets; a tampered resume point is
    /// caught by edge verification on the job's first resumed fetch.
    ///
    /// # Errors
    ///
    /// [`AdoptError`]: unknown/quarantined/evicted tenant, seal failure,
    /// or a snapshot that fails restoration.
    pub fn adopt_job(&mut self, ckpt: JobCheckpoint) -> Result<JobId, AdoptError> {
        let tenant = match self.tenants.get(&ckpt.tenant.0) {
            None => {
                self.rejected += 1;
                return Err(AdoptError::Fleet(FleetError::UnknownTenant(ckpt.tenant)));
            }
            Some(t) => t,
        };
        match tenant.state {
            TenantState::Active => {}
            TenantState::Suspended => {
                self.rejected += 1;
                return Err(AdoptError::Fleet(FleetError::Quarantined(ckpt.tenant)));
            }
            TenantState::Evicted => {
                self.rejected += 1;
                return Err(AdoptError::Fleet(FleetError::Evicted(ckpt.tenant)));
            }
        }
        let keys = tenant.keys.clone();
        let (image, machine, seal_cache_hit) = match &ckpt.machine {
            None => (None, None, false),
            Some(snap) => {
                let (image, hit) = self
                    .cache
                    .get_or_seal_traced(&keys, &ckpt.source)
                    .map_err(AdoptError::Seal)?;
                let machine = restore_against(&image, &keys, snap, ckpt.sabotage)
                    .map_err(AdoptError::Restore)?;
                (Some(image), Some(machine), hit)
            }
        };
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue.push(JobRun {
            idx: self.queue.len(),
            id,
            spec: JobSpec {
                tenant: ckpt.tenant,
                source: ckpt.source,
                fuel: ckpt.fuel,
                sabotage: ckpt.sabotage,
            },
            keys,
            image,
            machine,
            remaining: ckpt.remaining,
            seal_cache_hit,
            retried: ckpt.retried,
            prior: ckpt.prior,
            slices: ckpt.slices,
            slice_cycles: ckpt.slice_cycles,
            quanta_this_batch: 0,
            sofia_override: None,
        });
        Ok(id)
    }

    /// The aggregated fleet statistics.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            tenants: self.tenants.iter().map(|(&id, t)| (id, t.stats)).collect(),
            batches: self.batches,
            rejected_submissions: self.rejected,
            suspended_tenants: self
                .tenants
                .values()
                .filter(|t| t.state == TenantState::Suspended)
                .count() as u64,
            evicted_tenants: self.evicted,
            last_makespan_cycles: self.last_makespan_cycles,
            last_ticks: self.last_ticks,
            last_steals: self.last_steals,
        }
    }

    /// The shared seal cache's counters.
    pub fn seal_cache_stats(&self) -> ImageCacheStats {
        self.cache.stats()
    }

    /// The configuration the fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }
}

/// Restores a suspended machine against its sealed image, re-applying
/// any harness sabotage first: the machine's ROM is the image *as the
/// job ran it*, and the restore path re-verifies warm cache lines
/// against that ROM. Shared by [`Fleet::adopt_job`] (cross-fleet
/// migration) and the async driver's park/revive path.
pub(crate) fn restore_against(
    image: &SecureImage,
    keys: &KeySet,
    snap: &sofia_core::MachineSnapshot,
    sabotage: Option<Sabotage>,
) -> Result<SofiaMachine, sofia_core::RestoreError> {
    match sabotage {
        Some(Sabotage::FlipRomWord { word, mask }) => {
            let mut tampered = image.clone();
            if let Some(w) = tampered.ctext.get_mut(word) {
                *w ^= mask;
            }
            SofiaMachine::restore(&tampered, keys, snap)
        }
        Some(Sabotage::PanicInWorker) | None => SofiaMachine::restore(image, keys, snap),
    }
}

// Compile-time guarantee: the service and its job records cross thread
// boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Fleet>();
    assert_send::<JobRecord>();
};

/// The shared-queue pool: one FIFO, one lock, every worker on it. A job
/// is *settled* when it finishes (record written) or hits the quantum
/// cap (parked in `suspended`); the batch ends when all `n` settle.
fn run_pool_shared(
    runs: Vec<JobRun>,
    workers: usize,
    slots: &Mutex<Vec<Option<JobRecord>>>,
    suspended: &Mutex<Vec<JobRun>>,
    cap: u32,
    config: &FleetConfig,
    cache: &ImageCache,
) {
    let n = runs.len();
    let queue = Mutex::new(VecDeque::from(runs));
    let wakeup = Condvar::new();
    let settled = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut guard = lock_clean(&queue);
                loop {
                    if let Some(mut run) = guard.pop_front() {
                        drop(guard);
                        match catch_quantum(&mut run, config, cache) {
                            Some(record) => {
                                lock_clean(slots)[run.idx] = Some(record);
                                settled.fetch_add(1, Ordering::SeqCst);
                                // The batch may be complete: wake the
                                // parked workers so they can exit. The
                                // lock is held while notifying so no
                                // worker can slip between its emptiness
                                // check and `wait` and sleep through
                                // the final notification.
                                let _guard = lock_clean(&queue);
                                wakeup.notify_all();
                            }
                            None if run.quanta_this_batch >= cap => {
                                lock_clean(suspended).push(run);
                                settled.fetch_add(1, Ordering::SeqCst);
                                let _guard = lock_clean(&queue);
                                wakeup.notify_all();
                            }
                            None => {
                                lock_clean(&queue).push_back(run);
                                wakeup.notify_one();
                            }
                        }
                        guard = lock_clean(&queue);
                    } else if settled.load(Ordering::SeqCst) >= n {
                        break;
                    } else {
                        // Transiently empty: park until another worker
                        // re-queues a preempted job or ends the batch.
                        // Poisoning is shrugged off like everywhere else
                        // in the pool (see `lock_clean`).
                        guard = wakeup
                            .wait(guard)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            });
        }
    });
}

/// The work-stealing pool: jobs are dealt round-robin onto per-worker
/// deques; each worker serves its own deque front (FIFO — preempted jobs
/// re-queue to its own back, preserving round-robin service within a
/// worker) and steals from a sibling's back only when its own runs dry.
/// Returns the number of steals.
///
/// **Parking protocol** (no lost wakeups): every push is followed by a
/// notification taken *under the sync lock*, and a worker about to park
/// re-checks every deque while already *holding* the sync lock — so a
/// concurrent re-queue either lands before that re-check (the parker sees
/// the job) or its notification is forced to wait for the mutex until the
/// parker is actually waiting.
fn run_pool_stealing(
    runs: Vec<JobRun>,
    workers: usize,
    slots: &Mutex<Vec<Option<JobRecord>>>,
    suspended: &Mutex<Vec<JobRun>>,
    cap: u32,
    config: &FleetConfig,
    cache: &ImageCache,
) -> u64 {
    let n = runs.len();
    let mut deques: Vec<Mutex<VecDeque<JobRun>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, run) in runs.into_iter().enumerate() {
        deques[i % workers]
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(run);
    }
    let deques = &deques;
    let sync = Mutex::new(0usize); // settled-job count (finished + suspended)
    let wakeup = Condvar::new();
    let steals = AtomicU64::new(0);
    let lock_deque = |w: usize| lock_clean(&deques[w]);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (sync, wakeup, steals) = (&sync, &wakeup, &steals);
            scope.spawn(move || loop {
                // Own-deque pop in its own scope: the guard must drop
                // before any steal attempt, or two workers raiding each
                // other would hold their own lock while waiting for the
                // sibling's.
                let mut next = { lock_deque(w).pop_front() };
                if next.is_none() {
                    next = (1..workers).find_map(|i| {
                        let victim = (w + i) % workers;
                        let stolen = { lock_deque(victim).pop_back() };
                        if stolen.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        stolen
                    });
                }
                match next {
                    Some(mut run) => match catch_quantum(&mut run, config, cache) {
                        Some(record) => {
                            lock_clean(slots)[run.idx] = Some(record);
                            let mut settled = lock_clean(sync);
                            *settled += 1;
                            wakeup.notify_all();
                        }
                        None if run.quanta_this_batch >= cap => {
                            lock_clean(suspended).push(run);
                            let mut settled = lock_clean(sync);
                            *settled += 1;
                            wakeup.notify_all();
                        }
                        None => {
                            lock_deque(w).push_back(run);
                            let _sync = lock_clean(sync);
                            wakeup.notify_one();
                        }
                    },
                    None => {
                        let mut settled = lock_clean(sync);
                        loop {
                            if *settled >= n {
                                return;
                            }
                            if (0..workers).any(|d| !lock_deque(d).is_empty()) {
                                break; // re-queued while we were scanning
                            }
                            settled = wakeup
                                .wait(settled)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    }
                }
            });
        }
    });
    steals.load(Ordering::Relaxed)
}

/// [`service_quantum`] behind a panic barrier: a panic anywhere in the
/// quantum (the simulator, the sealer, a deliberate
/// [`Sabotage::PanicInWorker`]) is caught on the worker and converted
/// into a typed [`JobOutcome::WorkerPanic`] record, so one bad job
/// degrades to a quarantined per-tenant failure instead of unwinding
/// through the pool, poisoning the shared queue/record locks and
/// aborting every other worker (plus every later batch on the same
/// fleet) — the lock-poisoning cascade this PR's regression suite pins
/// against.
pub(crate) fn catch_quantum(
    run: &mut JobRun,
    config: &FleetConfig,
    cache: &ImageCache,
) -> Option<JobRecord> {
    let slices_before = run.slices;
    // `AssertUnwindSafe` is honest here: on unwind the run's machine is
    // discarded wholesale below, so no torn machine state is ever
    // observed.
    match std::panic::catch_unwind(AssertUnwindSafe(|| service_quantum(run, config, cache))) {
        Ok(settled) => settled,
        Err(payload) => {
            run.machine = None;
            if run.slices == slices_before {
                // The panic pre-empted the quantum's own accounting: a
                // zero-cost quantum keeps the schedule model giving the
                // job its admission tick (same as a seal failure).
                run.slices += 1;
                run.slice_cycles.push(0);
            }
            Some(finish(run, JobOutcome::WorkerPanic(panic_message(payload))))
        }
    }
}

/// Renders a panic payload for the [`JobOutcome::WorkerPanic`] record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serves one scheduler quantum of `run`: seals/builds on first service,
/// then advances the machine by the mode's fuel slice. Returns the
/// finished record, or `None` if the job was preempted and must re-queue.
///
/// Workers never call this bare — always through [`catch_quantum`], so a
/// panicking quantum is quarantined instead of poisoning the pool.
pub(crate) fn service_quantum(
    run: &mut JobRun,
    config: &FleetConfig,
    cache: &ImageCache,
) -> Option<JobRecord> {
    run.quanta_this_batch += 1;
    if run.spec.sabotage == Some(Sabotage::PanicInWorker) {
        panic!("sabotage: deliberate panic while servicing {}", run.id);
    }
    if run.machine.is_none() {
        // The seal farm may have pre-sealed this job's image (and set
        // its cache attribution) at batch admission; only seal here if
        // the job arrived at its first quantum still cold.
        if run.image.is_none() {
            match cache.get_or_seal_traced(&run.keys, &run.spec.source) {
                Ok((image, hit)) => {
                    run.seal_cache_hit = hit;
                    run.image = Some(image);
                }
                Err(e) => {
                    // A zero-cost quantum so the schedule model still
                    // gives the job its admission tick.
                    run.slices += 1;
                    run.slice_cycles.push(0);
                    return Some(finish(run, JobOutcome::SealFailed(e.to_string())));
                }
            }
        }
        let mut machine = match run.image.as_ref() {
            Some(image) => SofiaMachine::with_config(image, &run.keys, run.effective_sofia(config)),
            // Sealed or assigned just above; reaching this arm is a
            // fleet bug, reported as the typed worker fault it is.
            None => unreachable!("image sealed above"),
        };
        apply_sabotage(&mut machine, run.spec.sabotage);
        run.machine = Some(machine);
    }
    let quantum = match config.mode {
        SchedMode::RunToCompletion => run.remaining,
        SchedMode::FuelSliced { slice } => slice.max(1).min(run.remaining),
    };
    let Some(machine) = run.machine.as_mut() else {
        unreachable!("machine built above");
    };
    let cycles_before = machine.stats().exec.cycles;
    let slice = machine.run_slice(quantum);
    let cycles_after = machine.stats().exec.cycles;
    run.slices += 1;
    run.slice_cycles.push(cycles_after - cycles_before);
    match slice {
        Err(trap) => Some(finish(run, JobOutcome::Trapped(trap))),
        Ok(s) => {
            run.remaining = run.remaining.saturating_sub(s.consumed);
            match s.outcome {
                SliceOutcome::Done(outcome) => {
                    let outcome = JobOutcome::Completed(outcome);
                    if arm_retry(run, &outcome, config) {
                        None // the reboot-retry re-queues like a fresh run
                    } else {
                        Some(finish(run, outcome))
                    }
                }
                SliceOutcome::Preempted if run.remaining == 0 => {
                    Some(finish(run, JobOutcome::Completed(RunOutcome::OutOfFuel)))
                }
                SliceOutcome::Preempted => None,
            }
        }
    }
}

/// If the quarantine policy owes this violating job a reboot-retry,
/// re-arms the run with a fresh machine under [`ResetPolicy::Reboot`]
/// (same sealed image, same sabotage, full fuel budget) and parks the
/// first run's violations and statistics for the final record. The
/// retry then flows through the normal quantum loop — under fuel-sliced
/// scheduling it is preempted like any other job, so an attacker cannot
/// buy a worker-monopolising mega-quantum by triggering violations.
/// Deterministic per job, so the fleet≡serial invariant survives.
fn arm_retry(run: &mut JobRun, outcome: &JobOutcome, config: &FleetConfig) -> bool {
    let QuarantinePolicy::RetryWithReboot { max_resets } = config.quarantine else {
        return false;
    };
    if !outcome.is_violation() || run.retried {
        return false;
    }
    // A violation verdict implies the job ran, so machine and image are
    // both present; their absence is a fleet bug (caught by the worker's
    // panic barrier, not by poisoning the pool).
    let (Some(first), Some(image)) = (run.machine.as_ref(), run.image.clone()) else {
        unreachable!("retry after a sealed run");
    };
    run.retried = true;
    run.prior = Some((first.violations().to_vec(), first.stats()));
    let config_reboot = SofiaConfig {
        reset_policy: ResetPolicy::Reboot { max_resets },
        ..*run.effective_sofia(config)
    };
    let mut machine = SofiaMachine::with_config(&image, &run.keys, &config_reboot);
    apply_sabotage(&mut machine, run.spec.sabotage);
    run.machine = Some(machine);
    run.remaining = run.spec.fuel;
    true
}

pub(crate) fn finish(run: &mut JobRun, outcome: JobOutcome) -> JobRecord {
    let (out_words, mut violations, mut stats) = match run.machine.as_ref() {
        Some(m) => (
            m.mem().mmio.out_words.clone(),
            m.violations().to_vec(),
            m.stats(),
        ),
        None => (Vec::new(), Vec::new(), Default::default()),
    };
    if let Some((first_violations, first_stats)) = run.prior.take() {
        // The record covers the whole job: first (violating) run plus the
        // reboot-retry, in order.
        let mut all = first_violations;
        all.extend(violations);
        violations = all;
        let mut merged = first_stats;
        merged.merge(&stats);
        stats = merged;
    }
    JobRecord {
        job: run.id,
        tenant: run.spec.tenant,
        outcome,
        out_words,
        violations,
        stats,
        seal_cache_hit: run.seal_cache_hit,
        retried: run.retried,
        slices: run.slices,
        slice_cycles: std::mem::take(&mut run.slice_cycles),
        start_tick: 0,
        end_tick: 0,
        arrival_tick: 0,
        sojourn_cycles: 0,
    }
}

/// Whether a finished job triggers its tenant's quarantine: a violation
/// verdict, any run that *detected* violations and still did not end in
/// a clean halt, or a worker fault. The second arm closes the
/// reboot-retry's fuel loophole — a retry that runs out of fuel
/// mid-reboot-loop has not cleared the device, and a persistently
/// tampered tenant must not stay in service just because its budget
/// expired before its reset budget. (A retried run that reaches `halt`
/// is the recovery the reboot policy exists for, and is not contained.)
/// The worker-panic arm is defensive, not a security verdict: a job
/// that crashed its worker once can do it again, so its tenant is
/// contained like a violator while the rest of the fleet keeps serving.
/// A failed revival ([`JobOutcome::RevivalFailed`]) is contained for
/// the same reason — a tenant whose snapshots keep rotting keeps
/// costing revive attempts. A deadline shed is *not* contained: the
/// job never ran, and being queued behind a slow fleet is not the
/// tenant's fault.
pub(crate) fn needs_containment(record: &JobRecord) -> bool {
    record.outcome.is_violation()
        || (!record.outcome.is_halted() && !record.violations.is_empty())
        || matches!(
            record.outcome,
            JobOutcome::WorkerPanic(_) | JobOutcome::RevivalFailed(_)
        )
}

fn apply_sabotage(machine: &mut SofiaMachine, sabotage: Option<Sabotage>) {
    if let Some(Sabotage::FlipRomWord { word, mask }) = sabotage {
        if let Some(w) = machine.mem_mut().rom_mut().get_mut(word) {
            *w ^= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn run_mix(pool: PoolMode, workers: usize) -> (Vec<JobRecord>, u64) {
        let mut fleet = Fleet::new(FleetConfig {
            workers,
            mode: SchedMode::FuelSliced { slice: 200 },
            pool,
            ..Default::default()
        });
        for (id, seed) in [(1u32, 0xAu64), (2, 0xB), (3, 0xC)] {
            fleet
                .register_tenant(TenantId(id), KeySet::from_seed(seed))
                .unwrap();
        }
        for round in 0..4u32 {
            for tenant in 1..=3u32 {
                let n = 10 + 7 * round + tenant;
                let src = format!(
                    "main: li t0, {n}
                           li t1, 0
                     loop: add t1, t1, t0
                           subi t0, t0, 1
                           bnez t0, loop
                           li a0, 0xFFFF0000
                           sw t1, 0(a0)
                           halt"
                );
                fleet
                    .submit(JobSpec::new(TenantId(tenant), src, 1_000_000))
                    .unwrap();
            }
        }
        let records = fleet.run_batch();
        (records, fleet.stats().last_steals)
    }

    /// The pool is a host-side choice only: shared-queue and
    /// work-stealing runs produce bit-identical records at every worker
    /// count (results, stats, virtual-time ticks — everything).
    #[test]
    fn pools_produce_identical_records_at_any_worker_count() {
        let (serial, zero_steals) = run_mix(PoolMode::SharedQueue, 1);
        assert_eq!(zero_steals, 0, "shared queue never steals");
        for workers in [1usize, 2, 4, 7] {
            let (shared, _) = run_mix(PoolMode::SharedQueue, workers);
            let (stealing, _) = run_mix(PoolMode::WorkStealing, workers);
            assert_eq!(shared.len(), serial.len());
            assert_eq!(stealing.len(), serial.len());
            for ((a, b), s) in shared.iter().zip(&stealing).zip(&serial) {
                // Execution results are invariant across pools AND worker
                // counts (the fleet ≡ serial invariant)…
                for r in [a, b] {
                    assert_eq!(r.job, s.job, "w{workers}");
                    assert_eq!(r.outcome, s.outcome, "w{workers}");
                    assert_eq!(r.out_words, s.out_words, "w{workers}");
                    assert_eq!(r.stats, s.stats, "w{workers}");
                }
                // …and the virtual-time schedule (which does depend on
                // the worker count) is identical across pools.
                assert_eq!(a.start_tick, b.start_tick, "w{workers}");
                assert_eq!(a.end_tick, b.end_tick, "w{workers}");
            }
        }
    }
}
