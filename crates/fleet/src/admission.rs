//! Admission control for the async driver: typed backpressure instead
//! of silent queueing.
//!
//! The batch [`crate::Fleet`] can afford an unbounded queue — its caller
//! owns the whole job set. An open-loop arrival stream cannot: a
//! misbehaving (or merely popular) tenant class would grow the queue
//! without bound, and every other class's latency with it. The async
//! driver therefore prices admission at three gates, each with a typed
//! reject so callers (and the bench's workload generators) can tell *why*
//! a job bounced:
//!
//! 1. a **global** queue-depth cap across all classes;
//! 2. a **per-class** queue-depth cap, so one class saturating its own
//!    budget cannot consume the global one;
//! 3. a **per-tenant outstanding-fuel quota** — fuel, not job count,
//!    because one 10M-fuel job is a bigger claim on the fleet than a
//!    hundred 1k-fuel jobs.
//!
//! All three are deterministic functions of the queue state at the
//! arrival tick, so rejections are part of the driver's reproducible
//! surface (the bench records them next to p50/p99).

use std::collections::BTreeMap;

use crate::job::{JobId, TenantId};

/// A tenant service class: the unit of weighted fair queueing and of
/// admission budgets. Classes are caller-defined (e.g. `0` = interactive,
/// `1` = batch, `2` = best-effort); every tenant joins exactly one at
/// registration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u8);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Scheduling weight and admission budgets for one class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassConfig {
    /// Weighted-fair-queueing weight (clamped to ≥ 1): a class with
    /// weight 4 receives 4× the virtual-time service of a weight-1 class
    /// while both are backlogged.
    pub weight: u64,
    /// Maximum jobs queued in this class at once; arrivals beyond it
    /// reject with [`AdmitError::ClassQueueFull`].
    pub queue_cap: usize,
    /// Maximum *outstanding fuel* (sum of the fuel budgets of a tenant's
    /// queued + running jobs) per tenant of this class; arrivals beyond
    /// it reject with [`AdmitError::OverFuelQuota`].
    pub tenant_fuel_quota: u64,
}

impl Default for ClassConfig {
    fn default() -> Self {
        ClassConfig {
            weight: 1,
            queue_cap: usize::MAX,
            tenant_fuel_quota: u64::MAX,
        }
    }
}

/// The async driver's admission policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum jobs queued across *all* classes; arrivals beyond it
    /// reject with [`AdmitError::QueueFull`].
    pub global_queue_cap: usize,
    /// Budget for classes without an explicit entry in `classes`.
    pub default_class: ClassConfig,
    /// Per-class overrides, keyed by raw [`ClassId`].
    pub classes: BTreeMap<u8, ClassConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            global_queue_cap: usize::MAX,
            default_class: ClassConfig::default(),
            classes: BTreeMap::new(),
        }
    }
}

impl AdmissionConfig {
    /// The effective budget for `class` (the override, or the default).
    pub fn class(&self, class: ClassId) -> &ClassConfig {
        self.classes.get(&class.0).unwrap_or(&self.default_class)
    }
}

/// Why the async driver refused a job — the typed backpressure signal.
/// Rejection is immediate (on [`crate::AsyncFleet::submit`]) or deferred
/// to the arrival tick (on [`crate::AsyncFleet::submit_at`], surfaced as
/// a [`Rejection`]); it is never silent queueing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
    /// The tenant is suspended by its quarantine.
    Quarantined(TenantId),
    /// The tenant was evicted; this driver will not serve it again.
    Evicted(TenantId),
    /// The global queue is at [`AdmissionConfig::global_queue_cap`].
    QueueFull {
        /// Jobs queued across all classes at the arrival tick.
        queued: usize,
        /// The configured global cap.
        cap: usize,
    },
    /// The tenant's class queue is at [`ClassConfig::queue_cap`].
    ClassQueueFull {
        /// The saturated class.
        class: ClassId,
        /// Jobs queued in that class at the arrival tick.
        queued: usize,
        /// The configured per-class cap.
        cap: usize,
    },
    /// The resilience circuit breaker is open and this job's class is
    /// light enough (WFQ weight ≤ the breaker's `shed_max_weight`) to
    /// shed: the fleet is trading best-effort admissions for interactive
    /// SLOs while fault pressure drains (see [`crate::resilience`]).
    LoadShed {
        /// The shed tenant.
        tenant: TenantId,
        /// Its (light) class.
        class: ClassId,
    },
    /// Admitting the job would push the tenant past its class's
    /// [`ClassConfig::tenant_fuel_quota`].
    OverFuelQuota {
        /// The over-quota tenant.
        tenant: TenantId,
        /// Fuel already outstanding (queued + running jobs).
        outstanding: u64,
        /// Fuel the rejected job asked for.
        requested: u64,
        /// The configured quota.
        quota: u64,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownTenant(t) => write!(f, "{t} is not registered"),
            AdmitError::Quarantined(t) => write!(f, "{t} is quarantined"),
            AdmitError::Evicted(t) => write!(f, "{t} was evicted"),
            AdmitError::QueueFull { queued, cap } => {
                write!(f, "global queue full ({queued} queued, cap {cap})")
            }
            AdmitError::ClassQueueFull { class, queued, cap } => {
                write!(f, "{class} queue full ({queued} queued, cap {cap})")
            }
            AdmitError::LoadShed { tenant, class } => {
                write!(f, "{tenant} shed: circuit breaker open for {class}")
            }
            AdmitError::OverFuelQuota {
                tenant,
                outstanding,
                requested,
                quota,
            } => write!(
                f,
                "{tenant} over fuel quota ({outstanding} outstanding + {requested} requested > {quota})"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A deferred admission rejection: a [`crate::AsyncFleet::submit_at`]
/// arrival that bounced when its tick came. Collected via
/// [`crate::AsyncFleet::drain_rejected`] — deterministic, like every
/// record the driver emits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The id the job was assigned at submission.
    pub job: JobId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The tick at which admission was refused.
    pub tick: u64,
    /// Why.
    pub error: AdmitError,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lookup_falls_back_to_default() {
        let mut config = AdmissionConfig {
            global_queue_cap: 10,
            ..Default::default()
        };
        config.classes.insert(
            2,
            ClassConfig {
                weight: 8,
                ..Default::default()
            },
        );
        assert_eq!(config.class(ClassId(2)).weight, 8);
        assert_eq!(config.class(ClassId(7)).weight, 1);
    }

    #[test]
    fn admit_errors_render() {
        let e = AdmitError::OverFuelQuota {
            tenant: TenantId(3),
            outstanding: 900,
            requested: 200,
            quota: 1000,
        };
        assert!(e.to_string().contains("tenant#3"));
        assert!(e.to_string().contains("1000"));
        let e = AdmitError::ClassQueueFull {
            class: ClassId(1),
            queued: 64,
            cap: 64,
        };
        assert!(e.to_string().contains("class#1"));
    }
}
