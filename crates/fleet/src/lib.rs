//! # sofia-fleet — multi-tenant sealed-program serving
//!
//! The paper's deployment story scaled out: one software provider seals
//! programs for a *fleet* of devices that share nothing but their device
//! keys (§II: "these keys are known only by the software provider").
//! This crate turns the single-machine reproduction into a concurrent
//! execution service:
//!
//! * **Tenants** register a device [`sofia_crypto::KeySet`]; every
//!   tenant's program is sealed **once** into the shared
//!   [`sofia_transform::cache::ImageCache`] under those keys, so two
//!   tenants submitting the same program still run *different*
//!   ciphertexts — key isolation is structural.
//! * **Jobs** (tenant + program + fuel budget) run across a
//!   `std::thread` worker pool, either run-to-completion or
//!   **fuel-sliced**: preemptive round-robin built on the engine's
//!   metered fuel seam ([`sofia_cpu::engine::Pipeline::run_metered`]),
//!   suspending jobs between blocks on the fetch unit's edge registers
//!   ([`sofia_core::ResumeEdge`]) so a long ADPCM job cannot starve
//!   short ones.
//! * **Async serving**: the opt-in [`AsyncFleet`] driver multiplexes
//!   thousands of tenants over a few OS threads — weighted fair
//!   queueing across service classes ([`admission`]), typed
//!   admission-control backpressure, cold jobs parked to `SOFS1`
//!   snapshot bytes — with results bit-identical to serial execution
//!   at any thread count.
//! * **Quarantine**: a violation (MAC mismatch, forged edge) contains
//!   exactly one tenant per the configured [`QuarantinePolicy`] —
//!   suspend, retry-with-reboot, or evict — while the rest of the fleet
//!   keeps serving.
//! * **Statistics** roll up per tenant from the existing
//!   [`sofia_core::SofiaStats`]: cycles, vcache hit rates, violations,
//!   seal-cache hits, queue latency in deterministic scheduler ticks
//!   (see [`schedule`]).
//!
//! The load-bearing invariant, pinned by the workspace `fleet` test
//! suites: for any job set, fleet execution at **any worker count** and
//! in **either scheduling mode** produces bit-identical per-job results,
//! traps and violation reports to serial single-machine execution.
//!
//! # Examples
//!
//! Two tenants, one of them under attack — the victim is quarantined,
//! the fleet keeps serving:
//!
//! ```
//! use sofia_crypto::KeySet;
//! use sofia_fleet::{Fleet, FleetConfig, JobSpec, Sabotage, TenantId};
//!
//! let mut fleet = Fleet::new(FleetConfig::default());
//! let (alice, mallory) = (TenantId(1), TenantId(2));
//! fleet.register_tenant(alice, KeySet::from_seed(1))?;
//! fleet.register_tenant(mallory, KeySet::from_seed(2))?;
//!
//! let program = "main: li t0, 7
//!                     li a0, 0xFFFF0000
//!                     sw t0, 0(a0)
//!                     halt";
//! fleet.submit(JobSpec::new(alice, program, 10_000))?;
//! fleet.submit(
//!     JobSpec::new(mallory, program, 10_000)
//!         .with_sabotage(Sabotage::FlipRomWord { word: 2, mask: 1 }),
//! )?;
//! let records = fleet.run_batch();
//!
//! assert_eq!(records[0].out_words, vec![7]); // alice unperturbed
//! assert!(records[1].outcome.is_violation()); // mallory detected
//! assert!(fleet.submit(JobSpec::new(mallory, program, 1)).is_err());
//! assert!(fleet.submit(JobSpec::new(alice, program, 10_000)).is_ok());
//! # Ok::<(), sofia_fleet::FleetError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// A fleet exists to contain per-tenant faults; an `unwrap`/`expect` on a
// shared lock is how one tenant's panic became a fleet-wide abort (the
// lock-poisoning cascade this crate's panic-isolation suite pins
// against). Non-test code must route every lock through
// `fleet::lock_clean`/`into_clean` and every "impossible" state through
// a typed record or `unreachable!` with a stated invariant.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod chaos;
mod checkpoint;
mod executor;
mod fleet;
mod job;
mod quarantine;
pub mod resilience;
pub mod schedule;
mod seal_farm;
mod stats;

pub use admission::{AdmissionConfig, AdmitError, ClassConfig, ClassId, Rejection};
pub use chaos::{ChaosPlan, FaultRate, Seam};
pub use checkpoint::{AdoptError, JobCheckpoint};
pub use executor::{AsyncConfig, AsyncFleet, AsyncStats};
pub use fleet::{Fleet, FleetConfig, FleetError, PoolMode, SchedMode, SealMode};
pub use job::{JobId, JobOutcome, JobRecord, JobSpec, Sabotage, TenantId};
pub use quarantine::{QuarantinePolicy, TenantState};
pub use resilience::{
    BreakerConfig, DegradeMode, ResilienceConfig, ResilienceEvent, ResilienceStats,
};
pub use seal_farm::{SealFarm, SealVerdict, SealWave};
pub use stats::{FleetStats, TenantStats};
