//! Job checkpoints: the migration container a suspended job travels in.
//!
//! A checkpoint wraps the job's *spec* (tenant, program source, fuel
//! budget, harness sabotage), its *scheduling history* (slices served,
//! per-slice simulated cycles, reboot-retry state) and — once the job
//! has run at least one quantum — the suspended machine itself as a
//! [`MachineSnapshot`]. Like the machine snapshot it contains **no
//! ciphertext and no key material**: the adopting fleet re-seals the
//! source under its own registration of the tenant's keys, and the
//! image MACs cover the code; a forged or stale resume point is caught
//! by edge verification on the first resumed fetch.
//!
//! The `SOFJ1` byte container reuses the workspace decode toolkit
//! ([`sofia_transform::decode`]) and the snapshot wire codecs, so the
//! same guarantees hold: typed [`DecodeError`]s, length-checked counts,
//! and a trailing FNV-64 digest that turns any transit corruption into
//! [`DecodeError::ChecksumMismatch`] instead of a parse of garbage.

use sofia_core::snapshot::{read_sofia_stats, read_violation, write_sofia_stats, write_violation};
use sofia_core::{MachineSnapshot, RestoreError, SofiaStats, Violation};
use sofia_transform::cache::SealError;
use sofia_transform::decode::{DecodeError, Reader, Writer};

use crate::fleet::FleetError;
use crate::job::{Sabotage, TenantId};

/// Container magic for serialised job checkpoints.
const MAGIC: &[u8] = b"SOFJ1\0";

/// A suspended job, packaged by [`crate::Fleet::checkpoint_job`] for
/// [`crate::Fleet::adopt_job`] in another fleet (possibly another
/// process or host — see [`JobCheckpoint::to_bytes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobCheckpoint {
    /// The owning tenant (must be registered, with the same device
    /// keys, in the adopting fleet).
    pub tenant: TenantId,
    /// SL32 assembly source of the program; the adopting fleet re-seals
    /// it through its own image cache.
    pub source: String,
    /// The job's original fuel budget.
    pub fuel: u64,
    /// Harness sabotage riding with the job, re-applied on restore so a
    /// tampered tenant's job stays tampered across the migration.
    pub sabotage: Option<Sabotage>,
    /// Fuel still unspent.
    pub remaining: u64,
    /// Whether the quarantine policy already spent its reboot-retry.
    pub retried: bool,
    /// First-run violations and statistics parked by an in-flight
    /// reboot-retry, merged into the final record wherever it finishes.
    pub prior: Option<(Vec<Violation>, SofiaStats)>,
    /// Scheduler quanta served so far.
    pub slices: u32,
    /// Simulated cycles per quantum served so far (the virtual-time
    /// schedule input — travels so fleet accounting stays
    /// work-conserving across the migration).
    pub slice_cycles: Vec<u64>,
    /// The suspended machine, if the job ran at least one quantum
    /// (`None` means the job was checkpointed before first service and
    /// adoption is equivalent to a fresh submission).
    pub machine: Option<MachineSnapshot>,
}

impl JobCheckpoint {
    /// Serialises to the versioned, checksummed `SOFJ1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.magic(MAGIC);
        w.u32(self.tenant.0);
        w.u32(self.source.len() as u32);
        w.bytes(self.source.as_bytes());
        w.u64(self.fuel);
        match self.sabotage {
            None => w.u8(0),
            Some(Sabotage::FlipRomWord { word, mask }) => {
                w.u8(1);
                w.u64(word as u64);
                w.u32(mask);
            }
            Some(Sabotage::PanicInWorker) => w.u8(2),
        }
        w.u64(self.remaining);
        w.bool(self.retried);
        match &self.prior {
            None => w.u8(0),
            Some((violations, stats)) => {
                w.u8(1);
                w.u32(violations.len() as u32);
                for v in violations {
                    write_violation(&mut w, v);
                }
                write_sofia_stats(&mut w, stats);
            }
        }
        w.u32(self.slices);
        w.u32(self.slice_cycles.len() as u32);
        for &c in &self.slice_cycles {
            w.u64(c);
        }
        match &self.machine {
            None => w.u8(0),
            Some(snap) => {
                w.u8(1);
                let bytes = snap.to_bytes();
                w.u32(bytes.len() as u32);
                w.bytes(&bytes);
            }
        }
        w.finish_checksummed()
    }

    /// Deserialises a `SOFJ1` container written by
    /// [`JobCheckpoint::to_bytes`]. The embedded machine snapshot is
    /// decoded (and checksum-verified) with
    /// [`MachineSnapshot::from_bytes`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on any corruption, truncation or structural
    /// inconsistency — never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<JobCheckpoint, DecodeError> {
        let mut r = Reader::new_checksummed(bytes)?;
        r.magic(MAGIC, "SOFJ1")?;
        let tenant = TenantId(r.u32()?);
        let n = r.count("source", 1)?;
        let source = String::from_utf8(r.take(n)?.to_vec()).map_err(|e| DecodeError::BadField {
            field: "source",
            reason: e.to_string(),
        })?;
        let fuel = r.u64()?;
        let sabotage = match r.u8()? {
            0 => None,
            1 => Some(Sabotage::FlipRomWord {
                word: r.u64()? as usize,
                mask: r.u32()?,
            }),
            2 => Some(Sabotage::PanicInWorker),
            tag => {
                return Err(DecodeError::BadTag {
                    field: "sabotage",
                    tag: tag as u64,
                })
            }
        };
        let remaining = r.u64()?;
        let retried = r.bool("retried")?;
        let prior = match r.u8()? {
            0 => None,
            1 => {
                let n = r.count("prior.violations", 5)?;
                let mut violations = Vec::with_capacity(n);
                for _ in 0..n {
                    violations.push(read_violation(&mut r)?);
                }
                Some((violations, read_sofia_stats(&mut r)?))
            }
            tag => {
                return Err(DecodeError::BadTag {
                    field: "prior",
                    tag: tag as u64,
                })
            }
        };
        let slices = r.u32()?;
        let n = r.count("slice_cycles", 8)?;
        let mut slice_cycles = Vec::with_capacity(n);
        for _ in 0..n {
            slice_cycles.push(r.u64()?);
        }
        let machine = match r.u8()? {
            0 => None,
            1 => {
                let n = r.count("machine", 1)?;
                Some(MachineSnapshot::from_bytes(r.take(n)?)?)
            }
            tag => {
                return Err(DecodeError::BadTag {
                    field: "machine",
                    tag: tag as u64,
                })
            }
        };
        r.finish()?;
        Ok(JobCheckpoint {
            tenant,
            source,
            fuel,
            sabotage,
            remaining,
            retried,
            prior,
            slices,
            slice_cycles,
            machine,
        })
    }
}

/// Why [`crate::Fleet::adopt_job`] refused a checkpoint.
#[derive(Clone, Debug)]
pub enum AdoptError {
    /// The tenant cannot be served here (unknown, quarantined, or
    /// evicted).
    Fleet(FleetError),
    /// The program no longer seals under this fleet's registration of
    /// the tenant (source corrupted, or keys diverged).
    Seal(SealError),
    /// The machine snapshot failed restoration against the re-sealed
    /// image (tampered image, forged cache line, mismatched geometry).
    Restore(RestoreError),
}

impl std::fmt::Display for AdoptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdoptError::Fleet(e) => write!(f, "adoption refused: {e}"),
            AdoptError::Seal(e) => write!(f, "adoption seal failed: {e}"),
            AdoptError::Restore(e) => write!(f, "adoption restore failed: {e}"),
        }
    }
}

impl std::error::Error for AdoptError {}

impl From<FleetError> for AdoptError {
    fn from(e: FleetError) -> Self {
        AdoptError::Fleet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> JobCheckpoint {
        JobCheckpoint {
            tenant: TenantId(7),
            source: "main: halt".into(),
            fuel: 10_000,
            sabotage: Some(Sabotage::FlipRomWord { word: 3, mask: 1 }),
            remaining: 4_321,
            retried: true,
            prior: Some((
                vec![Violation::MacMismatch { block_base: 0x120 }],
                SofiaStats::default(),
            )),
            slices: 5,
            slice_cycles: vec![100, 90, 80],
            machine: None,
        }
    }

    #[test]
    fn roundtrips_without_a_machine() {
        let ckpt = checkpoint();
        let back = JobCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn corruption_and_truncation_are_typed() {
        let bytes = checkpoint().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert_eq!(
                JobCheckpoint::from_bytes(&bad).unwrap_err(),
                DecodeError::ChecksumMismatch,
                "byte {i}"
            );
        }
        for len in 0..bytes.len() {
            assert!(
                JobCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "len {len}"
            );
        }
    }
}
