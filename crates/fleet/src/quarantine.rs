//! Per-tenant containment: what the fleet does when one tenant's device
//! reports a violation.
//!
//! The paper's core guarantee is per-device: a MAC mismatch or a forged
//! edge resets *that* core. At fleet scale the analogous guarantee is
//! per-tenant blast radius — one tenant's tampered image must never
//! perturb another tenant's results, statistics, or service. Containment
//! decisions are folded **in job-submission order after the batch**, so
//! they are a deterministic function of the job set, independent of how
//! many workers raced through it.

/// What the fleet does about a tenant whose job ended in a violation
/// verdict ([`crate::JobOutcome::is_violation`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuarantinePolicy {
    /// Suspend the tenant: jobs already accepted still run (their results
    /// stay bit-identical to serial execution), but every later
    /// [`crate::Fleet::submit`] is rejected until
    /// [`crate::Fleet::release`]. The default — detection verdicts are
    /// what most experiments want.
    #[default]
    Suspend,
    /// Give the device the paper's reboot behaviour first: re-run the
    /// violating job once under [`sofia_core::ResetPolicy::Reboot`] with
    /// this reset budget, and suspend the tenant only if the retry still
    /// ends in a violation (persistent tamper).
    RetryWithReboot {
        /// Resets tolerated by the retry before it abandons.
        max_resets: u32,
    },
    /// Evict the tenant outright: drop its sealed images from the shared
    /// cache and reject all its future submissions. Accumulated
    /// statistics are kept for the post-mortem.
    Evict,
}

/// A tenant's service state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TenantState {
    /// Serving normally.
    #[default]
    Active,
    /// Quarantined by a violation; [`crate::Fleet::release`] reactivates.
    Suspended,
    /// Evicted by [`QuarantinePolicy::Evict`]; permanent for this fleet.
    Evicted,
}

impl TenantState {
    /// Whether new submissions are accepted.
    pub fn accepts_jobs(self) -> bool {
        matches!(self, TenantState::Active)
    }
}

/// What one finished record did to its tenant's containment state — the
/// return value of [`fold_policy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct PolicyFold {
    /// The tenant transitioned `Active → Suspended` on this record.
    pub suspended_now: bool,
    /// The tenant transitioned to `Evicted` on this record.
    pub evicted_now: bool,
    /// The tenant's sealed images must be purged from the shared cache.
    /// True on *every* record an evicted tenant folds, not just the
    /// eviction itself: jobs admitted before the eviction still run to
    /// a record (their results must stay bit-identical to serial
    /// execution), and any of them may have re-sealed the tenant's
    /// program into the cache after the eviction purge.
    pub purge: bool,
}

/// Folds one finished record's containment verdict into the tenant's
/// state. This is **the** policy-semantics function, shared verbatim by
/// the batch fleet's end-of-batch fold and the async driver's per-settle
/// [`fold_finished`](crate::AsyncFleet) — both drivers must quarantine
/// identically for the bit-for-bit parity contract to hold.
///
/// `contained` is [`crate::fleet::needs_containment`] for the record.
/// Note [`QuarantinePolicy::RetryWithReboot`] intentionally folds like
/// [`QuarantinePolicy::Suspend`] here: the reboot-retry itself is armed
/// *during service* (in the shared `service_quantum` seam, before any
/// record exists), so a record reaching the fold under that policy has
/// already spent its retry — persistent tamper, suspend.
pub(crate) fn fold_policy(
    policy: QuarantinePolicy,
    state: &mut TenantState,
    contained: bool,
) -> PolicyFold {
    let mut fold = PolicyFold::default();
    if contained {
        match policy {
            QuarantinePolicy::Suspend | QuarantinePolicy::RetryWithReboot { .. } => {
                if *state == TenantState::Active {
                    *state = TenantState::Suspended;
                    fold.suspended_now = true;
                }
            }
            QuarantinePolicy::Evict => {
                if *state != TenantState::Evicted {
                    *state = TenantState::Evicted;
                    fold.evicted_now = true;
                }
            }
        }
    }
    fold.purge = *state == TenantState::Evicted;
    fold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_records_never_transition() {
        for policy in [
            QuarantinePolicy::Suspend,
            QuarantinePolicy::RetryWithReboot { max_resets: 3 },
            QuarantinePolicy::Evict,
        ] {
            let mut state = TenantState::Active;
            let fold = fold_policy(policy, &mut state, false);
            assert_eq!(state, TenantState::Active);
            assert_eq!(fold, PolicyFold::default());
        }
    }

    #[test]
    fn retry_with_reboot_suspends_like_suspend_after_the_retry() {
        for policy in [
            QuarantinePolicy::Suspend,
            QuarantinePolicy::RetryWithReboot { max_resets: 3 },
        ] {
            let mut state = TenantState::Active;
            let fold = fold_policy(policy, &mut state, true);
            assert_eq!(state, TenantState::Suspended);
            assert!(fold.suspended_now && !fold.evicted_now && !fold.purge);
            // A second violating record of the already-suspended tenant
            // changes nothing.
            let fold = fold_policy(policy, &mut state, true);
            assert_eq!(fold, PolicyFold::default());
        }
    }

    #[test]
    fn every_evicted_tenant_record_asks_for_a_purge() {
        let mut state = TenantState::Active;
        let fold = fold_policy(QuarantinePolicy::Evict, &mut state, true);
        assert_eq!(state, TenantState::Evicted);
        assert!(fold.evicted_now && fold.purge);
        // A straggler job of the evicted tenant — violating or clean —
        // may have re-sealed its image; both must purge again.
        for contained in [true, false] {
            let fold = fold_policy(QuarantinePolicy::Evict, &mut state, contained);
            assert!(!fold.evicted_now && fold.purge);
        }
    }
}
