//! Per-tenant containment: what the fleet does when one tenant's device
//! reports a violation.
//!
//! The paper's core guarantee is per-device: a MAC mismatch or a forged
//! edge resets *that* core. At fleet scale the analogous guarantee is
//! per-tenant blast radius — one tenant's tampered image must never
//! perturb another tenant's results, statistics, or service. Containment
//! decisions are folded **in job-submission order after the batch**, so
//! they are a deterministic function of the job set, independent of how
//! many workers raced through it.

/// What the fleet does about a tenant whose job ended in a violation
/// verdict ([`crate::JobOutcome::is_violation`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuarantinePolicy {
    /// Suspend the tenant: jobs already accepted still run (their results
    /// stay bit-identical to serial execution), but every later
    /// [`crate::Fleet::submit`] is rejected until
    /// [`crate::Fleet::release`]. The default — detection verdicts are
    /// what most experiments want.
    #[default]
    Suspend,
    /// Give the device the paper's reboot behaviour first: re-run the
    /// violating job once under [`sofia_core::ResetPolicy::Reboot`] with
    /// this reset budget, and suspend the tenant only if the retry still
    /// ends in a violation (persistent tamper).
    RetryWithReboot {
        /// Resets tolerated by the retry before it abandons.
        max_resets: u32,
    },
    /// Evict the tenant outright: drop its sealed images from the shared
    /// cache and reject all its future submissions. Accumulated
    /// statistics are kept for the post-mortem.
    Evict,
}

/// A tenant's service state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TenantState {
    /// Serving normally.
    #[default]
    Active,
    /// Quarantined by a violation; [`crate::Fleet::release`] reactivates.
    Suspended,
    /// Evicted by [`QuarantinePolicy::Evict`]; permanent for this fleet.
    Evicted,
}

impl TenantState {
    /// Whether new submissions are accepted.
    pub fn accepts_jobs(self) -> bool {
        matches!(self, TenantState::Active)
    }
}
