//! The deterministic virtual-time schedule model.
//!
//! The worker pool executes jobs on host threads, whose interleaving the
//! OS controls — useless as a reproducible metric (and this repo's
//! trajectory files must be host-independent, like `BENCH_vcache.json`'s
//! simulated cycle counts). So the fleet *prices* every batch on a
//! tick-synchronous model instead, driven entirely by the recorded
//! per-quantum simulated cycle costs, which the determinism invariant
//! fixes for any worker count:
//!
//! * all jobs of a batch arrive at tick 0, queued in submission order;
//! * each **tick**, the first `workers` runnable jobs each execute their
//!   next quantum (their whole remaining budget under run-to-completion,
//!   one fuel slice under fuel-sliced scheduling);
//! * the tick costs the **maximum** quantum cost among the jobs served
//!   in it (workers advance in lock-step, like a barrier-synchronous
//!   accelerator dispatch);
//! * preempted jobs re-queue behind the jobs still waiting — round-robin.
//!
//! Makespan is the sum of tick costs; a job's queue latency is the tick
//! at which it first ran. Both are deterministic functions of (job set,
//! worker count, scheduling mode), so "jobs/sec at N workers" in
//! `BENCH_fleet.json` is as reproducible as every other number this
//! repo records.
//!
//! A job with **no recorded quanta never ran**: it settles as a
//! zero-width interval (`start == end == 0`, [`JobTicks::ran`] false)
//! without occupying a worker slot, distinguishable from a job that ran
//! one free quantum (`end == start + 1`). The batch fleet gives every
//! settled job at least one quantum (seal failures record a zero-cost
//! one for their admission tick), so the zero-width case is the
//! admission-rejected / never-admitted representation.

/// Virtual-time placement of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTicks {
    /// Tick in which the job's first quantum ran.
    pub start: u64,
    /// Tick *after* the one in which its last quantum ran — equal to
    /// `start` for a job that never ran a quantum at all.
    pub end: u64,
    /// Cumulative makespan cycles at the end of the job's last tick —
    /// its completion instant on the virtual clock (0 for a job that
    /// never ran).
    pub end_cycles: u64,
}

impl JobTicks {
    /// Whether the job ran at least one quantum. `false` is the explicit
    /// "admitted nothing" representation: an admission-rejected or
    /// never-serviced job prices as a zero-width interval, not as one
    /// free quantum.
    pub fn ran(&self) -> bool {
        self.end > self.start
    }
}

/// What pricing a batch yields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Sum of tick costs: simulated cycles until the last job finishes.
    pub makespan_cycles: u64,
    /// Ticks the batch took.
    pub ticks: u64,
    /// Placement per job, indexed like the input.
    pub per_job: Vec<JobTicks>,
}

/// Prices a batch: `quanta[j]` is job `j`'s recorded per-quantum cycle
/// costs, in submission order. `workers` is clamped to at least 1. Jobs
/// with an empty quantum list settle immediately as zero-width intervals
/// (see [`JobTicks::ran`]) and consume no worker slots.
pub fn price_schedule(workers: usize, quanta: &[Vec<u64>]) -> ScheduleReport {
    let workers = workers.max(1);
    let mut per_job = vec![JobTicks::default(); quanta.len()];
    let mut next_quantum = vec![0usize; quanta.len()];
    let mut ready: std::collections::VecDeque<usize> = (0..quanta.len())
        .filter(|&j| !quanta[j].is_empty())
        .collect();
    let mut makespan = 0u64;
    let mut tick = 0u64;
    while !ready.is_empty() {
        let served: Vec<usize> = (0..workers.min(ready.len()))
            .filter_map(|_| ready.pop_front())
            .collect();
        let mut tick_cost = 0u64;
        for &j in &served {
            let q = next_quantum[j];
            if q == 0 {
                per_job[j].start = tick;
            }
            tick_cost = tick_cost.max(quanta[j].get(q).copied().unwrap_or(0));
            next_quantum[j] += 1;
        }
        makespan += tick_cost;
        for &j in &served {
            if next_quantum[j] >= quanta[j].len() {
                per_job[j].end = tick + 1;
                per_job[j].end_cycles = makespan;
            } else {
                ready.push_back(j);
            }
        }
        tick += 1;
    }
    ScheduleReport {
        makespan_cycles: makespan,
        ticks: tick,
        per_job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_serialises() {
        let r = price_schedule(1, &[vec![10], vec![20], vec![30]]);
        assert_eq!(r.makespan_cycles, 60);
        assert_eq!(r.ticks, 3);
        assert_eq!(
            r.per_job[2],
            JobTicks {
                start: 2,
                end: 3,
                end_cycles: 60
            }
        );
    }

    #[test]
    fn more_workers_shrink_the_makespan() {
        let quanta: Vec<Vec<u64>> = (1..=8u64).map(|c| vec![c * 10]).collect();
        let m1 = price_schedule(1, &quanta).makespan_cycles;
        let m2 = price_schedule(2, &quanta).makespan_cycles;
        let m4 = price_schedule(4, &quanta).makespan_cycles;
        assert!(m1 > m2 && m2 > m4, "{m1} {m2} {m4}");
        assert_eq!(m1, 360);
        // Lock-step pairs: max(10,20) + max(30,40) + max(50,60) + max(70,80).
        assert_eq!(m2, 200);
        assert_eq!(m4, 40 + 80);
    }

    #[test]
    fn round_robin_interleaves_preempted_jobs() {
        // A long job (3 slices) and two short ones (1 slice), one worker:
        // order long, s1, s2, long, long.
        let r = price_schedule(1, &[vec![5, 5, 5], vec![1], vec![1]]);
        assert_eq!(r.ticks, 5);
        assert_eq!(
            r.per_job[1],
            JobTicks {
                start: 1,
                end: 2,
                end_cycles: 6
            }
        );
        assert_eq!(
            r.per_job[2],
            JobTicks {
                start: 2,
                end: 3,
                end_cycles: 7
            }
        );
        assert_eq!(r.per_job[0].end, 5);
        assert_eq!(r.per_job[0].end_cycles, 17);
        assert_eq!(r.makespan_cycles, 17);
    }

    /// The zero-quantum satellite: a job that never ran is explicitly a
    /// zero-width interval, distinguishable from a job that ran one free
    /// (zero-cost) quantum, and it consumes no worker slot — so
    /// admission-rejected jobs price as "ran nothing", not as a free
    /// tick.
    #[test]
    fn zero_quantum_jobs_are_explicitly_never_run() {
        let r = price_schedule(2, &[vec![], vec![0]]);
        // The empty job settles instantly, zero-width, without a slot…
        assert_eq!(
            r.per_job[0],
            JobTicks {
                start: 0,
                end: 0,
                end_cycles: 0
            }
        );
        assert!(!r.per_job[0].ran());
        // …while the zero-*cost* job really ran a quantum.
        assert_eq!(
            r.per_job[1],
            JobTicks {
                start: 0,
                end: 1,
                end_cycles: 0
            }
        );
        assert!(r.per_job[1].ran());
        assert_eq!(r.ticks, 1);
        assert_eq!(r.makespan_cycles, 0);
    }

    /// Empty jobs do not perturb the placement of real ones: with one
    /// worker, a leading never-run job must not steal the first slot.
    #[test]
    fn zero_quantum_jobs_occupy_no_worker_slot() {
        let with_empty = price_schedule(1, &[vec![], vec![7], vec![9]]);
        let without = price_schedule(1, &[vec![7], vec![9]]);
        assert_eq!(with_empty.ticks, without.ticks);
        assert_eq!(with_empty.makespan_cycles, without.makespan_cycles);
        assert_eq!(with_empty.per_job[1], without.per_job[0]);
        assert_eq!(with_empty.per_job[2], without.per_job[1]);
    }
}
