//! The opt-in async driver: thousands of tenant jobs multiplexed over a
//! few OS threads.
//!
//! The batch [`crate::Fleet`] keeps every queued job's machine live and
//! spins one pool per batch — fine for hundreds of jobs, wrong for the
//! ROADMAP's "millions of users" shape where tenants are mostly idle.
//! [`AsyncFleet`] is a hand-rolled executor (no external runtime) built
//! on three existing seams:
//!
//! * **Yield point** — the engine's fuel-slice seam
//!   ([`sofia_core::SofiaMachine::run_slice`] / cooperative preemption
//!   on [`sofia_core::ResumeEdge`]): a job runs one quantum, then the
//!   driver decides who runs next. No job ever owns an OS thread.
//! * **Cold parking** — a job that waits too long has its machine
//!   serialised to `SOFS1` snapshot bytes
//!   ([`sofia_core::MachineSnapshot`]) and dropped; it revives on its
//!   next quantum. Suspend→restore is bit-identical to uninterrupted
//!   execution (pinned by the snapshot differential suite), so parking
//!   is invisible to results — it only trades revive latency for
//!   resident memory.
//! * **Virtual time** — ticks are priced exactly like the batch model
//!   (tick cost = max quantum cost among the lanes served, see
//!   [`crate::schedule`]), so p50/p99 sojourn per class is a
//!   deterministic, host-independent number.
//!
//! ## Scheduling
//!
//! Each tick the driver admits due arrivals (typed backpressure — see
//! [`crate::admission`]), then fills up to `workers` **lanes** by
//! weighted fair queueing across tenant classes: repeatedly pick the
//! backlogged class with the least weighted virtual service
//! (`vservice / weight`, compared exactly via u128 cross-multiply),
//! take the head of its FIFO, and charge it provisionally; after the
//! lanes run, charges are trued up with the actual simulated cycles.
//! Classes are FIFO inside, fair across — a weight-4 class gets 4× the
//! service of a weight-1 class while both are backlogged.
//!
//! ## Determinism
//!
//! `threads` (host parallelism) and `workers` (virtual lanes per tick)
//! are deliberately separate knobs. Everything that affects results —
//! admission, lane selection, tick pricing, the fold order of finished
//! records — is computed on the coordinator from queue state alone;
//! host threads only execute the selected quanta, each on a job-owned
//! machine. The async ≡ serial bit-identity invariant therefore holds
//! at any thread count *by construction*, and the `fleet_async` suite
//! pins it.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use sofia_core::MachineSnapshot;
use sofia_crypto::KeySet;
use sofia_transform::cache::{image_key, ImageCache, ImageKey};

use crate::admission::{AdmissionConfig, AdmitError, ClassId, Rejection};
use crate::chaos::{ChaosPlan, InjectedFault, Seam};
use crate::fleet::{
    catch_quantum, finish, lock_clean, needs_containment, restore_against, FleetConfig, FleetError,
    JobRun, SchedMode,
};
use crate::job::{JobId, JobOutcome, JobRecord, JobSpec, TenantId};
use crate::quarantine::{fold_policy, QuarantinePolicy, TenantState};
use crate::resilience::{ResilienceConfig, ResilienceEvent, ResilienceState, ResilienceStats};
use crate::seal_farm::{SealFarm, SealVerdict};
use crate::stats::TenantStats;

/// Full configuration of an [`AsyncFleet`].
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Host OS threads executing quanta (clamped to ≥ 1). Pure host
    /// parallelism: provably cannot affect results, records or virtual
    /// time — only wall-clock.
    pub threads: usize,
    /// Virtual lanes served per tick (clamped to ≥ 1) — the async
    /// analogue of [`FleetConfig::workers`]. Part of the deterministic
    /// surface: changing it changes the schedule (but never what any
    /// job computes).
    pub workers: usize,
    /// Scheduling discipline. [`SchedMode::FuelSliced`] is the point of
    /// the async driver; run-to-completion still works (each quantum is
    /// a whole job).
    pub mode: SchedMode,
    /// Containment for violating (or worker-crashing) tenants.
    pub quarantine: QuarantinePolicy,
    /// The SOFIA machine configuration every job runs under.
    pub sofia: sofia_core::SofiaConfig,
    /// Admission policy: queue caps, class weights, fuel quotas.
    pub admission: AdmissionConfig,
    /// Park a waiting job's machine to `SOFS1` bytes after this many
    /// consecutive unserved ticks (`None` = never park). Parking is
    /// invisible to results; it bounds resident machines.
    pub park_after: Option<u64>,
    /// Seeded host-fault injection. [`ChaosPlan::none`] (the default)
    /// is bit-for-bit invisible — the chaos suite pins this.
    pub chaos: ChaosPlan,
    /// Recovery policy: deadlines, retry budgets, circuit breaking,
    /// graceful degradation. [`ResilienceConfig::default`] (the
    /// default) turns all of it off.
    pub resilience: ResilienceConfig,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            threads: 4,
            workers: 4,
            mode: SchedMode::FuelSliced { slice: 500 },
            quarantine: QuarantinePolicy::default(),
            sofia: sofia_core::SofiaConfig::default(),
            admission: AdmissionConfig::default(),
            park_after: Some(8),
            chaos: ChaosPlan::none(),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Driver-level counters (host-independent, deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Ticks driven so far.
    pub ticks: u64,
    /// Sum of tick costs so far — the virtual clock, in simulated
    /// cycles.
    pub makespan_cycles: u64,
    /// Jobs admitted (immediately or at their arrival tick).
    pub admitted: u64,
    /// Jobs that finished with a record.
    pub finished: u64,
    /// Jobs refused by admission control at their arrival tick.
    pub rejected: u64,
    /// Scheduler quanta served.
    pub quanta: u64,
    /// Machines parked to snapshot bytes.
    pub parks: u64,
    /// Machines revived from snapshot bytes.
    pub revives: u64,
    /// Jobs that ended in [`JobOutcome::WorkerPanic`].
    pub worker_panics: u64,
    /// Jobs whose parked snapshot failed revival
    /// ([`JobOutcome::RevivalFailed`]) — counted at the settle that
    /// produced the record, whether or not a retry then rescued the job.
    pub revival_failures: u64,
    /// Peak count of live (unparked) machines resident across queued
    /// jobs at a tick boundary.
    pub peak_resident_machines: u64,
    /// Tenants newly suspended by the quarantine fold (`Suspend` and
    /// post-retry `RetryWithReboot` containments).
    pub quarantines: u64,
    /// Tenants evicted by the quarantine fold.
    pub evictions: u64,
}

/// One queued job plus its async bookkeeping. Travels whole to a pool
/// thread for its quantum and comes back in the lane's result.
struct Pending {
    run: JobRun,
    /// `SOFS1` bytes of the parked machine (`run.machine` is `None`
    /// while this is `Some`).
    parked: Option<Vec<u8>>,
    class: ClassId,
    arrival_tick: u64,
    /// Virtual-clock reading at admission — the sojourn baseline.
    arrival_cycles: u64,
    start_tick: Option<u64>,
    /// Consecutive ticks queued without service (parking trigger).
    idle_ticks: u64,
}

/// Per-class WFQ state.
struct ClassState {
    /// Total virtual service charged, in simulated cycles.
    vservice: u64,
    queue: VecDeque<Pending>,
}

struct AsyncTenant {
    keys: KeySet,
    class: ClassId,
    state: TenantState,
    stats: TenantStats,
    /// Fuel budgets of the tenant's queued + running jobs (the quota
    /// admission gate).
    outstanding_fuel: u64,
}

/// A job scheduled for a future tick, awaiting admission.
struct Arrival {
    job: JobId,
    spec: JobSpec,
}

/// One lane's work for a tick.
struct LaneTask {
    pending: Pending,
    /// The WFQ charge applied at selection, to true up after the run.
    provisional: u64,
    /// The fault the chaos plan assigned to this lane, if any. Decided
    /// on the coordinator (deterministic), applied on the lane runner.
    fault: Option<InjectedFault>,
}

struct LaneResult {
    pending: Pending,
    provisional: u64,
    record: Option<JobRecord>,
    revived: bool,
}

/// Revives a parked run in place. Any failure is a *host* fault (the
/// snapshot was produced by this very driver, so corruption means the
/// bytes rotted in storage or transit), reported as the typed
/// [`JobOutcome::RevivalFailed`] — never a security verdict.
fn revive(run: &mut JobRun, bytes: &[u8]) -> Result<(), String> {
    let snap = MachineSnapshot::from_bytes(bytes).map_err(|e| format!("revive decode: {e}"))?;
    let Some(image) = run.image.clone() else {
        return Err("parked job lost its sealed image".to_string());
    };
    let machine = restore_against(&image, &run.keys, &snap, run.spec.sabotage)
        .map_err(|e| format!("revive restore: {e:?}"))?;
    run.machine = Some(machine);
    Ok(())
}

/// Serves one lane: revive if parked, apply any injected fault, then
/// one quantum through the panic barrier. Runs on a pool thread (or
/// inline when `threads == 1`).
fn run_lane(mut task: LaneTask, config: &FleetConfig, cache: &ImageCache) -> LaneResult {
    let run = &mut task.pending.run;
    run.quanta_this_batch = 0;
    let mut revived = false;
    if let Some(bytes) = task.pending.parked.take() {
        match revive(run, &bytes) {
            Ok(()) => revived = true,
            Err(msg) => {
                // Mirror a seal failure's accounting: one zero-cost
                // quantum so the schedule model still prices the tick.
                run.slices += 1;
                run.slice_cycles.push(0);
                let record = finish(run, JobOutcome::RevivalFailed(msg));
                return LaneResult {
                    pending: task.pending,
                    provisional: task.provisional,
                    record: Some(record),
                    revived: false,
                };
            }
        }
    }
    let record = match task.fault.take() {
        // An injected farm fault: the job's fresh seal "failed" — the
        // same typed, zero-cost-quantum shape as a real seal error.
        Some(InjectedFault::SealFault) => {
            run.slices += 1;
            run.slice_cycles.push(0);
            Some(finish(
                run,
                JobOutcome::SealFailed("chaos: injected seal-farm fault".to_string()),
            ))
        }
        // An injected worker death: no real panic ever unwinds (the
        // "never a panic" contract) — the machine is dropped and the
        // same typed record a caught panic would produce is emitted.
        Some(InjectedFault::WorkerPanic) => {
            run.machine = None;
            run.slices += 1;
            run.slice_cycles.push(0);
            Some(finish(
                run,
                JobOutcome::WorkerPanic("chaos: injected worker fault".to_string()),
            ))
        }
        // An injected stall: the quantum runs normally, then its lane
        // cost is taxed in *virtual* cycles, so the schedule model (and
        // every sojourn derived from it) prices the slow host. The
        // machine's own simulated cycles are untouched — a stall is
        // scheduler time, not device work.
        Some(InjectedFault::Stall { cycles }) => {
            let mut record = catch_quantum(run, config, cache);
            match record.as_mut() {
                Some(r) => {
                    if let Some(last) = r.slice_cycles.last_mut() {
                        *last = last.saturating_add(cycles);
                    }
                }
                None => {
                    if let Some(last) = run.slice_cycles.last_mut() {
                        *last = last.saturating_add(cycles);
                    }
                }
            }
            record
        }
        None => catch_quantum(run, config, cache),
    };
    LaneResult {
        pending: task.pending,
        provisional: task.provisional,
        record,
        revived,
    }
}

// ---------------------------------------------------------------------
// The persistent thread pool.
// ---------------------------------------------------------------------

/// Shared state between the coordinator and the pool threads. One
/// dispatch wave at a time: the coordinator publishes `tasks`, workers
/// claim indices, the coordinator blocks on `done` until every lane
/// settles. Poisoning is shrugged off everywhere ([`lock_clean`]) — a
/// panicking quantum is already contained by [`catch_quantum`], and a
/// poisoned flag must not take the driver down (the whole point of the
/// panic-isolation fix).
struct PoolShared {
    config: FleetConfig,
    cache: Arc<ImageCache>,
    state: Mutex<PoolState>,
    /// Signalled when a wave is published or on shutdown.
    work: Condvar,
    /// Signalled when the last lane of a wave settles.
    done: Condvar,
}

#[derive(Default)]
struct PoolState {
    tasks: Vec<Option<LaneTask>>,
    next: usize,
    settled: usize,
    results: Vec<Option<LaneResult>>,
    shutdown: bool,
}

struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(threads: usize, config: FleetConfig, cache: Arc<ImageCache>) -> Pool {
        let shared = Arc::new(PoolShared {
            config,
            cache,
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool { shared, handles }
    }

    /// Runs one wave of lanes and returns their results in lane order.
    fn dispatch(&self, tasks: Vec<LaneTask>) -> Vec<LaneResult> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let mut state = lock_clean(&self.shared.state);
        state.tasks = tasks.into_iter().map(Some).collect();
        state.results = (0..n).map(|_| None).collect();
        state.next = 0;
        state.settled = 0;
        self.shared.work.notify_all();
        while state.settled < n {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.tasks.clear();
        let results = std::mem::take(&mut state.results);
        results.into_iter().flatten().collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = lock_clean(&self.shared.state);
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that somehow died outside the quantum barrier
            // has nothing left to tell us; the driver is shutting down.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut state = lock_clean(&shared.state);
    loop {
        if state.shutdown {
            return;
        }
        if state.next < state.tasks.len() {
            let i = state.next;
            state.next += 1;
            let Some(task) = state.tasks[i].take() else {
                continue;
            };
            drop(state);
            let result = run_lane(task, &shared.config, &shared.cache);
            state = lock_clean(&shared.state);
            state.results[i] = Some(result);
            state.settled += 1;
            if state.settled == state.tasks.len() {
                shared.done.notify_all();
            }
        } else {
            // Checked `next < tasks.len()` under the same lock the
            // dispatcher publishes under — no lost wakeup.
            state = shared
                .work
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

/// The async multi-tenant driver. See the [module docs](self) for the
/// architecture; the API shape mirrors the batch [`crate::Fleet`]
/// (register, submit, drive, drain) with two async additions: a virtual
/// clock ([`AsyncFleet::tick`] / [`AsyncFleet::now`]) and scheduled
/// arrivals with deferred typed rejection ([`AsyncFleet::submit_at`] /
/// [`AsyncFleet::drain_rejected`]).
///
/// # Examples
///
/// ```
/// use sofia_crypto::KeySet;
/// use sofia_fleet::{AsyncConfig, AsyncFleet, ClassId, JobSpec, TenantId};
///
/// let mut fleet = AsyncFleet::new(AsyncConfig {
///     threads: 2,
///     workers: 2,
///     ..Default::default()
/// });
/// let alice = TenantId(1);
/// fleet.register_tenant(alice, KeySet::from_seed(0xA11CE), ClassId(0))?;
/// fleet.submit(JobSpec::new(
///     alice,
///     "main: li t0, 6
///            li t1, 7
///            mul t2, t0, t1
///            li a0, 0xFFFF0000
///            sw t2, 0(a0)
///            halt",
///     10_000,
/// ))?;
/// fleet.run_until_idle();
/// let records = fleet.drain_finished();
/// assert_eq!(records[0].out_words, vec![42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AsyncFleet {
    config: AsyncConfig,
    /// The per-quantum configuration shared verbatim with the batch
    /// fleet's quantum loop — the seam that makes per-job execution
    /// bit-identical across the two drivers.
    fleet_config: FleetConfig,
    cache: Arc<ImageCache>,
    /// Lazily spawned on the first multi-threaded dispatch.
    pool: Option<Pool>,
    tenants: BTreeMap<u32, AsyncTenant>,
    classes: BTreeMap<u8, ClassState>,
    /// Future arrivals, keyed by arrival tick (FIFO within a tick).
    arrivals: BTreeMap<u64, Vec<Arrival>>,
    next_job: u64,
    now: u64,
    finished: Vec<JobRecord>,
    rejected: Vec<Rejection>,
    stats: AsyncStats,
    /// The active fault-injection plan (swappable mid-run via
    /// [`AsyncFleet::set_chaos_plan`] — an operator seam, and what the
    /// warm-then-storm chaos tests drive).
    chaos: ChaosPlan,
    /// The recovery state machine: retry ledgers, breaker window,
    /// degradation rungs, the typed event log.
    res: ResilienceState,
}

impl AsyncFleet {
    /// An empty driver.
    pub fn new(config: AsyncConfig) -> AsyncFleet {
        let fleet_config = FleetConfig {
            workers: config.workers.max(1),
            mode: config.mode,
            quarantine: config.quarantine,
            sofia: config.sofia,
            ..FleetConfig::default()
        };
        let chaos = config.chaos.clone();
        let res = ResilienceState::new(config.resilience.clone());
        AsyncFleet {
            config,
            fleet_config,
            cache: Arc::new(ImageCache::default()),
            pool: None,
            tenants: BTreeMap::new(),
            classes: BTreeMap::new(),
            arrivals: BTreeMap::new(),
            next_job: 0,
            now: 0,
            finished: Vec::new(),
            rejected: Vec::new(),
            stats: AsyncStats::default(),
            chaos,
            res,
        }
    }

    /// Registers a tenant's device keys into service class `class`.
    ///
    /// # Errors
    ///
    /// [`FleetError::TenantExists`] if the id is taken.
    pub fn register_tenant(
        &mut self,
        id: TenantId,
        keys: KeySet,
        class: ClassId,
    ) -> Result<(), FleetError> {
        if self.tenants.contains_key(&id.0) {
            return Err(FleetError::TenantExists(id));
        }
        self.tenants.insert(
            id.0,
            AsyncTenant {
                keys,
                class,
                state: TenantState::Active,
                stats: TenantStats::default(),
                outstanding_fuel: 0,
            },
        );
        self.classes.entry(class.0).or_insert_with(|| ClassState {
            vservice: 0,
            queue: VecDeque::new(),
        });
        Ok(())
    }

    /// Submits a job arriving *now*: admission is decided immediately.
    ///
    /// # Errors
    ///
    /// The typed [`AdmitError`] backpressure signal — the job was not
    /// queued.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let job = JobId(self.next_job);
        self.admit(job, spec)?;
        self.next_job += 1;
        Ok(job)
    }

    /// Schedules a job to arrive at virtual `tick` (clamped to the
    /// present). Admission is decided when the tick is driven; a refusal
    /// surfaces as a [`Rejection`] via [`AsyncFleet::drain_rejected`].
    /// This is the open-loop seam: the bench's arrival generators
    /// pre-load thousands of these.
    pub fn submit_at(&mut self, spec: JobSpec, tick: u64) -> JobId {
        let job = JobId(self.next_job);
        self.next_job += 1;
        self.arrivals
            .entry(tick.max(self.now))
            .or_default()
            .push(Arrival { job, spec });
        job
    }

    /// The virtual clock: ticks driven so far.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The virtual clock in simulated cycles (sum of tick costs).
    pub fn clock_cycles(&self) -> u64 {
        self.stats.makespan_cycles
    }

    /// Jobs currently queued across all classes.
    pub fn queued_jobs(&self) -> usize {
        self.classes.values().map(|c| c.queue.len()).sum()
    }

    /// Jobs currently parked as `SOFS1` bytes.
    pub fn parked_jobs(&self) -> usize {
        self.classes
            .values()
            .flat_map(|c| c.queue.iter())
            .filter(|p| p.parked.is_some())
            .count()
    }

    /// Arrivals scheduled for future ticks.
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.values().map(Vec::len).sum()
    }

    /// Driver counters.
    pub fn stats(&self) -> AsyncStats {
        self.stats
    }

    /// Resilience counters: faults injected, retries, sheds, breaker
    /// transitions, degradations. All zeros unless chaos or a
    /// non-default [`ResilienceConfig`] is active.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.res.stats
    }

    /// Takes every typed fault/recovery event since the last drain, in
    /// coordinator (deterministic) order.
    pub fn drain_resilience_events(&mut self) -> Vec<ResilienceEvent> {
        self.res.drain_events()
    }

    /// The active fault-injection plan.
    pub fn chaos_plan(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Swaps the fault-injection plan from the next tick on — the
    /// operator seam for drills ("warm the fleet, then storm it").
    /// Installing [`ChaosPlan::none`] stops injection immediately.
    pub fn set_chaos_plan(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
    }

    /// Records a fault the *harness* drew (the stream-scoped seams —
    /// [`Seam::Checkpoint`] truncation, [`Seam::Storm`] bursts — are
    /// injected outside the driver, but their typed events belong in
    /// the same ledger as the driver's own strikes, so "every fault has
    /// exactly one typed event" holds across the whole experiment).
    pub fn note_harness_fault(&mut self, seam: Seam, job: Option<JobId>, tenant: Option<TenantId>) {
        let now = self.now;
        self.res.note_fault(now, seam, job, tenant);
    }

    /// Per-tenant roll-ups, keyed by raw tenant id (same shape as the
    /// batch fleet's).
    pub fn tenant_stats(&self) -> BTreeMap<u32, TenantStats> {
        self.tenants.iter().map(|(id, t)| (*id, t.stats)).collect()
    }

    /// A tenant's service state.
    pub fn tenant_state(&self, id: TenantId) -> Option<TenantState> {
        self.tenants.get(&id.0).map(|t| t.state)
    }

    /// Lifts a suspension. Returns whether the tenant went back to
    /// [`TenantState::Active`] (evicted tenants never do).
    pub fn release(&mut self, id: TenantId) -> bool {
        match self.tenants.get_mut(&id.0) {
            Some(t) if t.state == TenantState::Suspended => {
                t.state = TenantState::Active;
                true
            }
            _ => false,
        }
    }

    /// Takes every record finished since the last drain, in completion
    /// order (deterministic: tick order, lane order within a tick).
    pub fn drain_finished(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Takes every deferred admission rejection since the last drain.
    pub fn drain_rejected(&mut self) -> Vec<Rejection> {
        std::mem::take(&mut self.rejected)
    }

    /// Seal-cache counters (shared across all tenants of this driver).
    pub fn seal_cache_stats(&self) -> sofia_transform::cache::ImageCacheStats {
        self.cache.stats()
    }

    /// Drives ticks until no job is queued and no arrival is scheduled.
    /// Returns the number of jobs finished along the way.
    pub fn run_until_idle(&mut self) -> usize {
        let mut finished = 0;
        while self.queued_jobs() > 0 || !self.arrivals.is_empty() {
            finished += self.tick();
        }
        finished
    }

    /// Drives one virtual tick: run the resilience pass (breaker
    /// cooldown, deadline sheds), admit due arrivals, WFQ-select up to
    /// `workers` lanes, draw the chaos plan against them, execute their
    /// quanta (in parallel over the host pool — results provably
    /// independent of `threads`), price the tick, fold finished records
    /// (intercepting retryable faults), park the cold. Returns the
    /// number of jobs that finished this tick (shed jobs included —
    /// they finish with a typed [`JobOutcome::DeadlineMissed`] record).
    pub fn tick(&mut self) -> usize {
        let now = self.now;
        let shed = self.resilience_pass(now);
        self.admit_due(now);
        let mut lanes = self.select_lanes();
        self.inject_faults(now, &mut lanes);
        let results = self.execute(lanes);
        let finished = self.settle(now, results);
        self.park_pass();
        self.now += 1;
        self.stats.ticks += 1;
        shed + finished
    }

    /// The per-tick recovery pass, run before admissions so a breaker
    /// close (or a deadline shed freeing queue room) takes effect for
    /// this tick's arrivals: closes the breaker when its cooldown has
    /// elapsed, then sheds every queued job whose virtual-time wait has
    /// exceeded its class deadline. Shed jobs finish with a typed
    /// [`JobOutcome::DeadlineMissed`] record — no quarantine (the job
    /// never ran; the fleet was slow, not the tenant hostile).
    fn resilience_pass(&mut self, now: u64) -> usize {
        self.res.breaker_tick(now);
        if self.res.config.deadlines.is_empty() {
            return 0;
        }
        let clock = self.stats.makespan_cycles;
        let mut shed: Vec<(Pending, u64, u64)> = Vec::new();
        for (&class_id, state) in self.classes.iter_mut() {
            let Some(deadline) = self.res.deadline(ClassId(class_id)) else {
                continue;
            };
            let mut kept = VecDeque::with_capacity(state.queue.len());
            for pending in state.queue.drain(..) {
                let waited = clock.saturating_sub(pending.arrival_cycles);
                if waited > deadline {
                    shed.push((pending, waited, deadline));
                } else {
                    kept.push_back(pending);
                }
            }
            state.queue = kept;
        }
        let count = shed.len();
        for (mut pending, waited, deadline) in shed {
            let job = pending.run.id;
            let tenant = pending.run.spec.tenant;
            self.res
                .note_deadline_shed(now, job, tenant, waited, deadline);
            self.res.finish_job(job);
            // The record of a job that never ran: empty outputs, zero
            // machine work, sojourn = the wait that killed it.
            pending.run.machine = None;
            let record = JobRecord {
                job,
                tenant,
                outcome: JobOutcome::DeadlineMissed {
                    deadline_cycles: deadline,
                },
                out_words: Vec::new(),
                violations: Vec::new(),
                stats: Default::default(),
                seal_cache_hit: false,
                retried: false,
                slices: pending.run.slices,
                slice_cycles: std::mem::take(&mut pending.run.slice_cycles),
                start_tick: pending.start_tick.unwrap_or(now),
                end_tick: now,
                arrival_tick: pending.arrival_tick,
                sojourn_cycles: waited,
            };
            self.fold_finished(&record, pending.run.spec.fuel);
            self.finished.push(record);
        }
        self.stats.finished += count as u64;
        count
    }

    /// Draws the chaos plan against this tick's selected lanes, on the
    /// coordinator — the decisions are functions of `(seed, tick, job)`
    /// only, so they replay identically at any thread count. At most
    /// one fault strikes a lane per tick (seam priority: snapshot →
    /// seal → panic → stall), and every strike lands exactly one typed
    /// [`ResilienceEvent::FaultInjected`].
    fn inject_faults(&mut self, now: u64, lanes: &mut [LaneTask]) {
        if self.chaos.is_none() {
            return;
        }
        for task in lanes.iter_mut() {
            let job = task.pending.run.id;
            let tenant = task.pending.run.spec.tenant;
            if task.pending.parked.is_some() && self.chaos.strikes(Seam::Snapshot, now, job.0) {
                if let Some(bytes) = task.pending.parked.as_mut() {
                    self.chaos.corrupt_snapshot(bytes, now, job.0);
                }
                self.res
                    .note_fault(now, Seam::Snapshot, Some(job), Some(tenant));
                continue;
            }
            // Seal faults strike only *fresh* transforms: a lane whose
            // image is already sealed (or cached) has no farm work for
            // the fault to hit — which is exactly why a 100%-seal-fault
            // storm still serves warm tenants.
            let cold = task.pending.run.machine.is_none() && task.pending.run.image.is_none();
            if cold
                && !self.cache.contains(&image_key(
                    &task.pending.run.keys,
                    &task.pending.run.spec.source,
                ))
                && self.chaos.strikes(Seam::Seal, now, job.0)
            {
                task.fault = Some(InjectedFault::SealFault);
                let actions = self
                    .res
                    .note_fault(now, Seam::Seal, Some(job), Some(tenant));
                if actions.engage_scalar {
                    self.cache.set_engine(sofia_crypto::CryptoEngine::Scalar);
                }
                continue;
            }
            if self.chaos.strikes(Seam::Panic, now, job.0) {
                task.fault = Some(InjectedFault::WorkerPanic);
                self.res
                    .note_fault(now, Seam::Panic, Some(job), Some(tenant));
                continue;
            }
            if self.chaos.strikes(Seam::Stall, now, job.0) {
                task.fault = Some(InjectedFault::Stall {
                    cycles: self.chaos.stall_cycles,
                });
                self.res
                    .note_fault(now, Seam::Stall, Some(job), Some(tenant));
            }
        }
    }

    /// Admission gate for one job at the current tick.
    fn admit(&mut self, job: JobId, spec: JobSpec) -> Result<(), AdmitError> {
        let queued_total: usize = self.classes.values().map(|c| c.queue.len()).sum();
        let Some(tenant) = self.tenants.get_mut(&spec.tenant.0) else {
            return Err(AdmitError::UnknownTenant(spec.tenant));
        };
        match tenant.state {
            TenantState::Active => {}
            TenantState::Suspended => return Err(AdmitError::Quarantined(spec.tenant)),
            TenantState::Evicted => return Err(AdmitError::Evicted(spec.tenant)),
        }
        let class = tenant.class;
        let budget = *self.config.admission.class(class);
        if self.res.sheds(budget.weight.max(1)) {
            // The circuit breaker is open and this class is light
            // enough to shed: refuse before any queue/fuel accounting.
            self.res.note_load_shed(self.now, spec.tenant, class);
            return Err(AdmitError::LoadShed {
                tenant: spec.tenant,
                class,
            });
        }
        if queued_total >= self.config.admission.global_queue_cap {
            return Err(AdmitError::QueueFull {
                queued: queued_total,
                cap: self.config.admission.global_queue_cap,
            });
        }
        let class_queued = self
            .classes
            .get(&class.0)
            .map(|c| c.queue.len())
            .unwrap_or(0);
        if class_queued >= budget.queue_cap {
            return Err(AdmitError::ClassQueueFull {
                class,
                queued: class_queued,
                cap: budget.queue_cap,
            });
        }
        if tenant.outstanding_fuel.saturating_add(spec.fuel) > budget.tenant_fuel_quota {
            return Err(AdmitError::OverFuelQuota {
                tenant: spec.tenant,
                outstanding: tenant.outstanding_fuel,
                requested: spec.fuel,
                quota: budget.tenant_fuel_quota,
            });
        }
        tenant.outstanding_fuel += spec.fuel;
        let keys = tenant.keys.clone();
        let mut run = JobRun::new(0, job, keys, spec);
        if self.res.vcache_degraded(run.spec.tenant) {
            // Degradation rung: this tenant's snapshots kept failing
            // revival, so its machines run vcache-off — less parked
            // state to rot, at re-verification cost. Correctness is
            // untouched (the vcache is a performance memo).
            let mut sofia = self.config.sofia;
            sofia.vcache.enabled = false;
            run.sofia_override = Some(sofia);
        }
        let arrival_cycles = self.stats.makespan_cycles;
        let floor = self.backlog_vservice_floor();
        let Some(state) = self.classes.get_mut(&class.0) else {
            // `register_tenant` creates the class entry; its absence is
            // a driver bug, but never worth a panic at admission.
            debug_assert!(false, "missing class state for {class}");
            return Err(AdmitError::UnknownTenant(run.spec.tenant));
        };
        if state.queue.is_empty() {
            // WFQ catch-up: a class going idle must not bank unbounded
            // credit against classes that kept working. On re-backlog
            // its virtual service jumps forward to the working floor.
            if let Some(floor) = floor {
                let weight = budget.weight.max(1);
                state.vservice = state.vservice.max(floor.saturating_mul(weight));
            }
        }
        state.queue.push_back(Pending {
            run,
            parked: None,
            class,
            arrival_tick: self.now,
            arrival_cycles,
            start_tick: None,
            idle_ticks: 0,
        });
        self.stats.admitted += 1;
        Ok(())
    }

    /// Minimum weighted virtual service (`vservice / weight`) among the
    /// currently backlogged classes, or `None` if none are.
    fn backlog_vservice_floor(&self) -> Option<u64> {
        self.classes
            .iter()
            .filter(|(_, c)| !c.queue.is_empty())
            .map(|(id, c)| {
                let weight = self.config.admission.class(ClassId(*id)).weight.max(1);
                c.vservice / weight
            })
            .min()
    }

    /// Admits every arrival scheduled at or before `now`, in tick order
    /// then submission order; refusals become [`Rejection`]s.
    fn admit_due(&mut self, now: u64) {
        let due: Vec<u64> = self.arrivals.range(..=now).map(|(tick, _)| *tick).collect();
        for tick in due {
            let Some(batch) = self.arrivals.remove(&tick) else {
                continue;
            };
            for arrival in batch {
                let tenant = arrival.spec.tenant;
                if let Err(error) = self.admit(arrival.job, arrival.spec) {
                    self.stats.rejected += 1;
                    self.rejected.push(Rejection {
                        job: arrival.job,
                        tenant,
                        tick: now,
                        error,
                    });
                }
            }
        }
    }

    /// WFQ lane selection: fills up to `workers` lanes, cheapest
    /// weighted class first, FIFO within a class. The provisional
    /// charge (the quantum's fuel ceiling) is applied at selection so
    /// one tick's picks rotate across classes instead of draining the
    /// cheapest one; it is trued up with actual cycles in
    /// [`AsyncFleet::settle`].
    fn select_lanes(&mut self) -> Vec<LaneTask> {
        let workers = self.config.workers.max(1);
        let mut lanes: Vec<LaneTask> = Vec::new();
        for _ in 0..workers {
            let Some(class_id) = self.cheapest_backlogged_class() else {
                break;
            };
            let Some(state) = self.classes.get_mut(&class_id) else {
                break;
            };
            let Some(pending) = state.queue.pop_front() else {
                break;
            };
            let provisional = match self.config.mode {
                SchedMode::FuelSliced { slice } => slice.max(1).min(pending.run.remaining.max(1)),
                SchedMode::RunToCompletion => pending.run.remaining.max(1),
            };
            state.vservice = state.vservice.saturating_add(provisional);
            lanes.push(LaneTask {
                pending,
                provisional,
                fault: None,
            });
        }
        lanes
    }

    /// The backlogged class with minimum `vservice / weight`, compared
    /// exactly (u128 cross-multiply); ties break to the lower class id.
    fn cheapest_backlogged_class(&self) -> Option<u8> {
        let mut best: Option<(u8, u64, u64)> = None;
        for (&id, state) in &self.classes {
            if state.queue.is_empty() {
                continue;
            }
            let weight = self.config.admission.class(ClassId(id)).weight.max(1);
            let better = match best {
                None => true,
                Some((_, best_vs, best_w)) => {
                    (state.vservice as u128) * (best_w as u128)
                        < (best_vs as u128) * (weight as u128)
                }
            };
            if better {
                best = Some((id, state.vservice, weight));
            }
        }
        best.map(|(id, _, _)| id)
    }

    /// Runs the selected lanes' quanta: pre-seals the wave's distinct
    /// cold images through the [`SealFarm`] (deterministic attribution,
    /// claimed in lane order — exactly the batch fleet's farm protocol),
    /// then executes each lane on the host pool. Results come back in
    /// lane order regardless of thread interleaving.
    fn execute(&mut self, mut lanes: Vec<LaneTask>) -> Vec<LaneResult> {
        if lanes.is_empty() {
            return Vec::new();
        }
        if !self.res.inline_seal_engaged() {
            self.preseal_wave(&mut lanes);
        }
        let threads = self.config.threads.max(1);
        if threads <= 1 || lanes.len() <= 1 {
            return lanes
                .into_iter()
                .map(|t| run_lane(t, &self.fleet_config, &self.cache))
                .collect();
        }
        if self.pool.is_none() {
            self.pool = Some(Pool::new(
                threads,
                self.fleet_config,
                Arc::clone(&self.cache),
            ));
        }
        match &self.pool {
            Some(pool) => pool.dispatch(lanes),
            // Assigned just above; kept total rather than panicking.
            None => Vec::new(),
        }
    }

    /// Farm-seals the wave's distinct cold images before dispatch, with
    /// the batch fleet's claim protocol: the first lane of each freshly
    /// sealed image adopts it (fresh/shared verdict as its attribution);
    /// duplicates and failures fall through to the job path, which the
    /// farm just made warm (or which fails identically — seals are
    /// deterministic). This keeps `seal_cache_hit` a lane-order
    /// function, independent of thread timing.
    fn preseal_wave(&mut self, lanes: &mut [LaneTask]) {
        let requests: Vec<(&KeySet, &str)> = lanes
            .iter()
            // A lane marked with an injected seal fault must not be
            // pre-sealed — its transform is the thing that "failed".
            .filter(|t| t.fault != Some(InjectedFault::SealFault))
            .filter(|t| t.pending.run.machine.is_none() && t.pending.run.image.is_none())
            .map(|t| (&t.pending.run.keys, t.pending.run.spec.source.as_str()))
            .collect();
        if requests.is_empty() {
            return;
        }
        let farm = SealFarm::new(&self.cache, self.config.threads.max(1));
        let wave = farm.seal_wave(&requests);
        let mut claimed: HashSet<ImageKey> = HashSet::new();
        for task in lanes.iter_mut() {
            if task.fault == Some(InjectedFault::SealFault) {
                continue;
            }
            let run = &mut task.pending.run;
            if run.machine.is_some() || run.image.is_some() {
                continue;
            }
            let key = image_key(&run.keys, &run.spec.source);
            if !claimed.insert(key) {
                continue;
            }
            if let Some(SealVerdict {
                image: Ok(image),
                fresh,
            }) = wave.verdicts.get(&key)
            {
                run.image = Some(Arc::clone(image));
                run.seal_cache_hit = !fresh;
            }
        }
    }

    /// Prices the tick and folds its lane results, in lane order:
    /// finished records gain their arrival/sojourn fields and fold into
    /// stats + quarantine; preempted runs re-queue FIFO in their class.
    fn settle(&mut self, now: u64, results: Vec<LaneResult>) -> usize {
        // Tick cost: max quantum cost among the served lanes — the
        // barrier-synchronous pricing rule of `crate::schedule`.
        let lane_cost = |r: &LaneResult| match &r.record {
            Some(record) => record.slice_cycles.last().copied().unwrap_or(0),
            None => r.pending.run.slice_cycles.last().copied().unwrap_or(0),
        };
        let tick_cost = results.iter().map(lane_cost).max().unwrap_or(0);
        self.stats.makespan_cycles += tick_cost;
        let clock = self.stats.makespan_cycles;

        let mut finished = 0usize;
        for result in results {
            self.stats.quanta += 1;
            self.stats.revives += result.revived as u64;
            let actual = lane_cost(&result);
            let mut pending = result.pending;
            if let Some(state) = self.classes.get_mut(&pending.class.0) {
                // True up the WFQ charge with the quantum's actual cost.
                state.vservice = state
                    .vservice
                    .saturating_add(actual)
                    .saturating_sub(result.provisional);
            }
            pending.idle_ticks = 0;
            if pending.start_tick.is_none() {
                pending.start_tick = Some(now);
            }
            match result.record {
                Some(mut record) => {
                    record.arrival_tick = pending.arrival_tick;
                    record.start_tick = pending.start_tick.unwrap_or(now);
                    record.end_tick = now + 1;
                    record.sojourn_cycles = clock.saturating_sub(pending.arrival_cycles);
                    let infra_fault = matches!(
                        record.outcome,
                        JobOutcome::SealFailed(_)
                            | JobOutcome::WorkerPanic(_)
                            | JobOutcome::RevivalFailed(_)
                    );
                    match &record.outcome {
                        JobOutcome::WorkerPanic(_) => self.stats.worker_panics += 1,
                        JobOutcome::RevivalFailed(_) => {
                            self.stats.revival_failures += 1;
                            self.res.note_revival_failure(now, record.tenant);
                        }
                        _ => {}
                    }
                    if infra_fault {
                        // One breaker feed per fault *record* — retried
                        // or not, the infrastructure failed once.
                        self.res.feed_breaker(now);
                        if let Some(attempt) = self.res.take_retry(now, record.job, record.tenant) {
                            // Retry instead of finishing: release the
                            // fuel claim (the retry arrival re-charges
                            // it) and re-queue the job with backoff +
                            // seeded jitter. The record is discarded —
                            // its fault is already accounted for by the
                            // typed FaultInjected/RetryScheduled events
                            // and the breaker feed.
                            if let Some(t) = self.tenants.get_mut(&record.tenant.0) {
                                t.outstanding_fuel =
                                    t.outstanding_fuel.saturating_sub(pending.run.spec.fuel);
                            }
                            let base = self.res.config.backoff_base_ticks.max(1);
                            let backoff = base
                                .checked_shl(attempt.saturating_sub(1))
                                .unwrap_or(u64::MAX);
                            let jitter = self.chaos.jitter(
                                self.res.config.backoff_jitter_ticks,
                                now,
                                record.job.0 ^ ((attempt as u64) << 48),
                            );
                            let resume = now
                                .saturating_add(1)
                                .saturating_add(backoff)
                                .saturating_add(jitter);
                            self.res.note_retry_scheduled(
                                now,
                                record.job,
                                record.tenant,
                                attempt,
                                resume,
                            );
                            self.arrivals.entry(resume).or_default().push(Arrival {
                                job: record.job,
                                spec: pending.run.spec.clone(),
                            });
                            continue;
                        }
                    }
                    self.res.finish_job(record.job);
                    if let Some(deadline) = self.res.deadline(pending.class) {
                        if record.sojourn_cycles > deadline {
                            self.res.note_deadline_late(
                                now,
                                record.job,
                                record.tenant,
                                record.sojourn_cycles,
                                deadline,
                            );
                        }
                    }
                    self.fold_finished(&record, pending.run.spec.fuel);
                    self.finished.push(record);
                    finished += 1;
                }
                None => {
                    if let Some(state) = self.classes.get_mut(&pending.class.0) {
                        state.queue.push_back(pending);
                    } else {
                        debug_assert!(false, "missing class state for {}", pending.class);
                    }
                }
            }
        }
        self.stats.finished += finished as u64;
        finished
    }

    /// Stats + quarantine fold for one finished record (deterministic:
    /// called in tick order, lane order). Containment matches the batch
    /// fleet's contract: jobs already admitted still run — their results
    /// stay bit-identical to serial execution — and only *future*
    /// admission is refused, with the typed [`AdmitError`].
    fn fold_finished(&mut self, record: &JobRecord, fuel: u64) {
        let Some(tenant) = self.tenants.get_mut(&record.tenant.0) else {
            debug_assert!(false, "record for unregistered {}", record.tenant);
            return;
        };
        tenant.stats.absorb(record);
        tenant.outstanding_fuel = tenant.outstanding_fuel.saturating_sub(fuel);
        let fold = fold_policy(
            self.config.quarantine,
            &mut tenant.state,
            needs_containment(record),
        );
        if fold.suspended_now {
            self.stats.quarantines += 1;
        }
        if fold.evicted_now {
            self.stats.evictions += 1;
        }
        if fold.purge {
            // Re-purge on *every* evicted-tenant record: jobs admitted
            // before the eviction keep running (their results stay
            // bit-identical to the batch driver's), and any of them can
            // re-seal the tenant's image into the shared cache after the
            // eviction-time purge. One purge per fold keeps the cache
            // state identical to the batch fleet's end-of-batch fold.
            self.cache.purge(&tenant.keys);
        }
    }

    /// Ages the still-queued jobs and parks the cold ones to `SOFS1`
    /// bytes. Also tracks the peak count of resident live machines —
    /// the number the "thousands of tenants on a few threads" claim
    /// stands on.
    fn park_pass(&mut self) {
        let park_after = self.config.park_after;
        let mut resident = 0u64;
        let mut parks = 0u64;
        for state in self.classes.values_mut() {
            for pending in state.queue.iter_mut() {
                pending.idle_ticks += 1;
                let cold = park_after.is_some_and(|after| pending.idle_ticks >= after);
                if cold {
                    if let Some(machine) = pending.run.machine.take() {
                        let snap = machine.snapshot(pending.run.remaining);
                        pending.parked = Some(snap.to_bytes());
                        parks += 1;
                    }
                } else if pending.run.machine.is_some() {
                    resident += 1;
                }
            }
        }
        self.stats.parks += parks;
        self.stats.peak_resident_machines = self.stats.peak_resident_machines.max(resident);
    }
}

// Compile-time guarantee: the driver crosses thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AsyncFleet>();
};
