//! The fetch-unit seam: what varies between the vanilla baseline and a
//! protected machine is *only* how instructions get from memory into the
//! pipeline (paper Fig. 1). Everything downstream — execute, memory
//! access, hazard accounting, the run loop — is identical, so it lives
//! once in [`crate::engine::Pipeline`] and machines differ by the
//! [`FetchUnit`] they plug in front of it.
//!
//! * [`PlainFetch`] — word-at-a-time plaintext fetch (the baseline);
//! * `sofia_core::fetch::SofiaFetchUnit` — block fetch through the CFI
//!   decrypt and SI verify units;
//! * future backends (CFI-only ablations, other ciphers, reboot studies)
//!   implement this trait instead of duplicating a machine.

use std::sync::Arc;

use sofia_isa::Instruction;

use crate::icache::ICache;
use crate::mem::Memory;
use crate::stats::ExecStats;
use crate::Trap;

/// The machine state a fetch unit may consult or charge while fetching:
/// read-only memory access plus the shared I-cache and cycle counters
/// (ciphertext is cached in front of any decrypt unit, paper Fig. 1, so
/// the cache model is common property).
pub struct FetchCtx<'a> {
    /// The physical memory (fetches read ROM).
    pub mem: &'a Memory,
    /// The instruction cache; fetch units account hit/miss stalls here.
    pub icache: &'a mut ICache,
    /// Baseline counters; fetch-path cycles are charged into
    /// [`ExecStats::cycles`] (and stall breakdowns where applicable).
    pub stats: &'a mut ExecStats,
}

/// One decoded instruction slot delivered by a fetch unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// The address the instruction was fetched from.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Instruction,
}

/// The control-flow outcome of one executed slot, reported back to the
/// fetch unit so it can sequence the next batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOutcome {
    /// Fell through to the next instruction.
    Sequential,
    /// Transferred control (branch taken, jump, call, return).
    Transfer {
        /// The transfer target.
        target: u32,
    },
}

/// The violation type of a machine that cannot raise one: the baseline
/// fetches anything executable without checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NoViolation {}

/// The slot buffer the engine hands a fetch unit each step.
///
/// Two delivery paths share it: units that decode fresh words [`push`]
/// into an owned buffer (reused across steps, so the steady state is
/// allocation-free), while units replaying an already-verified block can
/// [`deliver_shared`] an `Arc<[Slot]>` — the engine then executes
/// straight from the shared slice, with no per-fetch copy of the slots.
/// That zero-copy path is what makes a verified-block-cache hit cheap on
/// the *host*: the simulated-cycle model is unaffected either way.
///
/// [`push`]: Batch::push
/// [`deliver_shared`]: Batch::deliver_shared
#[derive(Clone, Debug, Default)]
pub struct Batch {
    owned: Vec<Slot>,
    shared: Option<Arc<[Slot]>>,
}

impl Batch {
    /// An empty buffer.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Empties the buffer, keeping the owned allocation for reuse.
    pub fn clear(&mut self) {
        self.owned.clear();
        self.shared = None;
    }

    /// Appends one freshly decoded slot.
    ///
    /// # Panics
    ///
    /// Panics if a shared slice was already delivered this step — a fetch
    /// unit delivers one batch per step, owned or shared, never a mix.
    pub fn push(&mut self, slot: Slot) {
        assert!(
            self.shared.is_none(),
            "cannot push into a batch after deliver_shared"
        );
        self.owned.push(slot);
    }

    /// Delivers a whole verified block as a shared slice — zero-copy: the
    /// engine executes directly from it.
    ///
    /// # Panics
    ///
    /// Panics if slots were already delivered this step.
    pub fn deliver_shared(&mut self, slots: Arc<[Slot]>) {
        assert!(
            self.owned.is_empty() && self.shared.is_none(),
            "cannot deliver a shared block into a non-empty batch"
        );
        self.shared = Some(slots);
    }

    /// The delivered slots.
    pub fn as_slice(&self) -> &[Slot] {
        match &self.shared {
            Some(shared) => shared,
            None => &self.owned,
        }
    }

    /// Number of delivered slots.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies out slot `i` (slots are small and `Copy`; the engine reads
    /// them by value so it can keep mutating architectural state).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn slot(&self, i: usize) -> Slot {
        self.as_slice()[i]
    }

    /// The batch as a shareable slice: hands back the existing `Arc` when
    /// the batch was delivered shared (no copy), or freezes the owned
    /// slots into a new one (one copy — e.g. a cache *insert* after a
    /// verified miss).
    pub fn to_shared(&self) -> Arc<[Slot]> {
        match &self.shared {
            Some(shared) => Arc::clone(shared),
            None => Arc::from(self.owned.as_slice()),
        }
    }
}

/// A pluggable instruction-delivery unit in front of the shared pipeline.
///
/// The unit owns all sequencing state (program counter or block cursor)
/// and all security state; the engine owns the architectural state. Per
/// step the engine asks for a batch, executes its slots, and reports each
/// slot's control-flow outcome back via [`FetchUnit::retire`].
pub trait FetchUnit {
    /// The security-violation type this unit can detect.
    /// [`NoViolation`] (uninhabited) for unchecked fetch.
    type Violation: Copy + std::fmt::Debug;

    /// Whether the unit already charges one issue cycle per delivered
    /// slot while fetching (block-structured units charge per fetched
    /// word, MAC/pad words included). When `true` the engine charges only
    /// hazard penalties per retired instruction instead of the full
    /// base-plus-hazard cost.
    const ISSUE_CHARGED_IN_FETCH: bool = false;

    /// Fetches and decodes the next batch of slots into `out` (cleared by
    /// the engine beforehand), charging fetch-path cycles through `ctx`.
    /// Freshly decoded slots are [`Batch::push`]ed; an already-verified
    /// shared block goes through [`Batch::deliver_shared`] (zero-copy).
    ///
    /// Returns `Ok(Some(violation))` when the unit refuses to deliver the
    /// batch (tampered code, forged edge, …) — the engine executes
    /// nothing and lets the machine's reset policy decide what happens.
    ///
    /// # Errors
    ///
    /// Architectural traps (fetch faults, undecodable words on the
    /// unchecked baseline) propagate as `Err`.
    fn fetch_batch(
        &mut self,
        ctx: &mut FetchCtx<'_>,
        out: &mut Batch,
    ) -> Result<Option<Self::Violation>, Trap>;

    /// Reports the control-flow outcome of slot `slot` (of `batch_len`)
    /// at address `pc`, so the unit can sequence the next fetch.
    ///
    /// # Errors
    ///
    /// Returns the violation an outcome constitutes under the unit's
    /// policy (e.g. SOFIA's "control can only exit at the final slot").
    fn retire(
        &mut self,
        pc: u32,
        slot: usize,
        batch_len: usize,
        outcome: SlotOutcome,
    ) -> Result<(), Self::Violation>;

    /// Hardware reset: restart sequencing from the entry point. Returns
    /// the cycles the reset costs (reboot time; 0 for the baseline).
    fn on_reset(&mut self) -> u64;
}

/// The baseline's fetch unit: one plaintext word per batch, no checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainFetch {
    pc: u32,
    entry: u32,
}

impl PlainFetch {
    /// A unit starting (and restarting on reset) at `entry`.
    pub fn new(entry: u32) -> PlainFetch {
        PlainFetch { pc: entry, entry }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Redirects the next fetch — the attack harness's hijack channel.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }
}

impl FetchUnit for PlainFetch {
    type Violation = NoViolation;

    fn fetch_batch(
        &mut self,
        ctx: &mut FetchCtx<'_>,
        out: &mut Batch,
    ) -> Result<Option<NoViolation>, Trap> {
        let pc = self.pc;
        let stall = ctx.icache.access_cycles(pc) as u64;
        ctx.stats.icache_stall_cycles += stall;
        ctx.stats.cycles += stall;
        let word = ctx.mem.fetch(pc)?;
        let inst = Instruction::decode(word)
            .map_err(|e| Trap::IllegalInstruction { word: e.word(), pc })?;
        out.push(Slot { pc, inst });
        Ok(None)
    }

    fn retire(
        &mut self,
        pc: u32,
        _slot: usize,
        _batch_len: usize,
        outcome: SlotOutcome,
    ) -> Result<(), NoViolation> {
        self.pc = match outcome {
            SlotOutcome::Sequential => pc.wrapping_add(4),
            SlotOutcome::Transfer { target } => target,
        };
        Ok(())
    }

    fn on_reset(&mut self) -> u64 {
        self.pc = self.entry;
        0
    }
}
