//! The bare-metal memory map: program ROM, data RAM and the MMIO page.
//!
//! ```text
//! 0x0000_0100 … : program ROM (text; execute + read, word-granular)
//! 0x1000_0000 … : data RAM (default 1 MiB; sp starts at the top)
//! 0xFFFF_0000 … : MMIO page (output ports, actuator)
//! ```
//!
//! Everything is little-endian. Stores into ROM trap ([`Trap::WriteToRom`]):
//! the paper's adversary tampers with the *stored image*, not via store
//! instructions, and safety-critical firmware does not self-modify.

use crate::Trap;

/// Base of the MMIO page.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
/// Word-output port: each `sw` here appends one `u32` to the output log.
pub const MMIO_OUT_WORD: u32 = 0xFFFF_0000;
/// Byte-output port: each `sb` here appends one byte.
pub const MMIO_OUT_BYTE: u32 = 0xFFFF_0004;
/// The "actuator" port standing in for a safety-critical peripheral
/// (brakes, valves, …): the port SOFIA must protect from tampered stores.
pub const MMIO_ACTUATOR: u32 = 0xFFFF_0010;

/// Access width for loads and stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    /// One byte.
    Byte,
    /// Two bytes, 2-aligned.
    Half,
    /// Four bytes, 4-aligned.
    Word,
}

impl Width {
    /// The access size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// Memory-mapped I/O state: everything the program sent to the outside
/// world, preserved for the test harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mmio {
    /// Words written to [`MMIO_OUT_WORD`].
    pub out_words: Vec<u32>,
    /// Bytes written to [`MMIO_OUT_BYTE`].
    pub out_bytes: Vec<u8>,
    /// Values written to the safety-critical [`MMIO_ACTUATOR`] port.
    pub actuator_writes: Vec<u32>,
}

/// The machine's physical memory.
///
/// # Examples
///
/// ```
/// use sofia_cpu::mem::{Memory, Width};
///
/// let mut mem = Memory::new(0x100, vec![0x0000_000D], 0x1000_0000, 4096);
/// mem.store(0x1000_0000, Width::Word, 0xDEAD_BEEF)?;
/// assert_eq!(mem.load(0x1000_0000, Width::Word)?, 0xDEAD_BEEF);
/// assert_eq!(mem.load(0x1000_0000, Width::Byte)?, 0xEF); // little-endian
/// # Ok::<(), sofia_cpu::Trap>(())
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    rom_base: u32,
    rom: Vec<u32>,
    ram_base: u32,
    ram: Vec<u8>,
    /// I/O side effects, readable by the harness.
    pub mmio: Mmio,
}

impl Memory {
    /// Creates a memory with the given ROM contents and a zeroed RAM of
    /// `ram_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the bases are not word-aligned.
    pub fn new(rom_base: u32, rom: Vec<u32>, ram_base: u32, ram_size: u32) -> Memory {
        assert!(rom_base % 4 == 0 && ram_base % 4 == 0, "unaligned base");
        Memory {
            rom_base,
            rom,
            ram_base,
            ram: vec![0; ram_size as usize],
            mmio: Mmio::default(),
        }
    }

    /// Base address of the ROM.
    pub fn rom_base(&self) -> u32 {
        self.rom_base
    }

    /// The ROM contents (one encrypted or plain word per text word).
    pub fn rom(&self) -> &[u32] {
        &self.rom
    }

    /// Mutable ROM access — **for the attack harness only**, modelling an
    /// adversary who tampers with the stored image (flash/JTAG access).
    pub fn rom_mut(&mut self) -> &mut Vec<u32> {
        &mut self.rom
    }

    /// Base address of the RAM.
    pub fn ram_base(&self) -> u32 {
        self.ram_base
    }

    /// RAM size in bytes.
    pub fn ram_size(&self) -> u32 {
        self.ram.len() as u32
    }

    /// Copies `bytes` into RAM at `addr` (used by the loader to initialise
    /// the data section).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside RAM.
    pub fn load_ram(&mut self, addr: u32, bytes: &[u8]) {
        let start = (addr - self.ram_base) as usize;
        self.ram[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// The whole RAM as raw bytes — the snapshot export.
    pub fn ram(&self) -> &[u8] {
        &self.ram
    }

    /// Reads raw RAM for the harness.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside RAM.
    pub fn peek_ram(&self, addr: u32, len: usize) -> &[u8] {
        let start = (addr - self.ram_base) as usize;
        &self.ram[start..start + len]
    }

    /// Fetches one instruction word.
    ///
    /// # Errors
    ///
    /// [`Trap::FetchFault`] when `addr` is unaligned or outside the ROM.
    pub fn fetch(&self, addr: u32) -> Result<u32, Trap> {
        if addr % 4 != 0 {
            return Err(Trap::FetchFault { addr });
        }
        let idx = addr.wrapping_sub(self.rom_base) / 4;
        self.rom
            .get(idx as usize)
            .copied()
            .filter(|_| addr >= self.rom_base)
            .ok_or(Trap::FetchFault { addr })
    }

    /// Loads a zero-extended value of the given width.
    ///
    /// ROM is readable (constant tables may live in text on real systems);
    /// MMIO reads return 0.
    ///
    /// # Errors
    ///
    /// [`Trap::Misaligned`] or [`Trap::LoadFault`].
    pub fn load(&self, addr: u32, width: Width) -> Result<u32, Trap> {
        if addr % width.bytes() != 0 {
            return Err(Trap::Misaligned { addr });
        }
        if addr >= MMIO_BASE {
            return Ok(0);
        }
        if let Some(offset) = self.ram_offset(addr, width) {
            let b = &self.ram[offset..];
            return Ok(match width {
                Width::Byte => b[0] as u32,
                Width::Half => u16::from_le_bytes([b[0], b[1]]) as u32,
                Width::Word => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            });
        }
        // ROM reads, assembled little-endian from words.
        if addr >= self.rom_base {
            let off = (addr - self.rom_base) as usize;
            let word_idx = off / 4;
            if word_idx < self.rom.len() {
                let bytes = self.rom[word_idx].to_le_bytes();
                let in_word = off % 4;
                return Ok(match width {
                    Width::Byte => bytes[in_word] as u32,
                    Width::Half => u16::from_le_bytes([bytes[in_word], bytes[in_word + 1]]) as u32,
                    Width::Word => self.rom[word_idx],
                });
            }
        }
        Err(Trap::LoadFault { addr })
    }

    /// Stores the low `width` bytes of `value`.
    ///
    /// # Errors
    ///
    /// [`Trap::Misaligned`], [`Trap::WriteToRom`] or [`Trap::StoreFault`].
    pub fn store(&mut self, addr: u32, width: Width, value: u32) -> Result<(), Trap> {
        if addr % width.bytes() != 0 {
            return Err(Trap::Misaligned { addr });
        }
        if addr >= MMIO_BASE {
            match addr {
                MMIO_OUT_WORD => self.mmio.out_words.push(value),
                MMIO_OUT_BYTE => self.mmio.out_bytes.push(value as u8),
                MMIO_ACTUATOR => self.mmio.actuator_writes.push(value),
                _ => return Err(Trap::StoreFault { addr }),
            }
            return Ok(());
        }
        if let Some(offset) = self.ram_offset(addr, width) {
            let b = &mut self.ram[offset..];
            match width {
                Width::Byte => b[0] = value as u8,
                Width::Half => b[..2].copy_from_slice(&(value as u16).to_le_bytes()),
                Width::Word => b[..4].copy_from_slice(&value.to_le_bytes()),
            }
            return Ok(());
        }
        if addr >= self.rom_base && ((addr - self.rom_base) / 4) < self.rom.len() as u32 {
            return Err(Trap::WriteToRom { addr });
        }
        Err(Trap::StoreFault { addr })
    }

    fn ram_offset(&self, addr: u32, width: Width) -> Option<usize> {
        let end = self.ram_base as u64 + self.ram.len() as u64;
        let range = addr as u64..addr as u64 + width.bytes() as u64;
        if range.start >= self.ram_base as u64 && range.end <= end {
            Some((addr - self.ram_base) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(0x100, vec![0x1111_2222, 0x3333_4444], 0x1000_0000, 64)
    }

    #[test]
    fn fetch_in_and_out_of_rom() {
        let m = mem();
        assert_eq!(m.fetch(0x100).unwrap(), 0x1111_2222);
        assert_eq!(m.fetch(0x104).unwrap(), 0x3333_4444);
        assert_eq!(m.fetch(0x108), Err(Trap::FetchFault { addr: 0x108 }));
        assert_eq!(m.fetch(0xFC), Err(Trap::FetchFault { addr: 0xFC }));
        assert_eq!(m.fetch(0x102), Err(Trap::FetchFault { addr: 0x102 }));
    }

    #[test]
    fn ram_rw_little_endian() {
        let mut m = mem();
        m.store(0x1000_0000, Width::Word, 0x0102_0304).unwrap();
        assert_eq!(m.load(0x1000_0000, Width::Byte).unwrap(), 0x04);
        assert_eq!(m.load(0x1000_0001, Width::Byte).unwrap(), 0x03);
        assert_eq!(m.load(0x1000_0000, Width::Half).unwrap(), 0x0304);
        assert_eq!(m.load(0x1000_0002, Width::Half).unwrap(), 0x0102);
        m.store(0x1000_0001, Width::Byte, 0xFF).unwrap();
        assert_eq!(m.load(0x1000_0000, Width::Word).unwrap(), 0x0102_FF04);
    }

    #[test]
    fn rom_is_readable_but_not_writable() {
        let mut m = mem();
        assert_eq!(m.load(0x100, Width::Word).unwrap(), 0x1111_2222);
        assert_eq!(m.load(0x104, Width::Byte).unwrap(), 0x44);
        assert_eq!(
            m.store(0x100, Width::Word, 0),
            Err(Trap::WriteToRom { addr: 0x100 })
        );
    }

    #[test]
    fn bounds_and_alignment() {
        let mut m = mem();
        assert_eq!(
            m.load(0x1000_0041, Width::Byte),
            Err(Trap::LoadFault { addr: 0x1000_0041 })
        );
        // word access straddling the RAM end
        assert_eq!(
            m.load(0x1000_003E, Width::Word),
            Err(Trap::Misaligned { addr: 0x1000_003E })
        );
        assert_eq!(
            m.store(0x1000_003E, Width::Word, 0),
            Err(Trap::Misaligned { addr: 0x1000_003E })
        );
        assert_eq!(
            m.load(0x1000_0001, Width::Word),
            Err(Trap::Misaligned { addr: 0x1000_0001 })
        );
        assert_eq!(
            m.load(0x2000_0000, Width::Word),
            Err(Trap::LoadFault { addr: 0x2000_0000 })
        );
    }

    #[test]
    fn mmio_ports_log_writes() {
        let mut m = mem();
        m.store(MMIO_OUT_WORD, Width::Word, 7).unwrap();
        m.store(MMIO_OUT_BYTE, Width::Byte, b'x' as u32).unwrap();
        m.store(MMIO_ACTUATOR, Width::Word, 0xBAD).unwrap();
        assert_eq!(m.mmio.out_words, vec![7]);
        assert_eq!(m.mmio.out_bytes, vec![b'x']);
        assert_eq!(m.mmio.actuator_writes, vec![0xBAD]);
        // unmapped MMIO address
        assert!(m.store(0xFFFF_0100, Width::Word, 0).is_err());
        // MMIO reads are zero
        assert_eq!(m.load(MMIO_OUT_WORD, Width::Word).unwrap(), 0);
    }

    #[test]
    fn loader_roundtrip() {
        let mut m = mem();
        m.load_ram(0x1000_0010, &[1, 2, 3, 4]);
        assert_eq!(m.peek_ram(0x1000_0010, 4), &[1, 2, 3, 4]);
        assert_eq!(m.load(0x1000_0010, Width::Word).unwrap(), 0x0403_0201);
    }
}
