//! Cycle accounting for the LEON3-like 7-stage in-order pipeline.
//!
//! The model charges one base cycle per retired instruction plus explicit
//! penalties for the classic in-order hazards. It is equivalent to a
//! single-issue IF–ID–OF–EX–MA–XC–WB pipeline with full forwarding:
//!
//! * taken conditional branches and indirect jumps resolve in EX —
//!   3 flushed slots;
//! * direct jumps (`j`/`jal`) redirect in ID — 1 flushed slot;
//! * a load's value is available after MA — 1 bubble for an immediately
//!   dependent consumer;
//! * iterative multiply/divide hold EX for several cycles;
//! * instruction-cache misses stall IF for the refill penalty.

use sofia_isa::{Instruction, Reg};

/// The seven pipeline stages, in order.
pub const STAGES: [&str; 7] = ["IF", "ID", "OF", "EX", "MA", "XC", "WB"];

/// Index of the Memory Access stage within [`STAGES`] — the stage SOFIA's
/// store gate must protect (paper §II-B.2).
pub const MA_STAGE: usize = 4;

/// Tunable penalties of the pipeline model (defaults follow a minimal
/// LEON3 configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineModel {
    /// Flushed slots for a taken conditional branch (resolve in EX).
    pub taken_branch_penalty: u32,
    /// Flushed slots for `j`/`jal` (target known in ID).
    pub direct_jump_penalty: u32,
    /// Flushed slots for `jr`/`jalr` (register target, resolve in EX).
    pub indirect_jump_penalty: u32,
    /// Bubble cycles when an instruction consumes the value of the
    /// immediately preceding load.
    pub load_use_penalty: u32,
    /// Total EX-stage occupancy of `mul` (LEON3: 4-cycle multiplier).
    pub mul_cycles: u32,
    /// Total EX-stage occupancy of `div`/`rem` (LEON3: 35-cycle divider).
    pub div_cycles: u32,
    /// Cycles to drain the pipeline at `halt`.
    pub drain_cycles: u32,
    /// Extra wait states per data-memory access (0 = tightly-coupled RAM;
    /// the paper's FPGA board ran from waited external memory — see
    /// [`PipelineModel::paper_memory`]).
    pub data_penalty: u32,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel {
            taken_branch_penalty: 3,
            direct_jump_penalty: 1,
            indirect_jump_penalty: 3,
            load_use_penalty: 1,
            mul_cycles: 4,
            div_cycles: 35,
            drain_cycles: 6,
            data_penalty: 0,
        }
    }
}

impl PipelineModel {
    /// A memory-bound configuration approximating the paper's testbed:
    /// the published baseline (114 M cycles for ADPCM) implies a CPI an
    /// order of magnitude above 1, i.e. external memory with substantial
    /// wait states. Both machines pay these identically, which is what
    /// shrinks SOFIA's *relative* cycle overhead toward the published
    /// 13.7 % (see EXPERIMENTS.md).
    pub fn paper_memory() -> PipelineModel {
        PipelineModel {
            data_penalty: 25,
            ..Default::default()
        }
    }
}

impl PipelineModel {
    /// Cycles charged for one retired instruction (excluding I-cache
    /// effects, which the machine adds separately): 1 base cycle plus
    /// hazard penalties.
    ///
    /// `taken` reports whether a conditional branch was taken;
    /// `prev_load_dest` is the destination of the immediately preceding
    /// instruction *if it was a load*.
    pub fn instruction_cycles(
        &self,
        inst: &Instruction,
        taken: bool,
        prev_load_dest: Option<Reg>,
    ) -> u32 {
        let mut cycles = 1;
        if let Some(dest) = prev_load_dest {
            if inst.use_regs().contains(&dest) {
                cycles += self.load_use_penalty;
            }
        }
        if inst.is_branch() {
            if taken {
                cycles += self.taken_branch_penalty;
            }
        } else if inst.is_direct_jump() {
            cycles += self.direct_jump_penalty;
        } else if inst.is_indirect_jump() {
            cycles += self.indirect_jump_penalty;
        }
        match inst {
            Instruction::Mul { .. } => cycles += self.mul_cycles - 1,
            Instruction::Div { .. }
            | Instruction::Divu { .. }
            | Instruction::Rem { .. }
            | Instruction::Remu { .. } => cycles += self.div_cycles - 1,
            _ => {}
        }
        if inst.is_load() || inst.is_store() {
            cycles += self.data_penalty;
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::{Instruction, Reg};

    fn model() -> PipelineModel {
        PipelineModel::default()
    }

    #[test]
    fn plain_alu_is_one_cycle() {
        let add = Instruction::Add {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(model().instruction_cycles(&add, false, None), 1);
    }

    #[test]
    fn taken_branch_pays_flush() {
        let b = Instruction::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            offset: 1,
        };
        assert_eq!(model().instruction_cycles(&b, true, None), 4);
        assert_eq!(model().instruction_cycles(&b, false, None), 1);
    }

    #[test]
    fn jump_penalties_differ_by_resolution_stage() {
        let j = Instruction::J { index: 4 };
        let jr = Instruction::Jr { rs: Reg::RA };
        assert_eq!(model().instruction_cycles(&j, false, None), 2);
        assert_eq!(model().instruction_cycles(&jr, false, None), 4);
    }

    #[test]
    fn load_use_bubble_only_when_dependent() {
        let dep = Instruction::Add {
            rd: Reg::T2,
            rs: Reg::T0,
            rt: Reg::T1,
        };
        assert_eq!(model().instruction_cycles(&dep, false, Some(Reg::T0)), 2);
        assert_eq!(model().instruction_cycles(&dep, false, Some(Reg::T5)), 1);
        assert_eq!(model().instruction_cycles(&dep, false, None), 1);
    }

    #[test]
    fn long_latency_units() {
        let mul = Instruction::Mul {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        let div = Instruction::Div {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(model().instruction_cycles(&mul, false, None), 4);
        assert_eq!(model().instruction_cycles(&div, false, None), 35);
    }

    #[test]
    fn ma_stage_position_matches_paper() {
        // Fig. 5/6 place MA fifth: IF ID OF EXE MA XCP WB.
        assert_eq!(STAGES[MA_STAGE], "MA");
        assert_eq!(MA_STAGE, 4);
    }
}
