//! Execution statistics shared by the vanilla and SOFIA machines.

/// Counters accumulated while a program runs.
///
/// `cycles` is the simulated wall-clock in CPU cycles (the paper's §IV-B
/// metric); the rest break down where they went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired (architecturally executed) instructions.
    pub instret: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Calls (`jal`/`jalr`) retired.
    pub calls: u64,
    /// Load-use bubbles inserted.
    pub load_use_stalls: u64,
    /// Cycles lost to instruction-cache misses.
    pub icache_stall_cycles: u64,
}

impl ExecStats {
    /// Accumulates another run's counters into this one (every field is
    /// additive) — e.g. a device's work across a reboot-retry pair.
    pub fn merge(&mut self, other: &ExecStats) {
        self.cycles += other.cycles;
        self.instret += other.instret;
        self.branches += other.branches;
        self.taken_branches += other.taken_branches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.calls += other.calls;
        self.load_use_stalls += other.load_use_stalls;
        self.icache_stall_cycles += other.icache_stall_cycles;
    }

    /// Cycles per instruction; 0.0 before anything retired.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instret as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_empty() {
        assert_eq!(ExecStats::default().cpi(), 0.0);
        let s = ExecStats {
            cycles: 30,
            instret: 20,
            ..Default::default()
        };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
    }
}
