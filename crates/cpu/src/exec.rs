//! The functional executor: architectural semantics of every SL32
//! instruction, shared by the vanilla machine and the SOFIA machine.

use sofia_isa::{Instruction, Reg};

use crate::mem::{Memory, Width};
use crate::Trap;

/// The architectural register file (`r0` reads as zero, writes ignored).
///
/// # Examples
///
/// ```
/// use sofia_cpu::exec::RegFile;
/// use sofia_isa::Reg;
///
/// let mut regs = RegFile::new();
/// regs.set(Reg::T0, 7);
/// regs.set(Reg::ZERO, 99);
/// assert_eq!(regs.get(Reg::T0), 7);
/// assert_eq!(regs.get(Reg::ZERO), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile {
    regs: [u32; 32],
}

impl RegFile {
    /// A zeroed register file.
    pub const fn new() -> RegFile {
        RegFile { regs: [0; 32] }
    }

    /// Reads a register (`zero` is always 0).
    pub fn get(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register (writes to `zero` are discarded).
    pub fn set(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Clears every register (SOFIA reset).
    pub fn clear(&mut self) {
        self.regs = [0; 32];
    }

    /// The whole file as an array, in index order — the snapshot export.
    pub fn words(&self) -> [u32; 32] {
        self.regs
    }

    /// Replaces the whole file (snapshot restore). `r0` is forced back
    /// to zero so the hardwired-zero invariant survives any input.
    pub fn set_words(&mut self, mut words: [u32; 32]) {
        words[0] = 0;
        self.regs = words;
    }
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

/// Control-flow effect of one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Fall through to `pc + 4`.
    Next,
    /// Transfer control to the given address: a taken branch, jump, call
    /// or return (a not-taken branch is [`Effect::Next`]; the engine
    /// tells the two apart for timing by checking
    /// [`sofia_isa::Instruction::is_branch`] on the retiring slot).
    Jump {
        /// The transfer target.
        target: u32,
    },
    /// The program executed `halt`.
    Halt,
}

/// Executes one instruction architecturally: updates `regs` and `mem`,
/// returns the control-flow effect.
///
/// Purely functional with respect to timing — cycle accounting lives in
/// [`crate::pipeline`] — so SOFIA can reuse the exact same semantics
/// behind its verified-block fetch unit.
///
/// # Errors
///
/// Propagates memory traps and raises [`Trap::DivideByZero`].
///
/// # Examples
///
/// ```
/// use sofia_cpu::exec::{execute, Effect, RegFile};
/// use sofia_cpu::mem::Memory;
/// use sofia_isa::{Instruction, Reg};
///
/// let mut regs = RegFile::new();
/// let mut mem = Memory::new(0x100, vec![0], 0x1000_0000, 64);
/// let add = Instruction::Addi { rt: Reg::T0, rs: Reg::ZERO, imm: 5 };
/// assert_eq!(execute(&add, 0x100, &mut regs, &mut mem)?, Effect::Next);
/// assert_eq!(regs.get(Reg::T0), 5);
/// # Ok::<(), sofia_cpu::Trap>(())
/// ```
pub fn execute(
    inst: &Instruction,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
) -> Result<Effect, Trap> {
    use Instruction::*;
    let effect = match *inst {
        Add { rd, rs, rt } => {
            regs.set(rd, regs.get(rs).wrapping_add(regs.get(rt)));
            Effect::Next
        }
        Sub { rd, rs, rt } => {
            regs.set(rd, regs.get(rs).wrapping_sub(regs.get(rt)));
            Effect::Next
        }
        And { rd, rs, rt } => {
            regs.set(rd, regs.get(rs) & regs.get(rt));
            Effect::Next
        }
        Or { rd, rs, rt } => {
            regs.set(rd, regs.get(rs) | regs.get(rt));
            Effect::Next
        }
        Xor { rd, rs, rt } => {
            regs.set(rd, regs.get(rs) ^ regs.get(rt));
            Effect::Next
        }
        Nor { rd, rs, rt } => {
            regs.set(rd, !(regs.get(rs) | regs.get(rt)));
            Effect::Next
        }
        Slt { rd, rs, rt } => {
            regs.set(rd, ((regs.get(rs) as i32) < (regs.get(rt) as i32)) as u32);
            Effect::Next
        }
        Sltu { rd, rs, rt } => {
            regs.set(rd, (regs.get(rs) < regs.get(rt)) as u32);
            Effect::Next
        }
        Mul { rd, rs, rt } => {
            regs.set(rd, regs.get(rs).wrapping_mul(regs.get(rt)));
            Effect::Next
        }
        Div { rd, rs, rt } => {
            let (a, b) = (regs.get(rs) as i32, regs.get(rt) as i32);
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            regs.set(rd, a.wrapping_div(b) as u32);
            Effect::Next
        }
        Divu { rd, rs, rt } => {
            let (a, b) = (regs.get(rs), regs.get(rt));
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            regs.set(rd, a / b);
            Effect::Next
        }
        Rem { rd, rs, rt } => {
            let (a, b) = (regs.get(rs) as i32, regs.get(rt) as i32);
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            regs.set(rd, a.wrapping_rem(b) as u32);
            Effect::Next
        }
        Remu { rd, rs, rt } => {
            let (a, b) = (regs.get(rs), regs.get(rt));
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            regs.set(rd, a % b);
            Effect::Next
        }
        Sllv { rd, rt, rs } => {
            regs.set(rd, regs.get(rt) << (regs.get(rs) & 31));
            Effect::Next
        }
        Srlv { rd, rt, rs } => {
            regs.set(rd, regs.get(rt) >> (regs.get(rs) & 31));
            Effect::Next
        }
        Srav { rd, rt, rs } => {
            regs.set(rd, ((regs.get(rt) as i32) >> (regs.get(rs) & 31)) as u32);
            Effect::Next
        }
        Sll { rd, rt, shamt } => {
            regs.set(rd, regs.get(rt) << shamt);
            Effect::Next
        }
        Srl { rd, rt, shamt } => {
            regs.set(rd, regs.get(rt) >> shamt);
            Effect::Next
        }
        Sra { rd, rt, shamt } => {
            regs.set(rd, ((regs.get(rt) as i32) >> shamt) as u32);
            Effect::Next
        }
        Jr { rs } => Effect::Jump {
            target: regs.get(rs),
        },
        Jalr { rd, rs } => {
            let target = regs.get(rs);
            regs.set(rd, pc.wrapping_add(4));
            Effect::Jump { target }
        }
        Halt => Effect::Halt,
        Addi { rt, rs, imm } => {
            regs.set(rt, regs.get(rs).wrapping_add(imm as i32 as u32));
            Effect::Next
        }
        Slti { rt, rs, imm } => {
            regs.set(rt, ((regs.get(rs) as i32) < imm as i32) as u32);
            Effect::Next
        }
        Sltiu { rt, rs, imm } => {
            regs.set(rt, (regs.get(rs) < imm as i32 as u32) as u32);
            Effect::Next
        }
        Andi { rt, rs, imm } => {
            regs.set(rt, regs.get(rs) & imm as u32);
            Effect::Next
        }
        Ori { rt, rs, imm } => {
            regs.set(rt, regs.get(rs) | imm as u32);
            Effect::Next
        }
        Xori { rt, rs, imm } => {
            regs.set(rt, regs.get(rs) ^ imm as u32);
            Effect::Next
        }
        Lui { rt, imm } => {
            regs.set(rt, (imm as u32) << 16);
            Effect::Next
        }
        Lb { rt, base, offset } => {
            let v = mem.load(addr(regs, base, offset), Width::Byte)?;
            regs.set(rt, v as u8 as i8 as i32 as u32);
            Effect::Next
        }
        Lbu { rt, base, offset } => {
            let v = mem.load(addr(regs, base, offset), Width::Byte)?;
            regs.set(rt, v);
            Effect::Next
        }
        Lh { rt, base, offset } => {
            let v = mem.load(addr(regs, base, offset), Width::Half)?;
            regs.set(rt, v as u16 as i16 as i32 as u32);
            Effect::Next
        }
        Lhu { rt, base, offset } => {
            let v = mem.load(addr(regs, base, offset), Width::Half)?;
            regs.set(rt, v);
            Effect::Next
        }
        Lw { rt, base, offset } => {
            let v = mem.load(addr(regs, base, offset), Width::Word)?;
            regs.set(rt, v);
            Effect::Next
        }
        Sb { rt, base, offset } => {
            mem.store(addr(regs, base, offset), Width::Byte, regs.get(rt))?;
            Effect::Next
        }
        Sh { rt, base, offset } => {
            mem.store(addr(regs, base, offset), Width::Half, regs.get(rt))?;
            Effect::Next
        }
        Sw { rt, base, offset } => {
            mem.store(addr(regs, base, offset), Width::Word, regs.get(rt))?;
            Effect::Next
        }
        Beq { rs, rt, .. } => branch(inst, pc, regs.get(rs) == regs.get(rt)),
        Bne { rs, rt, .. } => branch(inst, pc, regs.get(rs) != regs.get(rt)),
        Blt { rs, rt, .. } => branch(inst, pc, (regs.get(rs) as i32) < (regs.get(rt) as i32)),
        Bge { rs, rt, .. } => branch(inst, pc, (regs.get(rs) as i32) >= (regs.get(rt) as i32)),
        Bltu { rs, rt, .. } => branch(inst, pc, regs.get(rs) < regs.get(rt)),
        Bgeu { rs, rt, .. } => branch(inst, pc, regs.get(rs) >= regs.get(rt)),
        J { .. } => Effect::Jump {
            target: inst.static_target(pc).expect("j has target"),
        },
        Jal { .. } => {
            regs.set(Reg::RA, pc.wrapping_add(4));
            Effect::Jump {
                target: inst.static_target(pc).expect("jal has target"),
            }
        }
    };
    Ok(effect)
}

fn addr(regs: &RegFile, base: Reg, offset: i16) -> u32 {
    regs.get(base).wrapping_add(offset as i32 as u32)
}

fn branch(inst: &Instruction, pc: u32, cond: bool) -> Effect {
    if cond {
        Effect::Jump {
            target: inst.static_target(pc).expect("branch has target"),
        }
    } else {
        Effect::Next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RegFile, Memory) {
        (
            RegFile::new(),
            Memory::new(0x100, vec![0; 4], 0x1000_0000, 256),
        )
    }

    fn run1(inst: Instruction, regs: &mut RegFile, mem: &mut Memory) -> Effect {
        execute(&inst, 0x100, regs, mem).unwrap()
    }

    #[test]
    fn arithmetic_semantics() {
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 7);
        r.set(Reg::T1, 0xFFFF_FFFF); // -1
        run1(
            Instruction::Add {
                rd: Reg::T2,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T2), 6);
        run1(
            Instruction::Sub {
                rd: Reg::T3,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T3), 8);
        run1(
            Instruction::Mul {
                rd: Reg::T4,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T4) as i32, -7);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 0xFFFF_FFFF); // -1 signed, max unsigned
        r.set(Reg::T1, 1);
        run1(
            Instruction::Slt {
                rd: Reg::T2,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T2), 1); // -1 < 1
        run1(
            Instruction::Sltu {
                rd: Reg::T3,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T3), 0); // max > 1
    }

    #[test]
    fn division_behaviour() {
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 0x8000_0000); // i32::MIN
        r.set(Reg::T1, 0xFFFF_FFFF); // -1
        run1(
            Instruction::Div {
                rd: Reg::T2,
                rs: Reg::T0,
                rt: Reg::T1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T2), 0x8000_0000); // wrapping overflow
        r.set(Reg::T3, 7);
        r.set(Reg::T4, 2);
        run1(
            Instruction::Rem {
                rd: Reg::T5,
                rs: Reg::T3,
                rt: Reg::T4,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T5), 1);
        let err = execute(
            &Instruction::Div {
                rd: Reg::T2,
                rs: Reg::T0,
                rt: Reg::ZERO,
            },
            0x100,
            &mut r,
            &mut m,
        );
        assert_eq!(err, Err(Trap::DivideByZero { pc: 0x100 }));
    }

    #[test]
    fn shifts() {
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 0x8000_0001);
        run1(
            Instruction::Srl {
                rd: Reg::T1,
                rt: Reg::T0,
                shamt: 1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T1), 0x4000_0000);
        run1(
            Instruction::Sra {
                rd: Reg::T2,
                rt: Reg::T0,
                shamt: 1,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T2), 0xC000_0000);
        r.set(Reg::T3, 33); // shift amounts are mod 32
        run1(
            Instruction::Sllv {
                rd: Reg::T4,
                rt: Reg::T0,
                rs: Reg::T3,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T4), 2);
    }

    #[test]
    fn sign_extension_on_loads() {
        let (mut r, mut m) = setup();
        m.store(0x1000_0000, Width::Word, 0x0000_80FF).unwrap();
        r.set(Reg::A0, 0x1000_0000);
        run1(
            Instruction::Lb {
                rt: Reg::T0,
                base: Reg::A0,
                offset: 0,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T0), 0xFFFF_FFFF); // 0xFF sign-extends
        run1(
            Instruction::Lbu {
                rt: Reg::T1,
                base: Reg::A0,
                offset: 0,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T1), 0xFF);
        run1(
            Instruction::Lh {
                rt: Reg::T2,
                base: Reg::A0,
                offset: 0,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T2), 0xFFFF_80FF);
        run1(
            Instruction::Lhu {
                rt: Reg::T3,
                base: Reg::A0,
                offset: 0,
            },
            &mut r,
            &mut m,
        );
        assert_eq!(r.get(Reg::T3), 0x80FF);
    }

    #[test]
    fn control_flow_effects() {
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 1);
        let taken = execute(
            &Instruction::Bne {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: 3,
            },
            0x100,
            &mut r,
            &mut m,
        )
        .unwrap();
        assert_eq!(taken, Effect::Jump { target: 0x110 });
        let not_taken = execute(
            &Instruction::Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: 3,
            },
            0x100,
            &mut r,
            &mut m,
        )
        .unwrap();
        assert_eq!(not_taken, Effect::Next);

        let jal = execute(
            &Instruction::Jal { index: 0x200 >> 2 },
            0x100,
            &mut r,
            &mut m,
        )
        .unwrap();
        assert_eq!(jal, Effect::Jump { target: 0x200 });
        assert_eq!(r.get(Reg::RA), 0x104);

        r.set(Reg::T5, 0x300);
        let jalr = execute(
            &Instruction::Jalr {
                rd: Reg::S0,
                rs: Reg::T5,
            },
            0x104,
            &mut r,
            &mut m,
        )
        .unwrap();
        assert_eq!(jalr, Effect::Jump { target: 0x300 });
        assert_eq!(r.get(Reg::S0), 0x108);
    }

    #[test]
    fn jalr_reads_rs_before_writing_rd() {
        // jalr t0, t0 must jump to the *old* t0.
        let (mut r, mut m) = setup();
        r.set(Reg::T0, 0x280);
        let e = execute(
            &Instruction::Jalr {
                rd: Reg::T0,
                rs: Reg::T0,
            },
            0x100,
            &mut r,
            &mut m,
        )
        .unwrap();
        assert_eq!(e, Effect::Jump { target: 0x280 });
        assert_eq!(r.get(Reg::T0), 0x104);
    }

    #[test]
    fn halt_effect() {
        let (mut r, mut m) = setup();
        assert_eq!(run1(Instruction::Halt, &mut r, &mut m), Effect::Halt);
    }
}
