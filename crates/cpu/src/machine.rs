//! The vanilla (unprotected) machine — the paper's baseline LEON3.

use sofia_isa::asm::Assembly;

use crate::engine::{EngineOutcome, Pipeline};
use crate::exec::RegFile;
use crate::fetch::PlainFetch;
use crate::mem::Memory;
use crate::stats::ExecStats;
use crate::Trap;

pub use crate::engine::MachineConfig;

/// Why a [`VanillaMachine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunResult {
    /// The program executed `halt`.
    Halted,
    /// The step budget was exhausted first.
    OutOfFuel,
}

impl RunResult {
    /// Whether the program reached `halt`.
    pub fn is_halted(&self) -> bool {
        matches!(self, RunResult::Halted)
    }
}

/// A cycle-level simulator of the unmodified baseline processor.
///
/// Executes plaintext binaries produced by [`sofia_isa::asm::assemble`]:
/// the generic [`Pipeline`] engine behind a [`PlainFetch`] unit. SOFIA's
/// protected machine (`sofia-core`) wraps the *same* engine behind its
/// decrypt/verify fetch unit — so overhead comparisons between the two
/// machines isolate exactly the cost of the security architecture.
///
/// # Examples
///
/// ```
/// use sofia_cpu::machine::VanillaMachine;
/// use sofia_isa::asm;
///
/// let program = asm::assemble(
///     "main: li t0, 5
///            li t1, 0
///     loop:  add t1, t1, t0
///            subi t0, t0, 1
///            bnez t0, loop
///            li a0, 0xFFFF0000     # MMIO word-output port
///            sw t1, 0(a0)
///            halt",
/// )?;
/// let mut m = VanillaMachine::new(&program);
/// assert!(m.run(10_000)?.is_halted());
/// assert_eq!(m.mem().mmio.out_words, vec![15]); // 5+4+3+2+1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VanillaMachine {
    engine: Pipeline<PlainFetch>,
}

// Compile-time guarantee: baseline machines move onto worker threads (the
// fleet's pool, parallel property tests). An `Rc`/`RefCell` regression
// breaks the build here, not the fleet at runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<VanillaMachine>();
};

impl VanillaMachine {
    /// Builds a machine with [`MachineConfig::default`].
    pub fn new(program: &Assembly) -> VanillaMachine {
        Self::with_config(program, &MachineConfig::default())
    }

    /// Builds a machine, loading the program's text into ROM and data into
    /// RAM, pointing `sp` at the top of RAM and `pc` at the entry point.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn with_config(program: &Assembly, config: &MachineConfig) -> VanillaMachine {
        VanillaMachine {
            engine: Pipeline::new(
                PlainFetch::new(program.entry),
                program.text_base,
                program.words.clone(),
                program.data_base,
                &program.data,
                config,
            ),
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the trap that stopped the machine, leaving state at the
    /// faulting instruction for post-mortem inspection.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted.
    pub fn step(&mut self) -> Result<(), Trap> {
        match self.engine.step_batch()?.violation {
            // PlainFetch's violation type is uninhabited.
            Some(v) => match v {},
            None => Ok(()),
        }
    }

    /// Runs until `halt`, a trap, or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first trap.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, Trap> {
        match self.engine.run(max_steps, |v, _| match v {})? {
            EngineOutcome::Halted => Ok(RunResult::Halted),
            EngineOutcome::OutOfFuel => Ok(RunResult::OutOfFuel),
            EngineOutcome::Stopped(v) => match v {},
            EngineOutcome::ResetLoop { .. } => {
                unreachable!("reset loop without a violation type")
            }
        }
    }

    /// Whether the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.engine.is_halted()
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.engine.fetch().pc()
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        self.engine.regs()
    }

    /// The memory (ROM + RAM + MMIO logs).
    pub fn mem(&self) -> &Memory {
        self.engine.mem()
    }

    /// Mutable memory access — for loaders and the attack harness.
    pub fn mem_mut(&mut self) -> &mut Memory {
        self.engine.mem_mut()
    }

    /// **Attack-harness channel**: redirects execution to `target`,
    /// modelling a successful control-flow hijack (corrupted return
    /// address, glitched branch). The unprotected machine simply follows
    /// it — the behaviour SOFIA exists to prevent.
    pub fn hijack_pc(&mut self, target: u32) {
        self.engine.fetch_mut().set_pc(target);
    }

    /// Accumulated execution statistics (cycles include I-cache stalls).
    pub fn stats(&self) -> ExecStats {
        self.engine.stats()
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> crate::icache::ICacheStats {
        self.engine.icache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineModel;
    use sofia_isa::{asm, Reg};

    fn run_src(src: &str) -> VanillaMachine {
        let program = asm::assemble(src).expect("assembles");
        let mut m = VanillaMachine::new(&program);
        let r = m.run(1_000_000).expect("no trap");
        assert!(r.is_halted(), "program did not halt");
        m
    }

    #[test]
    fn loop_sum() {
        let m = run_src(
            "main: li t0, 10
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![55]);
    }

    #[test]
    fn call_and_return() {
        let m = run_src(
            "main: li a0, 6
                   jal square
                   li t0, 0xFFFF0000
                   sw v0, 0(t0)
                   halt
             square: mul v0, a0, a0
                   ret",
        );
        assert_eq!(m.mem().mmio.out_words, vec![36]);
    }

    #[test]
    fn stack_discipline() {
        let m = run_src(
            "main: subi sp, sp, 8
                   li t0, 0x1234
                   sw t0, 0(sp)
                   sw ra, 4(sp)
                   lw t1, 0(sp)
                   addi sp, sp, 8
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![0x1234]);
    }

    #[test]
    fn data_section_loaded() {
        let m = run_src(
            ".data
             tbl: .word 11, 22, 33
             .text
             main: la a0, tbl
                   lw t0, 8(a0)
                   li a1, 0xFFFF0000
                   sw t0, 0(a1)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![33]);
    }

    #[test]
    fn function_pointer_dispatch() {
        let m = run_src(
            ".data
             handlers: .word inc, dec
             .text
             main: la t0, handlers
                   lw t1, 4(t0)        # handlers[1] = dec
                   li a0, 10
                   .indirect inc, dec
                   jalr t1
                   li t2, 0xFFFF0000
                   sw v0, 0(t2)
                   halt
             inc:  addi v0, a0, 1
                   ret
             dec:  subi v0, a0, 1
                   ret",
        );
        assert_eq!(m.mem().mmio.out_words, vec![9]);
    }

    #[test]
    fn cycle_accounting_straight_line() {
        let program = asm::assemble("main: nop\nnop\nnop\nhalt").unwrap();
        let mut m = VanillaMachine::new(&program);
        m.run(100).unwrap();
        let s = m.stats();
        assert_eq!(s.instret, 4);
        // 4 base cycles + one cold I-cache miss (all four words share one
        // 32-byte line) + drain.
        let expected = 4 + 10 + PipelineModel::default().drain_cycles as u64;
        assert_eq!(s.cycles, expected);
    }

    #[test]
    fn taken_branches_cost_more() {
        // Loop version: branch taken 9 times.
        let looped = run_src(
            "main: li t0, 10
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let s = looped.stats();
        assert_eq!(s.branches, 10);
        assert_eq!(s.taken_branches, 9);
        assert!(s.cpi() > 1.0);
    }

    #[test]
    fn load_use_stall_counted() {
        let m = run_src(
            ".data
             x: .word 5
             .text
             main: la a0, x
                   lw t0, 0(a0)
                   addi t1, t0, 1   # immediately uses loaded t0
                   halt",
        );
        assert_eq!(m.stats().load_use_stalls, 1);
    }

    #[test]
    fn out_of_fuel() {
        let program = asm::assemble("main: b main").unwrap();
        let mut m = VanillaMachine::new(&program);
        assert_eq!(m.run(1000).unwrap(), RunResult::OutOfFuel);
        assert!(!m.is_halted());
    }

    #[test]
    fn illegal_instruction_traps() {
        let program = asm::assemble("main: halt").unwrap();
        let mut m = VanillaMachine::new(&program);
        // Tamper with ROM out-of-band (the attacker's channel).
        m.mem_mut().rom_mut()[0] = 0xFC00_0000;
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, Trap::IllegalInstruction { .. }));
    }

    #[test]
    fn icache_warms_up() {
        let m = run_src(
            "main: li t0, 100
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let ic = m.icache_stats();
        assert!(ic.hit_rate() > 0.95, "hit rate {}", ic.hit_rate());
    }

    #[test]
    fn sp_initialised_to_ram_top() {
        let program = asm::assemble("main: halt").unwrap();
        let m = VanillaMachine::new(&program);
        assert_eq!(
            m.regs().get(Reg::SP),
            program.data_base + MachineConfig::default().ram_size
        );
    }

    #[test]
    fn hijack_pc_is_followed_blindly() {
        // The baseline follows a forged transfer without complaint — the
        // behaviour the SOFIA fetch unit exists to stop.
        let m = {
            let program = asm::assemble(
                "main: b main
                 out:  li t0, 0xFFFF0000
                       sw zero, 0(t0)
                       halt",
            )
            .unwrap();
            let mut m = VanillaMachine::new(&program);
            m.run(3).unwrap();
            m.hijack_pc(program.text_base + 4);
            m.run(100).unwrap();
            m
        };
        assert!(m.is_halted());
        assert_eq!(m.mem().mmio.out_words, vec![0]);
    }
}
