//! The vanilla (unprotected) machine — the paper's baseline LEON3.

use sofia_isa::asm::Assembly;
use sofia_isa::{Instruction, Reg};

use crate::exec::{execute, Effect, RegFile};
use crate::icache::{ICache, ICacheConfig};
use crate::mem::Memory;
use crate::pipeline::PipelineModel;
use crate::stats::ExecStats;
use crate::Trap;

/// Construction parameters shared by both machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Data RAM size in bytes.
    pub ram_size: u32,
    /// Instruction-cache geometry and miss penalty.
    pub icache: ICacheConfig,
    /// Pipeline hazard penalties.
    pub pipeline: PipelineModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: 1 << 20,
            icache: ICacheConfig::default(),
            pipeline: PipelineModel::default(),
        }
    }
}

/// Why a [`VanillaMachine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunResult {
    /// The program executed `halt`.
    Halted,
    /// The step budget was exhausted first.
    OutOfFuel,
}

impl RunResult {
    /// Whether the program reached `halt`.
    pub fn is_halted(&self) -> bool {
        matches!(self, RunResult::Halted)
    }
}

/// A cycle-level simulator of the unmodified baseline processor.
///
/// Executes plaintext binaries produced by [`sofia_isa::asm::assemble`].
/// SOFIA's protected machine (`sofia-core`) reuses the same executor,
/// memory, cache and pipeline models, wrapping fetch in its decrypt/verify
/// units — so overhead comparisons between the two machines isolate
/// exactly the cost of the security architecture.
///
/// # Examples
///
/// ```
/// use sofia_cpu::machine::VanillaMachine;
/// use sofia_isa::asm;
///
/// let program = asm::assemble(
///     "main: li t0, 5
///            li t1, 0
///     loop:  add t1, t1, t0
///            subi t0, t0, 1
///            bnez t0, loop
///            li a0, 0xFFFF0000     # MMIO word-output port
///            sw t1, 0(a0)
///            halt",
/// )?;
/// let mut m = VanillaMachine::new(&program);
/// assert!(m.run(10_000)?.is_halted());
/// assert_eq!(m.mem().mmio.out_words, vec![15]); // 5+4+3+2+1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VanillaMachine {
    regs: RegFile,
    pc: u32,
    mem: Memory,
    icache: ICache,
    pipeline: PipelineModel,
    stats: ExecStats,
    halted: bool,
    prev_load_dest: Option<Reg>,
}

impl VanillaMachine {
    /// Builds a machine with [`MachineConfig::default`].
    pub fn new(program: &Assembly) -> VanillaMachine {
        Self::with_config(program, &MachineConfig::default())
    }

    /// Builds a machine, loading the program's text into ROM and data into
    /// RAM, pointing `sp` at the top of RAM and `pc` at the entry point.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn with_config(program: &Assembly, config: &MachineConfig) -> VanillaMachine {
        assert!(
            program.data.len() as u32 <= config.ram_size,
            "data section larger than RAM"
        );
        let mut mem = Memory::new(
            program.text_base,
            program.words.clone(),
            program.data_base,
            config.ram_size,
        );
        mem.load_ram(program.data_base, &program.data);
        let mut regs = RegFile::new();
        regs.set(Reg::SP, program.data_base + config.ram_size);
        VanillaMachine {
            regs,
            pc: program.entry,
            mem,
            icache: ICache::new(config.icache),
            pipeline: config.pipeline,
            stats: ExecStats::default(),
            halted: false,
            prev_load_dest: None,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the trap that stopped the machine, leaving state at the
    /// faulting instruction for post-mortem inspection.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted.
    pub fn step(&mut self) -> Result<(), Trap> {
        assert!(!self.halted, "step() after halt");
        let pc = self.pc;
        let stall = self.icache.access_cycles(pc) as u64;
        self.stats.icache_stall_cycles += stall;
        self.stats.cycles += stall;
        let word = self.mem.fetch(pc)?;
        let inst = Instruction::decode(word).map_err(|e| Trap::IllegalInstruction {
            word: e.word(),
            pc,
        })?;
        let effect = execute(&inst, pc, &mut self.regs, &mut self.mem)?;
        let taken = inst.is_branch() && matches!(effect, Effect::Jump { .. });
        self.account(&inst, taken);
        self.prev_load_dest = if inst.is_load() { inst.def_reg() } else { None };
        match effect {
            Effect::Next => self.pc = pc.wrapping_add(4),
            Effect::Jump { target } => self.pc = target,
            Effect::Halt => {
                self.halted = true;
                self.stats.cycles += self.pipeline.drain_cycles as u64;
            }
        }
        Ok(())
    }

    fn account(&mut self, inst: &Instruction, taken: bool) {
        self.stats.instret += 1;
        self.stats.cycles +=
            self.pipeline
                .instruction_cycles(inst, taken, self.prev_load_dest) as u64;
        if inst.is_branch() {
            self.stats.branches += 1;
            if taken {
                self.stats.taken_branches += 1;
            }
        }
        if inst.is_load() {
            self.stats.loads += 1;
        }
        if inst.is_store() {
            self.stats.stores += 1;
        }
        if inst.is_call() {
            self.stats.calls += 1;
        }
        if let Some(dest) = self.prev_load_dest {
            if inst.use_regs().contains(&dest) {
                self.stats.load_use_stalls += 1;
            }
        }
    }

    /// Runs until `halt`, a trap, or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first trap.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, Trap> {
        for _ in 0..max_steps {
            if self.halted {
                return Ok(RunResult::Halted);
            }
            self.step()?;
        }
        Ok(if self.halted {
            RunResult::Halted
        } else {
            RunResult::OutOfFuel
        })
    }

    /// Whether the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// The memory (ROM + RAM + MMIO logs).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access — for loaders and the attack harness.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// **Attack-harness channel**: redirects execution to `target`,
    /// modelling a successful control-flow hijack (corrupted return
    /// address, glitched branch). The unprotected machine simply follows
    /// it — the behaviour SOFIA exists to prevent.
    pub fn hijack_pc(&mut self, target: u32) {
        self.pc = target;
    }

    /// Accumulated execution statistics (cycles include I-cache stalls).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> crate::icache::ICacheStats {
        self.icache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;

    fn run_src(src: &str) -> VanillaMachine {
        let program = asm::assemble(src).expect("assembles");
        let mut m = VanillaMachine::new(&program);
        let r = m.run(1_000_000).expect("no trap");
        assert!(r.is_halted(), "program did not halt");
        m
    }

    #[test]
    fn loop_sum() {
        let m = run_src(
            "main: li t0, 10
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![55]);
    }

    #[test]
    fn call_and_return() {
        let m = run_src(
            "main: li a0, 6
                   jal square
                   li t0, 0xFFFF0000
                   sw v0, 0(t0)
                   halt
             square: mul v0, a0, a0
                   ret",
        );
        assert_eq!(m.mem().mmio.out_words, vec![36]);
    }

    #[test]
    fn stack_discipline() {
        let m = run_src(
            "main: subi sp, sp, 8
                   li t0, 0x1234
                   sw t0, 0(sp)
                   sw ra, 4(sp)
                   lw t1, 0(sp)
                   addi sp, sp, 8
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![0x1234]);
    }

    #[test]
    fn data_section_loaded() {
        let m = run_src(
            ".data
             tbl: .word 11, 22, 33
             .text
             main: la a0, tbl
                   lw t0, 8(a0)
                   li a1, 0xFFFF0000
                   sw t0, 0(a1)
                   halt",
        );
        assert_eq!(m.mem().mmio.out_words, vec![33]);
    }

    #[test]
    fn function_pointer_dispatch() {
        let m = run_src(
            ".data
             handlers: .word inc, dec
             .text
             main: la t0, handlers
                   lw t1, 4(t0)        # handlers[1] = dec
                   li a0, 10
                   .indirect inc, dec
                   jalr t1
                   li t2, 0xFFFF0000
                   sw v0, 0(t2)
                   halt
             inc:  addi v0, a0, 1
                   ret
             dec:  subi v0, a0, 1
                   ret",
        );
        assert_eq!(m.mem().mmio.out_words, vec![9]);
    }

    #[test]
    fn cycle_accounting_straight_line() {
        let program = asm::assemble("main: nop\nnop\nnop\nhalt").unwrap();
        let mut m = VanillaMachine::new(&program);
        m.run(100).unwrap();
        let s = m.stats();
        assert_eq!(s.instret, 4);
        // 4 base cycles + one cold I-cache miss (all four words share one
        // 32-byte line) + drain.
        let expected = 4 + 10 + PipelineModel::default().drain_cycles as u64;
        assert_eq!(s.cycles, expected);
    }

    #[test]
    fn taken_branches_cost_more() {
        // Loop version: branch taken 9 times.
        let looped = run_src(
            "main: li t0, 10
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let s = looped.stats();
        assert_eq!(s.branches, 10);
        assert_eq!(s.taken_branches, 9);
        assert!(s.cpi() > 1.0);
    }

    #[test]
    fn load_use_stall_counted() {
        let m = run_src(
            ".data
             x: .word 5
             .text
             main: la a0, x
                   lw t0, 0(a0)
                   addi t1, t0, 1   # immediately uses loaded t0
                   halt",
        );
        assert_eq!(m.stats().load_use_stalls, 1);
    }

    #[test]
    fn out_of_fuel() {
        let program = asm::assemble("main: b main").unwrap();
        let mut m = VanillaMachine::new(&program);
        assert_eq!(m.run(1000).unwrap(), RunResult::OutOfFuel);
        assert!(!m.is_halted());
    }

    #[test]
    fn illegal_instruction_traps() {
        let program = asm::assemble("main: halt").unwrap();
        let mut m = VanillaMachine::new(&program);
        // Tamper with ROM out-of-band (the attacker's channel).
        m.mem_mut().rom_mut()[0] = 0xFC00_0000;
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, Trap::IllegalInstruction { .. }));
    }

    #[test]
    fn icache_warms_up() {
        let m = run_src(
            "main: li t0, 100
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let ic = m.icache_stats();
        assert!(ic.hit_rate() > 0.95, "hit rate {}", ic.hit_rate());
    }

    #[test]
    fn sp_initialised_to_ram_top() {
        let program = asm::assemble("main: halt").unwrap();
        let m = VanillaMachine::new(&program);
        assert_eq!(
            m.regs().get(Reg::SP),
            program.data_base + MachineConfig::default().ram_size
        );
    }
}
