//! The generic step/run engine shared by every machine.
//!
//! [`Pipeline`] owns the architectural state — registers, memory,
//! I-cache, hazard model, statistics — and runs the fetch → execute →
//! retire loop against a pluggable [`FetchUnit`]. The vanilla baseline
//! and the SOFIA machine are thin wrappers around it, so overhead
//! comparisons between them isolate exactly the fetch path by
//! construction: same engine, different fetch unit.

use sofia_isa::{Instruction, Reg};

use crate::exec::{execute, Effect, RegFile};
use crate::fetch::{Batch, FetchCtx, FetchUnit, Slot, SlotOutcome};
use crate::icache::{ICache, ICacheConfig, ICacheStats};
use crate::mem::{Memory, Mmio};
use crate::pipeline::PipelineModel;
use crate::stats::ExecStats;
use crate::Trap;

/// Construction parameters shared by all machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Data RAM size in bytes.
    pub ram_size: u32,
    /// Instruction-cache geometry and miss penalty.
    pub icache: ICacheConfig,
    /// Pipeline hazard penalties.
    pub pipeline: PipelineModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: 1 << 20,
            icache: ICacheConfig::default(),
            pipeline: PipelineModel::default(),
        }
    }
}

/// Everything the engine owns that a suspended machine must carry to
/// another host: the architectural state (registers, RAM, MMIO logs),
/// the micro-architectural timing state (I-cache tags, hazard tracker)
/// and the accumulated counters. Deliberately **excludes** ROM — code
/// travels as the sealed image, whose MACs cover it in transit — and the
/// fetch unit, which serialises its own sequencing state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreState {
    /// The architectural register file.
    pub regs: RegFile,
    /// The whole data RAM.
    pub ram: Vec<u8>,
    /// MMIO output logs (what the program already emitted).
    pub mmio: Mmio,
    /// Baseline execution counters.
    pub stats: ExecStats,
    /// I-cache line tags, in set order.
    pub icache_tags: Vec<Option<u32>>,
    /// I-cache hit/miss counters.
    pub icache_stats: ICacheStats,
    /// Destination of the immediately preceding load, if any (the
    /// load-use hazard tracker — without it the first resumed
    /// instruction could miss a bubble the uninterrupted run charges).
    pub prev_load_dest: Option<Reg>,
    /// Whether the machine has halted.
    pub halted: bool,
    /// Resets performed so far.
    pub resets: u64,
}

/// Why [`Pipeline::restore_core_state`] refused a [`CoreState`]: the
/// state was captured under a different machine geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreStateError {
    /// RAM length differs from this machine's configured size.
    RamSize {
        /// Bytes this machine's RAM holds.
        expected: usize,
        /// Bytes the state carried.
        found: usize,
    },
    /// I-cache tag count differs from this machine's line count.
    IcacheLines {
        /// Lines this machine's I-cache has.
        expected: usize,
        /// Tags the state carried.
        found: usize,
    },
}

impl std::fmt::Display for CoreStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreStateError::RamSize { expected, found } => {
                write!(
                    f,
                    "core state has {found} RAM bytes, machine has {expected}"
                )
            }
            CoreStateError::IcacheLines { expected, found } => {
                write!(
                    f,
                    "core state has {found} icache tags, machine has {expected} lines"
                )
            }
        }
    }
}

impl std::error::Error for CoreStateError {}

/// Result of one [`Pipeline::step_batch`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchStep<V> {
    /// Instruction slots executed before the batch ended.
    pub executed_slots: u64,
    /// The violation the fetch unit raised, if any. The engine applies no
    /// policy to it — the wrapping machine decides (halt, reset, …).
    pub violation: Option<V>,
}

/// What a machine's reset policy tells the run loop to do about a
/// violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Halt and surface the violation ([`EngineOutcome::Stopped`]).
    Stop,
    /// Pull the reset line and keep running.
    Reset,
    /// Give up ([`EngineOutcome::ResetLoop`]) — the persistent-tamper
    /// escape once a policy's reset budget is spent.
    Abandon,
}

/// Why a [`Pipeline::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineOutcome<V> {
    /// The program executed `halt`.
    Halted,
    /// The slot budget was exhausted first.
    OutOfFuel,
    /// A violation stopped the run ([`Disposition::Stop`]).
    Stopped(V),
    /// Persistent violations kept resetting the core until the policy
    /// abandoned the run ([`Disposition::Reset`] with `abandon_after`).
    ResetLoop {
        /// Total resets performed, including the final one.
        resets: u32,
    },
}

/// The generic execution engine: architectural state plus the shared
/// fetch → execute → retire loop, parameterised by the fetch unit `F`.
#[derive(Clone, Debug)]
pub struct Pipeline<F: FetchUnit> {
    fetch: F,
    regs: RegFile,
    mem: Memory,
    icache: ICache,
    model: PipelineModel,
    stats: ExecStats,
    batch: Batch,
    prev_load_dest: Option<Reg>,
    halted: bool,
    resets: u64,
}

// Compile-time guarantee: the engine is `Send` whenever its fetch unit is,
// so machines can move onto fleet worker threads. A future `Rc`/`RefCell`
// in the architectural state breaks this build, not a scheduler at runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    #[allow(dead_code)] // compile-time bound check only — never called
    fn pipeline_is_send_when_fetch_is<F: FetchUnit + Send>() {
        assert_send::<Pipeline<F>>();
    }
    assert_send::<Pipeline<crate::fetch::PlainFetch>>();
};

impl<F: FetchUnit> Pipeline<F> {
    /// Builds an engine: loads `text` into ROM and `data` into a zeroed
    /// RAM at `data_base`, points `sp` at the top of RAM, and hands
    /// sequencing to `fetch`.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn new(
        fetch: F,
        text_base: u32,
        text: Vec<u32>,
        data_base: u32,
        data: &[u8],
        config: &MachineConfig,
    ) -> Pipeline<F> {
        assert!(
            data.len() as u32 <= config.ram_size,
            "data section larger than RAM"
        );
        let mut mem = Memory::new(text_base, text, data_base, config.ram_size);
        mem.load_ram(data_base, data);
        let mut regs = RegFile::new();
        regs.set(Reg::SP, data_base + config.ram_size);
        Pipeline {
            fetch,
            regs,
            mem,
            icache: ICache::new(config.icache),
            model: config.pipeline,
            stats: ExecStats::default(),
            batch: Batch::new(),
            prev_load_dest: None,
            halted: false,
            resets: 0,
        }
    }

    /// Fetches one batch from the fetch unit and executes its slots.
    ///
    /// Violations are returned, not acted upon: the caller applies its
    /// reset policy (and [`Pipeline::force_halt`] / [`Pipeline::reset`]).
    ///
    /// # Errors
    ///
    /// Propagates architectural traps, leaving state at the faulting
    /// instruction for post-mortem inspection.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted.
    pub fn step_batch(&mut self) -> Result<BatchStep<F::Violation>, Trap> {
        assert!(!self.halted, "step after halt");
        self.batch.clear();
        let mut ctx = FetchCtx {
            mem: &self.mem,
            icache: &mut self.icache,
            stats: &mut self.stats,
        };
        if let Some(v) = self.fetch.fetch_batch(&mut ctx, &mut self.batch)? {
            return Ok(BatchStep {
                executed_slots: 0,
                violation: Some(v),
            });
        }
        let len = self.batch.len();
        let mut executed = 0u64;
        for i in 0..len {
            let Slot { pc, inst } = self.batch.slot(i);
            let effect = execute(&inst, pc, &mut self.regs, &mut self.mem)?;
            executed += 1;
            let taken = inst.is_branch() && matches!(effect, Effect::Jump { .. });
            self.account(&inst, taken);
            self.prev_load_dest = if inst.is_load() { inst.def_reg() } else { None };
            let outcome = match effect {
                Effect::Next => SlotOutcome::Sequential,
                Effect::Jump { target } => SlotOutcome::Transfer { target },
                Effect::Halt => {
                    self.halted = true;
                    self.stats.cycles += self.model.drain_cycles as u64;
                    break;
                }
            };
            if let Err(v) = self.fetch.retire(pc, i, len, outcome) {
                return Ok(BatchStep {
                    executed_slots: executed,
                    violation: Some(v),
                });
            }
        }
        Ok(BatchStep {
            executed_slots: executed,
            violation: None,
        })
    }

    fn account(&mut self, inst: &Instruction, taken: bool) {
        self.stats.instret += 1;
        let cycles = self
            .model
            .instruction_cycles(inst, taken, self.prev_load_dest) as u64;
        // Block-structured fetch units already charge one issue slot per
        // fetched word; only the hazard penalties remain.
        self.stats.cycles += if F::ISSUE_CHARGED_IN_FETCH {
            cycles - 1
        } else {
            cycles
        };
        if inst.is_branch() {
            self.stats.branches += 1;
            if taken {
                self.stats.taken_branches += 1;
            }
        }
        if inst.is_load() {
            self.stats.loads += 1;
        }
        if inst.is_store() {
            self.stats.stores += 1;
        }
        if inst.is_call() {
            self.stats.calls += 1;
        }
        if let Some(dest) = self.prev_load_dest {
            if inst.use_regs().contains(&dest) {
                self.stats.load_use_stalls += 1;
            }
        }
    }

    /// Runs until `halt`, a trap, an exhausted slot budget, or whatever
    /// `on_violation` decides about a detected violation. The closure
    /// receives each violation and the resets performed so far; the
    /// engine applies the returned [`Disposition`].
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run(
        &mut self,
        max_slots: u64,
        on_violation: impl FnMut(F::Violation, u64) -> Disposition,
    ) -> Result<EngineOutcome<F::Violation>, Trap> {
        self.run_metered(max_slots, on_violation).map(|(o, _)| o)
    }

    /// [`Pipeline::run`], additionally reporting the fuel actually
    /// consumed (each batch charges `executed_slots.max(1)`, so even a
    /// violation that executes nothing makes progress against the budget).
    ///
    /// The meter is what makes preemptive schedulers exact: a batch never
    /// starts unless consumed fuel is still below the budget, so feeding
    /// slices `s₁, s₂, …` and deducting the *reported* consumption (not
    /// the slice size — batches are atomic and may overshoot) replays the
    /// same batch sequence as one `run(s₁ + s₂ + …)` call, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run_metered(
        &mut self,
        max_slots: u64,
        mut on_violation: impl FnMut(F::Violation, u64) -> Disposition,
    ) -> Result<(EngineOutcome<F::Violation>, u64), Trap> {
        let mut consumed = 0u64;
        loop {
            if self.halted {
                return Ok((EngineOutcome::Halted, consumed));
            }
            if consumed >= max_slots {
                return Ok((EngineOutcome::OutOfFuel, consumed));
            }
            let step = self.step_batch()?;
            consumed += step.executed_slots.max(1);
            if let Some(v) = step.violation {
                match on_violation(v, self.resets) {
                    Disposition::Stop => {
                        self.halted = true;
                        return Ok((EngineOutcome::Stopped(v), consumed));
                    }
                    Disposition::Reset => self.reset(),
                    Disposition::Abandon => {
                        return Ok((
                            EngineOutcome::ResetLoop {
                                resets: self.resets as u32,
                            },
                            consumed,
                        ))
                    }
                }
            }
        }
    }

    /// Hardware reset: clear registers, re-point `sp` at the top of RAM,
    /// flush the I-cache, and restart the fetch unit from the entry
    /// point, charging its reboot time. RAM and MMIO logs persist (a
    /// reboot restores a safe *control* state; memory is reinitialised by
    /// startup code, which reloaded images re-run).
    pub fn reset(&mut self) {
        self.regs.clear();
        self.regs
            .set(Reg::SP, self.mem.ram_base() + self.mem.ram_size());
        self.icache.flush();
        self.prev_load_dest = None;
        self.resets += 1;
        self.stats.cycles += self.fetch.on_reset();
    }

    /// Marks the machine halted (a machine's `Stop` policy outside
    /// [`Pipeline::run`], e.g. in single-step harnesses).
    pub fn force_halt(&mut self) {
        self.halted = true;
    }

    /// Whether the machine has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Resets performed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// The memory (ROM + RAM + MMIO logs).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access — for loaders and the attack harness.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Accumulated execution statistics (cycles include I-cache stalls
    /// and fetch-path costs).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> ICacheStats {
        self.icache.stats()
    }

    /// The pipeline hazard model this engine charges.
    pub fn model(&self) -> PipelineModel {
        self.model
    }

    /// The instruction cache geometry.
    pub fn icache_config(&self) -> ICacheConfig {
        self.icache.config()
    }

    /// Exports the engine-owned half of a machine snapshot (see
    /// [`CoreState`] for what is and is not included). Meaningful
    /// between batches — i.e. whenever the caller holds the machine at
    /// all, since batches are atomic.
    pub fn export_core_state(&self) -> CoreState {
        CoreState {
            regs: self.regs.clone(),
            ram: self.mem.ram().to_vec(),
            mmio: self.mem.mmio.clone(),
            stats: self.stats,
            icache_tags: self.icache.tags().to_vec(),
            icache_stats: self.icache.stats(),
            prev_load_dest: self.prev_load_dest,
            halted: self.halted,
            resets: self.resets,
        }
    }

    /// Replaces the engine-owned state wholesale with a previously
    /// exported [`CoreState`] — the restore half of suspend/resume. ROM
    /// is untouched (it was loaded from the sealed image at
    /// construction), and the in-flight batch buffer is cleared.
    ///
    /// # Errors
    ///
    /// [`CoreStateError`] if the state was captured under a different
    /// RAM size or I-cache geometry; the engine is left unmodified.
    pub fn restore_core_state(&mut self, state: CoreState) -> Result<(), CoreStateError> {
        if state.ram.len() != self.mem.ram().len() {
            return Err(CoreStateError::RamSize {
                expected: self.mem.ram().len(),
                found: state.ram.len(),
            });
        }
        if state.icache_tags.len() != self.icache.tags().len() {
            return Err(CoreStateError::IcacheLines {
                expected: self.icache.tags().len(),
                found: state.icache_tags.len(),
            });
        }
        self.regs = state.regs;
        let ram_base = self.mem.ram_base();
        self.mem.load_ram(ram_base, &state.ram);
        self.mem.mmio = state.mmio;
        self.stats = state.stats;
        self.icache.set_state(state.icache_tags, state.icache_stats);
        self.prev_load_dest = state.prev_load_dest;
        self.halted = state.halted;
        self.resets = state.resets;
        self.batch.clear();
        Ok(())
    }

    /// The fetch unit.
    pub fn fetch(&self) -> &F {
        &self.fetch
    }

    /// Mutable fetch-unit access — the attack harness's hijack channel.
    pub fn fetch_mut(&mut self) -> &mut F {
        &mut self.fetch
    }
}
