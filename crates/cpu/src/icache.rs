//! A direct-mapped instruction cache model.
//!
//! Sits **in front of** SOFIA's decrypt unit (paper Fig. 1: ciphertext is
//! cached, decryption happens on the way to the pipeline), so the same
//! model serves both the vanilla and the SOFIA machine. Only timing is
//! modelled — hit or miss — since contents are backed by the ROM.

/// Configuration of the instruction cache.
///
/// The defaults model the "minimal hardware configuration" LEON3 of the
/// paper: 4 KiB direct-mapped with 32-byte lines and a 10-cycle refill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u32,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            size_bytes: 4096,
            line_bytes: 32,
            miss_penalty: 10,
        }
    }
}

/// A direct-mapped I-cache (timing model only).
///
/// # Examples
///
/// ```
/// use sofia_cpu::icache::{ICache, ICacheConfig};
///
/// let mut c = ICache::new(ICacheConfig::default());
/// assert!(!c.access(0x100)); // cold miss
/// assert!(c.access(0x104));  // same 32-byte line
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ICache {
    config: ICacheConfig,
    tags: Vec<Option<u32>>,
    stats: ICacheStats,
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ICacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl ICacheStats {
    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ICache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two with
    /// `line_bytes ≤ size_bytes`.
    pub fn new(config: ICacheConfig) -> ICache {
        assert!(
            config.size_bytes.is_power_of_two()
                && config.line_bytes.is_power_of_two()
                && config.line_bytes <= config.size_bytes,
            "invalid icache geometry"
        );
        let lines = (config.size_bytes / config.line_bytes) as usize;
        ICache {
            config,
            tags: vec![None; lines],
            stats: ICacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> ICacheConfig {
        self.config
    }

    /// Simulates a fetch at `addr`; returns `true` on hit and fills the
    /// line on miss.
    pub fn access(&mut self, addr: u32) -> bool {
        let line_addr = addr / self.config.line_bytes;
        let index = (line_addr as usize) % self.tags.len();
        let tag = line_addr / self.tags.len() as u32;
        if self.tags[index] == Some(tag) {
            self.stats.hits += 1;
            true
        } else {
            self.tags[index] = Some(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Extra cycles for an access: 0 on hit, the miss penalty otherwise.
    pub fn access_cycles(&mut self, addr: u32) -> u32 {
        if self.access(addr) {
            0
        } else {
            self.config.miss_penalty
        }
    }

    /// Invalidates every line (used on SOFIA reset).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ICacheStats {
        self.stats
    }

    /// The line tags, in set order — the snapshot export (timing-model
    /// metadata only: tags are addresses, never cached content).
    pub fn tags(&self) -> &[Option<u32>] {
        &self.tags
    }

    /// Replaces tags and counters wholesale (snapshot restore). The
    /// caller must supply exactly one tag per line of this geometry —
    /// [`Pipeline::restore_core_state`] length-checks before calling.
    ///
    /// [`Pipeline::restore_core_state`]: crate::engine::Pipeline::restore_core_state
    ///
    /// # Panics
    ///
    /// Panics if `tags` does not match the configured line count.
    pub fn set_state(&mut self, tags: Vec<Option<u32>>, stats: ICacheStats) {
        assert_eq!(tags.len(), self.tags.len(), "icache tag count mismatch");
        self.tags = tags;
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ICache {
        // 4 lines of 16 bytes.
        ICache::new(ICacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            miss_penalty: 5,
        })
    }

    #[test]
    fn sequential_fetch_misses_once_per_line() {
        let mut c = small();
        for addr in (0x100..0x140).step_by(4) {
            c.access(addr);
        }
        assert_eq!(c.stats().misses, 4); // 64 bytes / 16-byte lines
        assert_eq!(c.stats().hits, 12);
    }

    #[test]
    fn conflict_misses_on_aliasing_lines() {
        let mut c = small();
        // 0x100 and 0x140 map to the same index (capacity 64).
        assert!(!c.access(0x100));
        assert!(!c.access(0x140));
        assert!(!c.access(0x100)); // evicted by 0x140
    }

    #[test]
    fn loop_fits_after_warmup() {
        let mut c = small();
        for _ in 0..10 {
            for addr in (0x100..0x120).step_by(4) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 78);
        assert!(c.stats().hit_rate() > 0.95);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0x100);
        assert!(c.access(0x104));
        c.flush();
        assert!(!c.access(0x104));
    }

    #[test]
    fn miss_penalty_charged() {
        let mut c = small();
        assert_eq!(c.access_cycles(0x100), 5);
        assert_eq!(c.access_cycles(0x104), 0);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn bad_geometry_rejected() {
        let _ = ICache::new(ICacheConfig {
            size_bytes: 48,
            line_bytes: 16,
            miss_penalty: 1,
        });
    }
}
