//! Processor traps.

use std::error::Error;
use std::fmt;

/// A synchronous processor trap.
///
/// On the bare-metal target the paper assumes (no OS, no handlers), any
/// trap is terminal: the simulator stops and reports it. Under SOFIA a
/// trap can additionally be the *visible symptom* of a garbled decryption
/// that happened to reach the decoder (though the MAC check catches
/// tampering before execution on the SOFIA machine itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trap {
    /// The fetched word does not decode to any SL32 instruction.
    IllegalInstruction {
        /// The offending word.
        word: u32,
        /// Address it was fetched from.
        pc: u32,
    },
    /// Instruction fetch from outside the text region or unaligned.
    FetchFault {
        /// The faulting address.
        addr: u32,
    },
    /// Data load from an unmapped address.
    LoadFault {
        /// The faulting address.
        addr: u32,
    },
    /// Data store to an unmapped address.
    StoreFault {
        /// The faulting address.
        addr: u32,
    },
    /// Store into the program ROM (self-modifying code is not supported;
    /// the attacker in the SOFIA threat model tampers with the stored
    /// image out-of-band instead).
    WriteToRom {
        /// The faulting address.
        addr: u32,
    },
    /// A load or store with an address not aligned to its access size.
    Misaligned {
        /// The faulting address.
        addr: u32,
    },
    /// `div`/`divu`/`rem`/`remu` with a zero divisor.
    DivideByZero {
        /// Address of the dividing instruction.
        pc: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { word, pc } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            Trap::FetchFault { addr } => write!(f, "fetch fault at {addr:#010x}"),
            Trap::LoadFault { addr } => write!(f, "load fault at {addr:#010x}"),
            Trap::StoreFault { addr } => write!(f, "store fault at {addr:#010x}"),
            Trap::WriteToRom { addr } => write!(f, "store into program rom at {addr:#010x}"),
            Trap::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            Trap::DivideByZero { pc } => write!(f, "division by zero at {pc:#010x}"),
        }
    }
}

impl Error for Trap {}
