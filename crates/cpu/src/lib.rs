//! # sofia-cpu — the vanilla baseline processor
//!
//! A cycle-level simulator of the unmodified microprocessor SOFIA extends
//! (DESIGN.md, substitution S1): a LEON3-like single-issue, in-order,
//! 7-stage pipeline (IF ID OF EX MA XC WB) with a direct-mapped I-cache,
//! single-cycle data RAM and a small MMIO page.
//!
//! The crate separates concerns so the SOFIA machine (`sofia-core`) can
//! reuse every piece behind its decrypt/verify fetch unit:
//!
//! * [`mem`] — the physical memory map and MMIO ports;
//! * [`icache`] — hit/miss timing (ciphertext is cached *before* the
//!   decrypt unit, paper Fig. 1, so the model is shared verbatim);
//! * [`exec`] — pure architectural semantics of every instruction;
//! * [`pipeline`] — hazard-based cycle accounting;
//! * [`fetch`] — the [`fetch::FetchUnit`] seam: how instructions reach
//!   the pipeline (plaintext words vs. decrypted/verified blocks);
//! * [`engine`] — [`engine::Pipeline`], the generic step/run engine every
//!   machine wraps;
//! * [`machine`] — [`machine::VanillaMachine`], the assembled baseline.
//!
//! # Examples
//!
//! ```
//! use sofia_cpu::machine::VanillaMachine;
//! use sofia_isa::asm;
//!
//! let program = asm::assemble("main: li v0, 41\n addi v0, v0, 1\n halt")?;
//! let mut machine = VanillaMachine::new(&program);
//! machine.run(100)?;
//! assert_eq!(machine.regs().get(sofia_isa::Reg::V0), 42);
//! println!("took {} cycles", machine.stats().cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod exec;
pub mod fetch;
pub mod icache;
pub mod machine;
pub mod mem;
pub mod pipeline;
pub mod stats;
mod trap;

pub use engine::{
    BatchStep, CoreState, CoreStateError, Disposition, EngineOutcome, MachineConfig, Pipeline,
};
pub use fetch::{FetchCtx, FetchUnit, NoViolation, PlainFetch, Slot, SlotOutcome};
pub use stats::ExecStats;
pub use trap::Trap;
