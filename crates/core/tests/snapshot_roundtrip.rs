//! The snapshot-encoding equivalence suite (mirrors the shape of
//! `crates/crypto/tests/bitslice_equiv.rs`): the in-memory
//! [`MachineSnapshot`] is the reference, and the `SOFS1` byte container
//! must reproduce it bit for bit over arbitrary machine states — while
//! **every** single-byte corruption and **every** truncation of the
//! container is rejected with a typed [`DecodeError`], never a panic.

use proptest::prelude::*;
use sofia_core::machine::{ResetPolicy, SofiaConfig, SofiaMachine};
use sofia_core::snapshot::{MachineSnapshot, VCacheLine, RAM_PAGE};
use sofia_core::timing::{CipherSchedule, SofiaTiming};
use sofia_core::vcache::{VCacheConfig, VCacheStats};
use sofia_core::{SliceOutcome, Violation};
use sofia_cpu::icache::{ICacheConfig, ICacheStats};
use sofia_cpu::machine::MachineConfig;
use sofia_cpu::mem::Mmio;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_isa::asm;
use sofia_transform::decode::DecodeError;
use sofia_transform::Transformer;

/// A tiny splitmix64 so arbitrary snapshots are a pure function of one
/// proptest-supplied seed (the shim generates integers, not structs).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// An arbitrary — but structurally valid — machine snapshot: every field
/// populated from the seed, geometries drawn from valid shapes, RAM
/// pages strictly ascending, one I-cache tag per configured line.
fn arbitrary_snapshot(seed: u64) -> MachineSnapshot {
    let mut rng = Rng(seed);
    let icache_geoms = [(256u32, 32u32), (1024, 32), (4096, 64), (64, 16)];
    let (size_bytes, line_bytes) = icache_geoms[rng.below(4) as usize];
    let vcache_geoms = [
        VCacheConfig::default(),
        VCacheConfig::enabled(1, 1),
        VCacheConfig::enabled(8, 2),
        VCacheConfig::enabled(64, 4),
    ];
    let vcache = vcache_geoms[rng.below(4) as usize];
    let ram_size = [2048u32, 4096, 5000][rng.below(3) as usize];
    let config = SofiaConfig {
        machine: MachineConfig {
            ram_size,
            icache: ICacheConfig {
                size_bytes,
                line_bytes,
                miss_penalty: rng.below(20) as u32,
            },
            pipeline: sofia_cpu::pipeline::PipelineModel {
                taken_branch_penalty: rng.below(5) as u32,
                direct_jump_penalty: rng.below(5) as u32,
                indirect_jump_penalty: rng.below(5) as u32,
                load_use_penalty: rng.below(3) as u32,
                mul_cycles: 1 + rng.below(8) as u32,
                div_cycles: 1 + rng.below(40) as u32,
                drain_cycles: rng.below(8) as u32,
                data_penalty: rng.below(30) as u32,
            },
        },
        timing: SofiaTiming {
            schedule: if rng.below(2) == 0 {
                CipherSchedule::Paper
            } else {
                CipherSchedule::PerWord
            },
            cipher_latency: 1 + rng.below(4) as u32,
            cipher_issue_interval: 1 + rng.below(3) as u32,
            verify_latency: rng.below(4) as u32,
            redirect_setup: rng.below(3) as u32,
            reboot_cycles: rng.below(1000),
        },
        reset_policy: if rng.below(2) == 0 {
            ResetPolicy::HaltAndReport
        } else {
            ResetPolicy::Reboot {
                max_resets: rng.below(10) as u32,
            }
        },
        enforce_si: rng.below(2) == 0,
        vcache,
    };

    let mut regs = [0u32; 32];
    for r in &mut regs {
        *r = rng.next() as u32;
    }

    let total_pages = (ram_size as usize).div_ceil(RAM_PAGE);
    let mut ram_pages = Vec::new();
    for idx in 0..total_pages {
        if rng.below(3) == 0 {
            let len = (ram_size as usize - idx * RAM_PAGE).min(RAM_PAGE);
            ram_pages.push((idx as u32, (0..len).map(|_| rng.next() as u8).collect()));
        }
    }

    let violations = (0..rng.below(6))
        .map(|_| match rng.below(5) {
            0 => Violation::MacMismatch {
                block_base: rng.next() as u32,
            },
            1 => Violation::InvalidEntryOffset {
                target: rng.next() as u32,
            },
            2 => Violation::FetchOutOfImage {
                addr: rng.next() as u32,
            },
            3 => Violation::StoreTooEarly {
                pc: rng.next() as u32,
                word_pos: rng.below(8) as usize,
            },
            _ => Violation::MidBlockTransfer {
                pc: rng.next() as u32,
            },
        })
        .collect();

    let lines = size_bytes / line_bytes;
    let icache_tags = (0..lines)
        .map(|_| {
            if rng.below(2) == 0 {
                Some(rng.next() as u32)
            } else {
                None
            }
        })
        .collect();

    let mut vcache_lines = Vec::new();
    if vcache.enabled {
        for i in 0..rng.below(vcache.entries as u64 + 1) {
            vcache_lines.push(VCacheLine {
                // Distinct by construction: the low bits carry `i`.
                prev_pc: ((rng.next() as u32) << 8) | i as u32,
                target: rng.next() as u32,
                stamp: rng.next(),
            });
        }
    }

    MachineSnapshot {
        config,
        fuel_remaining: rng.next(),
        prev_pc: rng.next() as u32,
        next_target: rng.next() as u32,
        redirected: rng.below(2) == 0,
        cur_base: rng.next() as u32,
        cur_last_word: rng.next() as u32,
        halted: rng.below(8) == 0,
        resets: rng.below(100),
        prev_load_dest: match rng.below(4) {
            0 => None,
            _ => Some(rng.below(32) as u8),
        },
        regs,
        ram_pages,
        mmio: Mmio {
            out_words: (0..rng.below(20)).map(|_| rng.next() as u32).collect(),
            out_bytes: (0..rng.below(20)).map(|_| rng.next() as u8).collect(),
            actuator_writes: (0..rng.below(8)).map(|_| rng.next() as u32).collect(),
        },
        exec: ExecStats {
            cycles: rng.next(),
            instret: rng.next(),
            branches: rng.next(),
            taken_branches: rng.next(),
            loads: rng.next(),
            stores: rng.next(),
            calls: rng.next(),
            load_use_stalls: rng.next(),
            icache_stall_cycles: rng.next(),
        },
        fetch: sofia_core::fetch::FetchPathStats {
            blocks: rng.next(),
            exec_blocks: rng.next(),
            mux_blocks: rng.next(),
            mac_nop_slots: rng.next(),
            ctr_ops: rng.next(),
            cbc_ops: rng.next(),
            cipher_stall_cycles: rng.next(),
            redirect_fill_cycles: rng.next(),
            store_gate_stall_cycles: rng.next(),
            vcache_hits: rng.next(),
            vcache_misses: rng.next(),
            vcache_evictions: rng.next(),
            crypto_cycles_saved: rng.next(),
        },
        violations,
        icache_tags,
        icache_stats: ICacheStats {
            hits: rng.next(),
            misses: rng.next(),
        },
        vcache_tick: rng.next(),
        vcache_stats: VCacheStats {
            hits: rng.next(),
            misses: rng.next(),
            evictions: rng.next(),
            insertions: rng.next(),
            flushed: rng.next(),
        },
        vcache_lines,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary machine states encode → decode to the identical
    /// snapshot, whatever the geometry, page sparsity or counter values.
    #[test]
    fn arbitrary_states_roundtrip(seed in any::<u64>()) {
        let snap = arbitrary_snapshot(seed);
        let bytes = snap.to_bytes();
        let back = MachineSnapshot::from_bytes(&bytes);
        prop_assert!(back.as_ref().ok() == Some(&snap), "seed {}: {:?}", seed, back.err());
    }

    /// A snapshot captured from a *real* suspended machine also
    /// round-trips, and the restored machine resumes to a bit-identical
    /// final state (the crate-level miniature of the workspace
    /// `snapshot_differential` harness).
    #[test]
    fn live_machine_snapshots_roundtrip_and_resume(
        n in 3u32..40,
        slice in 1u64..120,
        geom in 0usize..3,
    ) {
        let src = format!(
            "main: li t0, {n}
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt"
        );
        let keys = KeySet::from_seed(0x000F_5EED ^ n as u64);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(&src).expect("parses"))
            .expect("transforms");
        let config = SofiaConfig {
            vcache: [
                VCacheConfig::default(),
                VCacheConfig::enabled(8, 2),
                VCacheConfig::enabled(64, 4),
            ][geom],
            ..Default::default()
        };
        let mut whole = SofiaMachine::with_config(&image, &keys, &config);
        prop_assert!(whole.run(1_000_000).unwrap().is_halted());
        let mut driver = SofiaMachine::with_config(&image, &keys, &config);
        let s = driver.run_slice(slice).unwrap();
        if s.outcome == SliceOutcome::Preempted {
            let snap = driver.snapshot(1_000_000 - s.consumed);
            let back = MachineSnapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");
            prop_assert_eq!(&back, &snap);
            drop(driver);
            let mut resumed = SofiaMachine::restore(&image, &keys, &back).expect("restore");
            prop_assert!(resumed.run(back.fuel_remaining).unwrap().is_halted());
            prop_assert_eq!(&resumed.mem().mmio.out_words, &whole.mem().mmio.out_words);
            prop_assert_eq!(resumed.stats(), whole.stats());
            prop_assert_eq!(resumed.icache_stats(), whole.icache_stats());
            prop_assert_eq!(resumed.vcache_stats(), whole.vcache_stats());
        }
    }
}

/// **Every** single-byte corruption of a serialised snapshot is rejected
/// with a typed error — two different flip masks per byte, no byte
/// skipped. The trailing FNV-64 digest is what makes this exhaustive
/// property hold unconditionally: any single-byte substitution changes
/// it, and it is checked before a single field is parsed.
#[test]
fn every_single_byte_corruption_is_rejected() {
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let snap = arbitrary_snapshot(seed);
        let bytes = snap.to_bytes();
        assert!(MachineSnapshot::from_bytes(&bytes).is_ok());
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= mask;
                match MachineSnapshot::from_bytes(&bad) {
                    Err(DecodeError::ChecksumMismatch) => {}
                    Err(e) => panic!("seed {seed} byte {i} mask {mask:#x}: unexpected {e}"),
                    Ok(_) => panic!("seed {seed} byte {i} mask {mask:#x}: corruption accepted"),
                }
            }
        }
    }
}

/// **Every** truncation of a serialised snapshot is rejected with a
/// typed error, down to the empty stream.
#[test]
fn every_truncation_is_rejected() {
    let snap = arbitrary_snapshot(7);
    let bytes = snap.to_bytes();
    for len in 0..bytes.len() {
        match MachineSnapshot::from_bytes(&bytes[..len]) {
            Err(
                DecodeError::ChecksumMismatch
                | DecodeError::Truncated { .. }
                | DecodeError::BadLength { .. },
            ) => {}
            Err(e) => panic!("truncation to {len}: unexpected error {e}"),
            Ok(_) => panic!("truncation to {len} accepted"),
        }
    }
}

/// Decoded-but-hostile snapshots (valid checksum, structurally wrong
/// interior) are rejected by field validation, not by panics: the
/// checksum is a corruption check, and an adversary who recomputes it
/// still cannot crash the decoder or the restorer.
#[test]
fn structurally_invalid_fields_are_typed_errors() {
    let base = arbitrary_snapshot(3);

    // Bad icache geometry (not a power of two).
    let mut snap = base.clone();
    snap.config.machine.icache.size_bytes = 48;
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadField {
            field: "icache",
            ..
        })
    ));

    // I-cache tag count contradicting the geometry.
    let mut snap = base.clone();
    snap.icache_tags.push(None);
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadLength {
            field: "icache_tags",
            ..
        })
    ));

    // More vcache lines than the geometry holds.
    let mut snap = base.clone();
    snap.config.vcache = VCacheConfig::enabled(1, 1);
    snap.vcache_lines = vec![
        VCacheLine {
            prev_pc: 0,
            target: 0x40,
            stamp: 1,
        };
        2
    ];
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadLength {
            field: "vcache_lines",
            ..
        })
    ));

    // Out-of-order RAM pages.
    let mut snap = base.clone();
    snap.ram_pages = vec![(1, vec![1; RAM_PAGE]), (0, vec![2; RAM_PAGE])];
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadField {
            field: "ram_pages",
            ..
        })
    ));

    // Adversarially huge geometries (an attacker can recompute the
    // checksum) are magnitude-bounded at decode, before restore could
    // allocate gigabytes on the adopting host.
    let mut snap = base.clone();
    snap.config.machine.ram_size = u32::MAX;
    snap.ram_pages.clear();
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadField {
            field: "ram_size",
            ..
        })
    ));
    let mut snap = base.clone();
    snap.config.vcache = VCacheConfig {
        enabled: true,
        entries: 0xFFFF_FFF0,
        ways: 16,
        hit_latency: 0,
    };
    snap.vcache_lines.clear();
    assert!(matches!(
        MachineSnapshot::from_bytes(&snap.to_bytes()),
        Err(DecodeError::BadField {
            field: "vcache",
            ..
        })
    ));
}
