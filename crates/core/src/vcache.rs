//! The verified-block cache: post-verification caching of decrypted,
//! MAC-checked blocks, keyed by the control-flow edge that sealed them.
//!
//! # Why the key is `(prevPC, PC)` and why that is sound
//!
//! A SOFIA block's ciphertext is bound to the edge that legitimately
//! reaches it: the CTR counter is `{ω ‖ prevPC ‖ PC}` (paper §II-B), so
//! the *identity* of a verified block — which plaintext the hardware
//! would reconstruct and accept — is fully determined by the transfer
//! target and the `prevPC` the hardware presents. Caching the verified
//! plaintext under exactly that pair preserves the paper's security
//! argument:
//!
//! * a **forged edge** `(prevPC', PC)` with `prevPC' ≠ prevPC` is a
//!   *different key* — it can never hit a line that was verified for the
//!   sealed edge, so it falls through to [`crate::fetch::fetch_block`]
//!   and fails the MAC exactly as on an uncached machine;
//! * a **hit** replays instruction words that already passed the SI
//!   check for this very edge, so no unverified word ever reaches the
//!   pipeline through the cache;
//! * **tampering with ROM after a line was filled** is detected at the
//!   next miss/refill of that line — the same contract as the hardware's
//!   ciphertext I-cache, whose contents also go stale only until
//!   eviction. A core reset flushes the cache (the reboot must restore a
//!   safe control state), so persistent tampering still resets forever.
//!
//! Timing-wise a hit skips the CTR decrypt, the CBC-MAC, the ciphertext
//! I-cache walk and the decrypt-pipeline refill, charging only the
//! block's issue slots plus a configurable hit latency — which is the
//! whole point: hot loops stop paying MAC+CTR on every iteration.

use std::sync::Arc;

use sofia_cpu::fetch::Slot;
use sofia_transform::BlockKind;

/// Geometry and policy of the verified-block cache.
///
/// The default is **disabled**, which preserves the uncached machine's
/// behaviour bit-for-bit (no lookups, no stats, no timing change).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VCacheConfig {
    /// Master switch. Disabled ⇒ the fetch path is byte-identical to a
    /// machine built before this cache existed.
    pub enabled: bool,
    /// Total capacity in cached edges (must be a multiple of `ways`).
    pub entries: u32,
    /// Associativity: 1 = direct-mapped, `entries` = fully associative.
    pub ways: u32,
    /// Cycles charged per hit on top of the block's issue slots. The
    /// default is 0: the tag compare overlaps the first issue slot, the
    /// same convention under which the ciphertext I-cache charges
    /// nothing on a hit. Raise it to model a slower tag/data array.
    pub hit_latency: u32,
}

impl Default for VCacheConfig {
    fn default() -> Self {
        VCacheConfig {
            enabled: false,
            entries: 64,
            ways: 4,
            hit_latency: 0,
        }
    }
}

impl VCacheConfig {
    /// An enabled cache with the given geometry and default hit latency.
    pub fn enabled(entries: u32, ways: u32) -> VCacheConfig {
        VCacheConfig {
            enabled: true,
            entries,
            ways,
            hit_latency: VCacheConfig::default().hit_latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ways` is zero, or `ways` does not divide
    /// `entries`.
    pub fn validate(&self) {
        assert!(
            self.entries > 0 && self.ways > 0 && self.entries % self.ways == 0,
            "invalid vcache geometry: {} entries / {} ways",
            self.entries,
            self.ways
        );
    }
}

/// Hit/miss/eviction counters of the verified-block cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VCacheStats {
    /// Lookups that found the edge verified and cached.
    pub hits: u64,
    /// Lookups that fell through to the decrypt + verify path.
    pub misses: u64,
    /// Verified lines evicted to make room (capacity/conflict).
    pub evictions: u64,
    /// Verified lines inserted after a successful miss.
    pub insertions: u64,
    /// Lines dropped by a flush (core reset).
    pub flushed: u64,
}

impl VCacheStats {
    /// Hit rate in `[0, 1]`; 0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A verified block as the cache stores it: the decoded instruction
/// slots (already past the SI check, the decoder and the store-position
/// rule) plus the sequencing facts the fetch unit needs on a hit.
#[derive(Clone, Debug)]
pub struct CachedBlock {
    /// Base address of the block.
    pub base: u32,
    /// Address of the block's last word (the `prevPC` its exits present).
    pub last_word_addr: u32,
    /// Exec or mux block (for the per-kind counters).
    pub kind: BlockKind,
    /// Ciphertext words the uncached fetch walks for this entry path —
    /// what a hit *saves* in issue slots and cipher work.
    pub words_fetched: u32,
    /// The decoded instruction slots, in issue order, behind a shared
    /// slice: a hit hands the `Arc` straight to the pipeline batch
    /// ([`sofia_cpu::fetch::Batch::deliver_shared`]) instead of cloning
    /// the slots on every replay.
    pub slots: Arc<[Slot]>,
}

#[derive(Clone, Debug)]
struct Line {
    key: (u32, u32),
    stamp: u64,
    block: CachedBlock,
}

/// A set-associative, LRU-replaced cache of verified blocks keyed by the
/// control-flow edge `(prevPC, targetPC)`.
///
/// # Examples
///
/// ```
/// use sofia_core::vcache::{CachedBlock, VCache, VCacheConfig};
/// use sofia_transform::BlockKind;
///
/// let mut c = VCache::new(VCacheConfig::enabled(4, 2));
/// let block = CachedBlock {
///     base: 0x40,
///     last_word_addr: 0x5C,
///     kind: BlockKind::Exec,
///     words_fetched: 8,
///     slots: [].into(),
/// };
/// c.insert((0x1C, 0x40), block);
/// assert!(c.lookup(0x1C, 0x40).is_some()); // the sealed edge hits
/// assert!(c.lookup(0x3C, 0x40).is_none()); // a forged edge never does
/// ```
#[derive(Clone, Debug)]
pub struct VCache {
    config: VCacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: VCacheStats,
}

impl VCache {
    /// An empty cache. A disabled config allocates no sets and turns
    /// [`VCache::lookup`]/[`VCache::insert`] into no-ops.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry (see [`VCacheConfig::validate`]).
    pub fn new(config: VCacheConfig) -> VCache {
        let sets = if config.enabled {
            config.validate();
            vec![Vec::with_capacity(config.ways as usize); config.sets() as usize]
        } else {
            Vec::new()
        };
        VCache {
            config,
            sets,
            tick: 0,
            stats: VCacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> VCacheConfig {
        self.config
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Accumulated counters.
    pub fn stats(&self) -> VCacheStats {
        self.stats
    }

    fn set_index(&self, key: (u32, u32)) -> usize {
        // Word-granular addresses: drop the always-zero low bits, then
        // run the combined edge through a full-avalanche mixer (the
        // murmur3 finalizer) so both the target (a block's many
        // successors) and the prevPC (a mux target's many callers)
        // spread across sets. A single odd-multiply is not enough: block
        // addresses stride by 32, and a multiply preserves that stride
        // structure modulo small set counts.
        let mut h = (key.0 >> 2) ^ (key.1 >> 2).rotate_left(16);
        h ^= h >> 16;
        h = h.wrapping_mul(0x7FEB_352D);
        h ^= h >> 15;
        h = h.wrapping_mul(0x846C_A68B);
        h ^= h >> 16;
        (h as usize) % self.sets.len()
    }

    /// Looks up the edge `(prev_pc, target)`, updating LRU order and the
    /// hit/miss counters. Always a miss when disabled (without counting).
    #[inline]
    pub fn lookup(&mut self, prev_pc: u32, target: u32) -> Option<&CachedBlock> {
        if !self.config.enabled {
            return None;
        }
        let key = (prev_pc, target);
        let idx = self.set_index(key);
        self.tick += 1;
        let tick = self.tick;
        match self.sets[idx].iter_mut().find(|l| l.key == key) {
            Some(line) => {
                line.stamp = tick;
                self.stats.hits += 1;
                Some(&line.block)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly verified block for the edge `(prev_pc, target)`,
    /// evicting the set's least-recently-used line if the set is full.
    /// No-op when disabled. Returns whether a line was evicted.
    pub fn insert(&mut self, key: (u32, u32), block: CachedBlock) -> bool {
        if !self.config.enabled {
            return false;
        }
        let idx = self.set_index(key);
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.key == key) {
            // Re-verification of an edge already present (e.g. after the
            // insert-racing path was taken on a miss): refresh in place.
            line.stamp = tick;
            line.block = block;
            return false;
        }
        let evicted = set.len() as u32 >= self.config.ways;
        if evicted {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            set.swap_remove(lru);
            self.stats.evictions += 1;
        }
        set.push(Line {
            key,
            stamp: tick,
            block,
        });
        self.stats.insertions += 1;
        evicted
    }

    /// Drops every line (core reset: the reboot must restore a safe
    /// control state, so stale verified plaintext must not survive it).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            self.stats.flushed += set.len() as u64;
            set.clear();
        }
    }

    /// The LRU clock — exported by machine snapshots so a restored cache
    /// replays the exact same eviction decisions.
    pub(crate) fn clock(&self) -> u64 {
        self.tick
    }

    /// Every resident line's `(edge, LRU stamp)`, in set order — the
    /// snapshot export. Deliberately **metadata only**: the verified
    /// plaintext never leaves the cache; a restore re-verifies each edge
    /// from the (MAC-protected) ciphertext instead.
    pub(crate) fn export_lines(&self) -> Vec<((u32, u32), u64)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|l| (l.key, l.stamp)))
            .collect()
    }

    /// Rebuilds the cache wholesale from re-verified lines, preserving
    /// each line's LRU stamp and the clock, and replacing the counters —
    /// the restore half of [`VCache::export_lines`]. Placement is
    /// recomputed from the keys, so the only way a line set can be
    /// invalid is a snapshot claiming more lines than a set holds (or
    /// the same edge twice, or any line at all on a disabled cache).
    ///
    /// # Errors
    ///
    /// Returns the offending edge; the cache is left empty of restored
    /// lines (the caller discards the machine).
    pub(crate) fn restore_state(
        &mut self,
        lines: Vec<((u32, u32), u64, CachedBlock)>,
        tick: u64,
        stats: VCacheStats,
    ) -> Result<(), (u32, u32)> {
        if !self.config.enabled {
            if let Some(&(key, _, _)) = lines.first() {
                return Err(key);
            }
            self.tick = tick;
            self.stats = stats;
            return Ok(());
        }
        for set in &mut self.sets {
            set.clear();
        }
        for (key, stamp, block) in lines {
            let idx = self.set_index(key);
            let set = &mut self.sets[idx];
            if set.len() as u32 >= self.config.ways || set.iter().any(|l| l.key == key) {
                return Err(key);
            }
            set.push(Line { key, stamp, block });
        }
        self.tick = tick;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(base: u32) -> CachedBlock {
        CachedBlock {
            base,
            last_word_addr: base + 28,
            kind: BlockKind::Exec,
            words_fetched: 8,
            slots: [].into(),
        }
    }

    #[test]
    fn disabled_cache_never_hits_and_counts_nothing() {
        let mut c = VCache::new(VCacheConfig::default());
        c.insert((0, 0x40), block(0x40));
        assert!(c.lookup(0, 0x40).is_none());
        assert_eq!(c.stats(), VCacheStats::default());
    }

    #[test]
    fn sealed_edge_hits_forged_edge_misses() {
        let mut c = VCache::new(VCacheConfig::enabled(8, 2));
        c.insert((0x1C, 0x40), block(0x40));
        assert_eq!(c.lookup(0x1C, 0x40).unwrap().base, 0x40);
        // Same target, wrong prevPC: the key includes the edge source.
        assert!(c.lookup(0x5C, 0x40).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_way() {
        // Fully associative with 2 ways: third insert evicts the LRU.
        let mut c = VCache::new(VCacheConfig::enabled(2, 2));
        c.insert((0, 0x40), block(0x40));
        c.insert((0, 0x60), block(0x60));
        assert!(c.lookup(0, 0x40).is_some()); // touch 0x40: 0x60 is LRU
        c.insert((0, 0x80), block(0x80));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(0, 0x40).is_some());
        assert!(c.lookup(0, 0x60).is_none());
        assert!(c.lookup(0, 0x80).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = VCache::new(VCacheConfig::enabled(2, 2));
        c.insert((0, 0x40), block(0x40));
        c.insert((0, 0x40), block(0x40));
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn flush_empties_every_set() {
        let mut c = VCache::new(VCacheConfig::enabled(8, 2));
        c.insert((0, 0x40), block(0x40));
        c.insert((4, 0x60), block(0x60));
        c.flush();
        assert!(c.lookup(0, 0x40).is_none());
        assert!(c.lookup(4, 0x60).is_none());
        assert_eq!(c.stats().flushed, 2);
    }

    #[test]
    fn set_index_spreads_both_halves_of_the_edge() {
        // Successor edges of one block (same prevPC, many targets) and
        // caller edges of one target (many prevPCs) must both spread
        // across sets, or direct-mapped geometries thrash one set.
        let c = VCache::new(VCacheConfig::enabled(16, 1));
        let spread = |keys: Vec<(u32, u32)>| {
            keys.iter()
                .map(|&k| c.set_index(k))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let fanout = spread((0..64).map(|i| (0x1C, 0x100 + 32 * i)).collect());
        let fanin = spread((0..64).map(|i| (0x100 + 32 * i, 0x1C)).collect());
        assert!(fanout >= 8, "64 successor edges hit only {fanout} sets");
        assert!(fanin >= 8, "64 caller edges hit only {fanin} sets");
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut c = VCache::new(VCacheConfig::enabled(1, 1));
        c.insert((0, 0x40), block(0x40));
        c.insert((0, 0x60), block(0x60));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(0, 0x40).is_none());
    }

    #[test]
    #[should_panic(expected = "vcache geometry")]
    fn bad_geometry_rejected() {
        let _ = VCache::new(VCacheConfig::enabled(6, 4));
    }
}
