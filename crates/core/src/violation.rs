//! Security violations detected by the SOFIA hardware.

use std::fmt;

/// A condition that pulls the SOFIA core's reset line.
///
/// Every variant corresponds to a hardware check in the paper: MAC
/// mismatch (§II-B), invalid block-entry offsets (§II-E call-site
/// convention), early stores (§III "when a store instruction is detected
/// on inst1 or inst2"), and block-discipline breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Violation {
    /// The run-time CBC-MAC over the decrypted instructions differed from
    /// the stored MAC: tampered code *or* tampered control flow.
    MacMismatch {
        /// Base address of the failing block.
        block_base: u32,
    },
    /// A control transfer targeted a word that is not a legal entry point
    /// (offset 0 for execution blocks, 4/8 for multiplexor blocks).
    InvalidEntryOffset {
        /// The offending transfer target.
        target: u32,
    },
    /// A transfer left the secure image entirely.
    FetchOutOfImage {
        /// The offending address.
        addr: u32,
    },
    /// A store instruction sat in a slot too early for verification to
    /// complete before its memory access (inst1/inst2 of an execution
    /// block under the default format).
    StoreTooEarly {
        /// Address of the store instruction.
        pc: u32,
        /// Word position within the block.
        word_pos: usize,
    },
    /// A verified block attempted to transfer control from a non-final
    /// slot ("control can only exit at inst_n").
    MidBlockTransfer {
        /// Address of the offending instruction.
        pc: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MacMismatch { block_base } => {
                write!(f, "mac verification failed for block at {block_base:#010x}")
            }
            Violation::InvalidEntryOffset { target } => {
                write!(f, "transfer to illegal block entry {target:#010x}")
            }
            Violation::FetchOutOfImage { addr } => {
                write!(f, "fetch outside the secure image at {addr:#010x}")
            }
            Violation::StoreTooEarly { pc, word_pos } => {
                write!(f, "store at {pc:#010x} in restricted block word {word_pos}")
            }
            Violation::MidBlockTransfer { pc } => {
                write!(f, "control transfer from non-final slot at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for Violation {}
