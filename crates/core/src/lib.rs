//! # sofia-core — the SOFIA architecture
//!
//! The run-time half of the paper's contribution: a processor extension
//! that (Fig. 1) fetches **encrypted** instructions through the I-cache,
//! decrypts them with control-flow-bound counters (CFI unit), verifies a
//! per-block CBC-MAC over the decrypted words (SI unit), and pulls the
//! reset line before any store of an unverified block can reach the
//! Memory Access pipeline stage.
//!
//! Built directly on the `sofia-cpu` baseline — same executor, memory,
//! I-cache and pipeline models — so vanilla-vs-SOFIA comparisons isolate
//! exactly the cost of the security architecture:
//!
//! * [`fetch`] — the block sequencer + CFI decrypt + SI verify unit;
//! * [`machine`] — [`machine::SofiaMachine`], with reset/reboot policies;
//! * [`timing`] — the cipher schedule and store-gate model (Figs. 5/6);
//! * [`vcache`] — the verified-block cache: post-verification caching
//!   keyed by the control-flow edge `(prevPC, PC)`, so hot edges skip
//!   decrypt + MAC entirely (architecturally invisible, off by default);
//! * [`snapshot`] — suspend/restore: serialise a preempted machine so a
//!   job can migrate across processes/hosts and resume bit-for-bit (no
//!   ciphertext, keys or decrypted plaintext ever travel — the image's
//!   MACs cover transit);
//! * [`security`] — the closed-form attack economics of §IV-A.
//!
//! # Examples
//!
//! Detecting a control-flow violation (the paper's Fig. 2 scenario):
//!
//! ```
//! use sofia_core::machine::{RunOutcome, SofiaMachine};
//! use sofia_crypto::KeySet;
//! use sofia_isa::asm;
//! use sofia_transform::Transformer;
//!
//! let keys = KeySet::from_seed(2);
//! let module = asm::parse("main: li t0, 1\n halt")?;
//! let image = Transformer::new(keys.clone()).transform(&module)?;
//!
//! // Untampered: runs to completion.
//! let mut ok = SofiaMachine::new(&image, &keys);
//! assert!(ok.run(10_000)?.is_halted());
//!
//! // Tampered image: the SI unit resets the core before execution.
//! let mut bad = SofiaMachine::new(&image, &keys);
//! bad.mem_mut().rom_mut()[2] ^= 1;
//! assert!(matches!(bad.run(10_000)?, RunOutcome::ViolationStop(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fetch;
pub mod machine;
pub mod security;
pub mod snapshot;
pub mod timing;
pub mod vcache;
mod violation;

pub use machine::{ResetPolicy, ResumeEdge, SliceOutcome, SliceRun, SofiaConfig, SofiaStats};
pub use snapshot::{MachineSnapshot, RestoreError};
pub use timing::{CipherSchedule, SofiaTiming};
pub use vcache::{VCacheConfig, VCacheStats};
pub use violation::Violation;
