//! The SOFIA machine: the baseline pipeline behind the CFI/SI fetch unit.

use sofia_cpu::exec::{execute, Effect, RegFile};
use sofia_cpu::icache::ICache;
use sofia_cpu::machine::MachineConfig;
use sofia_cpu::mem::Memory;
use sofia_cpu::{ExecStats, Trap};
use sofia_crypto::{ExpandedKeys, KeySet, Nonce};
use sofia_isa::{Instruction, Reg};
use sofia_transform::{BlockFormat, BlockKind, SecureImage, RESET_PREV_PC};

use crate::fetch::{fetch_block, VerifiedBlock};
use crate::timing::SofiaTiming;
use crate::Violation;

/// What the core does when a violation pulls the reset line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetPolicy {
    /// Stop the simulation and report the violation (default — most
    /// experiments want the detection verdict).
    HaltAndReport,
    /// Reset and reboot from the entry point, as the real hardware does
    /// ("the processor should be able to reboot reliably fast"), giving
    /// up after `max_resets` to break persistent-tamper reset loops.
    Reboot {
        /// Resets tolerated before the run is abandoned.
        max_resets: u32,
    },
}

impl Default for ResetPolicy {
    fn default() -> Self {
        ResetPolicy::HaltAndReport
    }
}

/// Full configuration of a SOFIA machine.
#[derive(Clone, Copy, Debug)]
pub struct SofiaConfig {
    /// Baseline machine parameters (RAM, I-cache, pipeline penalties).
    pub machine: MachineConfig,
    /// SOFIA fetch-path timing (cipher schedule, latencies).
    pub timing: SofiaTiming,
    /// Reset-line behaviour.
    pub reset_policy: ResetPolicy,
    /// Whether the SI unit's MAC comparison is enforced. Disabling it
    /// yields a **CFI-only** machine — the ablation the paper argues
    /// against in §II-A: decryption alone cannot detect its own errors,
    /// so CTR malleability lets an attacker flip chosen instruction bits.
    /// For experiments only.
    pub enforce_si: bool,
}

impl Default for SofiaConfig {
    fn default() -> Self {
        SofiaConfig {
            machine: MachineConfig::default(),
            timing: SofiaTiming::default(),
            reset_policy: ResetPolicy::default(),
            enforce_si: true,
        }
    }
}

/// Why a [`SofiaMachine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt` normally.
    Halted,
    /// The step budget ran out.
    OutOfFuel,
    /// A violation was detected (policy [`ResetPolicy::HaltAndReport`]).
    ViolationStop(Violation),
    /// Persistent tampering kept resetting the core
    /// (policy [`ResetPolicy::Reboot`]).
    ResetLoop {
        /// Resets performed before giving up.
        resets: u32,
    },
}

impl RunOutcome {
    /// Whether the program reached `halt` untampered.
    pub fn is_halted(&self) -> bool {
        matches!(self, RunOutcome::Halted)
    }

    /// The violation that stopped the run, if any.
    pub fn violation(&self) -> Option<Violation> {
        match self {
            RunOutcome::ViolationStop(v) => Some(*v),
            _ => None,
        }
    }
}

/// Statistics specific to the SOFIA fetch path, on top of the baseline
/// [`ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SofiaStats {
    /// Baseline counters (cycles, retired instructions, hazards, …).
    /// `instret` counts every executed slot, including padding `nop`s.
    pub exec: ExecStats,
    /// Blocks fetched and verified.
    pub blocks: u64,
    /// Execution blocks among them.
    pub exec_blocks: u64,
    /// Multiplexor blocks among them.
    pub mux_blocks: u64,
    /// MAC words that travelled the pipeline as `nop` slots.
    pub mac_nop_slots: u64,
    /// CTR operations issued by the cipher.
    pub ctr_ops: u64,
    /// CBC-MAC operations issued by the cipher.
    pub cbc_ops: u64,
    /// Stall cycles from cipher backpressure.
    pub cipher_stall_cycles: u64,
    /// Decrypt-pipeline refill cycles after redirects.
    pub redirect_fill_cycles: u64,
    /// Stall cycles inserted by the store gate.
    pub store_gate_stall_cycles: u64,
    /// Violations detected.
    pub violations: u64,
    /// Resets performed (reboot policy).
    pub resets: u64,
}

/// A processor with the SOFIA extension, executing a [`SecureImage`].
///
/// Reuses the baseline's executor, memory, I-cache and pipeline models;
/// only the fetch path differs — which is exactly the paper's structure
/// (Fig. 1) and what makes vanilla-vs-SOFIA comparisons meaningful.
///
/// # Examples
///
/// ```
/// use sofia_core::machine::SofiaMachine;
/// use sofia_crypto::KeySet;
/// use sofia_isa::asm;
/// use sofia_transform::Transformer;
///
/// let keys = KeySet::from_seed(3);
/// let module = asm::parse(
///     "main: li t0, 5
///            li a0, 0xFFFF0000
///            sw t0, 0(a0)
///            halt",
/// )?;
/// let image = Transformer::new(keys.clone()).transform(&module)?;
/// let mut m = SofiaMachine::new(&image, &keys);
/// assert!(m.run(10_000)?.is_halted());
/// assert_eq!(m.mem().mmio.out_words, vec![5]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SofiaMachine {
    regs: RegFile,
    mem: Memory,
    icache: ICache,
    config: SofiaConfig,
    keys: ExpandedKeys,
    nonce: Nonce,
    format: BlockFormat,
    text_base: u32,
    text_words: u32,
    entry: u32,
    next_target: u32,
    prev_pc: u32,
    redirected: bool,
    prev_load_dest: Option<Reg>,
    stats: SofiaStats,
    halted: bool,
    violations: Vec<Violation>,
}

impl SofiaMachine {
    /// Builds a machine with default configuration.
    pub fn new(image: &SecureImage, keys: &KeySet) -> SofiaMachine {
        Self::with_config(image, keys, &SofiaConfig::default())
    }

    /// Builds a machine, loading ciphertext into ROM and data into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn with_config(image: &SecureImage, keys: &KeySet, config: &SofiaConfig) -> SofiaMachine {
        assert!(
            image.data.len() as u32 <= config.machine.ram_size,
            "data section larger than RAM"
        );
        let mut mem = Memory::new(
            image.text_base,
            image.ctext.clone(),
            image.data_base,
            config.machine.ram_size,
        );
        mem.load_ram(image.data_base, &image.data);
        let mut regs = RegFile::new();
        regs.set(Reg::SP, image.data_base + config.machine.ram_size);
        SofiaMachine {
            regs,
            mem,
            icache: ICache::new(config.machine.icache),
            config: *config,
            keys: keys.expand(),
            nonce: image.nonce,
            format: image.format,
            text_base: image.text_base,
            text_words: image.ctext.len() as u32,
            entry: image.entry,
            next_target: image.entry,
            prev_pc: RESET_PREV_PC,
            redirected: true,
            prev_load_dest: None,
            stats: SofiaStats::default(),
            halted: false,
            violations: Vec::new(),
        }
    }

    /// Fetches, verifies and executes one block.
    ///
    /// Returns the number of instruction slots executed, or `Ok(0)` when
    /// a violation was absorbed by the reboot policy.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps (which, under SOFIA, can only occur
    /// in blocks that passed verification).
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted or stopped on a
    /// violation under [`ResetPolicy::HaltAndReport`].
    pub fn step_block(&mut self) -> Result<StepBlock, Trap> {
        assert!(!self.halted, "step_block() after halt");
        let mut rom_read = RomReader {
            mem: &self.mem,
        };
        let fetched = fetch_block(
            &mut |addr| rom_read.read(addr),
            &self.keys,
            self.nonce,
            &self.format,
            self.text_base,
            self.text_words,
            self.next_target,
            self.prev_pc,
            self.config.enforce_si,
        );
        let block = match fetched {
            Ok(b) => b,
            Err(v) => return Ok(self.on_violation(v)),
        };
        // Decode everything up front; check the store-position rule before
        // any architectural effect (the hardware's early-store reset).
        let mut decoded = Vec::with_capacity(block.insts.len());
        let first_word = self.format.mac_words(block.path.kind());
        for (idx, &(pc, word)) in block.insts.iter().enumerate() {
            let inst = Instruction::decode(word)
                .map_err(|e| Trap::IllegalInstruction { word: e.word(), pc })?;
            let word_pos = first_word + idx;
            if inst.is_store() && word_pos < self.format.store_safe_word_offset {
                return Ok(self.on_violation(Violation::StoreTooEarly { pc, word_pos }));
            }
            decoded.push((pc, inst, word_pos));
        }
        self.account_block(&block, &decoded);
        self.execute_block(&block, &decoded)
    }

    fn account_block(&mut self, block: &VerifiedBlock, decoded: &[(u32, Instruction, usize)]) {
        let kind = block.path.kind();
        let bt = self.config.timing.block_cycles(
            &self.format,
            kind,
            block.words_fetched,
            self.redirected,
        );
        self.stats.blocks += 1;
        match kind {
            BlockKind::Exec => self.stats.exec_blocks += 1,
            BlockKind::Mux => self.stats.mux_blocks += 1,
        }
        self.stats.mac_nop_slots += (block.words_fetched as usize - block.insts.len()) as u64;
        self.stats.ctr_ops += bt.ctr_ops as u64;
        self.stats.cbc_ops += bt.cbc_ops as u64;
        self.stats.cipher_stall_cycles += bt.cipher_stall as u64;
        self.stats.redirect_fill_cycles += bt.redirect_fill as u64;
        self.stats.exec.cycles += bt.total() as u64;
        // Store-gate stalls for stores the format allows in the stall
        // window (zero under the default format — the Fig. 6 argument).
        for &(_, inst, word_pos) in decoded {
            if inst.is_store() {
                let stall = self.config.timing.store_gate_stall(&self.format, word_pos) as u64;
                self.stats.store_gate_stall_cycles += stall;
                self.stats.exec.cycles += stall;
            }
        }
        // I-cache: ciphertext words are cached in front of the decrypt
        // unit (Fig. 1), so every fetched word touches the cache.
        for &addr in &block.fetched_addrs {
            let stall = self.icache.access_cycles(addr) as u64;
            self.stats.exec.icache_stall_cycles += stall;
            self.stats.exec.cycles += stall;
        }
    }

    fn execute_block(
        &mut self,
        block: &VerifiedBlock,
        decoded: &[(u32, Instruction, usize)],
    ) -> Result<StepBlock, Trap> {
        let last = decoded.len() - 1;
        let last_word_addr = block.last_word_addr(&self.format);
        let mut executed = 0u64;
        for (s, &(pc, inst, _)) in decoded.iter().enumerate() {
            let effect = execute(&inst, pc, &mut self.regs, &mut self.mem)?;
            executed += 1;
            let taken = inst.is_branch() && matches!(effect, Effect::Jump { .. });
            self.account_inst(&inst, taken);
            self.prev_load_dest = if inst.is_load() { inst.def_reg() } else { None };
            match effect {
                Effect::Next => {
                    if s == last {
                        self.next_target = block.base + self.format.block_bytes();
                        self.prev_pc = last_word_addr;
                        self.redirected = false;
                    }
                }
                Effect::Jump { target } => {
                    if s != last {
                        return Ok(self.on_violation(Violation::MidBlockTransfer { pc }));
                    }
                    self.next_target = target;
                    self.prev_pc = last_word_addr;
                    self.redirected = true;
                }
                Effect::Halt => {
                    self.halted = true;
                    self.stats.exec.cycles += self.config.machine.pipeline.drain_cycles as u64;
                    break;
                }
            }
        }
        Ok(StepBlock {
            executed_slots: executed,
            violation: None,
        })
    }

    fn account_inst(&mut self, inst: &Instruction, taken: bool) {
        let s = &mut self.stats.exec;
        s.instret += 1;
        // Issue slots were charged per fetched word; add only the hazard
        // penalties on top (the `-1` removes the base cycle).
        let hazard = self
            .config
            .machine
            .pipeline
            .instruction_cycles(inst, taken, self.prev_load_dest)
            - 1;
        s.cycles += hazard as u64;
        if inst.is_branch() {
            s.branches += 1;
            if taken {
                s.taken_branches += 1;
            }
        }
        if inst.is_load() {
            s.loads += 1;
        }
        if inst.is_store() {
            s.stores += 1;
        }
        if inst.is_call() {
            s.calls += 1;
        }
        if let Some(dest) = self.prev_load_dest {
            if inst.use_regs().contains(&dest) {
                s.load_use_stalls += 1;
            }
        }
    }

    fn on_violation(&mut self, v: Violation) -> StepBlock {
        self.stats.violations += 1;
        self.violations.push(v);
        match self.config.reset_policy {
            ResetPolicy::HaltAndReport => {
                self.halted = true;
            }
            ResetPolicy::Reboot { .. } => {
                self.reset();
            }
        }
        StepBlock {
            executed_slots: 0,
            violation: Some(v),
        }
    }

    /// Hardware reset: clear registers, flush the I-cache, restart from
    /// the entry point with the reset `prevPC`. RAM and MMIO logs persist
    /// (the paper's reboot restores a safe *control* state; memory is
    /// reinitialised by startup code, which our images re-run).
    fn reset(&mut self) {
        self.regs.clear();
        self.regs.set(
            Reg::SP,
            self.mem.ram_base() + self.mem.ram_size(),
        );
        self.icache.flush();
        self.prev_pc = RESET_PREV_PC;
        self.next_target = self.entry;
        self.redirected = true;
        self.prev_load_dest = None;
        self.stats.resets += 1;
        self.stats.exec.cycles += self.config.timing.reboot_cycles;
    }

    /// Runs until `halt`, a stopping violation, a trap, or `max_slots`
    /// executed instruction slots.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run(&mut self, max_slots: u64) -> Result<RunOutcome, Trap> {
        let mut fuel = max_slots;
        loop {
            if self.halted {
                return Ok(match self.violations.last() {
                    Some(&v) if matches!(self.config.reset_policy, ResetPolicy::HaltAndReport) => {
                        RunOutcome::ViolationStop(v)
                    }
                    _ => RunOutcome::Halted,
                });
            }
            if let ResetPolicy::Reboot { max_resets } = self.config.reset_policy {
                if self.stats.resets > max_resets as u64 {
                    return Ok(RunOutcome::ResetLoop {
                        resets: self.stats.resets as u32,
                    });
                }
            }
            if fuel == 0 {
                return Ok(RunOutcome::OutOfFuel);
            }
            let step = self.step_block()?;
            fuel = fuel.saturating_sub(step.executed_slots.max(1));
        }
    }

    /// Whether the machine reached `halt` (or stopped on a violation).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Memory (ROM ciphertext, RAM, MMIO logs).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory — the attack harness's tamper channel.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SofiaStats {
        self.stats
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> sofia_cpu::icache::ICacheStats {
        self.icache.stats()
    }

    /// Every violation detected so far (reboot policy accumulates them).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The next transfer target (diagnostic).
    pub fn next_target(&self) -> u32 {
        self.next_target
    }

    /// **Attack-harness channel**: redirects the next fetch to `target`,
    /// modelling a control-flow hijack the software could not prevent
    /// (fault injection on the PC, a glitched branch). The CFI mechanism
    /// must detect the foreign edge via the decryption counter, since the
    /// `prevPC` presented by the hardware no longer matches any sealed
    /// edge of the victim block.
    pub fn hijack_next_target(&mut self, target: u32) {
        self.next_target = target;
        self.redirected = true;
    }
}

/// Result of [`SofiaMachine::step_block`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepBlock {
    /// Instruction slots executed (0 when a violation fired).
    pub executed_slots: u64,
    /// The violation detected during this step, if any.
    pub violation: Option<Violation>,
}

struct RomReader<'a> {
    mem: &'a Memory,
}

impl RomReader<'_> {
    fn read(&mut self, addr: u32) -> Option<u32> {
        self.mem.fetch(addr).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_cpu::machine::VanillaMachine;
    use sofia_isa::asm;
    use sofia_transform::Transformer;

    fn build(src: &str) -> (SofiaMachine, sofia_transform::SecureImage, KeySet) {
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        let m = SofiaMachine::new(&image, &keys);
        (m, image, keys)
    }

    fn run_both(src: &str) -> (SofiaMachine, VanillaMachine) {
        let (mut sm, _, _) = build(src);
        assert!(sm.run(2_000_000).unwrap().is_halted());
        let plain = asm::assemble(src).unwrap();
        let mut vm = VanillaMachine::new(&plain);
        assert!(vm.run(2_000_000).unwrap().is_halted());
        (sm, vm)
    }

    #[test]
    fn loop_program_matches_vanilla_output() {
        let (sm, vm) = run_both(
            "main: li t0, 10
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![55]);
        assert_eq!(sm.mem().mmio.out_words, vm.mem().mmio.out_words);
    }

    #[test]
    fn calls_and_multi_caller_functions_work() {
        let (sm, vm) = run_both(
            "main: li a0, 3
                   jal square
                   mv s0, v0
                   li a0, 4
                   jal square
                   add s0, s0, v0
                   li a0, 0xFFFF0000
                   sw s0, 0(a0)
                   halt
             square: mul v0, a0, a0
                   ret",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![25]);
        assert_eq!(vm.mem().mmio.out_words, vec![25]);
    }

    #[test]
    fn many_callers_exercise_mux_trees() {
        let mut src = String::from("main: li s0, 0\n");
        for i in 0..6 {
            src.push_str(&format!("li a0, {i}\n jal bump\n"));
        }
        src.push_str(
            "li a0, 0xFFFF0000
             sw s0, 0(a0)
             halt
             bump: add s0, s0, a0
             addi s0, s0, 1
             ret",
        );
        let (mut sm, img, _) = build(&src);
        assert!(img.report.tree_blocks >= 4, "{:?}", img.report);
        assert!(sm.run(1_000_000).unwrap().is_halted());
        assert_eq!(sm.mem().mmio.out_words, vec![0 + 1 + 2 + 3 + 4 + 5 + 6]);
        assert!(sm.stats().mux_blocks > 0);
    }

    #[test]
    fn function_pointers_via_dispatch_ladder() {
        let (sm, vm) = run_both(
            ".data
             handlers: .word inc, dec
             .text
             main: la t0, handlers
                   lw t1, 4(t0)
                   li a0, 10
                   .indirect inc, dec
                   jalr t1
                   li t2, 0xFFFF0000
                   sw v0, 0(t2)
                   halt
             inc:  addi v0, a0, 1
                   ret
             dec:  subi v0, a0, 1
                   ret",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![9]);
        assert_eq!(vm.mem().mmio.out_words, vec![9]);
    }

    #[test]
    fn tampered_rom_is_detected_and_stops() {
        let (mut m, _, _) = build(
            "main: li t0, 1
             loop: addi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        // Flip a ciphertext bit in the second block.
        m.mem_mut().rom_mut()[9] ^= 1;
        let outcome = m.run(100_000).unwrap();
        assert!(matches!(
            outcome,
            RunOutcome::ViolationStop(Violation::MacMismatch { .. })
        ));
        assert_eq!(m.stats().violations, 1);
    }

    #[test]
    fn reboot_policy_enters_reset_loop_under_persistent_tamper() {
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse("main: nop\n halt").unwrap())
            .unwrap();
        let config = SofiaConfig {
            reset_policy: ResetPolicy::Reboot { max_resets: 5 },
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        m.mem_mut().rom_mut()[0] ^= 0xFFFF;
        let outcome = m.run(1_000_000).unwrap();
        assert!(matches!(outcome, RunOutcome::ResetLoop { resets: 6 }));
        assert_eq!(m.stats().resets, 6);
        // Reboot time was charged.
        assert!(m.stats().exec.cycles >= 6 * SofiaTiming::default().reboot_cycles);
    }

    #[test]
    fn sofia_costs_more_cycles_than_vanilla_but_not_wildly() {
        let (sm, vm) = run_both(
            "main: li t0, 200
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let s = sm.stats().exec.cycles as f64;
        let v = vm.stats().cycles as f64;
        assert!(s > v, "SOFIA {s} vs vanilla {v}");
        assert!(s / v < 4.0, "overhead factor {}", s / v);
    }

    #[test]
    fn stats_break_down_the_fetch_path() {
        let (sm, _) = run_both("main: nop\n nop\n halt");
        let st = sm.stats();
        assert_eq!(st.blocks, 1);
        assert_eq!(st.mac_nop_slots, 2);
        assert_eq!(st.ctr_ops, 4);
        assert_eq!(st.cbc_ops, 3);
        assert_eq!(st.exec.instret, 6); // 3 real + 3 pads
    }

    #[test]
    fn mid_block_transfer_is_a_violation() {
        // Craft an image where a branch sits mid-block by sealing a
        // hand-made "block" through the real transformer is impossible —
        // so instead check the detector directly through a forged image:
        // take a valid image and swap two *plaintext-equivalent* blocks is
        // caught by MAC already. Here we assert the API surface instead:
        // verified blocks from the transformer never trip the check.
        let (mut m, _, _) = build(
            "main: li t0, 3
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let outcome = m.run(1_000_000).unwrap();
        assert!(outcome.is_halted());
        assert!(m.violations().is_empty());
    }

    #[test]
    fn sp_reinitialised_on_reset() {
        let keys = KeySet::from_seed(1);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse("main: subi sp, sp, 4\n halt").unwrap())
            .unwrap();
        let config = SofiaConfig {
            reset_policy: ResetPolicy::Reboot { max_resets: 2 },
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        let sp0 = m.regs().get(Reg::SP);
        m.mem_mut().rom_mut()[2] ^= 4; // force one violation
        let _ = m.run(1000).unwrap();
        assert!(m.stats().resets >= 1);
        // After the final reset the stack pointer is back at the top.
        assert!(m.regs().get(Reg::SP) == sp0 || m.is_halted());
    }
}
