//! The SOFIA machine: the shared pipeline engine behind the CFI/SI fetch
//! unit.

use sofia_cpu::engine::{Disposition, EngineOutcome, Pipeline};
use sofia_cpu::exec::RegFile;
use sofia_cpu::machine::MachineConfig;
use sofia_cpu::mem::Memory;
use sofia_cpu::{ExecStats, Trap};
use sofia_crypto::KeySet;
use sofia_transform::SecureImage;

use crate::fetch::SofiaFetchUnit;
use crate::timing::SofiaTiming;
use crate::vcache::{VCacheConfig, VCacheStats};
use crate::Violation;

/// What the core does when a violation pulls the reset line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResetPolicy {
    /// Stop the simulation and report the violation (default — most
    /// experiments want the detection verdict).
    #[default]
    HaltAndReport,
    /// Reset and reboot from the entry point, as the real hardware does
    /// ("the processor should be able to reboot reliably fast"), giving
    /// up after `max_resets` to break persistent-tamper reset loops.
    Reboot {
        /// Resets tolerated before the run is abandoned.
        max_resets: u32,
    },
}

impl ResetPolicy {
    /// What this policy does about a violation after `resets_so_far`
    /// resets — the single dispatch [`SofiaMachine::step_block`],
    /// [`SofiaMachine::run`] and the alternative-backend machines
    /// (`sofia-backends`) all apply.
    pub fn dispose(self, resets_so_far: u64) -> Disposition {
        match self {
            ResetPolicy::HaltAndReport => Disposition::Stop,
            ResetPolicy::Reboot { max_resets } if resets_so_far >= max_resets as u64 => {
                Disposition::Abandon
            }
            ResetPolicy::Reboot { .. } => Disposition::Reset,
        }
    }
}

/// Full configuration of a SOFIA machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SofiaConfig {
    /// Baseline machine parameters (RAM, I-cache, pipeline penalties).
    pub machine: MachineConfig,
    /// SOFIA fetch-path timing (cipher schedule, latencies).
    pub timing: SofiaTiming,
    /// Reset-line behaviour.
    pub reset_policy: ResetPolicy,
    /// Whether the SI unit's MAC comparison is enforced. Disabling it
    /// yields a **CFI-only** machine — the ablation the paper argues
    /// against in §II-A: decryption alone cannot detect its own errors,
    /// so CTR malleability lets an attacker flip chosen instruction bits.
    /// For experiments only.
    pub enforce_si: bool,
    /// The verified-block cache (see [`crate::vcache`]). Disabled by
    /// default, which preserves the uncached machine bit-for-bit.
    pub vcache: VCacheConfig,
}

impl Default for SofiaConfig {
    fn default() -> Self {
        SofiaConfig {
            machine: MachineConfig::default(),
            timing: SofiaTiming::default(),
            reset_policy: ResetPolicy::default(),
            enforce_si: true,
            vcache: VCacheConfig::default(),
        }
    }
}

/// Why a [`SofiaMachine::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt` normally.
    Halted,
    /// The step budget ran out.
    OutOfFuel,
    /// A violation was detected (policy [`ResetPolicy::HaltAndReport`]).
    ViolationStop(Violation),
    /// Persistent tampering kept resetting the core
    /// (policy [`ResetPolicy::Reboot`]).
    ResetLoop {
        /// Resets performed before giving up.
        resets: u32,
    },
}

impl RunOutcome {
    /// Whether the program reached `halt` untampered.
    pub fn is_halted(&self) -> bool {
        matches!(self, RunOutcome::Halted)
    }

    /// The violation that stopped the run, if any.
    pub fn violation(&self) -> Option<Violation> {
        match self {
            RunOutcome::ViolationStop(v) => Some(*v),
            _ => None,
        }
    }
}

/// Statistics specific to the SOFIA fetch path, on top of the baseline
/// [`ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SofiaStats {
    /// Baseline counters (cycles, retired instructions, hazards, …).
    /// `instret` counts every executed slot, including padding `nop`s.
    pub exec: ExecStats,
    /// Blocks fetched and verified.
    pub blocks: u64,
    /// Execution blocks among them.
    pub exec_blocks: u64,
    /// Multiplexor blocks among them.
    pub mux_blocks: u64,
    /// MAC words that travelled the pipeline as `nop` slots.
    pub mac_nop_slots: u64,
    /// CTR operations issued by the cipher.
    pub ctr_ops: u64,
    /// CBC-MAC operations issued by the cipher.
    pub cbc_ops: u64,
    /// Stall cycles from cipher backpressure.
    pub cipher_stall_cycles: u64,
    /// Decrypt-pipeline refill cycles after redirects.
    pub redirect_fill_cycles: u64,
    /// Stall cycles inserted by the store gate.
    pub store_gate_stall_cycles: u64,
    /// Verified-block cache hits (fetches that skipped decrypt + MAC).
    pub vcache_hits: u64,
    /// Verified-block cache misses while the cache was enabled.
    pub vcache_misses: u64,
    /// Verified lines evicted from the cache.
    pub vcache_evictions: u64,
    /// Fetch-path cycles the verified-block cache saved on hits.
    pub crypto_cycles_saved: u64,
    /// Violations detected.
    pub violations: u64,
    /// Resets performed (reboot policy).
    pub resets: u64,
}

impl SofiaStats {
    /// Accumulates another run's counters into this one (every field is
    /// additive) — e.g. a device's work across a reboot-retry pair, or a
    /// fleet tenant's across jobs.
    pub fn merge(&mut self, other: &SofiaStats) {
        self.exec.merge(&other.exec);
        self.blocks += other.blocks;
        self.exec_blocks += other.exec_blocks;
        self.mux_blocks += other.mux_blocks;
        self.mac_nop_slots += other.mac_nop_slots;
        self.ctr_ops += other.ctr_ops;
        self.cbc_ops += other.cbc_ops;
        self.cipher_stall_cycles += other.cipher_stall_cycles;
        self.redirect_fill_cycles += other.redirect_fill_cycles;
        self.store_gate_stall_cycles += other.store_gate_stall_cycles;
        self.vcache_hits += other.vcache_hits;
        self.vcache_misses += other.vcache_misses;
        self.vcache_evictions += other.vcache_evictions;
        self.crypto_cycles_saved += other.crypto_cycles_saved;
        self.violations += other.violations;
        self.resets += other.resets;
    }
}

/// A processor with the SOFIA extension, executing a [`SecureImage`].
///
/// The same generic [`Pipeline`] engine as the baseline
/// [`sofia_cpu::machine::VanillaMachine`], wrapped around a
/// [`SofiaFetchUnit`] instead of plaintext fetch — which is exactly the
/// paper's structure (Fig. 1) and what makes vanilla-vs-SOFIA
/// comparisons meaningful: same engine, different fetch unit.
///
/// # Examples
///
/// ```
/// use sofia_core::machine::SofiaMachine;
/// use sofia_crypto::KeySet;
/// use sofia_isa::asm;
/// use sofia_transform::Transformer;
///
/// let keys = KeySet::from_seed(3);
/// let module = asm::parse(
///     "main: li t0, 5
///            li a0, 0xFFFF0000
///            sw t0, 0(a0)
///            halt",
/// )?;
/// let image = Transformer::new(keys.clone()).transform(&module)?;
/// let mut m = SofiaMachine::new(&image, &keys);
/// assert!(m.run(10_000)?.is_halted());
/// assert_eq!(m.mem().mmio.out_words, vec![5]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SofiaMachine {
    engine: Pipeline<SofiaFetchUnit>,
    reset_policy: ResetPolicy,
    violations: Vec<Violation>,
}

// Compile-time guarantee: SOFIA machines move onto fleet worker threads.
// An `Rc`/`RefCell` regression anywhere in the machine (engine, fetch
// unit, vcache) breaks the build here, not the fleet at runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SofiaMachine>();
};

/// Snapshot of the fetch unit's edge registers — the `{prevPC, PC}` pair
/// that seals the next fetch. This is the whole resume point of a
/// suspended job: together with the (self-contained) machine state it
/// pins where in the CFG the core will continue, so a scheduler can park
/// a job between blocks and later prove the edge was not perturbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResumeEdge {
    /// The sealed-edge source the hardware will present for the next
    /// fetch.
    pub prev_pc: u32,
    /// The transfer target the next fetch will verify against that
    /// source.
    pub next_target: u32,
}

/// Why a [`SofiaMachine::run_slice`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The job finished: halt, stopping violation, or reset-loop
    /// abandon. Never [`RunOutcome::OutOfFuel`] — an expired slice
    /// always surfaces as [`SliceOutcome::Preempted`], because the slice
    /// cannot distinguish its own bound from the job's overall budget.
    /// Budget exhaustion is the caller's bookkeeping: a job whose
    /// remaining fuel reaches zero while preempted is out of fuel.
    Done(RunOutcome),
    /// The slice budget ran out with the job still runnable: the machine
    /// is suspended between blocks, resumable by the next `run_slice`.
    Preempted,
}

/// Result of one [`SofiaMachine::run_slice`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceRun {
    /// How the slice ended.
    pub outcome: SliceOutcome,
    /// Fuel actually consumed, which can overshoot the slice: blocks are
    /// atomic. Deduct exactly this from the job's remaining budget — that
    /// is what makes slicing bit-identical to a single run (see
    /// [`sofia_cpu::engine::Pipeline::run_metered`]).
    pub consumed: u64,
}

impl SofiaMachine {
    /// Builds a machine with default configuration.
    pub fn new(image: &SecureImage, keys: &KeySet) -> SofiaMachine {
        Self::with_config(image, keys, &SofiaConfig::default())
    }

    /// Builds a machine, loading ciphertext into ROM and data into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the data section does not fit in RAM.
    pub fn with_config(image: &SecureImage, keys: &KeySet, config: &SofiaConfig) -> SofiaMachine {
        let unit = SofiaFetchUnit::with_vcache(
            image,
            keys,
            config.timing,
            config.enforce_si,
            config.vcache,
        );
        SofiaMachine {
            engine: Pipeline::new(
                unit,
                image.text_base,
                image.ctext.clone(),
                image.data_base,
                &image.data,
                &config.machine,
            ),
            reset_policy: config.reset_policy,
            violations: Vec::new(),
        }
    }

    /// Fetches, verifies and executes one block.
    ///
    /// Returns the number of instruction slots executed, or `Ok(0)` when
    /// a violation was absorbed by the reboot policy.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps (which, under SOFIA, can only occur
    /// in blocks that passed verification).
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted or stopped on a
    /// violation under [`ResetPolicy::HaltAndReport`].
    pub fn step_block(&mut self) -> Result<StepBlock, Trap> {
        let step = self.engine.step_batch()?;
        if let Some(v) = step.violation {
            self.violations.push(v);
            match self.reset_policy.dispose(self.engine.resets()) {
                Disposition::Stop => self.engine.force_halt(),
                Disposition::Reset => self.engine.reset(),
                // The reset budget is spent: halt so step-driven harness
                // loops terminate too (run() reports this as ResetLoop).
                Disposition::Abandon => self.engine.force_halt(),
            }
            return Ok(StepBlock {
                executed_slots: 0,
                violation: Some(v),
            });
        }
        Ok(StepBlock {
            executed_slots: step.executed_slots,
            violation: None,
        })
    }

    /// Runs until `halt`, a stopping violation, a trap, or `max_slots`
    /// executed instruction slots — the generic engine's run loop with
    /// this machine's [`ResetPolicy`] deciding each violation's fate.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run(&mut self, max_slots: u64) -> Result<RunOutcome, Trap> {
        let (outcome, _) = self.run_engine(max_slots)?;
        Ok(outcome)
    }

    /// Runs for one scheduler slice of at most `slice` instruction slots,
    /// suspending between blocks when the slice expires — the preemption
    /// seam a fuel-sliced scheduler multiplexes many jobs through.
    ///
    /// The machine is fully self-contained across suspensions (the fetch
    /// unit's edge registers — see [`SofiaMachine::edge`] — carry the
    /// sealed resume point), and the reported consumption is exact, so a
    /// sequence of slices replays the identical batch sequence as one
    /// [`SofiaMachine::run`] with the summed budget: same results, traps
    /// and violation reports, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates architectural traps.
    pub fn run_slice(&mut self, slice: u64) -> Result<SliceRun, Trap> {
        let (outcome, consumed) = self.run_engine(slice)?;
        Ok(SliceRun {
            outcome: match outcome {
                RunOutcome::OutOfFuel => SliceOutcome::Preempted,
                done => SliceOutcome::Done(done),
            },
            consumed,
        })
    }

    fn run_engine(&mut self, max_slots: u64) -> Result<(RunOutcome, u64), Trap> {
        let policy = self.reset_policy;
        let violations = &mut self.violations;
        let (outcome, consumed) = self.engine.run_metered(max_slots, |v, resets_so_far| {
            violations.push(v);
            policy.dispose(resets_so_far)
        })?;
        let outcome = match outcome {
            EngineOutcome::Halted => match self.violations.last() {
                Some(&v) if matches!(self.reset_policy, ResetPolicy::HaltAndReport) => {
                    RunOutcome::ViolationStop(v)
                }
                _ => RunOutcome::Halted,
            },
            EngineOutcome::OutOfFuel => RunOutcome::OutOfFuel,
            EngineOutcome::Stopped(v) => RunOutcome::ViolationStop(v),
            EngineOutcome::ResetLoop { resets } => RunOutcome::ResetLoop { resets },
        };
        Ok((outcome, consumed))
    }

    /// The full configuration this machine runs under, reconstructed
    /// from its parts — what a snapshot embeds so a restored machine is
    /// rebuilt under the *identical* timing model, reset policy and
    /// cache geometry (any drift would break bit-for-bit resume).
    pub fn config(&self) -> SofiaConfig {
        SofiaConfig {
            machine: MachineConfig {
                ram_size: self.engine.mem().ram_size(),
                icache: self.engine.icache_config(),
                pipeline: self.engine.model(),
            },
            timing: self.engine.fetch().timing(),
            reset_policy: self.reset_policy,
            enforce_si: self.engine.fetch().enforce_si(),
            vcache: self.engine.fetch().vcache_ref().config(),
        }
    }

    /// Serialisable image of this machine's complete suspended state —
    /// see [`crate::snapshot`] for what it carries (and deliberately
    /// does not). `fuel_remaining` is the job-level budget the caller
    /// still owes this machine; the machine itself does not track it.
    ///
    /// Meaningful whenever the caller holds the machine (between
    /// blocks); typically taken at a [`SliceOutcome::Preempted`] point.
    pub fn snapshot(&self, fuel_remaining: u64) -> crate::snapshot::MachineSnapshot {
        crate::snapshot::capture(self, fuel_remaining)
    }

    /// Rebuilds a suspended machine from its sealed `image`, device
    /// `keys` and a [`crate::snapshot::MachineSnapshot`], resuming
    /// mid-program: the fetch unit is reconstructed around the
    /// snapshot's [`ResumeEdge`], the verified-block cache re-earns
    /// every line against the image's MACs, and the next
    /// [`SofiaMachine::run`]/[`SofiaMachine::run_slice`] continues
    /// bit-for-bit where the snapshot left off.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::RestoreError`] when the snapshot and image
    /// disagree (data section too large, cached edge fails
    /// re-verification, invalid cache placement).
    pub fn restore(
        image: &SecureImage,
        keys: &KeySet,
        snapshot: &crate::snapshot::MachineSnapshot,
    ) -> Result<SofiaMachine, crate::snapshot::RestoreError> {
        crate::snapshot::rebuild(image, keys, snapshot)
    }

    /// The engine, for the snapshot module (same crate).
    pub(crate) fn engine(&self) -> &Pipeline<SofiaFetchUnit> {
        &self.engine
    }

    /// Mutable engine access, for the snapshot module (same crate).
    pub(crate) fn engine_mut(&mut self) -> &mut Pipeline<SofiaFetchUnit> {
        &mut self.engine
    }

    /// Replaces the violation log wholesale (snapshot restore).
    pub(crate) fn set_violations(&mut self, violations: Vec<Violation>) {
        self.violations = violations;
    }

    /// The fetch unit's edge registers — the sealed resume point of a
    /// suspended job (see [`ResumeEdge`]). Stable across a
    /// suspend/resume cycle by construction: preemption happens only
    /// between blocks, and nothing but retirement writes the registers.
    pub fn edge(&self) -> ResumeEdge {
        ResumeEdge {
            prev_pc: self.engine.fetch().prev_pc(),
            next_target: self.engine.fetch().next_target(),
        }
    }

    /// Whether the machine reached `halt` (or stopped on a violation).
    pub fn is_halted(&self) -> bool {
        self.engine.is_halted()
    }

    /// The architectural registers.
    pub fn regs(&self) -> &RegFile {
        self.engine.regs()
    }

    /// Memory (ROM ciphertext, RAM, MMIO logs).
    pub fn mem(&self) -> &Memory {
        self.engine.mem()
    }

    /// Mutable memory — the attack harness's tamper channel.
    pub fn mem_mut(&mut self) -> &mut Memory {
        self.engine.mem_mut()
    }

    /// Accumulated statistics, combining the engine's baseline counters
    /// with the fetch unit's security-path counters.
    pub fn stats(&self) -> SofiaStats {
        let f = self.engine.fetch().stats();
        SofiaStats {
            exec: self.engine.stats(),
            blocks: f.blocks,
            exec_blocks: f.exec_blocks,
            mux_blocks: f.mux_blocks,
            mac_nop_slots: f.mac_nop_slots,
            ctr_ops: f.ctr_ops,
            cbc_ops: f.cbc_ops,
            cipher_stall_cycles: f.cipher_stall_cycles,
            redirect_fill_cycles: f.redirect_fill_cycles,
            store_gate_stall_cycles: f.store_gate_stall_cycles,
            vcache_hits: f.vcache_hits,
            vcache_misses: f.vcache_misses,
            vcache_evictions: f.vcache_evictions,
            crypto_cycles_saved: f.crypto_cycles_saved,
            violations: self.violations.len() as u64,
            resets: self.engine.resets(),
        }
    }

    /// Raw verified-block cache counters (insertions, flushes, …).
    pub fn vcache_stats(&self) -> VCacheStats {
        self.engine.fetch().vcache_stats()
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> sofia_cpu::icache::ICacheStats {
        self.engine.icache_stats()
    }

    /// Every violation detected so far (reboot policy accumulates them).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The next transfer target (diagnostic).
    pub fn next_target(&self) -> u32 {
        self.engine.fetch().next_target()
    }

    /// The `prevPC` the hardware will present for the next fetch — the
    /// sealed-edge source (diagnostic; lets harnesses re-verify an edge
    /// out-of-band with [`crate::fetch::fetch_block`]).
    pub fn prev_pc(&self) -> u32 {
        self.engine.fetch().prev_pc()
    }

    /// **Attack-harness channel**: redirects the next fetch to `target`,
    /// modelling a control-flow hijack the software could not prevent
    /// (fault injection on the PC, a glitched branch). The CFI mechanism
    /// must detect the foreign edge via the decryption counter, since the
    /// `prevPC` presented by the hardware no longer matches any sealed
    /// edge of the victim block.
    pub fn hijack_next_target(&mut self, target: u32) {
        self.engine.fetch_mut().hijack(target);
    }
}

/// Result of [`SofiaMachine::step_block`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepBlock {
    /// Instruction slots executed (0 when a violation fired).
    pub executed_slots: u64,
    /// The violation detected during this step, if any.
    pub violation: Option<Violation>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcache::VCacheConfig;
    use sofia_cpu::machine::VanillaMachine;
    use sofia_isa::{asm, Reg};
    use sofia_transform::Transformer;

    fn build(src: &str) -> (SofiaMachine, sofia_transform::SecureImage, KeySet) {
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        let m = SofiaMachine::new(&image, &keys);
        (m, image, keys)
    }

    fn run_both(src: &str) -> (SofiaMachine, VanillaMachine) {
        let (mut sm, _, _) = build(src);
        assert!(sm.run(2_000_000).unwrap().is_halted());
        let plain = asm::assemble(src).unwrap();
        let mut vm = VanillaMachine::new(&plain);
        assert!(vm.run(2_000_000).unwrap().is_halted());
        (sm, vm)
    }

    #[test]
    fn loop_program_matches_vanilla_output() {
        let (sm, vm) = run_both(
            "main: li t0, 10
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![55]);
        assert_eq!(sm.mem().mmio.out_words, vm.mem().mmio.out_words);
    }

    #[test]
    fn calls_and_multi_caller_functions_work() {
        let (sm, vm) = run_both(
            "main: li a0, 3
                   jal square
                   mv s0, v0
                   li a0, 4
                   jal square
                   add s0, s0, v0
                   li a0, 0xFFFF0000
                   sw s0, 0(a0)
                   halt
             square: mul v0, a0, a0
                   ret",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![25]);
        assert_eq!(vm.mem().mmio.out_words, vec![25]);
    }

    #[test]
    fn many_callers_exercise_mux_trees() {
        let mut src = String::from("main: li s0, 0\n");
        for i in 0..6 {
            src.push_str(&format!("li a0, {i}\n jal bump\n"));
        }
        src.push_str(
            "li a0, 0xFFFF0000
             sw s0, 0(a0)
             halt
             bump: add s0, s0, a0
             addi s0, s0, 1
             ret",
        );
        let (mut sm, img, _) = build(&src);
        assert!(img.report.tree_blocks >= 4, "{:?}", img.report);
        assert!(sm.run(1_000_000).unwrap().is_halted());
        // Arguments 0..=5 plus one increment per call: 15 + 6.
        assert_eq!(sm.mem().mmio.out_words, vec![21]);
        assert!(sm.stats().mux_blocks > 0);
    }

    #[test]
    fn function_pointers_via_dispatch_ladder() {
        let (sm, vm) = run_both(
            ".data
             handlers: .word inc, dec
             .text
             main: la t0, handlers
                   lw t1, 4(t0)
                   li a0, 10
                   .indirect inc, dec
                   jalr t1
                   li t2, 0xFFFF0000
                   sw v0, 0(t2)
                   halt
             inc:  addi v0, a0, 1
                   ret
             dec:  subi v0, a0, 1
                   ret",
        );
        assert_eq!(sm.mem().mmio.out_words, vec![9]);
        assert_eq!(vm.mem().mmio.out_words, vec![9]);
    }

    #[test]
    fn tampered_rom_is_detected_and_stops() {
        let (mut m, _, _) = build(
            "main: li t0, 1
             loop: addi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        // Flip a ciphertext bit in the second block.
        m.mem_mut().rom_mut()[9] ^= 1;
        let outcome = m.run(100_000).unwrap();
        assert!(matches!(
            outcome,
            RunOutcome::ViolationStop(Violation::MacMismatch { .. })
        ));
        assert_eq!(m.stats().violations, 1);
    }

    #[test]
    fn reboot_policy_enters_reset_loop_under_persistent_tamper() {
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse("main: nop\n halt").unwrap())
            .unwrap();
        let config = SofiaConfig {
            reset_policy: ResetPolicy::Reboot { max_resets: 5 },
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        m.mem_mut().rom_mut()[0] ^= 0xFFFF;
        let outcome = m.run(1_000_000).unwrap();
        // Exactly `max_resets` reboots are attempted; the next violation
        // abandons the run instead of spinning forever.
        assert!(matches!(outcome, RunOutcome::ResetLoop { resets: 5 }));
        assert_eq!(m.stats().resets, 5);
        assert_eq!(m.stats().violations, 6);
        // Reboot time was charged for every reset performed.
        assert!(m.stats().exec.cycles >= 5 * SofiaTiming::default().reboot_cycles);
    }

    #[test]
    fn step_block_honours_the_reset_budget() {
        // A step-driven harness loop must terminate under persistent
        // tamper too: once the reboot budget is spent, step_block halts
        // the machine instead of resetting forever.
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse("main: nop\n halt").unwrap())
            .unwrap();
        let config = SofiaConfig {
            reset_policy: ResetPolicy::Reboot { max_resets: 2 },
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        m.mem_mut().rom_mut()[0] ^= 0xFFFF;
        let mut steps = 0;
        while !m.is_halted() {
            let _ = m.step_block().unwrap();
            steps += 1;
            assert!(steps < 100, "step loop failed to terminate");
        }
        assert_eq!(m.stats().resets, 2);
        assert_eq!(m.stats().violations, 3);
    }

    #[test]
    fn sofia_costs_more_cycles_than_vanilla_but_not_wildly() {
        let (sm, vm) = run_both(
            "main: li t0, 200
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let s = sm.stats().exec.cycles as f64;
        let v = vm.stats().cycles as f64;
        assert!(s > v, "SOFIA {s} vs vanilla {v}");
        assert!(s / v < 4.0, "overhead factor {}", s / v);
    }

    #[test]
    fn stats_break_down_the_fetch_path() {
        let (sm, _) = run_both("main: nop\n nop\n halt");
        let st = sm.stats();
        assert_eq!(st.blocks, 1);
        assert_eq!(st.mac_nop_slots, 2);
        assert_eq!(st.ctr_ops, 4);
        assert_eq!(st.cbc_ops, 3);
        assert_eq!(st.exec.instret, 6); // 3 real + 3 pads
    }

    #[test]
    fn mid_block_transfer_is_a_violation() {
        // Craft an image where a branch sits mid-block by sealing a
        // hand-made "block" through the real transformer is impossible —
        // so instead check the detector directly through a forged image:
        // take a valid image and swap two *plaintext-equivalent* blocks is
        // caught by MAC already. Here we assert the API surface instead:
        // verified blocks from the transformer never trip the check.
        let (mut m, _, _) = build(
            "main: li t0, 3
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let outcome = m.run(1_000_000).unwrap();
        assert!(outcome.is_halted());
        assert!(m.violations().is_empty());
    }

    #[test]
    fn sp_reinitialised_on_reset() {
        let keys = KeySet::from_seed(1);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse("main: subi sp, sp, 4\n halt").unwrap())
            .unwrap();
        let config = SofiaConfig {
            reset_policy: ResetPolicy::Reboot { max_resets: 2 },
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        let sp0 = m.regs().get(Reg::SP);
        m.mem_mut().rom_mut()[2] ^= 4; // force one violation
        let _ = m.run(1000).unwrap();
        assert!(m.stats().resets >= 1);
        // After the final reset the stack pointer is back at the top.
        assert!(m.regs().get(Reg::SP) == sp0 || m.is_halted());
    }

    #[test]
    fn vcache_is_invisible_but_cheaper_on_hot_loops() {
        let src = "main: li t0, 50
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt";
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        let mut off = SofiaMachine::new(&image, &keys);
        assert!(off.run(1_000_000).unwrap().is_halted());
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(64, 4),
            ..Default::default()
        };
        let mut on = SofiaMachine::with_config(&image, &keys, &config);
        assert!(on.run(1_000_000).unwrap().is_halted());
        // Architecturally identical…
        assert_eq!(on.mem().mmio.out_words, off.mem().mmio.out_words);
        assert_eq!(on.stats().exec.instret, off.stats().exec.instret);
        assert!(on.violations().is_empty());
        // …but the hot edge stopped paying decrypt + MAC.
        let s = on.stats();
        assert!(s.vcache_hits > 40, "hits {}", s.vcache_hits);
        assert!(s.crypto_cycles_saved > 0);
        assert!(
            s.exec.cycles < off.stats().exec.cycles,
            "cached {} vs uncached {}",
            s.exec.cycles,
            off.stats().exec.cycles
        );
    }

    #[test]
    fn explicitly_disabled_vcache_is_bit_for_bit_todays_machine() {
        let (mut a, image, keys) = build(
            "main: li t0, 9
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        assert!(a.run(100_000).unwrap().is_halted());
        let config = SofiaConfig {
            vcache: VCacheConfig {
                enabled: false,
                ..VCacheConfig::enabled(64, 4)
            },
            ..Default::default()
        };
        let mut b = SofiaMachine::with_config(&image, &keys, &config);
        assert!(b.run(100_000).unwrap().is_halted());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.icache_stats(), b.icache_stats());
    }

    /// Regression (cycle-accounting pin): a vcache hit charges exactly
    /// `slots + hit_latency` in fetch — it must NOT also walk the
    /// ciphertext I-cache, whose hit/miss counters and stall cycles
    /// belong to real ciphertext reads only.
    #[test]
    fn vcache_hit_bypasses_ciphertext_icache_accounting() {
        let keys = KeySet::from_seed(0xACE);
        let image = Transformer::new(keys.clone())
            .transform(
                &asm::parse(
                    "main: li t0, 6
                     loop: subi t0, t0, 1
                           bnez t0, loop
                           halt",
                )
                .unwrap(),
            )
            .unwrap();
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(16, 4),
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        let mut pinned = false;
        while !m.is_halted() {
            let hits0 = m.stats().vcache_hits;
            let ic0 = m.icache_stats();
            let cycles0 = m.stats().exec.cycles;
            let target0 = m.next_target();
            let step = m.step_block().unwrap();
            let s = m.stats();
            if s.vcache_hits == hits0 {
                continue;
            }
            // This block came from the verified-block cache.
            assert_eq!(
                m.icache_stats(),
                ic0,
                "a vcache hit must not touch the ciphertext I-cache"
            );
            if !pinned && m.next_target() == target0 {
                // Steady loop iteration (the block branched back to its
                // own entry): its slots issue at one cycle each (hit
                // latency 0: the tag compare overlaps the first slot),
                // plus the taken-branch flush (3) charged by the engine.
                // Nothing else — in particular no cipher stall, no
                // redirect refill and no I-cache stall.
                assert_eq!(
                    s.exec.cycles - cycles0,
                    step.executed_slots + 3,
                    "vcache hit cycle accounting drifted"
                );
                pinned = true;
            }
        }
        assert!(pinned, "no steady cached loop iteration observed");
    }

    #[test]
    fn vcache_hit_latency_knob_charges_exactly_per_hit() {
        let (_, image, keys) = build(
            "main: li t0, 30
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let run = |hit_latency: u32| {
            let config = SofiaConfig {
                vcache: VCacheConfig {
                    hit_latency,
                    ..VCacheConfig::enabled(16, 4)
                },
                ..Default::default()
            };
            let mut m = SofiaMachine::with_config(&image, &keys, &config);
            assert!(m.run(100_000).unwrap().is_halted());
            m.stats()
        };
        let fast = run(0);
        let slow = run(2);
        assert_eq!(fast.vcache_hits, slow.vcache_hits);
        assert!(fast.vcache_hits > 0);
        assert_eq!(
            slow.exec.cycles - fast.exec.cycles,
            2 * fast.vcache_hits,
            "hit latency must be charged once per hit, exactly"
        );
    }

    /// The suspend/resume invariant behind fuel-sliced scheduling: any
    /// slicing of the budget replays the identical run — same outputs,
    /// same stats, same total consumption — because consumption is
    /// metered exactly and preemption only happens between blocks.
    #[test]
    fn sliced_run_is_bit_identical_to_one_shot_run() {
        let src = "main: li t0, 37
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt";
        let (mut whole, image, keys) = build(src);
        assert!(whole.run(2_000_000).unwrap().is_halted());
        for slice in [1u64, 3, 7, 64, 1000] {
            let mut sliced = SofiaMachine::new(&image, &keys);
            let mut slices = 0u32;
            loop {
                let s = sliced.run_slice(slice).unwrap();
                slices += 1;
                assert!(s.consumed >= 1.min(slice));
                match s.outcome {
                    SliceOutcome::Done(o) => {
                        assert!(o.is_halted(), "slice {slice}: {o:?}");
                        break;
                    }
                    SliceOutcome::Preempted => {
                        // The parked resume point is a sealed CFG edge:
                        // the target the next slice will verify against
                        // prev_pc lies inside the image.
                        let parked = sliced.edge();
                        assert!(parked.next_target >= image.text_base);
                        assert_eq!(sliced.edge(), parked, "reading the edge is inert");
                    }
                }
                assert!(slices < 100_000, "slice {slice} failed to finish");
            }
            assert_eq!(sliced.mem().mmio.out_words, whole.mem().mmio.out_words);
            assert_eq!(sliced.stats(), whole.stats(), "slice {slice}");
            assert_eq!(sliced.icache_stats(), whole.icache_stats());
        }
    }

    /// Exact budget accounting: slices that sum to the one-shot budget
    /// run out of fuel at the same batch boundary with identical state.
    #[test]
    fn sliced_out_of_fuel_matches_one_shot_out_of_fuel() {
        let src = "main: li t0, 100000
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt";
        let budget = 997u64; // not a multiple of anything block-shaped
        let (mut whole, image, keys) = build(src);
        assert_eq!(whole.run(budget).unwrap(), RunOutcome::OutOfFuel);
        for slice in [1u64, 5, 100] {
            let mut sliced = SofiaMachine::new(&image, &keys);
            let mut remaining = budget;
            let outcome = loop {
                let s = sliced.run_slice(slice.min(remaining)).unwrap();
                remaining = remaining.saturating_sub(s.consumed);
                match s.outcome {
                    SliceOutcome::Done(o) => break o,
                    SliceOutcome::Preempted if remaining == 0 => break RunOutcome::OutOfFuel,
                    SliceOutcome::Preempted => {}
                }
            };
            assert_eq!(outcome, RunOutcome::OutOfFuel);
            assert_eq!(sliced.stats(), whole.stats(), "slice {slice}");
            assert_eq!(sliced.regs().get(Reg::T0), whole.regs().get(Reg::T0));
            assert_eq!(sliced.edge(), whole.edge());
        }
    }

    #[test]
    fn run_slice_surfaces_violations_like_run() {
        let (mut a, image, keys) = build("main: nop\n halt");
        let mut b = SofiaMachine::new(&image, &keys);
        a.mem_mut().rom_mut()[1] ^= 2;
        b.mem_mut().rom_mut()[1] ^= 2;
        let whole = a.run(10_000).unwrap();
        let slice = b.run_slice(10_000).unwrap();
        assert!(matches!(whole, RunOutcome::ViolationStop(_)));
        assert_eq!(slice.outcome, SliceOutcome::Done(whole));
        assert_eq!(a.violations(), b.violations());
    }

    #[test]
    fn cfi_only_ablation_runs_honest_programs() {
        // The enforce_si = false seam must keep working through the
        // generic engine: the CFI-only machine executes honest programs
        // identically, it just cannot detect tampering via the MAC.
        let keys = KeySet::from_seed(0xB0B);
        let image = Transformer::new(keys.clone())
            .transform(
                &asm::parse(
                    "main: li t0, 7
                           li a0, 0xFFFF0000
                           sw t0, 0(a0)
                           halt",
                )
                .unwrap(),
            )
            .unwrap();
        let config = SofiaConfig {
            enforce_si: false,
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        assert!(m.run(10_000).unwrap().is_halted());
        assert_eq!(m.mem().mmio.out_words, vec![7]);
        // A flipped ciphertext bit is *not* caught by the absent MAC
        // check: the CTR-decrypted garbage flows to the decoder, where it
        // either decodes (malleability — §II-A's argument) or traps.
        let mut tampered = SofiaMachine::with_config(&image, &keys, &config);
        tampered.mem_mut().rom_mut()[2] ^= 1;
        match tampered.run(10_000) {
            Ok(outcome) => assert!(!matches!(
                outcome,
                RunOutcome::ViolationStop(Violation::MacMismatch { .. })
            )),
            Err(_trap) => {} // garbled word failed to decode — also fine
        }
    }
}
