//! The security evaluation of paper §IV-A, in closed form.
//!
//! Both properties reduce to online MAC forgery: an adversary must submit
//! a candidate block to the running core and observe whether it resets.
//! For an `n`-bit MAC the expected number of online trials is `2^(n−1)`,
//! each costing a fixed number of cycles on the target — 8 cycles for a
//! pure software-integrity forgery, plus another 8 for the control-flow
//! diversion that precedes a CFI break (16 total).

/// Seconds per (365-day) year, the paper's implicit convention.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// The paper's SOFIA core clock (Table I): 50 MHz (50.1 rounded down, as
/// §IV-A does: "on a 50 MHz SOFIA core").
pub const PAPER_CLOCK_HZ: f64 = 50.0e6;

/// Cycles per §IV-A.1 forgery trial on the target.
pub const SI_CYCLES_PER_TRIAL: u64 = 8;

/// Cycles per §IV-A.2 trial: 8 to divert control flow + 8 to verify the
/// forged block.
pub const CFI_CYCLES_PER_TRIAL: u64 = 16;

/// Expected online verification attempts before a forged (message, MAC)
/// pair is accepted: `2^(n−1)` for an `n`-bit MAC.
///
/// # Examples
///
/// ```
/// use sofia_core::security::expected_forgery_trials;
/// assert_eq!(expected_forgery_trials(8), 128.0);
/// assert_eq!(expected_forgery_trials(64), 2f64.powi(63));
/// ```
pub fn expected_forgery_trials(mac_bits: u32) -> f64 {
    2f64.powi(mac_bits as i32 - 1)
}

/// Expected wall-clock years for an online brute-force attack against an
/// `n`-bit MAC at `cycles_per_trial` per attempt on a `clock_hz` core.
pub fn online_attack_years(mac_bits: u32, cycles_per_trial: u64, clock_hz: f64) -> f64 {
    expected_forgery_trials(mac_bits) * cycles_per_trial as f64 / clock_hz / SECONDS_PER_YEAR
}

/// §IV-A.1: expected years to forge an instruction/MAC pair online
/// (the paper reports **46,795 years**).
pub fn paper_si_attack_years() -> f64 {
    online_attack_years(64, SI_CYCLES_PER_TRIAL, PAPER_CLOCK_HZ)
}

/// §IV-A.2: expected years to deviate control flow from the CFG
/// (the paper reports **93,590 years**).
pub fn paper_cfi_attack_years() -> f64 {
    online_attack_years(64, CFI_CYCLES_PER_TRIAL, PAPER_CLOCK_HZ)
}

/// Probability that a single random forgery attempt passes an `n`-bit MAC
/// check — the quantity the Monte-Carlo experiment in `sofia-attacks`
/// measures on truncated MACs.
pub fn forgery_success_probability(mac_bits: u32) -> f64 {
    2f64.powi(-(mac_bits as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_years_match_paper() {
        // Paper: "a successful forgery ... will require 46,795 years".
        let years = paper_si_attack_years();
        assert!((years - 46_795.0).abs() / 46_795.0 < 0.001, "got {years}");
    }

    #[test]
    fn cfi_years_match_paper() {
        // Paper: "an online brute force attack ... will require 93,590
        // years".
        let years = paper_cfi_attack_years();
        assert!((years - 93_590.0).abs() / 93_590.0 < 0.001, "got {years}");
    }

    #[test]
    fn trials_scale_exponentially() {
        assert_eq!(
            expected_forgery_trials(16) / expected_forgery_trials(8),
            256.0
        );
    }

    #[test]
    fn cfi_costs_exactly_twice_si() {
        assert!((paper_cfi_attack_years() / paper_si_attack_years() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_is_inverse_exponential() {
        assert_eq!(forgery_success_probability(8), 1.0 / 256.0);
        assert!(forgery_success_probability(64) < 1e-18);
    }
}
