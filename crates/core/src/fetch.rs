//! The CFI decrypt unit and SI verify unit: block-structured fetch.
//!
//! Mirrors the hardware of paper Fig. 1: ciphertext words come out of the
//! (encrypted) instruction memory, are decrypted with the control-flow
//! counter `{ω ‖ prevPC ‖ PC}`, and the SI unit recomputes the CBC-MAC
//! over the decrypted instructions, comparing it with the decrypted MAC
//! words before the block may execute.

use sofia_cpu::fetch::{Batch, FetchCtx, FetchUnit, Slot, SlotOutcome};
use sofia_cpu::Trap;
use sofia_crypto::{mac, CounterBlock, ExpandedKeys, KeySet, Mac64, Nonce};
use sofia_isa::Instruction;
use sofia_transform::{BlockFormat, BlockKind, SecureImage, RESET_PREV_PC};

use crate::timing::SofiaTiming;
use crate::vcache::{CachedBlock, VCache, VCacheConfig, VCacheStats};
use crate::Violation;

/// Which entry a transfer target selected (paper §II-E call-site
/// convention: offset 0 → execution block; offset 4 → mux path 1;
/// offset 8 → mux path 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryPath {
    /// Execution-block entry at the block base.
    Exec,
    /// Multiplexor path 1: enter at `M1e1`, skip `M1e2`.
    Mux1,
    /// Multiplexor path 2: enter at `M1e2`.
    Mux2,
}

impl EntryPath {
    /// The block kind this path belongs to.
    pub fn kind(self) -> BlockKind {
        match self {
            EntryPath::Exec => BlockKind::Exec,
            EntryPath::Mux1 | EntryPath::Mux2 => BlockKind::Mux,
        }
    }
}

/// A successfully decrypted **and verified** block, ready to execute.
#[derive(Clone, Debug)]
pub struct VerifiedBlock {
    /// Base address of the block.
    pub base: u32,
    /// The entry path taken into it.
    pub path: EntryPath,
    /// Decrypted instruction words with their addresses (MAC slots are
    /// already stripped; they execute as `nop` slots in the timing model).
    pub insts: Vec<(u32, u32)>,
    /// Total words fetched (8 for exec, 7 for a mux path by default).
    pub words_fetched: u32,
    /// Addresses fetched, for I-cache accounting.
    pub fetched_addrs: Vec<u32>,
}

impl VerifiedBlock {
    /// Address of the last word of the block — the `prevPC` every exit
    /// edge of this block presents to its successor.
    pub fn last_word_addr(&self, format: &BlockFormat) -> u32 {
        self.base + format.block_bytes() - 4
    }
}

/// The fetch unit: classifies the transfer target, walks the word
/// sequence for the selected path, decrypts, and verifies.
///
/// `read_word` supplies ciphertext words by address (backed by the
/// machine's ROM so image tampering is visible to it). `enforce_si`
/// disables the MAC comparison for the CFI-only ablation (normal
/// operation passes `true`).
///
/// # Errors
///
/// Returns the [`Violation`] the hardware would reset on.
#[allow(clippy::too_many_arguments)]
pub fn fetch_block(
    read_word: &mut dyn FnMut(u32) -> Option<u32>,
    keys: &ExpandedKeys,
    nonce: Nonce,
    format: &BlockFormat,
    text_base: u32,
    text_words: u32,
    target: u32,
    prev_pc: u32,
    enforce_si: bool,
) -> Result<VerifiedBlock, Violation> {
    let bb = format.block_bytes();
    let text_end = text_base + text_words * 4;
    if target < text_base || target >= text_end || target % 4 != 0 {
        return Err(Violation::FetchOutOfImage { addr: target });
    }
    let off = (target - text_base) % bb;
    let base = target - off;
    let path = match off {
        0 => EntryPath::Exec,
        4 => EntryPath::Mux1,
        8 => EntryPath::Mux2,
        _ => return Err(Violation::InvalidEntryOffset { target }),
    };
    // An exec-offset target is also how sequential fall-through arrives at
    // a mux block — the transformer guarantees that never happens for
    // honest programs; for tampered flow the MAC check below catches it.

    let word_at = |w: usize| base + 4 * w as u32;
    let bw = format.block_words();

    // The `(sealing prevPC, PC)` walk for the selected path is fully
    // determined before any ciphertext is read, so the whole block's
    // keystream is one batched cipher sweep instead of a per-word loop.
    // The first two entries decrypt the MAC words (M1/M2), the rest the
    // instruction words. Mux paths skip the other entry's M1 word and
    // chain M2 from addr(M1e2) on *both* paths (Fig. 8). `pads` holds
    // the counters until the in-place sweep turns them into keystream —
    // together with the address walk (which doubles as `fetched_addrs`)
    // that is the only buffer this rewrite adds over the per-word loop.
    let mut fetched_addrs: Vec<u32> = Vec::with_capacity(bw);
    let mut pads: Vec<u64> = Vec::with_capacity(bw);
    let entry_edges: [(u32, u32); 2] = match path {
        EntryPath::Exec => [(prev_pc, word_at(0)), (word_at(0), word_at(1))],
        EntryPath::Mux1 => [(prev_pc, word_at(0)), (word_at(1), word_at(2))],
        EntryPath::Mux2 => [(prev_pc, word_at(1)), (word_at(1), word_at(2))],
    };
    let first_inst_word = match path {
        EntryPath::Exec => 2,
        EntryPath::Mux1 | EntryPath::Mux2 => 3,
    };
    for (prev, pc) in entry_edges
        .into_iter()
        .chain((first_inst_word..bw).map(|w| (word_at(w - 1), word_at(w))))
    {
        fetched_addrs.push(pc);
        pads.push(CounterBlock::from_edge(nonce, prev, pc).as_u64());
    }
    keys.ctr.encrypt_blocks(&mut pads);

    let (mut m1, mut m2) = (0u32, 0u32);
    let mut insts: Vec<(u32, u32)> = Vec::with_capacity(bw - first_inst_word);
    for (i, (&pc, &pad)) in fetched_addrs.iter().zip(&pads).enumerate() {
        let c = read_word(pc).ok_or(Violation::FetchOutOfImage { addr: pc })?;
        let word = c ^ pad as u32;
        match i {
            0 => m1 = word,
            1 => m2 = word,
            _ => insts.push((pc, word)),
        }
    }

    // SI verification (paper Fig. 3).
    let kind = path.kind();
    let mac_cipher = match kind {
        BlockKind::Exec => &keys.mac_exec,
        BlockKind::Mux => &keys.mac_mux,
    };
    let inst_words: Vec<u32> = insts.iter().map(|&(_, w)| w).collect();
    let computed = mac::mac_words(mac_cipher, &inst_words, format.mac_padded_words(kind));
    if enforce_si && computed != Mac64::from_words(m1, m2) {
        return Err(Violation::MacMismatch { block_base: base });
    }

    Ok(VerifiedBlock {
        base,
        path,
        words_fetched: fetched_addrs.len() as u32,
        fetched_addrs,
        insts,
    })
}

/// Why a cached edge from a snapshot could not re-earn its cache line
/// during restore (see [`SofiaFetchUnit::reverify_line`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LineRejection {
    /// The full fetch path raised a violation for this edge.
    Violation(Violation),
    /// A decrypted word no longer decodes (it would have trapped on the
    /// live path, so it can never have been cached honestly).
    Undecodable {
        /// Address of the undecodable word.
        pc: u32,
        /// The undecodable word itself (the live path's trap payload).
        word: u32,
    },
}

/// Decodes a verified block's instruction words into slots, enforcing
/// the store-position rule before any architectural effect — the
/// **single** implementation shared by the live fetch path
/// ([`SofiaFetchUnit::fetch_batch`]) and snapshot-restore
/// re-verification ([`SofiaFetchUnit::reverify_line`]), so the two can
/// never diverge on what a verified block is allowed to contain.
///
/// # Errors
///
/// [`LineRejection`] naming the offending word; callers map it to
/// their surface ([`Trap::IllegalInstruction`] / [`Violation`] on the
/// live path, a restore error on the snapshot path).
fn decode_block_slots(
    format: &BlockFormat,
    block: &VerifiedBlock,
    mut sink: impl FnMut(Slot),
) -> Result<(), LineRejection> {
    let first_word = format.mac_words(block.path.kind());
    for (idx, &(pc, word)) in block.insts.iter().enumerate() {
        let inst = Instruction::decode(word)
            .map_err(|e| LineRejection::Undecodable { pc, word: e.word() })?;
        let word_pos = first_word + idx;
        if inst.is_store() && word_pos < format.store_safe_word_offset {
            return Err(LineRejection::Violation(Violation::StoreTooEarly {
                pc,
                word_pos,
            }));
        }
        sink(Slot { pc, inst });
    }
    Ok(())
}

/// Counters specific to the SOFIA fetch path, accumulated by
/// [`SofiaFetchUnit`] on top of the engine's baseline
/// [`sofia_cpu::ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchPathStats {
    /// Blocks fetched and verified.
    pub blocks: u64,
    /// Execution blocks among them.
    pub exec_blocks: u64,
    /// Multiplexor blocks among them.
    pub mux_blocks: u64,
    /// MAC words that travelled the pipeline as `nop` slots.
    pub mac_nop_slots: u64,
    /// CTR operations issued by the cipher.
    pub ctr_ops: u64,
    /// CBC-MAC operations issued by the cipher.
    pub cbc_ops: u64,
    /// Stall cycles from cipher backpressure.
    pub cipher_stall_cycles: u64,
    /// Decrypt-pipeline refill cycles after redirects.
    pub redirect_fill_cycles: u64,
    /// Stall cycles inserted by the store gate.
    pub store_gate_stall_cycles: u64,
    /// Verified-block cache hits (fetches that skipped decrypt + MAC).
    pub vcache_hits: u64,
    /// Verified-block cache misses (fetches through the full path while
    /// the cache was enabled).
    pub vcache_misses: u64,
    /// Verified lines evicted from the cache.
    pub vcache_evictions: u64,
    /// Fetch-path cycles (issue slots for MAC words, cipher stalls,
    /// redirect refills) the verified-block cache saved on hits, net of
    /// the hit latency it charged instead.
    pub crypto_cycles_saved: u64,
}

/// The SOFIA fetch unit: the CFI decrypt unit, the SI verify unit and the
/// block sequencer, packaged as a [`FetchUnit`] for the generic
/// [`sofia_cpu::Pipeline`] engine.
///
/// Owns all the security state of paper Fig. 1 — keys, nonce, block
/// format, the `{prevPC, PC}` edge registers — plus the fetch-path timing
/// model. The engine drives it exactly like [`sofia_cpu::PlainFetch`],
/// which is what makes vanilla-vs-SOFIA comparisons a controlled
/// experiment.
#[derive(Clone, Debug)]
pub struct SofiaFetchUnit {
    keys: ExpandedKeys,
    nonce: Nonce,
    format: BlockFormat,
    timing: SofiaTiming,
    enforce_si: bool,
    text_base: u32,
    text_words: u32,
    entry: u32,
    next_target: u32,
    prev_pc: u32,
    redirected: bool,
    cur_base: u32,
    cur_last_word: u32,
    stats: FetchPathStats,
    vcache: VCache,
}

impl SofiaFetchUnit {
    /// A unit fetching `image` under `keys`, with `enforce_si = false`
    /// yielding the CFI-only ablation (§II-A: decryption alone cannot
    /// detect its own errors). The verified-block cache is disabled —
    /// use [`SofiaFetchUnit::with_vcache`] to enable it.
    pub fn new(image: &SecureImage, keys: &KeySet, timing: SofiaTiming, enforce_si: bool) -> Self {
        Self::with_vcache(image, keys, timing, enforce_si, VCacheConfig::default())
    }

    /// A unit with an explicit verified-block cache configuration (see
    /// [`crate::vcache`]; a disabled config reproduces [`SofiaFetchUnit::new`]
    /// bit-for-bit).
    pub fn with_vcache(
        image: &SecureImage,
        keys: &KeySet,
        timing: SofiaTiming,
        enforce_si: bool,
        vcache: VCacheConfig,
    ) -> Self {
        SofiaFetchUnit {
            keys: keys.expand(),
            nonce: image.nonce,
            format: image.format,
            timing,
            enforce_si,
            text_base: image.text_base,
            text_words: image.ctext.len() as u32,
            entry: image.entry,
            next_target: image.entry,
            prev_pc: RESET_PREV_PC,
            redirected: true,
            cur_base: image.entry,
            cur_last_word: RESET_PREV_PC,
            stats: FetchPathStats::default(),
            vcache: VCache::new(vcache),
        }
    }

    /// Fetch-path counters, including the verified-block cache's.
    pub fn stats(&self) -> FetchPathStats {
        self.stats
    }

    /// Raw verified-block cache counters.
    pub fn vcache_stats(&self) -> VCacheStats {
        self.vcache.stats()
    }

    /// The next transfer target (diagnostic).
    pub fn next_target(&self) -> u32 {
        self.next_target
    }

    /// The `prevPC` the hardware will present for the next fetch — the
    /// sealed-edge source (diagnostic; lets harnesses re-verify an edge
    /// out-of-band with [`fetch_block`]).
    pub fn prev_pc(&self) -> u32 {
        self.prev_pc
    }

    /// **Attack-harness channel**: redirects the next fetch to `target`,
    /// modelling a control-flow hijack the software could not prevent.
    pub fn hijack(&mut self, target: u32) {
        self.next_target = target;
        self.redirected = true;
    }

    /// The fetch-path timing model this unit charges.
    pub(crate) fn timing(&self) -> SofiaTiming {
        self.timing
    }

    /// Whether the SI unit's MAC comparison is enforced.
    pub(crate) fn enforce_si(&self) -> bool {
        self.enforce_si
    }

    /// Sequencer state beyond the edge registers: `(redirected,
    /// cur_base, cur_last_word)` — what a snapshot must carry so the
    /// first resumed fetch charges the same redirect refill and the
    /// resumed block retires onto the same exit `prevPC`.
    pub(crate) fn sequencing(&self) -> (bool, u32, u32) {
        (self.redirected, self.cur_base, self.cur_last_word)
    }

    /// Restores the sequencing registers wholesale (snapshot restore).
    pub(crate) fn restore_sequencing(
        &mut self,
        prev_pc: u32,
        next_target: u32,
        redirected: bool,
        cur_base: u32,
        cur_last_word: u32,
    ) {
        self.prev_pc = prev_pc;
        self.next_target = next_target;
        self.redirected = redirected;
        self.cur_base = cur_base;
        self.cur_last_word = cur_last_word;
    }

    /// Replaces the fetch-path counters wholesale (snapshot restore).
    pub(crate) fn set_stats(&mut self, stats: FetchPathStats) {
        self.stats = stats;
    }

    /// The verified-block cache (snapshot export).
    pub(crate) fn vcache_ref(&self) -> &VCache {
        &self.vcache
    }

    /// Mutable verified-block cache (snapshot restore).
    pub(crate) fn vcache_mut(&mut self) -> &mut VCache {
        &mut self.vcache
    }

    /// Re-runs the full decrypt → MAC-verify → decode → store-rule path
    /// for one cached edge against `read_word` ciphertext, producing the
    /// cache line a hit would replay. This is how a restored snapshot
    /// re-warms the verified-block cache: the snapshot carries only edge
    /// *keys*, never decrypted plaintext, so every line re-earns its
    /// residency against the MAC-protected image on the restoring host.
    ///
    /// # Errors
    ///
    /// The violation (or the undecodable word's address) that would have
    /// fired on the live fetch path.
    pub(crate) fn reverify_line(
        &self,
        read_word: &mut dyn FnMut(u32) -> Option<u32>,
        prev_pc: u32,
        target: u32,
    ) -> Result<CachedBlock, LineRejection> {
        let block = fetch_block(
            read_word,
            &self.keys,
            self.nonce,
            &self.format,
            self.text_base,
            self.text_words,
            target,
            prev_pc,
            self.enforce_si,
        )
        .map_err(LineRejection::Violation)?;
        let mut slots: Vec<Slot> = Vec::with_capacity(block.insts.len());
        decode_block_slots(&self.format, &block, |slot| slots.push(slot))?;
        Ok(CachedBlock {
            base: block.base,
            last_word_addr: block.last_word_addr(&self.format),
            kind: block.path.kind(),
            words_fetched: block.words_fetched,
            slots: slots.into(),
        })
    }

    fn account_block(&mut self, block: &VerifiedBlock, slots: &[Slot], ctx: &mut FetchCtx<'_>) {
        let kind = block.path.kind();
        let bt = self
            .timing
            .block_cycles(&self.format, kind, block.words_fetched, self.redirected);
        self.stats.blocks += 1;
        match kind {
            BlockKind::Exec => self.stats.exec_blocks += 1,
            BlockKind::Mux => self.stats.mux_blocks += 1,
        }
        self.stats.mac_nop_slots += (block.words_fetched as usize - slots.len()) as u64;
        self.stats.ctr_ops += bt.ctr_ops as u64;
        self.stats.cbc_ops += bt.cbc_ops as u64;
        self.stats.cipher_stall_cycles += bt.cipher_stall as u64;
        self.stats.redirect_fill_cycles += bt.redirect_fill as u64;
        ctx.stats.cycles += bt.total() as u64;
        // Store-gate stalls for stores the format allows in the stall
        // window (zero under the default format — the Fig. 6 argument).
        let first_word = self.format.mac_words(kind);
        for (idx, slot) in slots.iter().enumerate() {
            if slot.inst.is_store() {
                let stall = self.timing.store_gate_stall(&self.format, first_word + idx) as u64;
                self.stats.store_gate_stall_cycles += stall;
                ctx.stats.cycles += stall;
            }
        }
        // I-cache: ciphertext words are cached in front of the decrypt
        // unit (Fig. 1), so every fetched word touches the cache.
        for &addr in &block.fetched_addrs {
            let stall = ctx.icache.access_cycles(addr) as u64;
            ctx.stats.icache_stall_cycles += stall;
            ctx.stats.cycles += stall;
        }
    }

    /// Accounting for a verified-block cache hit: the plaintext slots
    /// stream straight from the cache, so the block charges its issue
    /// slots plus the hit latency — no cipher ops, no redirect refill,
    /// and **no ciphertext I-cache walk** (the ciphertext is never read,
    /// so charging `ICache::access_cycles` here would double-bill the
    /// fetch; see the regression test pinning this).
    fn account_hit(
        &mut self,
        kind: BlockKind,
        words_fetched: u32,
        slots: usize,
        ctx: &mut FetchCtx<'_>,
    ) {
        self.stats.vcache_hits += 1;
        self.stats.blocks += 1;
        match kind {
            BlockKind::Exec => self.stats.exec_blocks += 1,
            BlockKind::Mux => self.stats.mux_blocks += 1,
        }
        let skipped = self
            .timing
            .block_cycles(&self.format, kind, words_fetched, self.redirected);
        let hit_cycles = slots as u32 + self.vcache.config().hit_latency;
        ctx.stats.cycles += hit_cycles as u64;
        self.stats.crypto_cycles_saved += skipped.total().saturating_sub(hit_cycles) as u64;
    }
}

impl FetchUnit for SofiaFetchUnit {
    type Violation = Violation;

    /// Block fetch charges one issue slot per fetched word (MAC words
    /// travel as `nop`s), so the engine adds only hazard penalties.
    const ISSUE_CHARGED_IN_FETCH: bool = true;

    fn fetch_batch(
        &mut self,
        ctx: &mut FetchCtx<'_>,
        out: &mut Batch,
    ) -> Result<Option<Violation>, Trap> {
        // Verified-block cache: a hit replays slots already decrypted,
        // MAC-checked and decoded for exactly this `(prevPC, PC)` edge —
        // delivered zero-copy: the engine executes straight from the
        // cache line's shared slice, no per-hit clone.
        let edge = (self.prev_pc, self.next_target);
        if let Some(cached) = self.vcache.lookup(edge.0, edge.1) {
            let (base, last, kind, words) = (
                cached.base,
                cached.last_word_addr,
                cached.kind,
                cached.words_fetched,
            );
            out.deliver_shared(std::sync::Arc::clone(&cached.slots));
            self.account_hit(kind, words, out.len(), ctx);
            self.cur_base = base;
            self.cur_last_word = last;
            return Ok(None);
        } else if self.vcache.is_enabled() {
            self.stats.vcache_misses += 1;
        }
        let fetched = fetch_block(
            &mut |addr| ctx.mem.fetch(addr).ok(),
            &self.keys,
            self.nonce,
            &self.format,
            self.text_base,
            self.text_words,
            self.next_target,
            self.prev_pc,
            self.enforce_si,
        );
        let block = match fetched {
            Ok(b) => b,
            Err(v) => return Ok(Some(v)),
        };
        // Decode everything up front; check the store-position rule before
        // any architectural effect (the hardware's early-store reset).
        match decode_block_slots(&self.format, &block, |slot| out.push(slot)) {
            Ok(()) => {}
            Err(LineRejection::Undecodable { pc, word }) => {
                return Err(Trap::IllegalInstruction { word, pc })
            }
            Err(LineRejection::Violation(v)) => return Ok(Some(v)),
        }
        self.account_block(&block, out.as_slice(), ctx);
        self.cur_base = block.base;
        self.cur_last_word = block.last_word_addr(&self.format);
        // Only now — past the MAC, the decoder and the store-position
        // rule — may the block enter the cache: nothing that would trap
        // or violate on the uncached path is ever replayable from it.
        if self.vcache.is_enabled() {
            let evicted = self.vcache.insert(
                edge,
                CachedBlock {
                    base: block.base,
                    last_word_addr: self.cur_last_word,
                    kind: block.path.kind(),
                    words_fetched: block.words_fetched,
                    slots: out.to_shared(),
                },
            );
            self.stats.vcache_evictions += evicted as u64;
        }
        Ok(None)
    }

    fn retire(
        &mut self,
        pc: u32,
        slot: usize,
        batch_len: usize,
        outcome: SlotOutcome,
    ) -> Result<(), Violation> {
        let last = slot + 1 == batch_len;
        match outcome {
            SlotOutcome::Sequential => {
                if last {
                    self.next_target = self.cur_base + self.format.block_bytes();
                    self.prev_pc = self.cur_last_word;
                    self.redirected = false;
                }
            }
            SlotOutcome::Transfer { target } => {
                if !last {
                    return Err(Violation::MidBlockTransfer { pc });
                }
                self.next_target = target;
                self.prev_pc = self.cur_last_word;
                self.redirected = true;
            }
        }
        Ok(())
    }

    fn on_reset(&mut self) -> u64 {
        self.prev_pc = RESET_PREV_PC;
        self.next_target = self.entry;
        self.redirected = true;
        // A reboot restores a safe control state: stale verified
        // plaintext must not survive the reset line any more than the
        // ciphertext I-cache does.
        self.vcache.flush();
        self.timing.reboot_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;
    use sofia_transform::Transformer;

    fn image(src: &str) -> (sofia_transform::SecureImage, KeySet) {
        let keys = KeySet::from_seed(0xF00D);
        let img = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        (img, keys)
    }

    fn fetch(
        img: &sofia_transform::SecureImage,
        keys: &KeySet,
        target: u32,
        prev: u32,
    ) -> Result<VerifiedBlock, Violation> {
        let ks = keys.expand();
        let ctext = img.ctext.clone();
        let base = img.text_base;
        let mut read = |addr: u32| ctext.get(((addr - base) / 4) as usize).copied();
        fetch_block(
            &mut read,
            &ks,
            img.nonce,
            &img.format,
            img.text_base,
            img.ctext.len() as u32,
            target,
            prev,
            true,
        )
    }

    #[test]
    fn entry_block_verifies_from_reset() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let b = fetch(&img, &keys, img.entry, RESET_PREV_PC).unwrap();
        assert_eq!(b.path, EntryPath::Exec);
        assert_eq!(b.words_fetched, 8);
        assert_eq!(b.insts.len(), 6);
    }

    #[test]
    fn wrong_prev_pc_is_a_mac_mismatch() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let err = fetch(&img, &keys, img.entry, 0x5C).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn illegal_entry_offsets_rejected() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let err = fetch(&img, &keys, img.text_base + 12, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::InvalidEntryOffset { .. }));
        let err = fetch(&img, &keys, img.text_base.wrapping_sub(32), RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::FetchOutOfImage { .. }));
    }

    #[test]
    fn tampered_word_fails_verification() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let mut tampered = img.clone();
        tampered.ctext[3] ^= 0x0000_0400; // flip one ciphertext bit
        let err = fetch(&tampered, &keys, img.entry, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn mux_paths_both_verify() {
        // Callee with two callers → mux block, both entries must verify
        // with their respective prevPCs.
        let (img, keys) = image(
            "main: jal f
                   jal f
                   halt
             f:    ret",
        );
        // Find the two jal instructions in the clear by scanning blocks:
        // simpler — walk the program like the machine would. Block 0 ends
        // with the first jal at its last word.
        let bb = img.format.block_bytes();
        let jal1 = img.text_base + bb - 4;
        let b0 = fetch(&img, &keys, img.entry, RESET_PREV_PC).unwrap();
        assert_eq!(b0.path, EntryPath::Exec);
        let jal_inst = sofia_isa::Instruction::decode(b0.insts.last().unwrap().1).unwrap();
        let f_entry = jal_inst.static_target(jal1).unwrap();
        // f's entry is a mux path (offset 4 or 8).
        let off = (f_entry - img.text_base) % bb;
        assert!(off == 4 || off == 8, "offset {off}");
        let fb = fetch(&img, &keys, f_entry, jal1).unwrap();
        assert_eq!(fb.path.kind(), BlockKind::Mux);
        assert_eq!(fb.words_fetched, 7);
        assert_eq!(fb.insts.len(), 5);
        // Entering the same path with the *other* caller's prevPC fails.
        let err = fetch(&img, &keys, f_entry, jal1 + bb).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn relocating_a_block_fails_verification() {
        // The ECB-ISR weakness SOFIA fixes (paper §I): moving ciphertext
        // to another location must not decrypt correctly, because PC is in
        // the counter.
        let (img, keys) = image(
            "main: addi t0, zero, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   halt",
        );
        assert!(img.blocks() >= 2);
        let mut moved = img.clone();
        let bw = img.format.block_words();
        // Swap block 0 and block 1 ciphertexts wholesale.
        for w in 0..bw {
            moved.ctext.swap(w, bw + w);
        }
        let err = fetch(&moved, &keys, img.entry, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }
}
