//! The CFI decrypt unit and SI verify unit: block-structured fetch.
//!
//! Mirrors the hardware of paper Fig. 1: ciphertext words come out of the
//! (encrypted) instruction memory, are decrypted with the control-flow
//! counter `{ω ‖ prevPC ‖ PC}`, and the SI unit recomputes the CBC-MAC
//! over the decrypted instructions, comparing it with the decrypted MAC
//! words before the block may execute.

use sofia_crypto::{ctr, mac, CounterBlock, ExpandedKeys, Mac64, Nonce};
use sofia_transform::{BlockFormat, BlockKind};

use crate::Violation;

/// Which entry a transfer target selected (paper §II-E call-site
/// convention: offset 0 → execution block; offset 4 → mux path 1;
/// offset 8 → mux path 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryPath {
    /// Execution-block entry at the block base.
    Exec,
    /// Multiplexor path 1: enter at `M1e1`, skip `M1e2`.
    Mux1,
    /// Multiplexor path 2: enter at `M1e2`.
    Mux2,
}

impl EntryPath {
    /// The block kind this path belongs to.
    pub fn kind(self) -> BlockKind {
        match self {
            EntryPath::Exec => BlockKind::Exec,
            EntryPath::Mux1 | EntryPath::Mux2 => BlockKind::Mux,
        }
    }
}

/// A successfully decrypted **and verified** block, ready to execute.
#[derive(Clone, Debug)]
pub struct VerifiedBlock {
    /// Base address of the block.
    pub base: u32,
    /// The entry path taken into it.
    pub path: EntryPath,
    /// Decrypted instruction words with their addresses (MAC slots are
    /// already stripped; they execute as `nop` slots in the timing model).
    pub insts: Vec<(u32, u32)>,
    /// Total words fetched (8 for exec, 7 for a mux path by default).
    pub words_fetched: u32,
    /// Addresses fetched, for I-cache accounting.
    pub fetched_addrs: Vec<u32>,
}

impl VerifiedBlock {
    /// Address of the last word of the block — the `prevPC` every exit
    /// edge of this block presents to its successor.
    pub fn last_word_addr(&self, format: &BlockFormat) -> u32 {
        self.base + format.block_bytes() - 4
    }
}

/// The fetch unit: classifies the transfer target, walks the word
/// sequence for the selected path, decrypts, and verifies.
///
/// `read_word` supplies ciphertext words by address (backed by the
/// machine's ROM so image tampering is visible to it). `enforce_si`
/// disables the MAC comparison for the CFI-only ablation (normal
/// operation passes `true`).
///
/// # Errors
///
/// Returns the [`Violation`] the hardware would reset on.
#[allow(clippy::too_many_arguments)]
pub fn fetch_block(
    read_word: &mut dyn FnMut(u32) -> Option<u32>,
    keys: &ExpandedKeys,
    nonce: Nonce,
    format: &BlockFormat,
    text_base: u32,
    text_words: u32,
    target: u32,
    prev_pc: u32,
    enforce_si: bool,
) -> Result<VerifiedBlock, Violation> {
    let bb = format.block_bytes();
    let text_end = text_base + text_words * 4;
    if target < text_base || target >= text_end || target % 4 != 0 {
        return Err(Violation::FetchOutOfImage { addr: target });
    }
    let off = (target - text_base) % bb;
    let base = target - off;
    let path = match off {
        0 => EntryPath::Exec,
        4 => EntryPath::Mux1,
        8 => EntryPath::Mux2,
        _ => return Err(Violation::InvalidEntryOffset { target }),
    };
    // An exec-offset target is also how sequential fall-through arrives at
    // a mux block — the transformer guarantees that never happens for
    // honest programs; for tampered flow the MAC check below catches it.

    let word_at = |w: usize| base + 4 * w as u32;
    let mut fetched_addrs = Vec::new();
    let mut decrypt = |prev: u32, pc: u32, fetched: &mut Vec<u32>| -> Result<u32, Violation> {
        let c = read_word(pc).ok_or(Violation::FetchOutOfImage { addr: pc })?;
        fetched.push(pc);
        Ok(ctr::apply(
            &keys.ctr,
            CounterBlock::from_edge(nonce, prev, pc),
            c,
        ))
    };

    let bw = format.block_words();
    let (m1, m2, first_inst_word, mut prev) = match path {
        EntryPath::Exec => {
            let m1 = decrypt(prev_pc, word_at(0), &mut fetched_addrs)?;
            let m2 = decrypt(word_at(0), word_at(1), &mut fetched_addrs)?;
            (m1, m2, 2, word_at(1))
        }
        EntryPath::Mux1 => {
            // Enter at M1e1 (word 0), skip M1e2, continue at M2 which is
            // sealed with prevPC = addr(M1e2) on both paths (Fig. 8).
            let m1 = decrypt(prev_pc, word_at(0), &mut fetched_addrs)?;
            let m2 = decrypt(word_at(1), word_at(2), &mut fetched_addrs)?;
            (m1, m2, 3, word_at(2))
        }
        EntryPath::Mux2 => {
            let m1 = decrypt(prev_pc, word_at(1), &mut fetched_addrs)?;
            let m2 = decrypt(word_at(1), word_at(2), &mut fetched_addrs)?;
            (m1, m2, 3, word_at(2))
        }
    };

    let mut insts = Vec::with_capacity(bw - first_inst_word);
    for w in first_inst_word..bw {
        let pc = word_at(w);
        let word = decrypt(prev, pc, &mut fetched_addrs)?;
        insts.push((pc, word));
        prev = pc;
    }

    // SI verification (paper Fig. 3).
    let kind = path.kind();
    let mac_cipher = match kind {
        BlockKind::Exec => &keys.mac_exec,
        BlockKind::Mux => &keys.mac_mux,
    };
    let inst_words: Vec<u32> = insts.iter().map(|&(_, w)| w).collect();
    let computed = mac::mac_words(mac_cipher, &inst_words, format.mac_padded_words(kind));
    if enforce_si && computed != Mac64::from_words(m1, m2) {
        return Err(Violation::MacMismatch { block_base: base });
    }

    Ok(VerifiedBlock {
        base,
        path,
        words_fetched: fetched_addrs.len() as u32,
        fetched_addrs,
        insts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_crypto::KeySet;
    use sofia_isa::asm;
    use sofia_transform::{Transformer, RESET_PREV_PC};

    fn image(src: &str) -> (sofia_transform::SecureImage, KeySet) {
        let keys = KeySet::from_seed(0xF00D);
        let img = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        (img, keys)
    }

    fn fetch(
        img: &sofia_transform::SecureImage,
        keys: &KeySet,
        target: u32,
        prev: u32,
    ) -> Result<VerifiedBlock, Violation> {
        let ks = keys.expand();
        let ctext = img.ctext.clone();
        let base = img.text_base;
        let mut read = |addr: u32| ctext.get(((addr - base) / 4) as usize).copied();
        fetch_block(
            &mut read,
            &ks,
            img.nonce,
            &img.format,
            img.text_base,
            img.ctext.len() as u32,
            target,
            prev,
            true,
        )
    }

    #[test]
    fn entry_block_verifies_from_reset() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let b = fetch(&img, &keys, img.entry, RESET_PREV_PC).unwrap();
        assert_eq!(b.path, EntryPath::Exec);
        assert_eq!(b.words_fetched, 8);
        assert_eq!(b.insts.len(), 6);
    }

    #[test]
    fn wrong_prev_pc_is_a_mac_mismatch() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let err = fetch(&img, &keys, img.entry, 0x5C).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn illegal_entry_offsets_rejected() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let err = fetch(&img, &keys, img.text_base + 12, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::InvalidEntryOffset { .. }));
        let err = fetch(&img, &keys, img.text_base.wrapping_sub(32), RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::FetchOutOfImage { .. }));
    }

    #[test]
    fn tampered_word_fails_verification() {
        let (img, keys) = image("main: addi t0, zero, 9\n halt");
        let mut tampered = img.clone();
        tampered.ctext[3] ^= 0x0000_0400; // flip one ciphertext bit
        let err = fetch(&tampered, &keys, img.entry, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn mux_paths_both_verify() {
        // Callee with two callers → mux block, both entries must verify
        // with their respective prevPCs.
        let (img, keys) = image(
            "main: jal f
                   jal f
                   halt
             f:    ret",
        );
        // Find the two jal instructions in the clear by scanning blocks:
        // simpler — walk the program like the machine would. Block 0 ends
        // with the first jal at its last word.
        let bb = img.format.block_bytes();
        let jal1 = img.text_base + bb - 4;
        let b0 = fetch(&img, &keys, img.entry, RESET_PREV_PC).unwrap();
        assert_eq!(b0.path, EntryPath::Exec);
        let jal_inst = sofia_isa::Instruction::decode(b0.insts.last().unwrap().1).unwrap();
        let f_entry = jal_inst.static_target(jal1).unwrap();
        // f's entry is a mux path (offset 4 or 8).
        let off = (f_entry - img.text_base) % bb;
        assert!(off == 4 || off == 8, "offset {off}");
        let fb = fetch(&img, &keys, f_entry, jal1).unwrap();
        assert_eq!(fb.path.kind(), BlockKind::Mux);
        assert_eq!(fb.words_fetched, 7);
        assert_eq!(fb.insts.len(), 5);
        // Entering the same path with the *other* caller's prevPC fails.
        let err = fetch(&img, &keys, f_entry, jal1 + bb).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }

    #[test]
    fn relocating_a_block_fails_verification() {
        // The ECB-ISR weakness SOFIA fixes (paper §I): moving ciphertext
        // to another location must not decrypt correctly, because PC is in
        // the counter.
        let (img, keys) = image(
            "main: addi t0, zero, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   addi t0, t0, 1
                   halt",
        );
        assert!(img.blocks() >= 2);
        let mut moved = img.clone();
        let bw = img.format.block_words();
        // Swap block 0 and block 1 ciphertexts wholesale.
        for w in 0..bw {
            moved.ctext.swap(w, bw + w);
        }
        let err = fetch(&moved, &keys, img.entry, RESET_PREV_PC).unwrap_err();
        assert!(matches!(err, Violation::MacMismatch { .. }));
    }
}
