//! Snapshot/restore for suspended machines: serialise a preempted
//! [`SofiaMachine`] so the job can leave this process (or this host)
//! and resume elsewhere, bit-for-bit.
//!
//! # What a snapshot carries
//!
//! Everything the engine and fetch unit own that the sealed image does
//! not: the architectural state (registers, data RAM, MMIO logs), the
//! exact resume point (the [`ResumeEdge`] plus the sequencer's
//! redirect/fall-through registers), the remaining fuel, every
//! accumulated counter (execution, fetch-path, I-cache, verified-block
//! cache), the violation log, and the machine's full [`SofiaConfig`] —
//! so the restoring host rebuilds the *identical* machine without any
//! out-of-band agreement.
//!
//! # What a snapshot deliberately does **not** carry
//!
//! * **No ciphertext.** Code travels as the [`SecureImage`], whose MACs
//!   already bind every word to its control-flow edge; the snapshot
//!   only names where in that image to resume. Restoring under a
//!   tampered image (or with a forged/stale [`ResumeEdge`]) is caught
//!   by edge verification on the first resumed fetch, exactly like any
//!   other foreign edge — migration adds no new forgery surface.
//! * **No key material.** Keys are delivered by the restoring host, as
//!   at installation ("these keys are known only by the software
//!   provider").
//! * **No decrypted plaintext.** The verified-block cache is serialised
//!   as edge *keys* and LRU stamps only; [`rebuild`] re-runs the full
//!   decrypt → MAC-verify → decode path for every line against the
//!   restoring host's image, so a line can never smuggle unverified
//!   instructions across a migration. (Consequence: ciphertext tampered
//!   *after* a line was filled resumes as a [`RestoreError`] instead of
//!   replaying the stale verified plaintext a warm uninterrupted
//!   machine would — strictly more detection, never less.)
//!
//! The trailing FNV-64 checksum makes *accidental* corruption of the
//! container a typed [`DecodeError`]; it is not a MAC and does not try
//! to be. Architectural state (registers, RAM) is data, and SOFIA
//! protects code, not data — the integrity the paper argues for rides
//! entirely on the image MACs, which is why they are the only thing a
//! migration has to trust.
//!
//! [`ResumeEdge`]: crate::ResumeEdge

use sofia_cpu::engine::{CoreState, CoreStateError};
use sofia_cpu::exec::RegFile;
use sofia_cpu::icache::{ICacheConfig, ICacheStats};
use sofia_cpu::machine::MachineConfig;
use sofia_cpu::mem::Mmio;
use sofia_cpu::pipeline::PipelineModel;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_isa::Reg;
use sofia_transform::decode::{DecodeError, Reader, Writer};
use sofia_transform::SecureImage;

use crate::fetch::{FetchPathStats, LineRejection};
use crate::machine::{ResetPolicy, SofiaConfig, SofiaMachine};
use crate::timing::{CipherSchedule, SofiaTiming};
use crate::vcache::{VCacheConfig, VCacheStats};
use crate::{ResumeEdge, Violation};

/// Container magic for serialised machine snapshots.
const MAGIC: &[u8] = b"SOFS1\0";

/// RAM is serialised as sparse pages of this many bytes: only pages with
/// at least one non-zero byte travel, so a mostly-idle 1 MiB RAM
/// snapshots in a few KiB (stack at the top, data section at the bottom).
pub const RAM_PAGE: usize = 1024;

/// Largest RAM size a decoded snapshot may configure (256 MiB — 256×
/// the default machine). Restore allocates `ram_size` zeroed bytes, so
/// without a bound a forged-but-checksum-valid stream could drive a
/// multi-gigabyte allocation on the adopting host; the checksum catches
/// corruption, not adversaries.
pub const MAX_RAM_SIZE: u32 = 256 << 20;

/// Largest verified-block-cache capacity a decoded snapshot may
/// configure (the cache pre-sizes every set at construction).
pub const MAX_VCACHE_ENTRIES: u32 = 1 << 20;

/// Largest I-cache size a decoded snapshot may configure.
pub const MAX_ICACHE_BYTES: u32 = 64 << 20;

/// One resident verified-block cache line, as the snapshot stores it:
/// the sealed edge and its LRU stamp — **never** the decrypted slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VCacheLine {
    /// The edge source the line was verified under.
    pub prev_pc: u32,
    /// The edge target.
    pub target: u32,
    /// LRU stamp, so the restored cache evicts in the same order.
    pub stamp: u64,
}

/// The complete serialisable state of a suspended [`SofiaMachine`] (see
/// the [module docs](self) for the carry/omit rationale).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// The machine configuration the state was captured under; restore
    /// rebuilds under exactly this configuration.
    pub config: SofiaConfig,
    /// Job-level fuel still owed to this machine (the machine itself
    /// does not track budgets — the caller passes it to
    /// [`SofiaMachine::snapshot`] and reads it back after restore).
    pub fuel_remaining: u64,
    /// The sealed-edge source the next fetch will present.
    pub prev_pc: u32,
    /// The transfer target the next fetch will verify.
    pub next_target: u32,
    /// Whether the next fetch pays the redirect refill (a suspended job
    /// parked on a taken transfer must still pay it after restore).
    pub redirected: bool,
    /// Base address of the block the sequencer last delivered.
    pub cur_base: u32,
    /// Its last word address (the `prevPC` its exits present).
    pub cur_last_word: u32,
    /// Whether the machine had already halted.
    pub halted: bool,
    /// Resets performed so far.
    pub resets: u64,
    /// Register index of the immediately preceding load's destination
    /// (load-use hazard tracker), if any.
    pub prev_load_dest: Option<u8>,
    /// The architectural register file.
    pub regs: [u32; 32],
    /// Sparse non-zero RAM pages `(page index, bytes)`, strictly
    /// ascending; absent pages are zero. The final page may be short
    /// when the RAM size is not a multiple of [`RAM_PAGE`].
    pub ram_pages: Vec<(u32, Vec<u8>)>,
    /// MMIO output logs.
    pub mmio: Mmio,
    /// Baseline execution counters.
    pub exec: ExecStats,
    /// Fetch-path counters.
    pub fetch: FetchPathStats,
    /// Violations detected so far, in detection order.
    pub violations: Vec<Violation>,
    /// I-cache line tags, in set order (addresses only).
    pub icache_tags: Vec<Option<u32>>,
    /// I-cache counters.
    pub icache_stats: ICacheStats,
    /// Verified-block cache LRU clock.
    pub vcache_tick: u64,
    /// Verified-block cache counters.
    pub vcache_stats: VCacheStats,
    /// Resident verified-block cache lines (edges + stamps only).
    pub vcache_lines: Vec<VCacheLine>,
}

impl MachineSnapshot {
    /// The resume point this snapshot parks on.
    pub fn edge(&self) -> ResumeEdge {
        ResumeEdge {
            prev_pc: self.prev_pc,
            next_target: self.next_target,
        }
    }

    /// Serialises to the versioned, checksummed `SOFS1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.magic(MAGIC);
        let c = &self.config;
        w.u32(c.machine.ram_size);
        w.u32(c.machine.icache.size_bytes);
        w.u32(c.machine.icache.line_bytes);
        w.u32(c.machine.icache.miss_penalty);
        let p = c.machine.pipeline;
        for v in [
            p.taken_branch_penalty,
            p.direct_jump_penalty,
            p.indirect_jump_penalty,
            p.load_use_penalty,
            p.mul_cycles,
            p.div_cycles,
            p.drain_cycles,
            p.data_penalty,
        ] {
            w.u32(v);
        }
        w.u8(match c.timing.schedule {
            CipherSchedule::Paper => 0,
            CipherSchedule::PerWord => 1,
        });
        w.u32(c.timing.cipher_latency);
        w.u32(c.timing.cipher_issue_interval);
        w.u32(c.timing.verify_latency);
        w.u32(c.timing.redirect_setup);
        w.u64(c.timing.reboot_cycles);
        match c.reset_policy {
            ResetPolicy::HaltAndReport => w.u8(0),
            ResetPolicy::Reboot { max_resets } => {
                w.u8(1);
                w.u32(max_resets);
            }
        }
        w.bool(c.enforce_si);
        w.bool(c.vcache.enabled);
        w.u32(c.vcache.entries);
        w.u32(c.vcache.ways);
        w.u32(c.vcache.hit_latency);

        w.u64(self.fuel_remaining);
        w.u32(self.prev_pc);
        w.u32(self.next_target);
        w.bool(self.redirected);
        w.u32(self.cur_base);
        w.u32(self.cur_last_word);
        w.bool(self.halted);
        w.u64(self.resets);
        w.u8(self.prev_load_dest.unwrap_or(0xFF));
        for r in self.regs {
            w.u32(r);
        }
        w.u32(self.ram_pages.len() as u32);
        for (idx, bytes) in &self.ram_pages {
            w.u32(*idx);
            w.bytes(bytes);
        }
        w.u32(self.mmio.out_words.len() as u32);
        for &v in &self.mmio.out_words {
            w.u32(v);
        }
        w.u32(self.mmio.out_bytes.len() as u32);
        w.bytes(&self.mmio.out_bytes);
        w.u32(self.mmio.actuator_writes.len() as u32);
        for &v in &self.mmio.actuator_writes {
            w.u32(v);
        }
        write_exec_stats(&mut w, &self.exec);
        let f = self.fetch;
        for v in [
            f.blocks,
            f.exec_blocks,
            f.mux_blocks,
            f.mac_nop_slots,
            f.ctr_ops,
            f.cbc_ops,
            f.cipher_stall_cycles,
            f.redirect_fill_cycles,
            f.store_gate_stall_cycles,
            f.vcache_hits,
            f.vcache_misses,
            f.vcache_evictions,
            f.crypto_cycles_saved,
        ] {
            w.u64(v);
        }
        w.u32(self.violations.len() as u32);
        for v in &self.violations {
            write_violation(&mut w, v);
        }
        w.u32(self.icache_tags.len() as u32);
        for t in &self.icache_tags {
            match t {
                None => w.u8(0),
                Some(tag) => {
                    w.u8(1);
                    w.u32(*tag);
                }
            }
        }
        w.u64(self.icache_stats.hits);
        w.u64(self.icache_stats.misses);
        w.u64(self.vcache_tick);
        let vs = self.vcache_stats;
        for v in [vs.hits, vs.misses, vs.evictions, vs.insertions, vs.flushed] {
            w.u64(v);
        }
        w.u32(self.vcache_lines.len() as u32);
        for line in &self.vcache_lines {
            w.u32(line.prev_pc);
            w.u32(line.target);
            w.u64(line.stamp);
        }
        w.finish_checksummed()
    }

    /// Deserialises a `SOFS1` container written by
    /// [`MachineSnapshot::to_bytes`].
    ///
    /// The stream is length-checked end to end: the trailing checksum is
    /// verified before a single field is parsed, every count is bounded
    /// by the bytes actually present, and every tag, geometry and
    /// ordering constraint that a later [`rebuild`] relies on is
    /// validated here — so corruption (any single flipped byte, any
    /// truncation) is a typed [`DecodeError`], never a panic.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] describing the first structural problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<MachineSnapshot, DecodeError> {
        let mut r = Reader::new_checksummed(bytes)?;
        r.magic(MAGIC, "SOFS1")?;
        let ram_size = r.u32()?;
        let icache = ICacheConfig {
            size_bytes: r.u32()?,
            line_bytes: r.u32()?,
            miss_penalty: r.u32()?,
        };
        if ram_size > MAX_RAM_SIZE {
            return Err(DecodeError::BadField {
                field: "ram_size",
                reason: format!("{ram_size} exceeds the {MAX_RAM_SIZE}-byte snapshot bound"),
            });
        }
        if !icache.size_bytes.is_power_of_two()
            || !icache.line_bytes.is_power_of_two()
            || icache.line_bytes > icache.size_bytes
            || icache.size_bytes > MAX_ICACHE_BYTES
        {
            return Err(DecodeError::BadField {
                field: "icache",
                reason: format!(
                    "invalid geometry {}B / {}B lines",
                    icache.size_bytes, icache.line_bytes
                ),
            });
        }
        let pipeline = PipelineModel {
            taken_branch_penalty: r.u32()?,
            direct_jump_penalty: r.u32()?,
            indirect_jump_penalty: r.u32()?,
            load_use_penalty: r.u32()?,
            mul_cycles: r.u32()?,
            div_cycles: r.u32()?,
            drain_cycles: r.u32()?,
            data_penalty: r.u32()?,
        };
        if pipeline.mul_cycles == 0 || pipeline.div_cycles == 0 {
            return Err(DecodeError::BadField {
                field: "pipeline",
                reason: "mul/div occupancy must be at least 1 cycle".into(),
            });
        }
        let schedule = match r.u8()? {
            0 => CipherSchedule::Paper,
            1 => CipherSchedule::PerWord,
            tag => {
                return Err(DecodeError::BadTag {
                    field: "timing.schedule",
                    tag: tag as u64,
                })
            }
        };
        let timing = SofiaTiming {
            schedule,
            cipher_latency: r.u32()?,
            cipher_issue_interval: r.u32()?,
            verify_latency: r.u32()?,
            redirect_setup: r.u32()?,
            reboot_cycles: r.u64()?,
        };
        let reset_policy = match r.u8()? {
            0 => ResetPolicy::HaltAndReport,
            1 => ResetPolicy::Reboot {
                max_resets: r.u32()?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    field: "reset_policy",
                    tag: tag as u64,
                })
            }
        };
        let enforce_si = r.bool("enforce_si")?;
        let vcache = VCacheConfig {
            enabled: r.bool("vcache.enabled")?,
            entries: r.u32()?,
            ways: r.u32()?,
            hit_latency: r.u32()?,
        };
        if vcache.enabled
            && (vcache.entries == 0
                || vcache.ways == 0
                || vcache.entries % vcache.ways != 0
                || vcache.entries > MAX_VCACHE_ENTRIES)
        {
            return Err(DecodeError::BadField {
                field: "vcache",
                reason: format!(
                    "invalid geometry: {} entries / {} ways",
                    vcache.entries, vcache.ways
                ),
            });
        }
        let config = SofiaConfig {
            machine: MachineConfig {
                ram_size,
                icache,
                pipeline,
            },
            timing,
            reset_policy,
            enforce_si,
            vcache,
        };

        let fuel_remaining = r.u64()?;
        let prev_pc = r.u32()?;
        let next_target = r.u32()?;
        let redirected = r.bool("redirected")?;
        let cur_base = r.u32()?;
        let cur_last_word = r.u32()?;
        let halted = r.bool("halted")?;
        let resets = r.u64()?;
        let prev_load_dest = match r.u8()? {
            0xFF => None,
            idx if idx < 32 => Some(idx),
            idx => {
                return Err(DecodeError::BadTag {
                    field: "prev_load_dest",
                    tag: idx as u64,
                })
            }
        };
        let mut regs = [0u32; 32];
        for reg in &mut regs {
            *reg = r.u32()?;
        }

        let total_pages = (ram_size as u64).div_ceil(RAM_PAGE as u64);
        let n_pages = r.count("ram_pages", 5)?;
        if n_pages as u64 > total_pages {
            return Err(DecodeError::BadLength {
                field: "ram_pages",
                expected: total_pages,
                found: n_pages as u64,
            });
        }
        let mut ram_pages = Vec::with_capacity(n_pages);
        let mut prev_idx: Option<u32> = None;
        for _ in 0..n_pages {
            let idx = r.u32()?;
            if (idx as u64) >= total_pages || prev_idx.is_some_and(|p| idx <= p) {
                return Err(DecodeError::BadField {
                    field: "ram_pages",
                    reason: format!("page index {idx} out of order or out of range"),
                });
            }
            prev_idx = Some(idx);
            let page_len =
                (ram_size as u64 - idx as u64 * RAM_PAGE as u64).min(RAM_PAGE as u64) as usize;
            ram_pages.push((idx, r.take(page_len)?.to_vec()));
        }

        let n = r.count("mmio.out_words", 4)?;
        let mut out_words = Vec::with_capacity(n);
        for _ in 0..n {
            out_words.push(r.u32()?);
        }
        let n = r.count("mmio.out_bytes", 1)?;
        let out_bytes = r.take(n)?.to_vec();
        let n = r.count("mmio.actuator_writes", 4)?;
        let mut actuator_writes = Vec::with_capacity(n);
        for _ in 0..n {
            actuator_writes.push(r.u32()?);
        }
        let mmio = Mmio {
            out_words,
            out_bytes,
            actuator_writes,
        };

        let exec = read_exec_stats(&mut r)?;
        let fetch = FetchPathStats {
            blocks: r.u64()?,
            exec_blocks: r.u64()?,
            mux_blocks: r.u64()?,
            mac_nop_slots: r.u64()?,
            ctr_ops: r.u64()?,
            cbc_ops: r.u64()?,
            cipher_stall_cycles: r.u64()?,
            redirect_fill_cycles: r.u64()?,
            store_gate_stall_cycles: r.u64()?,
            vcache_hits: r.u64()?,
            vcache_misses: r.u64()?,
            vcache_evictions: r.u64()?,
            crypto_cycles_saved: r.u64()?,
        };

        let n = r.count("violations", 5)?;
        let mut violations = Vec::with_capacity(n);
        for _ in 0..n {
            violations.push(read_violation(&mut r)?);
        }

        let expected_lines = (icache.size_bytes / icache.line_bytes) as u64;
        let n = r.count("icache_tags", 1)?;
        if n as u64 != expected_lines {
            return Err(DecodeError::BadLength {
                field: "icache_tags",
                expected: expected_lines,
                found: n as u64,
            });
        }
        let mut icache_tags = Vec::with_capacity(n);
        for _ in 0..n {
            icache_tags.push(match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                tag => {
                    return Err(DecodeError::BadTag {
                        field: "icache_tag",
                        tag: tag as u64,
                    })
                }
            });
        }
        let icache_stats = ICacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
        };

        let vcache_tick = r.u64()?;
        let vcache_stats = VCacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            insertions: r.u64()?,
            flushed: r.u64()?,
        };
        let n = r.count("vcache_lines", 16)?;
        let cap = if vcache.enabled {
            vcache.entries as u64
        } else {
            0
        };
        if n as u64 > cap {
            return Err(DecodeError::BadLength {
                field: "vcache_lines",
                expected: cap,
                found: n as u64,
            });
        }
        let mut vcache_lines = Vec::with_capacity(n);
        for _ in 0..n {
            vcache_lines.push(VCacheLine {
                prev_pc: r.u32()?,
                target: r.u32()?,
                stamp: r.u64()?,
            });
        }
        r.finish()?;

        Ok(MachineSnapshot {
            config,
            fuel_remaining,
            prev_pc,
            next_target,
            redirected,
            cur_base,
            cur_last_word,
            halted,
            resets,
            prev_load_dest,
            regs,
            ram_pages,
            mmio,
            exec,
            fetch,
            violations,
            icache_tags,
            icache_stats,
            vcache_tick,
            vcache_stats,
            vcache_lines,
        })
    }
}

/// Why a decoded snapshot could not be rebuilt into a machine over the
/// given image and keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The image's data section does not fit the snapshot's RAM size —
    /// the snapshot was taken against a different program.
    DataSection {
        /// RAM bytes the snapshot's configuration provides.
        ram_size: u32,
        /// Data-section bytes the image wants loaded.
        data_len: usize,
    },
    /// The engine rejected the core state (defensive — decoded
    /// snapshots are internally consistent by construction).
    Core(CoreStateError),
    /// A cached edge failed re-verification against the image: the
    /// image (or the snapshot's line list) was tampered with in
    /// transit. Restore refuses rather than resume with different
    /// timing or unverified plaintext.
    LineRejected {
        /// The edge source.
        prev_pc: u32,
        /// The edge target.
        target: u32,
        /// The violation the fetch path raised.
        violation: Violation,
    },
    /// A cached edge decrypts-and-verifies but no longer decodes — it
    /// can never have been cached honestly.
    LineUndecodable {
        /// The edge source.
        prev_pc: u32,
        /// The edge target.
        target: u32,
        /// Address of the undecodable word.
        pc: u32,
    },
    /// A cache line could not be placed (set overflow or duplicate
    /// edge) — the line list contradicts the cache geometry.
    LinePlacement {
        /// The edge source.
        prev_pc: u32,
        /// The edge target.
        target: u32,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::DataSection { ram_size, data_len } => write!(
                f,
                "image data section ({data_len} B) exceeds snapshot RAM ({ram_size} B)"
            ),
            RestoreError::Core(e) => write!(f, "core state rejected: {e}"),
            RestoreError::LineRejected {
                prev_pc,
                target,
                violation,
            } => write!(
                f,
                "cached edge {prev_pc:#010x}->{target:#010x} failed re-verification: {violation}"
            ),
            RestoreError::LineUndecodable {
                prev_pc,
                target,
                pc,
            } => write!(
                f,
                "cached edge {prev_pc:#010x}->{target:#010x} holds undecodable word at {pc:#010x}"
            ),
            RestoreError::LinePlacement { prev_pc, target } => write!(
                f,
                "cached edge {prev_pc:#010x}->{target:#010x} cannot be placed in the cache"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Captures a machine's suspended state (the implementation behind
/// [`SofiaMachine::snapshot`]).
pub(crate) fn capture(m: &SofiaMachine, fuel_remaining: u64) -> MachineSnapshot {
    let core = m.engine().export_core_state();
    let f = m.engine().fetch();
    let (redirected, cur_base, cur_last_word) = f.sequencing();
    MachineSnapshot {
        config: m.config(),
        fuel_remaining,
        prev_pc: f.prev_pc(),
        next_target: f.next_target(),
        redirected,
        cur_base,
        cur_last_word,
        halted: core.halted,
        resets: core.resets,
        prev_load_dest: core.prev_load_dest.map(|r| r.index()),
        regs: core.regs.words(),
        ram_pages: paginate(&core.ram),
        mmio: core.mmio,
        exec: core.stats,
        fetch: f.stats(),
        violations: m.violations().to_vec(),
        icache_tags: core.icache_tags,
        icache_stats: core.icache_stats,
        vcache_tick: f.vcache_ref().clock(),
        vcache_stats: f.vcache_ref().stats(),
        vcache_lines: f
            .vcache_ref()
            .export_lines()
            .into_iter()
            .map(|((prev_pc, target), stamp)| VCacheLine {
                prev_pc,
                target,
                stamp,
            })
            .collect(),
    }
}

/// Rebuilds a machine from image + keys + snapshot (the implementation
/// behind [`SofiaMachine::restore`]).
pub(crate) fn rebuild(
    image: &SecureImage,
    keys: &KeySet,
    snap: &MachineSnapshot,
) -> Result<SofiaMachine, RestoreError> {
    if image.data.len() > snap.config.machine.ram_size as usize {
        return Err(RestoreError::DataSection {
            ram_size: snap.config.machine.ram_size,
            data_len: image.data.len(),
        });
    }
    let mut m = SofiaMachine::with_config(image, keys, &snap.config);

    // Re-earn every cached line against this host's image *before* any
    // state is replaced: a tampered image or forged line list fails
    // here, leaving nothing half-restored.
    let mut lines = Vec::with_capacity(snap.vcache_lines.len());
    {
        let mem = m.engine().mem();
        let f = m.engine().fetch();
        for line in &snap.vcache_lines {
            let block = f
                .reverify_line(&mut |addr| mem.fetch(addr).ok(), line.prev_pc, line.target)
                .map_err(|e| match e {
                    LineRejection::Violation(violation) => RestoreError::LineRejected {
                        prev_pc: line.prev_pc,
                        target: line.target,
                        violation,
                    },
                    LineRejection::Undecodable { pc, .. } => RestoreError::LineUndecodable {
                        prev_pc: line.prev_pc,
                        target: line.target,
                        pc,
                    },
                })?;
            lines.push(((line.prev_pc, line.target), line.stamp, block));
        }
    }

    let mut regs = RegFile::new();
    regs.set_words(snap.regs);
    m.engine_mut()
        .restore_core_state(CoreState {
            regs,
            ram: depaginate(&snap.ram_pages, snap.config.machine.ram_size),
            mmio: snap.mmio.clone(),
            stats: snap.exec,
            icache_tags: snap.icache_tags.clone(),
            icache_stats: snap.icache_stats,
            prev_load_dest: snap.prev_load_dest.and_then(Reg::new),
            halted: snap.halted,
            resets: snap.resets,
        })
        .map_err(RestoreError::Core)?;

    let f = m.engine_mut().fetch_mut();
    f.restore_sequencing(
        snap.prev_pc,
        snap.next_target,
        snap.redirected,
        snap.cur_base,
        snap.cur_last_word,
    );
    f.set_stats(snap.fetch);
    f.vcache_mut()
        .restore_state(lines, snap.vcache_tick, snap.vcache_stats)
        .map_err(|(prev_pc, target)| RestoreError::LinePlacement { prev_pc, target })?;
    m.set_violations(snap.violations.clone());
    Ok(m)
}

/// Writes one [`Violation`] in the snapshot wire format — exposed so
/// higher-layer containers (the fleet's job checkpoints) compose the
/// same encoding instead of inventing a second one.
pub fn write_violation(w: &mut Writer, v: &Violation) {
    match *v {
        Violation::MacMismatch { block_base } => {
            w.u8(0);
            w.u32(block_base);
        }
        Violation::InvalidEntryOffset { target } => {
            w.u8(1);
            w.u32(target);
        }
        Violation::FetchOutOfImage { addr } => {
            w.u8(2);
            w.u32(addr);
        }
        Violation::StoreTooEarly { pc, word_pos } => {
            w.u8(3);
            w.u32(pc);
            w.u64(word_pos as u64);
        }
        Violation::MidBlockTransfer { pc } => {
            w.u8(4);
            w.u32(pc);
        }
    }
}

/// Reads one [`Violation`] written by [`write_violation`].
///
/// # Errors
///
/// [`DecodeError`] on an unknown tag or truncated payload.
pub fn read_violation(r: &mut Reader<'_>) -> Result<Violation, DecodeError> {
    Ok(match r.u8()? {
        0 => Violation::MacMismatch {
            block_base: r.u32()?,
        },
        1 => Violation::InvalidEntryOffset { target: r.u32()? },
        2 => Violation::FetchOutOfImage { addr: r.u32()? },
        3 => Violation::StoreTooEarly {
            pc: r.u32()?,
            word_pos: r.u64()? as usize,
        },
        4 => Violation::MidBlockTransfer { pc: r.u32()? },
        tag => {
            return Err(DecodeError::BadTag {
                field: "violation",
                tag: tag as u64,
            })
        }
    })
}

/// Writes an [`ExecStats`] in the snapshot wire format (see
/// [`write_violation`] for why this is public).
pub fn write_exec_stats(w: &mut Writer, e: &ExecStats) {
    for v in [
        e.cycles,
        e.instret,
        e.branches,
        e.taken_branches,
        e.loads,
        e.stores,
        e.calls,
        e.load_use_stalls,
        e.icache_stall_cycles,
    ] {
        w.u64(v);
    }
}

/// Reads an [`ExecStats`] written by [`write_exec_stats`].
///
/// # Errors
///
/// [`DecodeError::Truncated`].
pub fn read_exec_stats(r: &mut Reader<'_>) -> Result<ExecStats, DecodeError> {
    Ok(ExecStats {
        cycles: r.u64()?,
        instret: r.u64()?,
        branches: r.u64()?,
        taken_branches: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
        calls: r.u64()?,
        load_use_stalls: r.u64()?,
        icache_stall_cycles: r.u64()?,
    })
}

/// Writes a full [`crate::SofiaStats`] in the snapshot wire format.
pub fn write_sofia_stats(w: &mut Writer, s: &crate::SofiaStats) {
    write_exec_stats(w, &s.exec);
    for v in [
        s.blocks,
        s.exec_blocks,
        s.mux_blocks,
        s.mac_nop_slots,
        s.ctr_ops,
        s.cbc_ops,
        s.cipher_stall_cycles,
        s.redirect_fill_cycles,
        s.store_gate_stall_cycles,
        s.vcache_hits,
        s.vcache_misses,
        s.vcache_evictions,
        s.crypto_cycles_saved,
        s.violations,
        s.resets,
    ] {
        w.u64(v);
    }
}

/// Reads a [`crate::SofiaStats`] written by [`write_sofia_stats`].
///
/// # Errors
///
/// [`DecodeError::Truncated`].
pub fn read_sofia_stats(r: &mut Reader<'_>) -> Result<crate::SofiaStats, DecodeError> {
    Ok(crate::SofiaStats {
        exec: read_exec_stats(r)?,
        blocks: r.u64()?,
        exec_blocks: r.u64()?,
        mux_blocks: r.u64()?,
        mac_nop_slots: r.u64()?,
        ctr_ops: r.u64()?,
        cbc_ops: r.u64()?,
        cipher_stall_cycles: r.u64()?,
        redirect_fill_cycles: r.u64()?,
        store_gate_stall_cycles: r.u64()?,
        vcache_hits: r.u64()?,
        vcache_misses: r.u64()?,
        vcache_evictions: r.u64()?,
        crypto_cycles_saved: r.u64()?,
        violations: r.u64()?,
        resets: r.u64()?,
    })
}

/// Splits RAM into sparse non-zero pages.
fn paginate(ram: &[u8]) -> Vec<(u32, Vec<u8>)> {
    ram.chunks(RAM_PAGE)
        .enumerate()
        .filter(|(_, page)| page.iter().any(|&b| b != 0))
        .map(|(idx, page)| (idx as u32, page.to_vec()))
        .collect()
}

/// Reassembles a full RAM from sparse pages.
fn depaginate(pages: &[(u32, Vec<u8>)], ram_size: u32) -> Vec<u8> {
    let mut ram = vec![0u8; ram_size as usize];
    for (idx, bytes) in pages {
        let start = *idx as usize * RAM_PAGE;
        ram[start..start + bytes.len()].copy_from_slice(bytes);
    }
    ram
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;
    use sofia_transform::Transformer;

    fn build(src: &str) -> (SofiaMachine, SecureImage, KeySet) {
        let keys = KeySet::from_seed(0x5AF3);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        let m = SofiaMachine::new(&image, &keys);
        (m, image, keys)
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let (mut m, _, _) = build(
            "main: li t0, 20
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt",
        );
        let s = m.run_slice(7).unwrap();
        assert_eq!(s.outcome, crate::SliceOutcome::Preempted);
        let snap = m.snapshot(1_000 - s.consumed);
        let bytes = snap.to_bytes();
        let back = MachineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.edge(), m.edge());
    }

    #[test]
    fn restored_machine_resumes_bit_for_bit() {
        let src = "main: li t0, 25
                   li t1, 0
             loop: add t1, t1, t0
                   subi t0, t0, 1
                   bnez t0, loop
                   li a0, 0xFFFF0000
                   sw t1, 0(a0)
                   halt";
        let (mut whole, image, keys) = build(src);
        assert!(whole.run(100_000).unwrap().is_halted());
        let (mut driver, _, _) = build(src);
        let s = driver.run_slice(40).unwrap();
        assert_eq!(s.outcome, crate::SliceOutcome::Preempted);
        let snap = driver.snapshot(100_000 - s.consumed);
        drop(driver);
        let mut resumed = SofiaMachine::restore(&image, &keys, &snap).unwrap();
        assert!(resumed.run(snap.fuel_remaining).unwrap().is_halted());
        assert_eq!(resumed.mem().mmio.out_words, whole.mem().mmio.out_words);
        assert_eq!(resumed.stats(), whole.stats());
        assert_eq!(resumed.icache_stats(), whole.icache_stats());
    }

    #[test]
    fn config_is_reconstructed_exactly() {
        let (_, image, keys) = build("main: nop\n halt");
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(16, 4),
            reset_policy: ResetPolicy::Reboot { max_resets: 3 },
            enforce_si: false,
            ..Default::default()
        };
        let m = SofiaMachine::with_config(&image, &keys, &config);
        assert_eq!(m.config(), config);
        assert_eq!(m.snapshot(0).config, config);
    }

    #[test]
    fn restore_rejects_oversized_data_section() {
        let (m, image, keys) = build("main: nop\n halt");
        let mut snap = m.snapshot(0);
        snap.config.machine.ram_size = 0;
        snap.ram_pages.clear();
        // An empty data section fits any RAM; force the mismatch by
        // growing the image's data instead.
        let mut fat = image.clone();
        fat.data = vec![0; 4096];
        snap.config.machine.ram_size = 1024;
        assert!(matches!(
            SofiaMachine::restore(&fat, &keys, &snap),
            Err(RestoreError::DataSection { .. })
        ));
    }

    #[test]
    fn warm_vcache_lines_are_reverified_not_trusted() {
        let src = "main: li t0, 12
             loop: subi t0, t0, 1
                   bnez t0, loop
                   halt";
        let keys = KeySet::from_seed(0x5AF4);
        let image = Transformer::new(keys.clone())
            .transform(&asm::parse(src).unwrap())
            .unwrap();
        let config = SofiaConfig {
            vcache: VCacheConfig::enabled(16, 4),
            ..Default::default()
        };
        let mut m = SofiaMachine::with_config(&image, &keys, &config);
        let s = m.run_slice(20).unwrap();
        assert_eq!(s.outcome, crate::SliceOutcome::Preempted);
        let snap = m.snapshot(10_000);
        assert!(!snap.vcache_lines.is_empty(), "loop should be cached");
        // Clean image: every line re-earns residency.
        let restored = SofiaMachine::restore(&image, &keys, &snap).unwrap();
        assert_eq!(restored.vcache_stats(), m.vcache_stats());
        // Tampered image: the line that covered the tampered block is
        // refused — stale verified plaintext cannot cross a migration.
        let mut tampered = image.clone();
        tampered.ctext[1] ^= 4;
        assert!(matches!(
            SofiaMachine::restore(&tampered, &keys, &snap),
            Err(RestoreError::LineRejected {
                violation: Violation::MacMismatch { .. },
                ..
            })
        ));
    }
}
